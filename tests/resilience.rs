//! Tests for the paper's future-work extensions implemented here:
//! resilience for volatile-layer data (buddy replication + node-failure
//! injection) and adaptive, usage-driven promotion of hot segments.

use std::sync::Arc;
use univistor::prelude::*;

/// Two nodes × two procs, tiny segments so everything is observable.
fn job(replicate: bool) -> Arc<UniviStorJob> {
    let mut cfg = UniviStorConfig::test_small(2, 2);
    cfg.replicate_volatile = replicate;
    // Roomier tiers than test_small's defaults: 4 KiB DRAM per node.
    cfg.cal.dram_cache_capacity_per_node = 4096;
    Arc::new(UniviStorJob::new(cfg))
}

fn client(rank: u32) -> ClientId {
    ClientId::new(0, rank)
}

fn open_write(job: &UniviStorJob, path: &str) {
    job.open_file(path)
        .write()
        .representing(4)
        .by(client(0))
        .unwrap();
}

#[test]
fn replication_doubles_cached_bytes() {
    let j = job(true);
    open_write(&j, "/f");
    j.write(client(0), "/f", 0, Payload::pattern(1, 512))
        .unwrap();
    let live: u64 = j.tier_usage().iter().map(|(_, b)| b).sum();
    assert_eq!(live, 1024, "primary + replica");
    assert_eq!(j.stats().replicated_bytes, 512);
}

#[test]
fn reads_survive_node_failure() {
    let j = job(true);
    open_write(&j, "/f");
    // Clients 0,1 live on node 0; 2,3 on node 1. Everyone writes.
    for rank in 0..4u32 {
        j.write(
            client(rank),
            "/f",
            rank as u64 * 256,
            Payload::pattern(rank as u64, 256),
        )
        .unwrap();
    }
    // Node 0's DRAM is gone.
    j.fail_node(0);
    // A survivor on node 1 still reads the whole file correctly.
    let got = j.read(client(2), "/f", 0, 1024).unwrap();
    for rank in 0..4u64 {
        assert!(
            got.slice(rank * 256, 256)
                .content_eq(&Payload::pattern(rank, 256)),
            "rank {rank}'s data lost"
        );
    }
    assert!(j.stats().read_trace.replica_bytes > 0, "replicas unused?");
}

#[test]
fn flush_survives_node_failure() {
    let j = job(true);
    j.open_file("/f")
        .write()
        .representing(4)
        .by(client(0))
        .unwrap();
    for rank in 0..4u32 {
        j.write(
            client(rank),
            "/f",
            rank as u64 * 256,
            Payload::pattern(rank as u64, 256),
        )
        .unwrap();
    }
    j.fail_node(1); // lose node 1 before the close-time flush
    j.close("/f", client(0), OpenMode::Write, 4, true)
        .unwrap()
        .expect("flush happened");
    // The PFS copy is complete and correct, including node 1's data.
    for rank in 0..4u64 {
        let got = j.lustre_read("/f", rank * 256, 256).unwrap();
        assert!(got.content_eq(&Payload::pattern(rank, 256)));
    }
}

#[test]
fn without_replication_failure_loses_data() {
    let j = job(false);
    open_write(&j, "/f");
    for rank in 0..4u32 {
        j.write(
            client(rank),
            "/f",
            rank as u64 * 256,
            Payload::pattern(rank as u64, 256),
        )
        .unwrap();
    }
    j.fail_node(0);
    assert!(
        j.read(client(2), "/f", 0, 1024).is_err(),
        "unreplicated data on a failed node must be reported lost"
    );
}

#[test]
fn double_failure_is_detected() {
    let j = job(true);
    open_write(&j, "/f");
    for rank in 0..4u32 {
        j.write(
            client(rank),
            "/f",
            rank as u64 * 256,
            Payload::pattern(rank as u64, 256),
        )
        .unwrap();
    }
    j.fail_node(0);
    j.fail_node(1);
    assert!(j.read(client(0), "/f", 0, 1024).is_err());
}

#[test]
fn overwrite_releases_replica_space_too() {
    let j = job(true);
    open_write(&j, "/f");
    j.write(client(0), "/f", 0, Payload::pattern(1, 512))
        .unwrap();
    let before: u64 = j.tier_usage().iter().map(|(_, b)| b).sum();
    // Overwrite the same range repeatedly: live bytes must not grow.
    for seed in 2..6u64 {
        j.write(client(0), "/f", 0, Payload::pattern(seed, 512))
            .unwrap();
    }
    let after: u64 = j.tier_usage().iter().map(|(_, b)| b).sum();
    assert_eq!(before, after, "replica space leaked on overwrite");
}

#[test]
fn hot_segments_get_promoted_to_dram() {
    // 1 node × 1 proc, 512 B DRAM log (2 × 256 B chunks), spill to BB.
    let mut cfg = UniviStorConfig::test_small(1, 1);
    cfg.cal.dram_cache_capacity_per_node = 512;
    cfg.chunk_size = 256;
    cfg.segment_size = 256;
    let j = Arc::new(UniviStorJob::new(cfg));
    j.open_file("/f").read_write().by(client(0)).unwrap();

    // 1 KiB write: 512 B to DRAM, 512 B spills to the BB.
    j.write(client(0), "/f", 0, Payload::pattern(7, 1024))
        .unwrap();
    let dram = |j: &UniviStorJob| {
        j.tier_usage()
            .iter()
            .find(|(t, _)| *t == Tier::Dram)
            .map(|(_, b)| *b)
            .unwrap_or(0)
    };
    assert_eq!(dram(&j), 512);

    // Heat up the spilled half.
    for _ in 0..3 {
        j.read(client(0), "/f", 512, 512).unwrap();
    }
    // No DRAM space yet: nothing can be promoted.
    let promote = |j: &UniviStorJob| {
        j.tiering()
            .promote_now(PromotionPolicy {
                min_reads: 3,
                min_benefit: 0.0,
            })
            .unwrap()
            .promoted_segments
    };
    assert_eq!(promote(&j), 0);

    // Overwrite the cold DRAM-resident half. The batched pipeline appends
    // the whole run before releasing displaced spans, so with DRAM full
    // both new segments land on the BB and the punch then frees both DRAM
    // chunks.
    j.write(client(0), "/f", 0, Payload::pattern(8, 512))
        .unwrap();
    // Heat accounting survives; the hot BB record can move up now.
    let promoted = promote(&j);
    assert_eq!(
        promoted, 1,
        "the hot 512 B coalesced record fits the freed DRAM chunks"
    );
    assert_eq!(j.stats().promotions, 1);

    // The whole file still reads correctly after all the shuffling.
    let got = j.read(client(0), "/f", 0, 1024).unwrap();
    assert!(got.slice(0, 512).content_eq(&Payload::pattern(8, 512)));
    assert!(got
        .slice(512, 512)
        .content_eq(&Payload::pattern(7, 1024).slice(512, 512)));
    // And the promoted record (the coalesced 512 B span) is now served
    // entirely from DRAM.
    let before = j.stats().read_trace;
    j.read(client(0), "/f", 512, 512).unwrap();
    let after = j.stats().read_trace;
    assert_eq!(
        after.local_direct_bytes - before.local_direct_bytes,
        512,
        "promoted record should be node-local now"
    );
}

#[test]
fn promotion_skips_already_fast_segments() {
    let mut cfg = UniviStorConfig::test_small(1, 1);
    cfg.cal.dram_cache_capacity_per_node = 4096;
    let j = Arc::new(UniviStorJob::new(cfg));
    j.open_file("/f").read_write().by(client(0)).unwrap();
    j.write(client(0), "/f", 0, Payload::pattern(1, 512))
        .unwrap();
    for _ in 0..5 {
        j.read(client(0), "/f", 0, 512).unwrap();
    }
    let report = j
        .tiering()
        .promote_now(PromotionPolicy {
            min_reads: 3,
            min_benefit: 0.0,
        })
        .unwrap();
    assert_eq!(report.promoted_segments, 0, "DRAM data needs no promotion");
}

#[test]
fn replicated_workflow_roundtrip_through_driver() {
    // End-to-end through the MPI-IO driver with replication on.
    let mut cfg = UniviStorConfig::test_small(2, 2);
    cfg.replicate_volatile = true;
    cfg.cal.dram_cache_capacity_per_node = 1 << 20;
    cfg.cal.bb_capacity_per_node = 1 << 20;
    let job = Arc::new(UniviStorJob::new(cfg));
    let driver = UniviStorDriver::new(Arc::clone(&job), 0);
    let micro = univistor::workloads::MicroIo::scaled(4, 4096);
    micro.write_phase(&driver, "/r").unwrap();
    job.fail_node(0);
    // Reads still verify with half the cluster's volatile storage gone.
    micro.read_phase(&driver, "/r", true).unwrap();
}
