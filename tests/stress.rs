//! Medium-scale stress and determinism tests (beyond the proptest sizes).

use std::sync::Arc;
use univistor::prelude::*;
use univistor::sim::rng::DetRng;
use univistor::sim::SparseBuffer;

fn medium_cfg() -> UniviStorConfig {
    let mut cfg = UniviStorConfig::test_small(4, 8);
    cfg.chunk_size = 4096;
    cfg.segment_size = 1024;
    cfg.metadata_range_size = 64 << 10;
    cfg.cal.dram_cache_capacity_per_node = 256 << 10;
    cfg.cal.bb_capacity_per_node = 4 << 20;
    cfg
}

/// 500 random writes from 32 clients over one shared file, checked
/// against a flat model, then flushed and checked again on the PFS.
#[test]
fn randomized_write_storm_matches_model() {
    let job = Arc::new(UniviStorJob::new(medium_cfg()));
    job.open_file("/storm")
        .read_write()
        .representing(32)
        .by(ClientId::new(0, 0))
        .unwrap();
    let mut rng = DetRng::seed(0xbeef);
    let mut model = SparseBuffer::new();
    for i in 0..500u64 {
        let rank = rng.below(32) as u32;
        let offset = rng.below(256 << 10) as u64;
        let len = 1 + rng.below(4096) as u64;
        let data = Payload::pattern(i, len);
        job.write(ClientId::new(0, rank), "/storm", offset, data.clone())
            .unwrap();
        model.write(offset, data);
    }
    // Every written extent reads back exactly (through random readers).
    for (off, payload) in model.extents() {
        let reader = ClientId::new(0, (off % 32) as u32);
        let got = job.read(reader, "/storm", off, payload.len()).unwrap();
        assert!(got.content_eq(payload), "extent at {off} corrupt");
    }
    // Cache live bytes equal the model's (no leaks from 500 overwrites).
    let live: u64 = job.tier_usage().iter().map(|(_, b)| b).sum();
    assert_eq!(live, model.bytes_stored());

    // Flush only if the file is hole-free (flush requires full coverage).
    let size = model.end_offset();
    if model.read_exact(0, size).is_ok() {
        job.close("/storm", ClientId::new(0, 0), OpenMode::ReadWrite, 32, true)
            .unwrap()
            .expect("flush");
        let pfs = job.lustre_read("/storm", 0, size).unwrap();
        assert!(pfs.content_eq(&model.read(0, size)));
    }
}

/// The entire system is deterministic: two identical runs produce
/// identical stats, tier usage, and flushed bytes.
#[test]
fn identical_runs_are_bit_identical() {
    let run = || {
        let job = Arc::new(UniviStorJob::new(medium_cfg()));
        let driver = UniviStorDriver::new(Arc::clone(&job), 0);
        let micro = univistor::workloads::MicroIo::scaled(32, 64 << 10);
        micro.write_phase(&driver, "/det").unwrap();
        micro.read_phase(&driver, "/det", false).unwrap();
        let stats = job.stats();
        let checksum = job
            .lustre_read("/det", 0, micro.file_size())
            .unwrap()
            .content_checksum();
        (
            stats.segments,
            stats.open_close_md_rpcs,
            stats.bytes_by_tier.clone(),
            stats.read_trace,
            checksum,
        )
    };
    assert_eq!(run(), run());
}

/// The figure workloads' observable statistics are write-pipeline
/// invariant: micro's disjoint once-written blocks place identically
/// under the batched and per-piece paths, so everything the timing
/// plane consumes — segments, RPC counts, tier byte splits, read
/// classification, checksums — is unchanged by batching.
#[test]
fn batched_pipeline_preserves_figure_stats() {
    use univistor::core::config::WritePipeline;
    let run = |pipeline: WritePipeline| {
        let mut cfg = medium_cfg();
        cfg.write_pipeline = pipeline;
        let job = Arc::new(UniviStorJob::new(cfg));
        let driver = UniviStorDriver::new(Arc::clone(&job), 0);
        let micro = univistor::workloads::MicroIo::scaled(32, 64 << 10);
        micro.write_phase(&driver, "/fig").unwrap();
        micro.read_phase(&driver, "/fig", false).unwrap();
        let stats = job.stats();
        // `local_md_hits` counts metadata *records* served from the
        // shared buffer; coalescing legitimately shrinks it, and the
        // timing plane never reads it — zero it before comparing.
        let mut trace = stats.read_trace;
        trace.local_md_hits = 0;
        let checksum = job
            .lustre_read("/fig", 0, micro.file_size())
            .unwrap()
            .content_checksum();
        (
            stats.segments,
            stats.open_close_md_rpcs,
            stats.bytes_by_tier.clone(),
            trace,
            checksum,
        )
    };
    assert_eq!(run(WritePipeline::Batched), run(WritePipeline::PerPiece));
}

/// Many files cycling through open→write→close: per-file flushes stay
/// isolated and the PFS accumulates every file intact.
#[test]
fn fifty_files_cycle_cleanly() {
    let job = Arc::new(UniviStorJob::new(medium_cfg()));
    for i in 0..50u64 {
        let path = format!("/f{i:02}");
        job.open_file(&path)
            .write()
            .representing(4)
            .by(ClientId::new(0, 0))
            .unwrap();
        for rank in 0..4u32 {
            job.write(
                ClientId::new(0, rank),
                &path,
                rank as u64 * 2048,
                Payload::pattern(i * 4 + rank as u64, 2048),
            )
            .unwrap();
        }
        job.close(&path, ClientId::new(0, 0), OpenMode::Write, 4, true)
            .unwrap()
            .expect("flush");
    }
    let stats = job.stats();
    assert_eq!(stats.flush_receipts.len(), 50);
    for i in 0..50u64 {
        let path = format!("/f{i:02}");
        assert_eq!(job.lustre_file_size(&path).unwrap(), 4 * 2048);
        let got = job.lustre_read(&path, 2048, 2048).unwrap();
        assert!(got.content_eq(&Payload::pattern(i * 4 + 1, 2048)), "{path}");
    }
}

/// Re-opening and appending to a previously flushed file re-flushes the
/// grown file correctly.
#[test]
fn reopen_append_reflush() {
    let job = Arc::new(UniviStorJob::new(medium_cfg()));
    let c = ClientId::new(0, 0);
    job.open_file("/grow").write().by(c).unwrap();
    job.write(c, "/grow", 0, Payload::pattern(1, 4096)).unwrap();
    job.close("/grow", c, OpenMode::Write, 1, true)
        .unwrap()
        .expect("first flush");
    assert_eq!(job.lustre_file_size("/grow").unwrap(), 4096);

    job.open_file("/grow").write().by(c).unwrap();
    job.write(c, "/grow", 4096, Payload::pattern(2, 4096))
        .unwrap();
    job.close("/grow", c, OpenMode::Write, 1, true)
        .unwrap()
        .expect("second flush");
    assert_eq!(job.lustre_file_size("/grow").unwrap(), 8192);
    assert!(job
        .lustre_read("/grow", 0, 4096)
        .unwrap()
        .content_eq(&Payload::pattern(1, 4096)));
    assert!(job
        .lustre_read("/grow", 4096, 4096)
        .unwrap()
        .content_eq(&Payload::pattern(2, 4096)));
}
