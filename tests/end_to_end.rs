//! Cross-crate integration tests: full application → MPI-IO → UniviStor →
//! tiers → flush → Lustre paths, against every storage system.

use std::sync::Arc;
use univistor::baselines::{DataElevator, LustreDirect};
use univistor::mpi::{Hints, MpiFile, World};
use univistor::prelude::*;
use univistor::sim::calibration::Calibration;
use univistor::sim::Payload;
use univistor::workloads::{BdCatsIo, MicroIo, VpicIo, VpicLayout};

fn uv_driver(procs: usize) -> UniviStorDriver {
    let cfg = UniviStorConfig::paper(procs);
    UniviStorDriver::new(Arc::new(UniviStorJob::new(cfg)), 0)
}

/// The same micro workload must produce byte-identical results through
/// every driver: UniviStor, Data Elevator, and direct Lustre.
#[test]
fn micro_workload_is_driver_agnostic() {
    let procs = 8;
    let micro = MicroIo::scaled(procs, 64 << 10);

    let uv = uv_driver(procs);
    micro.write_phase(&uv, "/m").unwrap();
    micro.read_phase(&uv, "/m", true).unwrap();

    let geometry = univistor::core::config::JobGeometry::paper(procs);
    let de = DataElevator::new(geometry, Calibration::default());
    micro.write_phase(&de, "/m").unwrap();
    micro.read_phase(&de, "/m", true).unwrap();

    let lustre = LustreDirect::new(&Calibration::default());
    micro.write_phase(&lustre, "/m").unwrap();
    micro.read_phase(&lustre, "/m", true).unwrap();
}

/// UniviStor's flushed output must equal Data Elevator's flushed output
/// byte for byte — two completely different cache layouts, one logical
/// file.
#[test]
fn flushed_files_identical_across_systems() {
    let procs = 4;
    let micro = MicroIo::scaled(procs, 32 << 10);
    let total = micro.file_size();

    let uv = uv_driver(procs);
    micro.write_phase(&uv, "/same").unwrap();
    let uv_bytes = uv.job().lustre_read("/same", 0, total).unwrap();

    let geometry = univistor::core::config::JobGeometry::paper(procs);
    let de = DataElevator::new(geometry, Calibration::default());
    micro.write_phase(&de, "/same").unwrap();
    let de_bytes = de.pfs_read("/same", 0, total).unwrap();

    assert!(uv_bytes.content_eq(&de_bytes));
}

/// Full VPIC → BD-CATS cycle through UniviStor with spill to the burst
/// buffer, verified byte-exact, plus flushed files on Lustre.
#[test]
fn vpic_bdcats_cycle_with_spill() {
    let procs = 8;
    let steps = 4;
    let mut cfg = UniviStorConfig::paper(procs);
    cfg.chunk_size = 16 << 10;
    cfg.segment_size = 16 << 10;
    cfg.metadata_range_size = 256 << 10;
    // Two steps fit in DRAM, the rest spill.
    let particles = 4u64 << 10; // 128 KiB/step/proc
    cfg.cal.dram_cache_capacity_per_node = 2 * cfg.geometry.procs_per_node as u64 * particles * 32;
    let job = Arc::new(UniviStorJob::new(cfg));
    let driver = UniviStorDriver::new(Arc::clone(&job), 0);

    let vpic = VpicIo::scaled(procs, steps, particles);
    vpic.write_all(&driver).unwrap();

    // Spill actually happened.
    let usage = job.tier_usage();
    let bb = usage
        .iter()
        .find(|(t, _)| *t == Tier::SharedBurstBuffer)
        .map(|(_, b)| *b)
        .unwrap_or(0);
    assert!(bb > 0, "expected BB spill, got {usage:?}");

    // Analysis verifies every byte of every step from the cache.
    let bdcats = BdCatsIo::new(vpic.layout, procs / 2);
    bdcats.read_all(&driver, steps, true).unwrap();

    // Every step file is also on Lustre, correct.
    for step in 0..steps {
        let path = VpicLayout::file_path(step);
        assert_eq!(
            job.lustre_file_size(&path).unwrap(),
            vpic.layout.file_size()
        );
    }
}

/// Feature matrix: every combination of IA/COC/ADPT/location-aware reads
/// must preserve correctness (they are performance features only).
#[test]
fn feature_matrix_preserves_correctness() {
    let procs = 4;
    let micro = MicroIo::scaled(procs, 16 << 10);
    for bits in 0..16u32 {
        let mut cfg = UniviStorConfig::paper(procs);
        cfg.features = Features {
            interference_aware: bits & 1 != 0,
            collective_open_close: bits & 2 != 0,
            adaptive_striping: bits & 4 != 0,
            location_aware_reads: bits & 8 != 0,
            workflow: false,
            flush_on_close: true,
        };
        let driver = UniviStorDriver::new(Arc::new(UniviStorJob::new(cfg)), 0);
        micro.write_phase(&driver, "/fm").unwrap();
        micro.read_phase(&driver, "/fm", true).unwrap();
        assert_eq!(
            driver.job().lustre_file_size("/fm").unwrap(),
            micro.file_size(),
            "feature bits {bits:#06b}"
        );
    }
}

/// Tier configurations (DRAM / BB / Disk caches) all roundtrip.
#[test]
fn tier_configurations_roundtrip() {
    let procs = 4;
    let micro = MicroIo::scaled(procs, 16 << 10);
    for (dram, bb) in [(true, true), (false, true), (false, false)] {
        let mut cfg = UniviStorConfig::paper(procs);
        cfg.enable_dram = dram;
        cfg.enable_bb = bb;
        let driver = UniviStorDriver::new(Arc::new(UniviStorJob::new(cfg)), 0);
        micro.write_phase(&driver, "/t").unwrap();
        micro.read_phase(&driver, "/t", true).unwrap();
    }
}

/// HDF5-lite stacked on the UniviStor driver: the full library stack
/// (H5File → MpiFile → ADIO driver → DHP/metadata/tiers).
#[test]
fn hdf5_on_univistor_stack() {
    let procs = 4;
    let cfg = UniviStorConfig::paper(procs);
    let driver = UniviStorDriver::new(Arc::new(UniviStorJob::new(cfg)), 0);
    let results = World::run(procs, |comm| {
        let mut h5 =
            univistor::h5::H5File::create(&comm, &driver, "/exp.h5", Hints::new()).expect("create");
        let per = 4096u64;
        h5.create_dataset("field", per * comm.size() as u64, 4)
            .expect("dataset");
        let rank = comm.rank() as u64;
        h5.write("field", rank * per, Payload::pattern(rank, per))
            .expect("write");
        comm.barrier();
        let prev = (rank + comm.size() as u64 - 1) % comm.size() as u64;
        let got = h5.read("field", prev * per, per).expect("read");
        let ok = got.content_eq(&Payload::pattern(prev, per));
        h5.close().expect("close");
        ok
    });
    assert_eq!(results, vec![true; procs]);
    // The whole HDF5 file (metadata region + dataset) was flushed.
    assert!(driver.job().lustre_file_size("/exp.h5").unwrap() > 0);
}

/// Concurrent producer/consumer coordination through the workflow state
/// file — reader opens before the writer finishes; data is never partial.
#[test]
fn insitu_workflow_blocks_partial_reads() {
    let procs = 3;
    let mut cfg = UniviStorConfig::paper(procs * 2);
    cfg.features = Features::all();
    let job = Arc::new(UniviStorJob::new(cfg));
    let producer = UniviStorDriver::new(Arc::clone(&job), 0);
    let consumer = UniviStorDriver::new(Arc::clone(&job), 1);
    let block = 8192u64;

    let (_, oks) = World::run_coupled(
        procs,
        procs,
        |comm| {
            let f = MpiFile::open(&comm, &producer, "/wf", OpenMode::Write, Hints::new())
                .expect("producer open");
            // Simulate a slow writer so the consumer genuinely races.
            std::thread::sleep(std::time::Duration::from_millis(20));
            f.write_at_all(
                comm.rank() as u64 * block,
                Payload::pattern(comm.rank() as u64, block),
            )
            .expect("write");
            f.close().expect("close");
        },
        |comm| {
            let f = MpiFile::open(&comm, &consumer, "/wf", OpenMode::Read, Hints::new())
                .expect("consumer open");
            let r = comm.rank() as u64;
            let got = f.read_at_all(r * block, block).expect("read");
            let ok = got.content_eq(&Payload::pattern(r, block));
            f.close().expect("close");
            ok
        },
    );
    assert_eq!(oks, vec![true; procs]);
}

/// Overwrites propagate through flush: the Lustre copy reflects the last
/// write of every byte.
#[test]
fn overwrites_survive_to_pfs() {
    let procs = 2;
    let driver = uv_driver(procs);
    World::run(procs, |comm| {
        let f =
            MpiFile::open(&comm, &driver, "/ow", OpenMode::ReadWrite, Hints::new()).expect("open");
        let rank = comm.rank() as u64;
        f.write_at_all(rank * 1024, Payload::pattern(rank, 1024))
            .expect("first");
        // Rank 0 overwrites the middle of rank 1's block.
        if comm.is_root() {
            f.write_at(1024 + 256, Payload::pattern(99, 512))
                .expect("overwrite");
        }
        comm.barrier();
        f.close().expect("close");
    });
    let job = driver.job();
    let expect = Payload::chain([
        Payload::pattern(1, 1024).slice(0, 256),
        Payload::pattern(99, 512),
        Payload::pattern(1, 1024).slice(768, 256),
    ]);
    let got = job.lustre_read("/ow", 1024, 1024).unwrap();
    assert!(got.content_eq(&expect), "overwrite lost on the PFS");
}

/// Four-layer DHP: with a node-local SSD enabled, writes spill
/// DRAM → SSD → BB in order, and everything reads back.
#[test]
fn four_tier_chain_spills_in_order() {
    let procs = 2;
    let mut cfg = UniviStorConfig::test_small(1, 2);
    cfg.chunk_size = 128;
    cfg.segment_size = 128;
    cfg.cal.dram_cache_capacity_per_node = 512; // 256 B/proc = 2 chunks
    cfg.cal.node_local_capacity = Some(512); // another 2 chunks/proc
    cfg.cal.bb_capacity_per_node = 1 << 20;
    let job = Arc::new(UniviStorJob::new(cfg));
    job.open_file("/4t")
        .write()
        .representing(procs)
        .by(ClientId::new(0, 0))
        .unwrap();
    // Each proc writes 768 B = 6 segments: 2 DRAM + 2 SSD + 2 BB.
    for rank in 0..procs as u32 {
        job.write(
            ClientId::new(0, rank),
            "/4t",
            rank as u64 * 768,
            Payload::pattern(rank as u64, 768),
        )
        .unwrap();
    }
    let usage: std::collections::HashMap<Tier, u64> = job.tier_usage().into_iter().collect();
    assert_eq!(usage.get(&Tier::Dram), Some(&512));
    assert_eq!(usage.get(&Tier::NodeLocal), Some(&512));
    assert_eq!(usage.get(&Tier::SharedBurstBuffer), Some(&512));
    // Byte-exact reads across all four layers.
    for rank in 0..procs as u64 {
        let got = job
            .read(ClientId::new(0, 0), "/4t", rank * 768, 768)
            .unwrap();
        assert!(got.content_eq(&Payload::pattern(rank, 768)));
    }
    // Flush persists everything.
    job.close("/4t", ClientId::new(0, 0), OpenMode::Write, procs, true)
        .unwrap()
        .expect("flush");
    assert_eq!(job.lustre_file_size("/4t").unwrap(), 768 * procs as u64);
}

/// The IOR-style generator runs against UniviStor in both interleavings.
#[test]
fn ior_patterns_roundtrip_on_univistor() {
    use univistor::workloads::{AccessPattern, IorConfig};
    for pattern in [AccessPattern::Segmented, AccessPattern::Strided] {
        let driver = uv_driver(4);
        let ior = IorConfig::new(4, 8192, 2048, 3, pattern);
        ior.write_phase(&driver, "/ior").unwrap();
        ior.read_phase(&driver, "/ior", true).unwrap();
        assert_eq!(
            driver.job().lustre_file_size("/ior").unwrap(),
            ior.file_size()
        );
    }
}

/// On direct Lustre, the strided interleaving provokes more extent-lock
/// traffic than the segmented one — the contention DHP's file-per-process
/// transformation removes entirely.
#[test]
fn strided_ior_contends_harder_on_lustre() {
    use univistor::workloads::{AccessPattern, IorConfig};
    let conflicts = |pattern| {
        let lustre = LustreDirect::new(&Calibration::default());
        // Sub-stripe transfers inside 1 MiB stripes.
        let ior = IorConfig::new(8, 128 << 10, 32 << 10, 4, pattern);
        ior.write_phase(&lustre, "/ior").unwrap();
        lustre.lock_conflicts()
    };
    let segmented = conflicts(AccessPattern::Segmented);
    let strided = conflicts(AccessPattern::Strided);
    assert!(
        strided > segmented,
        "strided {strided} should out-conflict segmented {segmented}"
    );

    // UniviStor's file-per-process caching sidesteps both.
    let driver = uv_driver(8);
    let ior = IorConfig::new(8, 128 << 10, 32 << 10, 4, AccessPattern::Strided);
    ior.write_phase(&driver, "/ior").unwrap();
    ior.read_phase(&driver, "/ior", true).unwrap();
}

/// The full ROMIO_FSTYPE_FORCE flow: one registry holding all three
/// storage systems; the hint string decides where an application's bytes
/// go — with zero changes to the application loop.
#[test]
fn fstype_force_selects_the_storage_system() {
    use univistor::mpi::{DriverRegistry, FSTYPE_KEY};
    let geometry = univistor::core::config::JobGeometry::paper(4);
    let uv = Arc::new(UniviStorJob::new(UniviStorConfig::paper(4)));
    let mut registry = DriverRegistry::new();
    registry
        .register(Arc::new(LustreDirect::new(&Calibration::default())))
        .register(Arc::new(DataElevator::new(
            geometry,
            Calibration::default(),
        )))
        .register(Arc::new(UniviStorDriver::new(Arc::clone(&uv), 0)));
    registry.set_default("lustre").unwrap();

    let micro = MicroIo::scaled(4, 8192);
    for forced in [
        None,
        Some("UniviStor"),
        Some("data-elevator"),
        Some("lustre"),
    ] {
        let mut hints = Hints::new();
        if let Some(name) = forced {
            hints.set(FSTYPE_KEY, name);
        }
        let driver = registry.select(&hints).unwrap();
        let path = format!("/sel-{}", forced.unwrap_or("default"));
        // The identical application loop runs against whichever system the
        // hint picked.
        micro.write_phase(driver.as_ref(), &path).unwrap();
        micro.read_phase(driver.as_ref(), &path, true).unwrap();
    }
    // The UniviStor-routed file ended up in UniviStor's unified space…
    assert_eq!(
        uv.lustre_file_size("/sel-UniviStor").unwrap(),
        micro.file_size()
    );
    // …and never in the other namespaces.
    assert!(uv.file_size("/sel-lustre").is_err());
}
