//! # UniviStor — integrated hierarchical and distributed storage for HPC
//!
//! Facade crate re-exporting the whole workspace. See the README (rendered
//! below) for a tour and `examples/` for runnable entry points. The README's
//! code block is compiled and executed as a doctest.
#![doc = include_str!("../README.md")]

pub use univistor_baselines as baselines;
pub use univistor_core as core;
pub use univistor_h5 as h5;
pub use univistor_kv as kv;
pub use univistor_mpi as mpi;
pub use univistor_obs as obs;
pub use univistor_pfs as pfs;
pub use univistor_sim as sim;
pub use univistor_workloads as workloads;

/// Everything a typical UniviStor program needs, in one import:
///
/// ```
/// use univistor::prelude::*;
///
/// let job = UniviStorJob::new(UniviStorConfig::test_small(2, 2));
/// let fid = job.open_file("/f").write().by(ClientId::new(0, 0)).unwrap();
/// assert!(fid > 0);
/// ```
pub mod prelude {
    pub use univistor_core::config::{Features, JobGeometry, PromotionPolicy, UniviStorConfig};
    pub use univistor_core::driver::UniviStorDriver;
    pub use univistor_core::error::{Error, Result};
    pub use univistor_core::fault::{FaultConfig, RetryPolicy};
    pub use univistor_core::flush::FlushReport;
    pub use univistor_core::metadata::ClientId;
    pub use univistor_core::metrics::JobMetrics;
    pub use univistor_core::repair::RepairReport;
    pub use univistor_core::server::{JobStats, OpenRequest, UniviStorJob};
    pub use univistor_core::va::Tier;
    pub use univistor_mpi::driver::OpenMode;
    pub use univistor_obs::MetricsSnapshot;
    pub use univistor_sim::Payload;
}
