//! # UniviStor — integrated hierarchical and distributed storage for HPC
//!
//! Facade crate re-exporting the whole workspace. See the README (rendered
//! below) for a tour and `examples/` for runnable entry points. The README's
//! code block is compiled and executed as a doctest.
#![doc = include_str!("../README.md")]

pub use univistor_baselines as baselines;
pub use univistor_core as core;
pub use univistor_h5 as h5;
pub use univistor_kv as kv;
pub use univistor_mpi as mpi;
pub use univistor_pfs as pfs;
pub use univistor_sim as sim;
pub use univistor_workloads as workloads;
