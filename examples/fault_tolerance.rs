//! Fault tolerance and adaptive placement — the paper's future work,
//! live: volatile-layer replication keeps data readable through a node
//! failure, and usage-driven promotion moves hot spilled segments back to
//! DRAM.
//!
//! Run with: `cargo run --example fault_tolerance`

use std::sync::Arc;
use univistor::prelude::*;

fn tiers(job: &UniviStorJob) -> String {
    job.tier_usage()
        .iter()
        .map(|(t, b)| format!("{t}: {} KiB", b >> 10))
        .collect::<Vec<_>>()
        .join(", ")
}

fn main() {
    // 2 nodes × 4 procs, with buddy replication of volatile data.
    let mut cfg = UniviStorConfig::test_small(2, 4);
    cfg.replicate_volatile = true;
    cfg.chunk_size = 64 << 10;
    cfg.segment_size = 64 << 10;
    cfg.metadata_range_size = 1 << 20;
    cfg.cal.dram_cache_capacity_per_node = 2 << 20; // 2 MiB/node
    cfg.cal.bb_capacity_per_node = 64 << 20;
    let job = Arc::new(UniviStorJob::new(cfg));

    println!("--- 1. replicated checkpoint ---");
    job.open_file("/ckpt")
        .write()
        .representing(8)
        .by(ClientId::new(0, 0))
        .expect("open");
    let per_rank = 256u64 << 10;
    for rank in 0..8u32 {
        job.write(
            ClientId::new(0, rank),
            "/ckpt",
            rank as u64 * per_rank,
            Payload::pattern(rank as u64, per_rank),
        )
        .expect("write");
    }
    println!("cached [{}]", tiers(&job));
    println!(
        "replicated {} KiB for resilience",
        job.stats().replicated_bytes >> 10
    );

    println!("\n--- 2. node 0 dies ---");
    job.fail_node(0);
    // A survivor on node 1 reads the whole checkpoint back, byte-exact.
    let got = job
        .read(ClientId::new(0, 4), "/ckpt", 0, 8 * per_rank)
        .expect("read after failure");
    for rank in 0..8u64 {
        assert!(
            got.slice(rank * per_rank, per_rank)
                .content_eq(&Payload::pattern(rank, per_rank)),
            "rank {rank}'s data lost"
        );
    }
    println!(
        "all {} KiB verified; {} KiB were served from replicas",
        (8 * per_rank) >> 10,
        job.stats().read_trace.replica_bytes >> 10
    );

    // The close-time flush also survives the failure.
    job.close("/ckpt", ClientId::new(0, 0), OpenMode::Write, 8, true)
        .expect("close")
        .expect("flush");
    println!(
        "flushed to Lustre: {} KiB (verified: {})",
        job.lustre_file_size("/ckpt").expect("on PFS") >> 10,
        job.verify_flush(ClientId::new(0, 4), "/ckpt")
            .expect("verify"),
    );

    println!("\n--- 3. adaptive promotion ---");
    // A fresh job with a tiny DRAM tier: half the data spills to the BB.
    let mut cfg = UniviStorConfig::test_small(1, 1);
    cfg.chunk_size = 64 << 10;
    cfg.segment_size = 64 << 10;
    cfg.metadata_range_size = 1 << 20;
    cfg.cal.dram_cache_capacity_per_node = 256 << 10;
    cfg.cal.bb_capacity_per_node = 64 << 20;
    let job = Arc::new(UniviStorJob::new(cfg));
    job.open_file("/hot")
        .read_write()
        .by(ClientId::new(0, 0))
        .expect("open");
    job.write(
        ClientId::new(0, 0),
        "/hot",
        0,
        Payload::pattern(42, 512 << 10),
    )
    .expect("write");
    println!("after write: [{}]", tiers(&job));

    // The analysis keeps re-reading the spilled half…
    for _ in 0..4 {
        job.read(ClientId::new(0, 0), "/hot", 256 << 10, 256 << 10)
            .expect("read");
    }
    // …and overwrites the cold half, freeing DRAM chunks.
    job.write(
        ClientId::new(0, 0),
        "/hot",
        0,
        Payload::pattern(43, 256 << 10),
    )
    .expect("overwrite");
    let promoted = job
        .tiering()
        .promote_now(PromotionPolicy {
            min_reads: 3,
            min_benefit: 0.0,
        })
        .expect("promotion")
        .promoted_segments;
    println!(
        "promoted {promoted} hot segments to DRAM: [{}]",
        tiers(&job)
    );
    let dram_after = job
        .tier_usage()
        .iter()
        .find(|(t, _)| *t == Tier::Dram)
        .map(|(_, b)| *b)
        .unwrap_or(0);
    assert!(promoted > 0 && dram_after > 0);

    // Correctness held throughout.
    let got = job
        .read(ClientId::new(0, 0), "/hot", 0, 512 << 10)
        .expect("final read");
    assert!(got
        .slice(0, 256 << 10)
        .content_eq(&Payload::pattern(43, 256 << 10)));
    assert!(got
        .slice(256 << 10, 256 << 10)
        .content_eq(&Payload::pattern(42, 512 << 10).slice(256 << 10, 256 << 10)));
    println!("all bytes verified after promotion ✓");
}
