//! VPIC-IO checkpointing: a scaled-down version of the paper's §III-C
//! experiment. A plasma-simulation I/O kernel checkpoints multiple time
//! steps through UniviStor; the DRAM tier fills up and DHP spills the
//! overflow to the burst buffer, while the servers flush each closed file
//! to Lustre in the background.
//!
//! Run with: `cargo run --example vpic_checkpoint`

use std::sync::Arc;
use univistor::prelude::*;
use univistor::workloads::{BdCatsIo, VpicIo, VpicLayout};

fn main() {
    let procs = 16;
    let steps = 6;

    // Shrink the DRAM tier so the spill happens within a tiny run: each
    // node caches only ~3 steps' worth of checkpoints.
    let mut cfg = UniviStorConfig::paper(procs);
    cfg.chunk_size = 64 << 10;
    cfg.segment_size = 64 << 10;
    cfg.metadata_range_size = 1 << 20;
    let particles_per_proc = 16 << 10; // 64 KiB/variable → 512 KiB/step/proc
    let per_node_step_bytes = cfg.geometry.procs_per_node as u64 * particles_per_proc * 32;
    cfg.cal.dram_cache_capacity_per_node = 3 * per_node_step_bytes;

    let job = Arc::new(UniviStorJob::new(cfg));
    let driver = UniviStorDriver::new(Arc::clone(&job), 0);
    let vpic = VpicIo::scaled(procs, steps, particles_per_proc);

    println!(
        "VPIC-IO: {procs} ranks × {steps} steps × {} KiB/rank/step",
        vpic.layout.bytes_per_proc() >> 10
    );

    for step in 0..steps {
        vpic.write_step(&driver, step).expect("checkpoint");
        let usage = job.tier_usage();
        let fmt: Vec<String> = usage
            .iter()
            .map(|(t, b)| format!("{t}: {} KiB", b >> 10))
            .collect();
        println!("after step {step}: cached [{}]", fmt.join(", "));
    }

    // Every step file was flushed at close; verify one end to end.
    let path = VpicLayout::file_path(steps - 1);
    let flushed = job.lustre_file_size(&path).expect("flushed");
    println!("last step file on Lustre: {} KiB", flushed >> 10);

    // The analysis kernel reads everything back — half as many readers as
    // writers, each covering two producers' slabs per variable — and
    // verifies every byte against the simulation's deterministic output.
    let bdcats = BdCatsIo::new(vpic.layout, procs / 2);
    bdcats
        .read_all(&driver, steps, /* verify = */ true)
        .expect("analysis read");
    println!("BD-CATS-IO verified all {steps} steps ✓");

    let stats = job.stats();
    println!(
        "reads served: {} KiB node-local, {} KiB from the BB, {} KiB remote",
        stats.read_trace.local_direct_bytes >> 10,
        stats.read_trace.shared_direct_bytes >> 10,
        stats.read_trace.remote_bytes >> 10,
    );
    let last = stats.flush_receipts.last().expect("flushes happened");
    println!(
        "last flush: {} KiB over {} servers, {:?} striping, {} OSTs/server",
        last.file_size >> 10,
        last.per_server_bytes.iter().filter(|b| **b > 0).count(),
        last.plan.case,
        last.osts_per_server,
    );
}
