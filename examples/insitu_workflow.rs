//! In-situ/in-transit analysis with the lightweight workflow management
//! (§II-E): a producer application and a consumer application run
//! *concurrently* in one job. The consumer opens each step file while the
//! producer is still writing it; UniviStor's state file blocks the read
//! until the producer's collective close, so the consumer never observes
//! partial data — without a single line of application-level coordination.
//!
//! Run with: `cargo run --example insitu_workflow`

use std::sync::Arc;
use univistor::mpi::{Hints, MpiFile, World};
use univistor::prelude::*;

fn main() {
    let procs_per_app = 4;
    let steps = 4;
    let block = 256u64 << 10;

    // ENABLE_WORKFLOW: turn the lightweight workflow management on.
    let mut cfg = UniviStorConfig::paper(procs_per_app * 2);
    cfg.features = Features::all();
    let job = Arc::new(UniviStorJob::new(cfg));

    // Two coupled applications over the same UniviStor job — Fig. 1's
    // App 1 (simulation) and App 2 (analysis).
    let sim_driver = UniviStorDriver::new(Arc::clone(&job), 0);
    let ana_driver = UniviStorDriver::new(Arc::clone(&job), 1);

    let step_path = |s: usize| format!("/insitu/step{s}.dat");
    let step_payload = |s: usize, rank: u64| Payload::pattern((s as u64) << 32 | rank, block);

    println!("running {procs_per_app}+{procs_per_app} coupled ranks over {steps} steps");
    let (_, waits) = World::run_coupled(
        procs_per_app,
        procs_per_app,
        // --- producer: writes each step, closes (releasing the lock) ---
        |comm| {
            for s in 0..steps {
                let f = MpiFile::open(
                    &comm,
                    &sim_driver,
                    &step_path(s),
                    OpenMode::Write,
                    Hints::new(),
                )
                .expect("producer open");
                let rank = comm.rank() as u64;
                f.write_at_all(rank * block, step_payload(s, rank))
                    .expect("producer write");
                f.close().expect("producer close");
            }
        },
        // --- consumer: opens the same files concurrently; the workflow
        //     lock makes it wait for WRITE_DONE, then verifies the data ---
        |comm| {
            let mut waited = 0u64;
            for s in 0..steps {
                let before = job.state_file().wait_count();
                let f = MpiFile::open(
                    &comm,
                    &ana_driver,
                    &step_path(s),
                    OpenMode::Read,
                    Hints::new(),
                )
                .expect("consumer open");
                waited += job.state_file().wait_count() - before;
                let rank = comm.rank() as u64;
                // Read a different producer's block than our own rank id
                // to exercise cross-process sharing.
                let src = (rank + 1) % procs_per_app as u64;
                let got = f.read_at_all(src * block, block).expect("consumer read");
                assert!(
                    got.content_eq(&step_payload(s, src)),
                    "step {s}: consumer observed partial/stale data!"
                );
                f.close().expect("consumer close");
            }
            waited
        },
    );

    let total_waits: u64 = waits.iter().sum();
    println!("all {steps} steps verified ✓ (consumer lock waits observed: {total_waits})");
    println!(
        "final state of step 0: {:?}",
        job.state_file().state_of(&step_path(0))
    );
}
