//! Quickstart: write a shared file through UniviStor's unified mount,
//! read it back from another rank, close (triggering the server-side
//! flush), and verify the bytes on the simulated Lustre.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;
use univistor::mpi::{Hints, MpiFile, World};
use univistor::prelude::*;

fn main() {
    // A small job: 2 compute nodes, 4 client processes per node, and the
    // default feature set (IA + COC + ADPT + location-aware reads).
    let procs = 8;
    let cfg = UniviStorConfig::paper(procs);
    println!(
        "Launching UniviStor: {} nodes × {} procs, {} servers, tiers DRAM→BB→PFS",
        cfg.geometry.nodes,
        cfg.geometry.procs_per_node,
        cfg.geometry.total_servers()
    );
    let job = Arc::new(UniviStorJob::new(cfg));
    let driver = UniviStorDriver::new(Arc::clone(&job), 0);

    // The application below is plain MPI-IO — it never names UniviStor
    // except through the driver selection, exactly like setting
    // ROMIO_FSTYPE_FORCE=UniviStor in the paper.
    let block = 1u64 << 20; // 1 MiB per rank
    World::run(procs, |comm| {
        let f = MpiFile::open(
            &comm,
            &driver,
            "/unified/data.bin",
            OpenMode::ReadWrite,
            Hints::new(),
        )
        .expect("collective open");
        let rank = comm.rank() as u64;

        // Every rank writes its own 1 MiB block of the shared file.
        f.write_at_all(rank * block, Payload::pattern(rank, block))
            .expect("write");

        // Cross-rank read: rank r reads rank r+1's block — served from
        // whichever tier DHP placed it on, without touching the PFS.
        let next = (rank + 1) % procs as u64;
        let got = f.read_at_all(next * block, block).expect("read");
        assert!(
            got.content_eq(&Payload::pattern(next, block)),
            "rank {rank} read corrupt data"
        );

        // Collective close: the servers flush the file to Lustre
        // asynchronously while the app would keep computing.
        f.close().expect("close");
    });

    // Where did the data live before the flush?
    for (tier, bytes) in job.tier_usage() {
        if tier != Tier::Pfs || bytes > 0 {
            println!("cached on {tier}: {} KiB", bytes / 1024);
        }
    }

    // And it is durably on the PFS now, byte-identical.
    let on_pfs = job
        .lustre_file_size("/unified/data.bin")
        .expect("flushed file exists");
    assert_eq!(on_pfs, block * procs as u64);
    for rank in 0..procs as u64 {
        let got = job
            .lustre_read("/unified/data.bin", rank * block, block)
            .expect("read from Lustre");
        assert!(got.content_eq(&Payload::pattern(rank, block)));
    }
    println!(
        "flushed {} MiB to Lustre — verified byte-identical ✓",
        on_pfs >> 20
    );

    let stats = job.stats();
    println!(
        "stats: {} segments cached, {} open/close RPCs (COC on), {} flush(es)",
        stats.segments,
        stats.open_close_md_rpcs,
        stats.flush_receipts.len()
    );

    // The full telemetry panel behind those stats — every hot path is
    // instrumented; dump it as Prometheus-style families.
    let metrics = job.metrics();
    println!(
        "telemetry: {} segments placed, {} B read via local hits, {} spill events below DRAM",
        metrics.counter_total("univistor_segments_total"),
        metrics
            .counter("univistor_read_bytes_total", &[("path", "local_hit")])
            .unwrap_or(0),
        metrics.counter_total("univistor_tier_spill_events_total"),
    );
    println!("metrics JSON: {} bytes", metrics.to_json().len());
}
