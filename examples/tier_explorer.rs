//! Tier explorer: peek inside UniviStor's data structures — DHP
//! placement, virtual addresses (Eq. 1), the distributed metadata
//! service's round-robin range partitioning (Fig. 3), and the adaptive
//! striping planner's two regimes (Eqs. 2–6).
//!
//! Run with: `cargo run --example tier_explorer`

use univistor::core::metadata::{ClientId, MetadataService, SegKey, SegmentRecord};
use univistor::core::placement::ProcChain;
use univistor::core::striping::{adaptive_plan, naive_plan, ost_loads};
use univistor::core::va::Tier;
use univistor::sim::Payload;

fn main() {
    println!("=== 1. DHP placement and virtual addresses (Fig. 2) ===");
    // Reproduce Fig. 2's geometry: per-process logs of 2 units on the
    // node-local layer and 3 on the shared burst buffer, PFS unbounded.
    // One unit = 64 bytes here.
    let unit = 64u64;
    let mut chain = ProcChain::new(
        vec![
            (Tier::NodeLocal, 2 * unit),
            (Tier::SharedBurstBuffer, 3 * unit),
            (Tier::Pfs, u64::MAX),
        ],
        unit,
    )
    .expect("chain");

    for i in 1..=8u64 {
        let placed = chain.append(Payload::pattern(i, unit)).expect("append");
        println!(
            "  D{i}: layer {} ({}), VA = {}",
            placed.layer,
            placed.tier,
            placed.va.0 / unit // in Fig. 2's units
        );
    }
    println!("  live bytes by layer: {:?}", chain.live_by_layer());

    println!("\n=== 2. Distributed metadata service (Fig. 3) ===");
    // 16 records over 4 ranges, assigned round-robin to 4 servers.
    let md = MetadataService::new(4 * unit, 4, 2);
    for i in 0..16u64 {
        let key = SegKey {
            fid: 1,
            offset: i * unit,
        };
        let (server, _) = md.insert(
            key,
            SegmentRecord::new(
                ClientId::new(0, (i / 8) as u32),
                univistor::core::va::VirtualAddr((i % 8) * unit),
                unit,
            ),
            (i / 8) as usize,
        );
        if i % 4 == 0 {
            println!("  records for offsets {}..{} → {server}", i, i + 4);
        }
    }
    println!("  per-server record counts: {:?}", md.shard_sizes());

    println!("\n=== 3. Adaptive striping (Eqs. 2–6) ===");
    let gb = 1u64 << 30;
    let osts = 248;
    for (servers, file) in [(8usize, 64 * gb), (512, 512 * gb)] {
        let plan = adaptive_plan(file, servers, osts, 8, gb);
        let loads = ost_loads(&plan, osts);
        let used = loads.iter().filter(|l| **l > 0).count();
        let max = *loads.iter().max().expect("osts") as f64;
        let mean = file as f64 / used as f64;
        println!(
            "  {servers} servers × {} GiB → {:?}: stripe {} MiB, {} OSTs/server, \
             {used} OSTs used, imbalance {:.2}",
            file / gb,
            plan.case,
            plan.stripe_size >> 20,
            plan.osts_per_server,
            max / mean
        );
    }
    let naive = naive_plan(512 * gb, 512, osts, 1 << 20);
    println!(
        "  naive baseline: every server touches {} OSTs (sync overhead ×{})",
        naive.osts_per_server,
        naive.osts_per_server
            / adaptive_plan(512 * gb, 512, osts, 8, gb)
                .osts_per_server
                .max(1)
    );

    println!("\n=== 4. The paper's Eq. 6 example ===");
    println!(
        "  512 servers over 248 OSTs → C_dum_servers = {} (the paper's prose \
         says 724; Eq. 6 itself gives 744 — a typo we document)",
        univistor::core::striping::c_dum_servers(512, 248)
    );
}
