//! A functional Object Storage Target.
//!
//! Each OST stores one object per file (keyed by the file's id). Objects
//! are sparse byte buffers, so flushed data can be read back exactly —
//! including at paper scale, where payloads stay virtual.

use univistor_sim::{Payload, SimError, SimResult, SparseBuffer};

use std::collections::HashMap;

/// An OST: bandwidth lives in the timing plane; this is the data plane.
#[derive(Debug, Clone, Default)]
pub struct Ost {
    objects: HashMap<u64, SparseBuffer>,
    bytes_written: u64,
    write_ops: u64,
}

impl Ost {
    /// An empty OST.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write `payload` into file `fid`'s object at `object_offset`.
    pub fn write(&mut self, fid: u64, object_offset: u64, payload: Payload) {
        self.bytes_written += payload.len();
        self.write_ops += 1;
        self.objects
            .entry(fid)
            .or_default()
            .write(object_offset, payload);
    }

    /// Read from file `fid`'s object; errors on holes.
    pub fn read(&self, fid: u64, object_offset: u64, len: u64) -> SimResult<Payload> {
        match self.objects.get(&fid) {
            Some(obj) => obj.read_exact(object_offset, len),
            None => Err(SimError::Hole {
                offset: object_offset,
                len,
            }),
        }
    }

    /// Drop file `fid`'s object. Returns true if it existed.
    pub fn delete(&mut self, fid: u64) -> bool {
        self.objects.remove(&fid).is_some()
    }

    /// Bytes currently stored across objects.
    pub fn bytes_stored(&self) -> u64 {
        self.objects.values().map(SparseBuffer::bytes_stored).sum()
    }

    /// Cumulative bytes ever written (load accounting).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Cumulative write RPCs serviced.
    pub fn write_ops(&self) -> u64 {
        self.write_ops
    }

    /// Objects stored.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut ost = Ost::new();
        ost.write(1, 0, Payload::from_bytes(&b"abc"[..]));
        assert_eq!(&ost.read(1, 0, 3).unwrap().to_bytes()[..], b"abc");
    }

    #[test]
    fn objects_are_per_file() {
        let mut ost = Ost::new();
        ost.write(1, 0, Payload::from_bytes(&b"one"[..]));
        ost.write(2, 0, Payload::from_bytes(&b"two"[..]));
        assert_eq!(&ost.read(1, 0, 3).unwrap().to_bytes()[..], b"one");
        assert_eq!(&ost.read(2, 0, 3).unwrap().to_bytes()[..], b"two");
        assert_eq!(ost.object_count(), 2);
    }

    #[test]
    fn read_missing_object_is_hole() {
        let ost = Ost::new();
        assert!(matches!(ost.read(9, 0, 1), Err(SimError::Hole { .. })));
    }

    #[test]
    fn delete_removes_object() {
        let mut ost = Ost::new();
        ost.write(1, 0, Payload::from_bytes(&b"x"[..]));
        assert!(ost.delete(1));
        assert!(!ost.delete(1));
        assert!(ost.read(1, 0, 1).is_err());
    }

    #[test]
    fn accounting_tracks_writes() {
        let mut ost = Ost::new();
        ost.write(1, 0, Payload::pattern(1, 100));
        ost.write(1, 50, Payload::pattern(2, 100)); // overlaps
        assert_eq!(ost.bytes_written(), 200);
        assert_eq!(ost.write_ops(), 2);
        assert_eq!(ost.bytes_stored(), 150); // overlap overwritten
    }
}
