//! RAID-0 stripe layout: how Lustre maps a file offset onto OST objects.
//!
//! A file with stripe size `s` and stripe count `c` starting at OST index
//! `start` places stripe unit `k = offset / s` on OST `start + (k mod c)`;
//! within that OST's object the unit lands at object offset
//! `(k div c) · s + (offset mod s)`. This is the exact mapping UniviStor's
//! adaptive striping (§II-D) manipulates: it chooses `s`, `c`, and a
//! distinct `start` per flushing server.

/// One contiguous piece of a striped extent on a single OST.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripePiece {
    /// Absolute OST index in the file system.
    pub ost: usize,
    /// Offset within that OST's object for this file.
    pub object_offset: u64,
    /// Offset within the logical file this piece starts at.
    pub file_offset: u64,
    /// Piece length in bytes.
    pub len: u64,
}

/// A file's striping parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeLayout {
    /// Bytes per stripe unit.
    pub stripe_size: u64,
    /// OSTs the file is striped across.
    pub stripe_count: usize,
    /// First OST index (Lustre chooses one; UniviStor sets it per server).
    pub start_ost: usize,
}

impl StripeLayout {
    /// Validate and construct.
    pub fn new(stripe_size: u64, stripe_count: usize, start_ost: usize) -> Self {
        assert!(stripe_size > 0, "stripe_size must be positive");
        assert!(stripe_count > 0, "stripe_count must be positive");
        StripeLayout {
            stripe_size,
            stripe_count,
            start_ost,
        }
    }

    /// A single-OST layout (stripe count 1).
    pub fn single(ost: usize) -> Self {
        StripeLayout::new(u64::MAX, 1, ost)
    }

    /// The OST holding the byte at `offset` (absolute index, pre-modulo;
    /// callers reduce modulo the OST count of the actual file system).
    pub fn ost_of(&self, offset: u64) -> usize {
        let unit = (offset / self.stripe_size) as usize;
        self.start_ost + (unit % self.stripe_count)
    }

    /// Decompose `[offset, offset + len)` into per-OST contiguous pieces in
    /// file-offset order.
    pub fn pieces(&self, offset: u64, len: u64) -> Vec<StripePiece> {
        let mut out = Vec::new();
        let mut cur = offset;
        let end = offset.checked_add(len).expect("extent overflows u64");
        while cur < end {
            let unit = cur / self.stripe_size;
            let within = cur % self.stripe_size;
            let take = (self.stripe_size - within).min(end - cur);
            let ost = self.start_ost + (unit % self.stripe_count as u64) as usize;
            let object_offset = (unit / self.stripe_count as u64) * self.stripe_size + within;
            out.push(StripePiece {
                ost,
                object_offset,
                file_offset: cur,
                len: take,
            });
            cur += take;
        }
        out
    }

    /// Total bytes each OST receives for extent `[offset, offset + len)`,
    /// as (absolute OST index, bytes) pairs sorted by OST.
    pub fn ost_loads(&self, offset: u64, len: u64) -> Vec<(usize, u64)> {
        let mut loads = std::collections::BTreeMap::new();
        for p in self.pieces(offset, len) {
            *loads.entry(p.ost).or_insert(0u64) += p.len;
        }
        loads.into_iter().collect()
    }
}

/// One file range with its own striping (the building block of UniviStor's
/// adaptive striping, where each flushing server's contiguous range is
/// striped over a distinct OST set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeLayout {
    /// First logical file offset of the range (inclusive).
    pub start: u64,
    /// One past the last offset (exclusive).
    pub end: u64,
    /// How this range stripes. Offsets are striped relative to `start`, so
    /// each range packs its OST objects independently.
    pub layout: StripeLayout,
}

/// A whole file's layout: either one uniform striping (plain Lustre) or a
/// sequence of independently striped ranges (UniviStor flush output,
/// comparable to Lustre PFL / file joining \[29\]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileLayout {
    /// One striping for the whole file.
    Uniform(StripeLayout),
    /// Consecutive, non-overlapping ranges covering `[0, ∞)` in order; the
    /// last range is open-ended (`end == u64::MAX`).
    Composite(Vec<RangeLayout>),
}

impl From<StripeLayout> for FileLayout {
    fn from(l: StripeLayout) -> Self {
        FileLayout::Uniform(l)
    }
}

impl FileLayout {
    /// Build a composite layout from ordered ranges; validates coverage.
    pub fn composite(ranges: Vec<RangeLayout>) -> Self {
        assert!(!ranges.is_empty(), "composite layout needs ranges");
        let mut expect = 0u64;
        for r in &ranges {
            assert_eq!(r.start, expect, "composite ranges must be contiguous");
            assert!(r.end > r.start, "empty composite range");
            expect = r.end;
        }
        assert_eq!(
            ranges.last().expect("non-empty").end,
            u64::MAX,
            "last composite range must be open-ended"
        );
        FileLayout::Composite(ranges)
    }

    /// Decompose `[offset, offset + len)` into per-OST pieces.
    ///
    /// For composite layouts, each range's object space is made disjoint
    /// from other ranges on the same OST by offsetting object addresses
    /// with the range's start (ranges never reuse each other's object
    /// bytes; a file offset maps to exactly one object location).
    pub fn pieces(&self, offset: u64, len: u64) -> Vec<StripePiece> {
        match self {
            FileLayout::Uniform(l) => l.pieces(offset, len),
            FileLayout::Composite(ranges) => {
                let mut out = Vec::new();
                let end = offset.checked_add(len).expect("extent overflows u64");
                let mut cur = offset;
                for r in ranges {
                    if cur >= end {
                        break;
                    }
                    if r.end <= cur || r.start >= end {
                        continue;
                    }
                    let seg_start = cur.max(r.start);
                    let seg_end = end.min(r.end);
                    for mut p in r.layout.pieces(seg_start - r.start, seg_end - seg_start) {
                        // Keep object spaces of different ranges disjoint.
                        p.object_offset += r.start;
                        p.file_offset += r.start;
                        out.push(p);
                    }
                    cur = seg_end;
                }
                assert!(cur >= end, "composite layout did not cover extent");
                out
            }
        }
    }

    /// Aggregate per-OST byte loads for an extent.
    pub fn ost_loads(&self, offset: u64, len: u64) -> Vec<(usize, u64)> {
        let mut loads = std::collections::BTreeMap::new();
        for p in self.pieces(offset, len) {
            *loads.entry(p.ost).or_insert(0u64) += p.len;
        }
        loads.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_stripe_unit_stays_on_one_ost() {
        let l = StripeLayout::new(100, 4, 0);
        let ps = l.pieces(10, 50);
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].ost, 0);
        assert_eq!(ps[0].object_offset, 10);
        assert_eq!(ps[0].len, 50);
    }

    #[test]
    fn extent_spanning_stripes_round_robins() {
        let l = StripeLayout::new(100, 3, 5);
        let ps = l.pieces(0, 350);
        // Units 0,1,2,3 → OSTs 5,6,7,5.
        let osts: Vec<usize> = ps.iter().map(|p| p.ost).collect();
        assert_eq!(osts, vec![5, 6, 7, 5]);
        // Unit 3 is the second unit on OST 5 → object offset 100.
        assert_eq!(ps[3].object_offset, 100);
        assert_eq!(ps[3].len, 50);
        let total: u64 = ps.iter().map(|p| p.len).sum();
        assert_eq!(total, 350);
    }

    #[test]
    fn unaligned_start_offset() {
        let l = StripeLayout::new(100, 2, 0);
        let ps = l.pieces(150, 100);
        // [150,200) on unit 1 (OST 1, object offset 50), [200,250) on unit 2
        // (OST 0, object offset 100).
        assert_eq!(ps.len(), 2);
        assert_eq!((ps[0].ost, ps[0].object_offset, ps[0].len), (1, 50, 50));
        assert_eq!((ps[1].ost, ps[1].object_offset, ps[1].len), (0, 100, 50));
    }

    #[test]
    fn object_offsets_pack_consecutively() {
        // All data for one OST packs densely in its object.
        let l = StripeLayout::new(10, 4, 0);
        let ps = l.pieces(0, 400);
        let on_ost0: Vec<&StripePiece> = ps.iter().filter(|p| p.ost == 0).collect();
        for (i, p) in on_ost0.iter().enumerate() {
            assert_eq!(p.object_offset, i as u64 * 10);
        }
    }

    #[test]
    fn ost_loads_balance_for_aligned_extent() {
        let l = StripeLayout::new(1 << 20, 8, 0);
        let loads = l.ost_loads(0, 8 << 20);
        assert_eq!(loads.len(), 8);
        for (_, bytes) in loads {
            assert_eq!(bytes, 1 << 20);
        }
    }

    #[test]
    fn single_layout_never_leaves_its_ost() {
        let l = StripeLayout::single(17);
        let ps = l.pieces(0, 1 << 40);
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].ost, 17);
    }

    #[test]
    fn ost_of_matches_pieces() {
        let l = StripeLayout::new(64, 5, 2);
        for offset in [0u64, 63, 64, 319, 320, 1000] {
            assert_eq!(l.ost_of(offset), l.pieces(offset, 1)[0].ost);
        }
    }

    #[test]
    #[should_panic(expected = "stripe_size")]
    fn zero_stripe_size_rejected() {
        StripeLayout::new(0, 1, 0);
    }
}
