//! The Lustre file system facade: files, striping, OST objects, locks.

use crate::layout::{FileLayout, StripePiece};
use crate::locks::{ExtentLockManager, LockMode};
use crate::ost::Ost;
use std::collections::HashMap;
use std::sync::Mutex;
use univistor_sim::{Payload, SimError, SimResult};

/// Everything a write did, for the timing plane: which OSTs received how
/// many bytes, and how many lock revocations the write caused.
#[derive(Debug, Clone)]
pub struct WriteReceipt {
    /// Per-OST contiguous pieces (OST indices reduced modulo the FS size).
    pub pieces: Vec<StripePiece>,
    /// Lock revocations triggered (each costs a server round trip).
    pub lock_revocations: u64,
    /// Lock RPCs that were served from the client's lock cache.
    pub lock_cache_hits: u64,
}

impl WriteReceipt {
    /// Aggregate (ost, bytes) loads of this write.
    pub fn ost_bytes(&self) -> Vec<(usize, u64)> {
        let mut loads = std::collections::BTreeMap::new();
        for p in &self.pieces {
            *loads.entry(p.ost).or_insert(0u64) += p.len;
        }
        loads.into_iter().collect()
    }
}

#[derive(Debug, Clone)]
struct FileMeta {
    fid: u64,
    layout: FileLayout,
    size: u64,
}

/// A functional Lustre: `ost_count` OSTs, named files with per-file stripe
/// layouts, extent locks. The lock manager sits behind its own `Mutex` so
/// the read path — which only *acquires* extent locks and touches no file
/// or OST state — works through `&self` and can run under a shared
/// outer lock.
#[derive(Debug)]
pub struct Lustre {
    osts: Vec<Ost>,
    files: HashMap<String, FileMeta>,
    locks: Mutex<ExtentLockManager>,
    next_fid: u64,
}

impl Lustre {
    /// A file system with `ost_count` OSTs.
    pub fn new(ost_count: usize) -> Self {
        assert!(ost_count > 0, "need at least one OST");
        Lustre {
            osts: (0..ost_count).map(|_| Ost::new()).collect(),
            files: HashMap::new(),
            locks: Mutex::new(ExtentLockManager::new()),
            next_fid: 1,
        }
    }

    /// Number of OSTs.
    pub fn ost_count(&self) -> usize {
        self.osts.len()
    }

    /// Create a file with the given layout. Errors if it already exists.
    pub fn create(&mut self, path: &str, layout: impl Into<FileLayout>) -> SimResult<()> {
        if self.files.contains_key(path) {
            return Err(SimError::InvalidConfig(format!(
                "file '{path}' already exists"
            )));
        }
        let fid = self.next_fid;
        self.next_fid += 1;
        self.files.insert(
            path.to_string(),
            FileMeta {
                fid,
                layout: layout.into(),
                size: 0,
            },
        );
        Ok(())
    }

    /// Create unless present (open with O_CREAT semantics).
    pub fn create_if_absent(&mut self, path: &str, layout: impl Into<FileLayout>) {
        if !self.files.contains_key(path) {
            self.create(path, layout).expect("absence just checked");
        }
    }

    /// True when the file exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// Logical size (highest written offset + 1).
    pub fn file_size(&self, path: &str) -> SimResult<u64> {
        self.meta(path).map(|m| m.size)
    }

    /// The file's layout.
    pub fn layout_of(&self, path: &str) -> SimResult<FileLayout> {
        self.meta(path).map(|m| m.layout.clone())
    }

    fn meta(&self, path: &str) -> SimResult<&FileMeta> {
        self.files
            .get(path)
            .ok_or_else(|| SimError::InvalidConfig(format!("no such file '{path}'")))
    }

    /// Write `payload` at `offset` on behalf of client `writer`.
    pub fn write(
        &mut self,
        path: &str,
        offset: u64,
        payload: Payload,
        writer: u64,
    ) -> SimResult<WriteReceipt> {
        let len = payload.len();
        let (fid, layout) = {
            let m = self.meta(path)?;
            (m.fid, m.layout.clone())
        };
        let n_osts = self.osts.len();
        let mut pieces = Vec::new();
        let mut revocations = 0u64;
        let mut cache_hits = 0u64;
        for mut piece in layout.pieces(offset, len) {
            piece.ost %= n_osts;
            let out = self.locks.lock().expect("lock manager poisoned").acquire(
                fid,
                piece.ost,
                piece.object_offset,
                piece.object_offset + piece.len,
                writer,
                LockMode::Write,
            );
            revocations += out.revocations;
            cache_hits += out.cache_hit as u64;
            let data = payload.slice(piece.file_offset - offset, piece.len);
            self.osts[piece.ost].write(fid, piece.object_offset, data);
            pieces.push(piece);
        }
        let m = self.files.get_mut(path).expect("meta() checked existence");
        m.size = m.size.max(offset + len);
        Ok(WriteReceipt {
            pieces,
            lock_revocations: revocations,
            lock_cache_hits: cache_hits,
        })
    }

    /// Read `[offset, offset + len)` on behalf of `reader`; errors on holes.
    /// `&self`: file metadata and OST objects are only read, and the lock
    /// manager synchronizes itself.
    pub fn read(&self, path: &str, offset: u64, len: u64, reader: u64) -> SimResult<Payload> {
        let (fid, layout) = {
            let m = self.meta(path)?;
            (m.fid, m.layout.clone())
        };
        let n_osts = self.osts.len();
        let mut parts = Vec::new();
        for mut piece in layout.pieces(offset, len) {
            piece.ost %= n_osts;
            self.locks.lock().expect("lock manager poisoned").acquire(
                fid,
                piece.ost,
                piece.object_offset,
                piece.object_offset + piece.len,
                reader,
                LockMode::Read,
            );
            parts.push(self.osts[piece.ost].read(fid, piece.object_offset, piece.len)?);
        }
        Ok(Payload::chain(parts))
    }

    /// Delete a file and its objects.
    pub fn delete(&mut self, path: &str) -> SimResult<()> {
        let m = self
            .files
            .remove(path)
            .ok_or_else(|| SimError::InvalidConfig(format!("no such file '{path}'")))?;
        for ost in &mut self.osts {
            ost.delete(m.fid);
        }
        self.locks
            .lock()
            .expect("lock manager poisoned")
            .drop_file(m.fid);
        Ok(())
    }

    /// Cumulative bytes written per OST (load-balance inspection).
    pub fn ost_loads(&self) -> Vec<u64> {
        self.osts.iter().map(Ost::bytes_written).collect()
    }

    /// Bytes currently stored across all OSTs.
    pub fn bytes_stored(&self) -> u64 {
        self.osts.iter().map(Ost::bytes_stored).sum()
    }

    /// Total lock revocations so far.
    pub fn lock_conflicts(&self) -> u64 {
        self.locks
            .lock()
            .expect("lock manager poisoned")
            .conflicts()
    }

    /// Access the lock manager (tests, diagnostics).
    pub fn locks(&self) -> std::sync::MutexGuard<'_, ExtentLockManager> {
        self.locks.lock().expect("lock manager poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::StripeLayout;

    fn fs() -> Lustre {
        Lustre::new(8)
    }

    #[test]
    fn create_write_read_roundtrip() {
        let mut fs = fs();
        fs.create("/f", StripeLayout::new(4, 3, 0)).unwrap();
        let data = Payload::from_bytes(&b"hello striped world"[..]);
        fs.write("/f", 0, data.clone(), 1).unwrap();
        let got = fs.read("/f", 0, data.len(), 1).unwrap();
        assert!(got.content_eq(&data));
        assert_eq!(fs.file_size("/f").unwrap(), data.len());
    }

    #[test]
    fn double_create_fails() {
        let mut fs = fs();
        fs.create("/f", StripeLayout::single(0)).unwrap();
        assert!(fs.create("/f", StripeLayout::single(0)).is_err());
        fs.create_if_absent("/f", StripeLayout::single(1)); // no-op
        match fs.layout_of("/f").unwrap() {
            FileLayout::Uniform(l) => assert_eq!(l.start_ost, 0),
            other => panic!("unexpected layout {other:?}"),
        }
    }

    #[test]
    fn write_distributes_load_across_stripe_set() {
        let mut fs = fs();
        fs.create("/f", StripeLayout::new(1 << 20, 4, 2)).unwrap();
        fs.write("/f", 0, Payload::pattern(1, 8 << 20), 1).unwrap();
        let loads = fs.ost_loads();
        // OSTs 2..6 get 2 MiB each, others nothing.
        assert_eq!(&loads[2..6], &[2 << 20; 4]);
        assert_eq!(loads[0], 0);
        assert_eq!(loads[6], 0);
    }

    #[test]
    fn start_ost_wraps_modulo_fs_size() {
        let mut fs = fs();
        fs.create("/f", StripeLayout::new(10, 4, 6)).unwrap();
        let r = fs.write("/f", 0, Payload::pattern(1, 40), 1).unwrap();
        let osts: Vec<usize> = r.pieces.iter().map(|p| p.ost).collect();
        assert_eq!(osts, vec![6, 7, 0, 1]); // wrapped at 8
    }

    #[test]
    fn sparse_read_errors_on_hole() {
        let mut fs = fs();
        fs.create("/f", StripeLayout::new(10, 2, 0)).unwrap();
        fs.write("/f", 0, Payload::pattern(1, 10), 1).unwrap();
        fs.write("/f", 20, Payload::pattern(2, 10), 1).unwrap();
        assert!(fs.read("/f", 0, 10, 1).is_ok());
        assert!(fs.read("/f", 0, 30, 1).is_err());
    }

    #[test]
    fn interleaved_writers_cause_conflicts_fpp_does_not() {
        // Shared file, two writers alternating stripe units.
        let mut shared = Lustre::new(4);
        shared
            .create("/shared", StripeLayout::new(64, 1, 0))
            .unwrap();
        for i in 0..16u64 {
            shared
                .write("/shared", i * 64, Payload::pattern(i, 64), i % 2)
                .unwrap();
        }
        assert!(shared.lock_conflicts() > 10);

        // File-per-process: same data, zero conflicts.
        let mut fpp = Lustre::new(4);
        fpp.create("/p0", StripeLayout::new(64, 1, 0)).unwrap();
        fpp.create("/p1", StripeLayout::new(64, 1, 1)).unwrap();
        for i in 0..16u64 {
            let path = if i % 2 == 0 { "/p0" } else { "/p1" };
            fpp.write(path, (i / 2) * 64, Payload::pattern(i, 64), i % 2)
                .unwrap();
        }
        assert_eq!(fpp.lock_conflicts(), 0);
    }

    #[test]
    fn delete_frees_objects_and_locks() {
        let mut fs = fs();
        fs.create("/f", StripeLayout::new(4, 2, 0)).unwrap();
        fs.write("/f", 0, Payload::pattern(1, 100), 1).unwrap();
        fs.delete("/f").unwrap();
        assert!(!fs.exists("/f"));
        assert!(fs.read("/f", 0, 1, 1).is_err());
        // Objects physically gone.
        assert_eq!(fs.bytes_stored(), 0);
        assert!(fs.delete("/f").is_err());
    }

    #[test]
    fn writes_to_missing_file_fail() {
        let mut fs = fs();
        assert!(fs.write("/nope", 0, Payload::pattern(1, 4), 1).is_err());
    }

    #[test]
    fn receipt_reports_ost_bytes() {
        let mut fs = fs();
        fs.create("/f", StripeLayout::new(100, 2, 0)).unwrap();
        let r = fs.write("/f", 0, Payload::pattern(1, 300), 1).unwrap();
        let loads = r.ost_bytes();
        assert_eq!(loads, vec![(0, 200), (1, 100)]);
    }

    #[test]
    fn paper_scale_virtual_write() {
        // 256 MB × 64 writers into one shared file: bytes stay virtual.
        let mut fs = Lustre::new(248);
        fs.create("/big", StripeLayout::new(1 << 20, 248, 0))
            .unwrap();
        let per = 256u64 << 20;
        for w in 0..64u64 {
            fs.write("/big", w * per, Payload::pattern(w, per), w)
                .unwrap();
        }
        assert_eq!(fs.file_size("/big").unwrap(), 64 * per);
        let loads = fs.ost_loads();
        let total: u64 = loads.iter().sum();
        assert_eq!(total, 64 * per);
    }
}
