//! # univistor-pfs — Lustre-like parallel file system model
//!
//! The paper's persistent layer is Cori's Lustre file system: 248 Object
//! Storage Targets (OSTs), files striped across OSTs with a configurable
//! stripe size and count, and extent locks that make concurrent shared-file
//! writes expensive. This crate reproduces that substrate at the level the
//! evaluation exercises:
//!
//! * [`layout::StripeLayout`] — the offset → (OST, object offset) mapping
//!   Lustre uses (RAID-0 round-robin over `stripe_count` OSTs starting at
//!   `start_ost`);
//! * [`ost::Ost`] — a functional OST: objects are sparse byte buffers, so
//!   flushed data reads back exactly;
//! * [`locks::ExtentLockManager`] — per-(file, OST) extent locks with
//!   conflict/revocation counting, the mechanism behind shared-file write
//!   degradation;
//! * [`lustre::Lustre`] — the file system: create/write/read/stat/delete
//!   plus per-OST load accounting that the timing plane turns into flows.
//!
//! Timing is *not* computed here — writes return a [`lustre::WriteReceipt`]
//! describing exactly which OSTs received how many bytes and how many lock
//! conflicts occurred; experiments feed that into
//! [`univistor_sim::FlowSim`].

pub mod layout;
pub mod locks;
pub mod lustre;
pub mod ost;

pub use layout::{FileLayout, RangeLayout, StripeLayout, StripePiece};
pub use locks::{ExtentLockManager, LockMode};
pub use lustre::{Lustre, WriteReceipt};
pub use ost::Ost;
