//! Extent locks with Lustre-style optimistic expansion.
//!
//! Lustre serializes conflicting access to a file's OST objects with
//! server-side extent locks, and *expands* each grant beyond the requested
//! range (up to the next conflicting neighbor, or to infinity) so that a
//! client streaming sequentially re-uses one cached lock instead of paying
//! an RPC per write. The flip side: when many processes write interleaved
//! ranges of one shared file, the expanded grants always overlap and the
//! lock bounces between clients on every write ("lock ping-pong") — the
//! root cause of shared-file write degradation that UniviStor's
//! file-per-process transformation avoids (§II-B1, refs \[25\]\[26\]).
//!
//! The manager is functional: it grants, expands, caches and revokes, and
//! counts conflicts. The timing impact is applied by experiments via
//! [`univistor_sim::calibration::Calibration::lustre_shared_efficiency`];
//! tests here cross-check that conflict counts vanish under a
//! file-per-process layout and explode under interleaved shared writes.

use std::collections::HashMap;

/// Lock compatibility mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared read lock.
    Read,
    /// Exclusive write lock.
    Write,
}

impl LockMode {
    fn compatible(self, other: LockMode) -> bool {
        self == LockMode::Read && other == LockMode::Read
    }
}

#[derive(Debug, Clone)]
struct Grant {
    owner: u64,
    mode: LockMode,
    start: u64,
    end: u64,
}

/// Result of one lock acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AcquireOutcome {
    /// Grants revoked from other owners (each is a server round trip in
    /// real Lustre).
    pub revocations: u64,
    /// True when the owner's cached grant already covered the extent — no
    /// lock RPC at all.
    pub cache_hit: bool,
}

/// Per-(file, OST) extent lock manager with conflict counting.
#[derive(Debug, Clone, Default)]
pub struct ExtentLockManager {
    /// (fid, ost) → granted extents.
    grants: HashMap<(u64, usize), Vec<Grant>>,
    conflicts: u64,
    acquisitions: u64,
    cache_hits: u64,
}

impl ExtentLockManager {
    /// An empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquire a lock covering `[start, end)` of file `fid`'s object on
    /// `ost` for `owner`.
    ///
    /// Semantics (mirroring Lustre's LDLM):
    /// 1. if the owner already holds a compatible grant covering the
    ///    extent, it is a cache hit — free;
    /// 2. otherwise, incompatible grants of *other* owners overlapping the
    ///    **requested** extent are revoked (counted as conflicts);
    /// 3. the new grant is expanded: upward to the nearest remaining
    ///    other-owner grant (or infinity), never shrunk below the request.
    pub fn acquire(
        &mut self,
        fid: u64,
        ost: usize,
        start: u64,
        end: u64,
        owner: u64,
        mode: LockMode,
    ) -> AcquireOutcome {
        assert!(start < end, "empty lock extent");
        let grants = self.grants.entry((fid, ost)).or_default();

        // 1. Cached-coverage check.
        let covered = grants.iter().any(|g| {
            g.owner == owner
                && g.start <= start
                && g.end >= end
                && (g.mode == mode || g.mode == LockMode::Write)
        });
        if covered {
            self.cache_hits += 1;
            return AcquireOutcome {
                revocations: 0,
                cache_hit: true,
            };
        }
        self.acquisitions += 1;

        // 2. Revoke conflicting grants overlapping the *requested* extent.
        let mut revoked = 0u64;
        grants.retain(|g| {
            let overlaps = g.start < end && g.end > start;
            let incompatible = overlaps && g.owner != owner && !g.mode.compatible(mode);
            if incompatible {
                revoked += 1;
                false
            } else {
                true
            }
        });
        self.conflicts += revoked;

        // 3. Expand upward to the nearest other-owner grant boundary.
        let upper = grants
            .iter()
            .filter(|g| g.owner != owner && !g.mode.compatible(mode) && g.start >= end)
            .map(|g| g.start)
            .min()
            .unwrap_or(u64::MAX);
        // Absorb the owner's own grants now covered by the new one.
        grants.retain(|g| !(g.owner == owner && g.start >= start && g.end <= upper));
        grants.push(Grant {
            owner,
            mode,
            start,
            end: upper,
        });
        AcquireOutcome {
            revocations: revoked,
            cache_hit: false,
        }
    }

    /// Release every grant `owner` holds on file `fid`.
    pub fn release_owner(&mut self, fid: u64, owner: u64) {
        for ((f, _), grants) in self.grants.iter_mut() {
            if *f == fid {
                grants.retain(|g| g.owner != owner);
            }
        }
    }

    /// Drop all state for a file (close/delete).
    pub fn drop_file(&mut self, fid: u64) {
        self.grants.retain(|(f, _), _| *f != fid);
    }

    /// Cumulative conflicting revocations.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Cumulative acquisitions that needed a lock RPC.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Cumulative acquisitions served by the client lock cache.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Grants currently held on (fid, ost).
    pub fn grant_count(&self, fid: u64, ost: usize) -> usize {
        self.grants.get(&(fid, ost)).map_or(0, Vec::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_writer_gets_expanded_grant() {
        let mut lm = ExtentLockManager::new();
        let o = lm.acquire(1, 0, 0, 100, 1, LockMode::Write);
        assert_eq!(o.revocations, 0);
        assert!(!o.cache_hit);
        // Subsequent streaming writes hit the cached expanded grant.
        let o = lm.acquire(1, 0, 100, 200, 1, LockMode::Write);
        assert!(o.cache_hit);
        assert_eq!(lm.cache_hits(), 1);
    }

    #[test]
    fn contiguous_disjoint_ranges_conflict_once_then_coexist() {
        // Two flushing servers writing disjoint halves of one object: the
        // second acquisition revokes the first's over-expanded grant, after
        // which both stream within their bounded grants for free.
        let mut lm = ExtentLockManager::new();
        lm.acquire(1, 0, 0, 10, 1, LockMode::Write); // expands to [0, ∞)
        let o = lm.acquire(1, 0, 1000, 1010, 2, LockMode::Write);
        assert_eq!(o.revocations, 1);
        // Server 1 re-acquires below server 2's grant: bounded, no conflict.
        let o = lm.acquire(1, 0, 10, 20, 1, LockMode::Write);
        assert_eq!(o.revocations, 0);
        // Now both stream with cache hits.
        assert!(lm.acquire(1, 0, 20, 900, 1, LockMode::Write).cache_hit);
        assert!(lm.acquire(1, 0, 1010, 2000, 2, LockMode::Write).cache_hit);
        assert_eq!(lm.conflicts(), 1);
    }

    #[test]
    fn interleaved_shared_file_ping_pong() {
        // Two writers alternating stripe units in one object: every
        // acquisition after warm-up revokes the other's expanded grant.
        let mut lm = ExtentLockManager::new();
        let mut conflicts_seen = 0;
        for i in 0..20u64 {
            let owner = i % 2;
            let off = i * 64;
            conflicts_seen += lm
                .acquire(1, 0, off, off + 64, owner, LockMode::Write)
                .revocations;
        }
        assert!(
            conflicts_seen >= 18,
            "expected ping-pong, saw {conflicts_seen} conflicts"
        );
    }

    #[test]
    fn file_per_process_has_zero_conflicts() {
        let mut lm = ExtentLockManager::new();
        for i in 0..20u64 {
            let owner = i % 4;
            let off = (i / 4) * 64;
            // Each owner writes its own file id.
            let out = lm.acquire(100 + owner, 0, off, off + 64, owner, LockMode::Write);
            assert_eq!(out.revocations, 0);
        }
        assert_eq!(lm.conflicts(), 0);
    }

    #[test]
    fn readers_share() {
        let mut lm = ExtentLockManager::new();
        lm.acquire(1, 0, 0, 100, 1, LockMode::Read);
        let o = lm.acquire(1, 0, 0, 100, 2, LockMode::Read);
        assert_eq!(o.revocations, 0);
        assert_eq!(lm.grant_count(1, 0), 2);
    }

    #[test]
    fn writer_revokes_readers() {
        let mut lm = ExtentLockManager::new();
        lm.acquire(1, 0, 0, 100, 1, LockMode::Read);
        lm.acquire(1, 0, 0, 100, 2, LockMode::Read);
        let o = lm.acquire(1, 0, 0, 100, 3, LockMode::Write);
        assert_eq!(o.revocations, 2);
    }

    #[test]
    fn write_grant_covers_reads_by_same_owner() {
        let mut lm = ExtentLockManager::new();
        lm.acquire(1, 0, 0, 100, 1, LockMode::Write);
        assert!(lm.acquire(1, 0, 0, 50, 1, LockMode::Read).cache_hit);
    }

    #[test]
    fn different_files_or_osts_never_conflict() {
        let mut lm = ExtentLockManager::new();
        lm.acquire(1, 0, 0, 100, 1, LockMode::Write);
        assert_eq!(lm.acquire(2, 0, 0, 100, 2, LockMode::Write).revocations, 0);
        assert_eq!(lm.acquire(1, 1, 0, 100, 2, LockMode::Write).revocations, 0);
    }

    #[test]
    fn release_and_drop() {
        let mut lm = ExtentLockManager::new();
        lm.acquire(1, 0, 0, 100, 1, LockMode::Write);
        lm.release_owner(1, 1);
        assert_eq!(lm.grant_count(1, 0), 0);
        lm.acquire(1, 0, 0, 10, 1, LockMode::Write);
        lm.drop_file(1);
        assert_eq!(lm.grant_count(1, 0), 0);
    }

    #[test]
    #[should_panic(expected = "empty lock extent")]
    fn empty_extent_rejected() {
        ExtentLockManager::new().acquire(1, 0, 5, 5, 1, LockMode::Write);
    }
}
