//! Randomized-property tests for the Lustre model: stripe layouts must
//! partition extents exactly, and the file system must behave like a flat
//! byte array regardless of striping.
//!
//! Cases come from the substrate's deterministic RNG (the workspace
//! builds without external crates, so no proptest); each test runs a few
//! hundred seeded trials.

use univistor_pfs::{FileLayout, Lustre, RangeLayout, StripeLayout};
use univistor_sim::rng::DetRng;
use univistor_sim::{Payload, SparseBuffer};

/// `pieces()` partitions any extent: pieces are in file order,
/// contiguous, sum to the length, and map to consistent OSTs.
#[test]
fn stripe_pieces_partition_extents() {
    let mut rng = DetRng::seed(0x9f5_0001);
    for _trial in 0..300 {
        let stripe_size = 1 + rng.below(9_999) as u64;
        let stripe_count = 1 + rng.below(31);
        let start_ost = rng.below(300);
        let offset = rng.below(1_000_000) as u64;
        let len = 1 + rng.below(499_999) as u64;
        let l = StripeLayout::new(stripe_size, stripe_count, start_ost);
        let pieces = l.pieces(offset, len);
        let mut cursor = offset;
        for p in &pieces {
            assert_eq!(p.file_offset, cursor);
            assert!(p.len > 0 && p.len <= stripe_size);
            assert_eq!(p.ost, l.ost_of(p.file_offset));
            cursor += p.len;
        }
        assert_eq!(cursor, offset + len);
    }
}

/// The same bytes never map to two places: pieces of disjoint extents
/// on the same OST have disjoint object ranges.
#[test]
fn object_mapping_is_injective() {
    let mut rng = DetRng::seed(0x9f5_0002);
    let mut checked = 0;
    while checked < 200 {
        let stripe_size = 1 + rng.below(999) as u64;
        let stripe_count = 1 + rng.below(7);
        let a = rng.below(50_000) as u64;
        let b = rng.below(50_000) as u64;
        let len = 1 + rng.below(1_999) as u64;
        if !(a + len <= b || b + len <= a) {
            continue; // need disjoint extents
        }
        checked += 1;
        let l = StripeLayout::new(stripe_size, stripe_count, 0);
        let pa = l.pieces(a, len);
        let pb = l.pieces(b, len);
        for x in &pa {
            for y in &pb {
                if x.ost == y.ost {
                    let overlap = x.object_offset < y.object_offset + y.len
                        && y.object_offset < x.object_offset + x.len;
                    assert!(
                        !overlap,
                        "extents [{a},+{len}) and [{b},+{len}) collide in object space"
                    );
                }
            }
        }
    }
}

/// Composite layouts preserve the same partition property.
#[test]
fn composite_layout_covers_extents() {
    let mut rng = DetRng::seed(0x9f5_0003);
    for _trial in 0..300 {
        let cut = 1 + rng.below(99_999) as u64;
        let offset = rng.below(150_000) as u64;
        let len = 1 + rng.below(99_999) as u64;
        let layout = FileLayout::composite(vec![
            RangeLayout {
                start: 0,
                end: cut,
                layout: StripeLayout::new(700, 3, 0),
            },
            RangeLayout {
                start: cut,
                end: u64::MAX,
                layout: StripeLayout::new(1300, 5, 16),
            },
        ]);
        let pieces = layout.pieces(offset, len);
        let mut cursor = offset;
        for p in &pieces {
            assert_eq!(p.file_offset, cursor);
            cursor += p.len;
        }
        assert_eq!(cursor, offset + len);
        let total: u64 = layout.ost_loads(offset, len).iter().map(|(_, b)| b).sum();
        assert_eq!(total, len);
    }
}

/// A striped Lustre file behaves exactly like a flat byte array under
/// arbitrary overlapping writes, for any layout.
#[test]
fn lustre_matches_flat_model() {
    let mut rng = DetRng::seed(0x9f5_0004);
    for _trial in 0..100 {
        let stripe_size = 1 + rng.below(4_095) as u64;
        let stripe_count = 1 + rng.below(15);
        let n_writes = 1 + rng.below(19);
        let mut fs = Lustre::new(32);
        fs.create("/f", StripeLayout::new(stripe_size, stripe_count, 7))
            .unwrap();
        let mut model = SparseBuffer::new();
        for i in 0..n_writes {
            let offset = rng.below(20_000) as u64;
            let len = 1 + rng.below(2_999) as u64;
            let data = Payload::pattern(i as u64, len);
            fs.write("/f", offset, data.clone(), i as u64 % 4).unwrap();
            model.write(offset, data);
        }
        let size = model.end_offset();
        assert_eq!(fs.file_size("/f").unwrap(), size);
        // Compare every fully-written extent.
        for (off, payload) in model.extents() {
            let got = fs.read("/f", off, payload.len(), 99).unwrap();
            assert!(got.content_eq(payload), "extent at {off} corrupt");
        }
        // Byte conservation across OSTs.
        assert_eq!(fs.bytes_stored(), model.bytes_stored());
    }
}
