//! Property-based tests for the Lustre model: stripe layouts must
//! partition extents exactly, and the file system must behave like a flat
//! byte array regardless of striping.

use proptest::prelude::*;
use univistor_pfs::{FileLayout, Lustre, RangeLayout, StripeLayout};
use univistor_sim::{Payload, SparseBuffer};

proptest! {
    /// `pieces()` partitions any extent: pieces are in file order,
    /// contiguous, sum to the length, and map to consistent OSTs.
    #[test]
    fn stripe_pieces_partition_extents(
        stripe_size in 1u64..10_000,
        stripe_count in 1usize..32,
        start_ost in 0usize..300,
        offset in 0u64..1_000_000,
        len in 1u64..500_000,
    ) {
        let l = StripeLayout::new(stripe_size, stripe_count, start_ost);
        let pieces = l.pieces(offset, len);
        let mut cursor = offset;
        for p in &pieces {
            prop_assert_eq!(p.file_offset, cursor);
            prop_assert!(p.len > 0 && p.len <= stripe_size);
            prop_assert_eq!(p.ost, l.ost_of(p.file_offset));
            cursor += p.len;
        }
        prop_assert_eq!(cursor, offset + len);
    }

    /// The same bytes never map to two places: pieces of disjoint extents
    /// on the same OST have disjoint object ranges.
    #[test]
    fn object_mapping_is_injective(
        stripe_size in 1u64..1000,
        stripe_count in 1usize..8,
        a in 0u64..50_000,
        b in 0u64..50_000,
        len in 1u64..2_000,
    ) {
        prop_assume!(a + len <= b || b + len <= a); // disjoint extents
        let l = StripeLayout::new(stripe_size, stripe_count, 0);
        let pa = l.pieces(a, len);
        let pb = l.pieces(b, len);
        for x in &pa {
            for y in &pb {
                if x.ost == y.ost {
                    let overlap = x.object_offset < y.object_offset + y.len
                        && y.object_offset < x.object_offset + x.len;
                    prop_assert!(
                        !overlap,
                        "extents [{a},+{len}) and [{b},+{len}) collide in object space"
                    );
                }
            }
        }
    }

    /// Composite layouts preserve the same partition property.
    #[test]
    fn composite_layout_covers_extents(
        cut in 1u64..100_000,
        offset in 0u64..150_000,
        len in 1u64..100_000,
    ) {
        let layout = FileLayout::composite(vec![
            RangeLayout {
                start: 0,
                end: cut,
                layout: StripeLayout::new(700, 3, 0),
            },
            RangeLayout {
                start: cut,
                end: u64::MAX,
                layout: StripeLayout::new(1300, 5, 16),
            },
        ]);
        let pieces = layout.pieces(offset, len);
        let mut cursor = offset;
        for p in &pieces {
            prop_assert_eq!(p.file_offset, cursor);
            cursor += p.len;
        }
        prop_assert_eq!(cursor, offset + len);
        let total: u64 = layout.ost_loads(offset, len).iter().map(|(_, b)| b).sum();
        prop_assert_eq!(total, len);
    }

    /// A striped Lustre file behaves exactly like a flat byte array under
    /// arbitrary overlapping writes, for any layout.
    #[test]
    fn lustre_matches_flat_model(
        stripe_size in 1u64..4096,
        stripe_count in 1usize..16,
        writes in proptest::collection::vec((0u64..20_000, 1u64..3_000), 1..20),
    ) {
        let mut fs = Lustre::new(32);
        fs.create("/f", StripeLayout::new(stripe_size, stripe_count, 7)).unwrap();
        let mut model = SparseBuffer::new();
        for (i, (offset, len)) in writes.iter().enumerate() {
            let data = Payload::pattern(i as u64, *len);
            fs.write("/f", *offset, data.clone(), i as u64 % 4).unwrap();
            model.write(*offset, data);
        }
        let size = model.end_offset();
        prop_assert_eq!(fs.file_size("/f").unwrap(), size);
        // Compare every fully-written extent.
        for (off, payload) in model.extents() {
            let got = fs.read("/f", off, payload.len(), 99).unwrap();
            prop_assert!(got.content_eq(payload), "extent at {off} corrupt");
        }
        // Byte conservation across OSTs.
        prop_assert_eq!(fs.bytes_stored(), model.bytes_stored());
    }
}
