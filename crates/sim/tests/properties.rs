//! Randomized-property tests for the substrate's core data structures:
//! the sparse buffer must behave like a flat byte array, payload slicing
//! must commute with materialization, and the flow simulator must conserve
//! work and respect capacity.
//!
//! Cases are generated with the crate's own deterministic RNG (the
//! workspace builds without external crates, so no proptest): each test
//! runs a few hundred seeded trials, which covers the same input space
//! reproducibly.

use univistor_sim::flow::FlowSpec;
use univistor_sim::payload::Payload;
use univistor_sim::rng::DetRng;
use univistor_sim::{FlowSim, SimTime, SparseBuffer};

const ARENA: usize = 512;

#[derive(Debug, Clone)]
struct WriteOp {
    offset: usize,
    data: Vec<u8>,
}

fn gen_write_ops(rng: &mut DetRng) -> Vec<WriteOp> {
    let count = 1 + rng.below(40);
    (0..count)
        .filter_map(|_| {
            let offset = rng.below(ARENA);
            let len = (1 + rng.below(63)).min(ARENA - offset);
            if len == 0 {
                return None;
            }
            let data = (0..len).map(|_| rng.below(256) as u8).collect();
            Some(WriteOp { offset, data })
        })
        .collect()
}

#[test]
fn sparse_buffer_matches_flat_array() {
    let mut rng = DetRng::seed(0x5bab_b1e5);
    for _trial in 0..200 {
        let ops = gen_write_ops(&mut rng);
        let mut buf = SparseBuffer::new();
        let mut model = vec![0u8; ARENA];
        let mut written = vec![false; ARENA];

        for op in &ops {
            buf.write(op.offset as u64, Payload::from_bytes(op.data.clone()));
            for (i, b) in op.data.iter().enumerate() {
                model[op.offset + i] = *b;
                written[op.offset + i] = true;
            }
        }

        // Tolerant read of the full arena matches the model (holes = 0).
        let got = buf.read(0, ARENA as u64).to_bytes();
        assert_eq!(&got[..], &model[..]);

        // bytes_stored equals the number of written bytes.
        let expect_stored = written.iter().filter(|w| **w).count() as u64;
        assert_eq!(buf.bytes_stored(), expect_stored);

        // read_exact succeeds exactly on fully-written ranges.
        for (start, len) in [(0usize, 16usize), (100, 50), (400, 112)] {
            let fully = written[start..start + len].iter().all(|w| *w);
            let r = buf.read_exact(start as u64, len as u64);
            assert_eq!(r.is_ok(), fully, "range [{start}, +{len})");
        }
    }
}

#[test]
fn payload_slice_commutes_with_materialize() {
    let mut rng = DetRng::seed(0x5eed_cafe);
    for _trial in 0..300 {
        let seed = (rng.below(1 << 30) as u64) << 32 | rng.below(1 << 30) as u64;
        let len = 1 + rng.below(2047) as u64;
        let cut = (rng.below(2048) as u64).min(len);
        let p = Payload::pattern(seed, len);
        let (a, b) = p.split_at(cut);
        let mut joined = a.to_bytes().to_vec();
        joined.extend_from_slice(&b.to_bytes());
        assert_eq!(&joined[..], &p.to_bytes()[..]);
    }
}

#[test]
fn flow_finish_times_respect_capacity() {
    let mut rng = DetRng::seed(0xf10a_0001);
    for _trial in 0..150 {
        let n = 1 + rng.below(19);
        let sizes: Vec<f64> = (0..n).map(|_| 1.0 + rng.unit() * (1e6 - 1.0)).collect();
        let bw = 1e3 + rng.unit() * (1e9 - 1e3);
        let mut sim = FlowSim::new();
        let r = sim.add_resource("r", bw).unwrap();
        for &s in &sizes {
            sim.add_flow(FlowSpec::new(SimTime::ZERO, s, vec![r]))
                .unwrap();
        }
        let out = sim.run();
        let total: f64 = sizes.iter().sum();
        let makespan = FlowSim::makespan(&out).secs();
        // The device can never move data faster than its bandwidth …
        assert!(makespan >= total / bw * (1.0 - 1e-9));
        // … and fair sharing of one resource is work-conserving: the last
        // finisher leaves no idle time.
        assert!(makespan <= total / bw * (1.0 + 1e-6));
        // No flow can beat its solo transfer time.
        for (o, &s) in out.iter().zip(&sizes) {
            assert!(o.finish.secs() >= s / bw * (1.0 - 1e-9));
        }
    }
}

#[test]
fn flow_group_equivalence() {
    let mut rng = DetRng::seed(0xf10a_0002);
    for _trial in 0..150 {
        // One group of `count` flows finishes exactly when `count`
        // individual flows do.
        let count = 1 + rng.below(63) as u64;
        let bytes = 1.0 + rng.unit() * (1e6 - 1.0);
        let bw = 1e3 + rng.unit() * (1e9 - 1e3);
        let mut grouped = FlowSim::new();
        let rg = grouped.add_resource("r", bw).unwrap();
        grouped
            .add_flow(FlowSpec::new(SimTime::ZERO, bytes, vec![rg]).with_count(count))
            .unwrap();
        let tg = FlowSim::makespan(&grouped.run()).secs();

        let mut individual = FlowSim::new();
        let ri = individual.add_resource("r", bw).unwrap();
        for _ in 0..count {
            individual
                .add_flow(FlowSpec::new(SimTime::ZERO, bytes, vec![ri]))
                .unwrap();
        }
        let ti = FlowSim::makespan(&individual.run()).secs();
        assert!((tg - ti).abs() < 1e-9 * ti.max(1.0));
    }
}

#[test]
fn maxmin_rates_never_exceed_any_resource() {
    let mut rng = DetRng::seed(0xf10a_0003);
    for _trial in 0..150 {
        // Random bipartite flows over the resources; after run(), total
        // bytes moved per unit time through each resource must be ≤ bw.
        // We check the aggregate invariant: makespan ≥ per-resource load/bw.
        let n_flows = 1 + rng.below(11);
        let n_res = 2 + rng.below(3);
        let bws: Vec<f64> = (0..n_res).map(|_| 1e3 + rng.unit() * (1e6 - 1e3)).collect();
        let mut sim = FlowSim::new();
        let rids: Vec<_> = bws
            .iter()
            .enumerate()
            .map(|(i, &bw)| sim.add_resource(format!("r{i}"), bw).unwrap())
            .collect();
        let mut load = vec![0.0f64; rids.len()];
        for i in 0..n_flows {
            let a = i % rids.len();
            let b = (i * 7 + 1) % rids.len();
            let bytes = 1e5 + i as f64 * 1e4;
            let mut path = vec![rids[a]];
            if b != a {
                path.push(rids[b]);
            }
            load[a] += bytes;
            if b != a {
                load[b] += bytes;
            }
            sim.add_flow(FlowSpec::new(SimTime::ZERO, bytes, path))
                .unwrap();
        }
        let makespan = FlowSim::makespan(&sim.run()).secs();
        for (i, &l) in load.iter().enumerate() {
            assert!(
                makespan >= l / bws[i] * (1.0 - 1e-9),
                "resource {} overloaded: makespan {} < {}",
                i,
                makespan,
                l / bws[i]
            );
        }
    }
}
