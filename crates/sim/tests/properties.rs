//! Property-based tests for the substrate's core data structures:
//! the sparse buffer must behave like a flat byte array, payload slicing
//! must commute with materialization, and the flow simulator must conserve
//! work and respect capacity.

use proptest::prelude::*;
use univistor_sim::flow::FlowSpec;
use univistor_sim::payload::Payload;
use univistor_sim::{FlowSim, SimTime, SparseBuffer};

const ARENA: usize = 512;

#[derive(Debug, Clone)]
struct WriteOp {
    offset: usize,
    data: Vec<u8>,
}

fn write_ops() -> impl Strategy<Value = Vec<WriteOp>> {
    proptest::collection::vec(
        (0usize..ARENA, proptest::collection::vec(any::<u8>(), 1..64)),
        1..40,
    )
    .prop_map(|ops| {
        ops.into_iter()
            .map(|(offset, mut data)| {
                data.truncate(ARENA - offset);
                WriteOp { offset, data }
            })
            .filter(|op| !op.data.is_empty())
            .collect()
    })
}

proptest! {
    #[test]
    fn sparse_buffer_matches_flat_array(ops in write_ops()) {
        let mut buf = SparseBuffer::new();
        let mut model = vec![0u8; ARENA];
        let mut written = vec![false; ARENA];

        for op in &ops {
            buf.write(op.offset as u64, Payload::from_bytes(op.data.clone()));
            for (i, b) in op.data.iter().enumerate() {
                model[op.offset + i] = *b;
                written[op.offset + i] = true;
            }
        }

        // Tolerant read of the full arena matches the model (holes = 0).
        let got = buf.read(0, ARENA as u64).to_bytes();
        prop_assert_eq!(&got[..], &model[..]);

        // bytes_stored equals the number of written bytes.
        let expect_stored = written.iter().filter(|w| **w).count() as u64;
        prop_assert_eq!(buf.bytes_stored(), expect_stored);

        // read_exact succeeds exactly on fully-written ranges.
        for (start, len) in [(0usize, 16usize), (100, 50), (400, 112)] {
            let fully = written[start..start + len].iter().all(|w| *w);
            let r = buf.read_exact(start as u64, len as u64);
            prop_assert_eq!(r.is_ok(), fully, "range [{}, +{})", start, len);
        }
    }

    #[test]
    fn payload_slice_commutes_with_materialize(
        seed in any::<u64>(),
        len in 1u64..2048,
        cut in 0u64..2048,
    ) {
        let cut = cut.min(len);
        let p = Payload::pattern(seed, len);
        let (a, b) = p.split_at(cut);
        let mut joined = a.to_bytes().to_vec();
        joined.extend_from_slice(&b.to_bytes());
        prop_assert_eq!(&joined[..], &p.to_bytes()[..]);
    }

    #[test]
    fn flow_finish_times_respect_capacity(
        sizes in proptest::collection::vec(1.0f64..1e6, 1..20),
        bw in 1e3f64..1e9,
    ) {
        let mut sim = FlowSim::new();
        let r = sim.add_resource("r", bw).unwrap();
        for &s in &sizes {
            sim.add_flow(FlowSpec::new(SimTime::ZERO, s, vec![r])).unwrap();
        }
        let out = sim.run();
        let total: f64 = sizes.iter().sum();
        let makespan = FlowSim::makespan(&out).secs();
        // The device can never move data faster than its bandwidth …
        prop_assert!(makespan >= total / bw * (1.0 - 1e-9));
        // … and fair sharing of one resource is work-conserving: the last
        // finisher leaves no idle time.
        prop_assert!(makespan <= total / bw * (1.0 + 1e-6));
        // No flow can beat its solo transfer time.
        for (o, &s) in out.iter().zip(&sizes) {
            prop_assert!(o.finish.secs() >= s / bw * (1.0 - 1e-9));
        }
    }

    #[test]
    fn flow_group_equivalence(
        count in 1u64..64,
        bytes in 1.0f64..1e6,
        bw in 1e3f64..1e9,
    ) {
        // One group of `count` flows finishes exactly when `count`
        // individual flows do.
        let mut grouped = FlowSim::new();
        let rg = grouped.add_resource("r", bw).unwrap();
        grouped
            .add_flow(FlowSpec::new(SimTime::ZERO, bytes, vec![rg]).with_count(count))
            .unwrap();
        let tg = FlowSim::makespan(&grouped.run()).secs();

        let mut individual = FlowSim::new();
        let ri = individual.add_resource("r", bw).unwrap();
        for _ in 0..count {
            individual
                .add_flow(FlowSpec::new(SimTime::ZERO, bytes, vec![ri]))
                .unwrap();
        }
        let ti = FlowSim::makespan(&individual.run()).secs();
        prop_assert!((tg - ti).abs() < 1e-9 * ti.max(1.0));
    }

    #[test]
    fn maxmin_rates_never_exceed_any_resource(
        n_flows in 1usize..12,
        bws in proptest::collection::vec(1e3f64..1e6, 2..5),
    ) {
        // Random bipartite flows over the resources; after run(), total
        // bytes moved per unit time through each resource must be ≤ bw.
        // We check the aggregate invariant: makespan ≥ per-resource load/bw.
        let mut sim = FlowSim::new();
        let rids: Vec<_> = bws
            .iter()
            .enumerate()
            .map(|(i, &bw)| sim.add_resource(format!("r{i}"), bw).unwrap())
            .collect();
        let mut load = vec![0.0f64; rids.len()];
        for i in 0..n_flows {
            let a = i % rids.len();
            let b = (i * 7 + 1) % rids.len();
            let bytes = 1e5 + i as f64 * 1e4;
            let mut path = vec![rids[a]];
            if b != a {
                path.push(rids[b]);
            }
            load[a] += bytes;
            if b != a {
                load[b] += bytes;
            }
            sim.add_flow(FlowSpec::new(SimTime::ZERO, bytes, path)).unwrap();
        }
        let makespan = FlowSim::makespan(&sim.run()).secs();
        for (i, &l) in load.iter().enumerate() {
            prop_assert!(
                makespan >= l / bws[i] * (1.0 - 1e-9),
                "resource {} overloaded: makespan {} < {}",
                i, makespan, l / bws[i]
            );
        }
    }
}
