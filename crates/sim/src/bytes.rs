//! A cheaply-cloneable, sliceable byte buffer.
//!
//! A minimal stand-in for the `bytes` crate's `Bytes` (this workspace
//! builds with no external dependencies): an `Arc<[u8]>` plus a window,
//! so clones and slices are O(1) and share the same allocation.

use std::fmt;
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte window.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::from_static(&[])
    }

    /// Wrap a static slice (no allocation-sharing needed; still O(1) to
    /// clone).
    pub fn from_static(s: &'static [u8]) -> Bytes {
        // A dedicated variant for static data isn't worth the enum; one
        // Arc allocation at construction keeps the type a single shape.
        Bytes::from(s)
    }

    /// Length of the window.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the window is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// O(1) sub-window sharing the same allocation. Panics when the
    /// range falls outside `0..len`.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            start <= end && end <= self.len(),
            "slice {start}..{end} out of range for Bytes of {} bytes",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + start,
            end: self.start + end,
        }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let data: Arc<[u8]> = v.into();
        Bytes {
            start: 0,
            end: data.len(),
            data,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(s: &[u8; N]) -> Bytes {
        Bytes::from(&s[..])
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self[..] == other[..]
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({}B)", self.len())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_and_windows() {
        let b = Bytes::from(b"abcdefgh");
        let mid = b.slice(2..6);
        assert_eq!(&mid[..], b"cdef");
        assert_eq!(mid.slice(1..3), Bytes::from(b"de"));
        assert_eq!(mid.slice(..), mid);
        assert!(b.slice(4..4).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_out_of_range_panics() {
        Bytes::from(b"ab").slice(1..4);
    }

    #[test]
    fn equality_is_by_content() {
        let a = Bytes::from(b"xyz");
        let b = Bytes::from(vec![b'x', b'y', b'z']);
        assert_eq!(a, b);
        assert_eq!(a, *b"xyz");
        assert_ne!(a, Bytes::from(b"xy"));
    }
}
