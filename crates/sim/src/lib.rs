//! # univistor-sim — simulated HPC platform substrate
//!
//! This crate is the foundation the UniviStor reproduction is built on. The
//! original system ran on Cori (a Cray XC40 with per-node DRAM, a shared
//! DataWarp burst buffer, and a 248-OST Lustre file system). None of that
//! hardware is available here, so the substrate provides:
//!
//! * **A functional data plane** — [`payload::Payload`] (real bytes or
//!   deterministic synthetic patterns) and [`buffer::SparseBuffer`] (extent
//!   maps) let every storage tier store and return byte-accurate data while
//!   allowing paper-scale experiments (terabytes of logical data) to run
//!   without materializing the bytes.
//! * **A timing plane** — [`flow::FlowSim`], a max–min-fair flow-level
//!   discrete-event simulator. Every shared device (a NUMA socket's memory
//!   system, a NIC, a burst-buffer node's SSD, a Lustre OST) is a
//!   [`resource::Resource`] with a bandwidth; concurrent transfers share it
//!   fairly and the simulator computes completion times under contention.
//! * **Cluster topology** — [`topology::ClusterSpec`] describes a Cori-like
//!   machine and registers its devices as flow resources.
//! * **Core placement machinery** — [`cores`] models per-node CPU cores and
//!   NUMA sockets, provides the CFS-like baseline placement policy, and
//!   evaluates the memory-bandwidth contention a placement produces.
//!   (UniviStor's interference-aware policy itself lives in `univistor-core`,
//!   since it is part of the paper's contribution.)
//! * **Latency models** — [`latency`] has simple analytic costs for RPCs and
//!   MPI-style collectives.
//! * **Calibration constants** — [`calibration`] centralizes the Cori-like
//!   bandwidth/latency numbers every experiment uses.

pub mod buffer;
pub mod bytes;
pub mod calibration;
pub mod cores;
pub mod error;
pub mod flow;
pub mod latency;
pub mod payload;
pub mod resource;
pub mod rng;
pub mod time;
pub mod topology;

pub use buffer::SparseBuffer;
pub use bytes::Bytes;
pub use error::{SimError, SimResult};
pub use flow::{FlowId, FlowOutcome, FlowSim, FlowSpec};
pub use payload::{Checksum, Payload};
pub use resource::{Resource, ResourceId};
pub use time::SimTime;
pub use topology::{ClusterResources, ClusterSpec};
