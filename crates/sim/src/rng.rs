//! Deterministic randomness.
//!
//! Every stochastic element of the substrate (CFS-like placement, random
//! OST assignment) draws from a [`DetRng`] seeded explicitly, so that every
//! experiment is reproducible bit-for-bit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded deterministic RNG with the small helper surface the
/// substrate needs.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: StdRng,
}

impl DetRng {
    /// Create from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        DetRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        self.inner.random_range(0..n)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.random_range(0.0..1.0)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// A fresh child RNG derived from this one (for per-node streams).
    pub fn fork(&mut self) -> DetRng {
        DetRng::seed(self.inner.random())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed(7);
        let mut b = DetRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::seed(1);
        let mut b = DetRng::seed(2);
        let va: Vec<usize> = (0..20).map(|_| a.below(1000)).collect();
        let vb: Vec<usize> = (0..20).map(|_| b.below(1000)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::seed(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::seed(4);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn fork_decorrelates() {
        let mut a = DetRng::seed(9);
        let mut child = a.fork();
        let va: Vec<usize> = (0..10).map(|_| a.below(100)).collect();
        let vc: Vec<usize> = (0..10).map(|_| child.below(100)).collect();
        assert_ne!(va, vc);
    }
}
