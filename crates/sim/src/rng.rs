//! Deterministic randomness.
//!
//! Every stochastic element of the substrate (CFS-like placement, random
//! OST assignment) draws from a [`DetRng`] seeded explicitly, so that every
//! experiment is reproducible bit-for-bit. The generator is a SplitMix64
//! counter stream — tiny state, excellent mixing, and no external crates.

/// One SplitMix64 mixing step.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded deterministic RNG with the small helper surface the
/// substrate needs.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Create from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        DetRng { state: seed }
    }

    /// Next raw 64-bit draw.
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix(self.state)
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        // Multiply-shift bounded draw (Lemire); the modulo bias for
        // sub-2^64 ranges is far below anything these simulations can
        // resolve, so no rejection loop is needed.
        let n = n as u64;
        (((self.next_u64() as u128 * n as u128) >> 64) as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 top bits → the standard [0, 1) double construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// A fresh child RNG derived from this one (for per-node streams).
    pub fn fork(&mut self) -> DetRng {
        // Re-mix the draw so the child's counter stream does not overlap
        // the parent's.
        DetRng::seed(mix(self.next_u64() ^ 0xA076_1D64_78BD_642F))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed(7);
        let mut b = DetRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::seed(1);
        let mut b = DetRng::seed(2);
        let va: Vec<usize> = (0..20).map(|_| a.below(1000)).collect();
        let vb: Vec<usize> = (0..20).map(|_| b.below(1000)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::seed(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::seed(4);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn fork_decorrelates() {
        let mut a = DetRng::seed(9);
        let mut child = a.fork();
        let va: Vec<usize> = (0..10).map(|_| a.below(100)).collect();
        let vc: Vec<usize> = (0..10).map(|_| child.below(100)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn unit_stays_in_range_and_fills_it() {
        let mut rng = DetRng::seed(5);
        let draws: Vec<f64> = (0..1000).map(|_| rng.unit()).collect();
        assert!(draws.iter().all(|&x| (0.0..1.0).contains(&x)));
        assert!(draws.iter().any(|&x| x < 0.1));
        assert!(draws.iter().any(|&x| x > 0.9));
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = DetRng::seed(6);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.below(10)] += 1;
        }
        assert!(
            counts.iter().all(|&c| (800..1200).contains(&c)),
            "{counts:?}"
        );
    }
}
