//! Shared devices with finite bandwidth.
//!
//! A [`Resource`] models one contended device: a NUMA socket's memory
//! system, a NIC, an SSD on a burst-buffer node, a Lustre OST. Flows
//! traversing a resource share its bandwidth max–min fairly (see
//! [`crate::flow`]).

use crate::error::{SimError, SimResult};
use std::fmt;

/// Index of a registered resource within a [`crate::flow::FlowSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(pub usize);

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// A bandwidth-limited device.
#[derive(Debug, Clone)]
pub struct Resource {
    /// Human-readable name for diagnostics ("node3.socket0.mem", "ost17").
    pub name: String,
    /// Bandwidth in bytes/second. Always positive and finite.
    pub bandwidth: f64,
}

impl Resource {
    /// Validate and construct a resource.
    pub fn new(name: impl Into<String>, bandwidth: f64) -> SimResult<Self> {
        if !(bandwidth.is_finite() && bandwidth > 0.0) {
            return Err(SimError::InvalidBandwidth(bandwidth));
        }
        Ok(Resource {
            name: name.into(),
            bandwidth,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_resource() {
        let r = Resource::new("ost0", 1.2e9).unwrap();
        assert_eq!(r.name, "ost0");
        assert_eq!(r.bandwidth, 1.2e9);
    }

    #[test]
    fn rejects_bad_bandwidth() {
        assert!(Resource::new("x", 0.0).is_err());
        assert!(Resource::new("x", -1.0).is_err());
        assert!(Resource::new("x", f64::INFINITY).is_err());
        assert!(Resource::new("x", f64::NAN).is_err());
    }
}
