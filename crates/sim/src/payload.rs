//! Data payloads.
//!
//! The UniviStor reproduction is *functional*: bytes written through the
//! MPI-IO interface land in real log chunks / burst-buffer objects / OST
//! objects and read back identical. But the paper's experiments move up to
//! 2 TB of logical data per phase (8192 processes × 256 MB), which must not
//! be materialized. [`Payload`] solves both needs:
//!
//! * [`Payload::Bytes`] — real, materialized bytes (used by tests, examples,
//!   and any small-scale run).
//! * [`Payload::Pattern`] — a deterministic pseudo-random byte sequence
//!   identified by a seed and a window `[offset, offset + len)` into the
//!   infinite stream that seed generates. Slicing, splitting and comparing
//!   are O(1) in memory; any byte can be regenerated on demand.
//! * [`Payload::Zeros`] — holes (unwritten ranges) when a caller asks for a
//!   tolerant read.
//! * [`Payload::Chain`] — a rope of the above, produced when a read gathers
//!   segments from several places.
//!
//! All storage tiers store `Payload`s, so the *placement* of data is always
//! exact even when the bytes themselves are virtual.

use crate::bytes::Bytes;
use std::fmt;

/// Maximum size `to_bytes` will materialize (1 GiB). Larger payloads are
/// always synthetic at paper scale; materializing them indicates a bug.
pub const MAX_MATERIALIZE: u64 = 1 << 30;

/// A (possibly virtual) run of bytes. See module docs.
#[derive(Clone, PartialEq, Eq)]
pub enum Payload {
    /// Real bytes.
    Bytes(Bytes),
    /// `len` bytes of the deterministic stream of `seed`, starting at
    /// stream position `offset`.
    Pattern { seed: u64, offset: u64, len: u64 },
    /// A run of zero bytes (reads of holes).
    Zeros { len: u64 },
    /// Concatenation of parts. Invariants: no nested chains, no empty parts,
    /// at least two parts.
    Chain(Vec<Payload>),
}

/// SplitMix64 — small, fast, high-quality 64-bit mixer used for pattern data.
#[inline]
pub const fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The pattern byte at stream position `pos` for `seed`.
#[inline]
pub fn pattern_byte(seed: u64, pos: u64) -> u8 {
    let block = splitmix64(seed ^ (pos / 8));
    (block >> (8 * (pos % 8))) as u8
}

impl Payload {
    /// An empty payload.
    pub fn empty() -> Payload {
        Payload::Bytes(Bytes::new())
    }

    /// A synthetic payload of `len` bytes drawn from `seed`'s stream.
    pub fn pattern(seed: u64, len: u64) -> Payload {
        Payload::Pattern {
            seed,
            offset: 0,
            len,
        }
    }

    /// A payload of real bytes.
    pub fn from_bytes(bytes: impl Into<Bytes>) -> Payload {
        Payload::Bytes(bytes.into())
    }

    /// `len` zero bytes.
    pub fn zeros(len: u64) -> Payload {
        Payload::Zeros { len }
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        match self {
            Payload::Bytes(b) => b.len() as u64,
            Payload::Pattern { len, .. } | Payload::Zeros { len } => *len,
            Payload::Chain(parts) => parts.iter().map(Payload::len).sum(),
        }
    }

    /// True when the payload holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Concatenate parts into one payload, flattening chains and merging
    /// adjacent compatible parts (contiguous pattern windows, zero runs).
    pub fn chain(parts: impl IntoIterator<Item = Payload>) -> Payload {
        let mut flat: Vec<Payload> = Vec::new();
        for part in parts {
            match part {
                Payload::Chain(sub) => flat.extend(sub),
                p if p.is_empty() => {}
                p => flat.push(p),
            }
        }
        // Merge adjacent parts where representation allows.
        let mut merged: Vec<Payload> = Vec::with_capacity(flat.len());
        for part in flat {
            match (merged.last_mut(), part) {
                (
                    Some(Payload::Pattern { seed, offset, len }),
                    Payload::Pattern {
                        seed: s2,
                        offset: o2,
                        len: l2,
                    },
                ) if *seed == s2 && *offset + *len == o2 => *len += l2,
                (Some(Payload::Zeros { len }), Payload::Zeros { len: l2 }) => *len += l2,
                (_, part) => merged.push(part),
            }
        }
        match merged.len() {
            0 => Payload::empty(),
            1 => merged.pop().expect("len checked"),
            _ => Payload::Chain(merged),
        }
    }

    /// The sub-payload `[start, start + len)`. Panics if out of range —
    /// callers (tier stores) always hold the true extent bounds.
    pub fn slice(&self, start: u64, len: u64) -> Payload {
        let total = self.len();
        assert!(
            start.checked_add(len).is_some_and(|end| end <= total),
            "slice [{start}, {start}+{len}) out of range for payload of {total} bytes"
        );
        if len == 0 {
            return Payload::empty();
        }
        if start == 0 && len == total {
            return self.clone();
        }
        match self {
            Payload::Bytes(b) => Payload::Bytes(b.slice(start as usize..(start + len) as usize)),
            Payload::Pattern { seed, offset, .. } => Payload::Pattern {
                seed: *seed,
                offset: offset + start,
                len,
            },
            Payload::Zeros { .. } => Payload::Zeros { len },
            Payload::Chain(parts) => {
                let mut out = Vec::new();
                let mut pos = 0u64;
                let end = start + len;
                for part in parts {
                    let plen = part.len();
                    let pstart = pos;
                    let pend = pos + plen;
                    pos = pend;
                    if pend <= start {
                        continue;
                    }
                    if pstart >= end {
                        break;
                    }
                    let s = start.max(pstart) - pstart;
                    let e = end.min(pend) - pstart;
                    out.push(part.slice(s, e - s));
                }
                Payload::chain(out)
            }
        }
    }

    /// Split into `[0, mid)` and `[mid, len)`.
    pub fn split_at(&self, mid: u64) -> (Payload, Payload) {
        let len = self.len();
        (self.slice(0, mid), self.slice(mid, len - mid))
    }

    /// The byte at position `pos`. O(depth) for chains, O(1) otherwise.
    pub fn byte_at(&self, pos: u64) -> u8 {
        assert!(pos < self.len(), "byte_at({pos}) out of range");
        match self {
            Payload::Bytes(b) => b[pos as usize],
            Payload::Pattern { seed, offset, .. } => pattern_byte(*seed, offset + pos),
            Payload::Zeros { .. } => 0,
            Payload::Chain(parts) => {
                let mut p = pos;
                for part in parts {
                    let l = part.len();
                    if p < l {
                        return part.byte_at(p);
                    }
                    p -= l;
                }
                unreachable!("pos bounds checked above")
            }
        }
    }

    /// Materialize to real bytes. Panics above [`MAX_MATERIALIZE`] — at
    /// paper scale payloads stay virtual by design.
    pub fn to_bytes(&self) -> Bytes {
        let len = self.len();
        assert!(
            len <= MAX_MATERIALIZE,
            "refusing to materialize {len} bytes (> {MAX_MATERIALIZE})"
        );
        if let Payload::Bytes(b) = self {
            return b.clone();
        }
        let mut v = Vec::with_capacity(len as usize);
        self.materialize_into(&mut v);
        Bytes::from(v)
    }

    /// Append this payload's bytes to `out` in one pass. Chains recurse
    /// part by part into the same buffer, so a rope fills one pre-sized
    /// allocation instead of materializing every part into a temporary
    /// that is then copied again. Callers enforce [`MAX_MATERIALIZE`]
    /// (as [`to_bytes`](Self::to_bytes) does).
    pub fn materialize_into(&self, out: &mut Vec<u8>) {
        match self {
            Payload::Bytes(b) => out.extend_from_slice(b),
            Payload::Zeros { len } => out.resize(out.len() + *len as usize, 0),
            Payload::Pattern { seed, offset, len } => {
                let mut pos = *offset;
                let end = offset + len;
                while pos < end {
                    let block = splitmix64(seed ^ (pos / 8));
                    let in_block = (pos % 8) as u32;
                    let take = ((8 - in_block) as u64).min(end - pos) as u32;
                    let shifted = block >> (8 * in_block);
                    out.extend_from_slice(&shifted.to_le_bytes()[..take as usize]);
                    pos += take as u64;
                }
            }
            Payload::Chain(parts) => {
                for part in parts {
                    part.materialize_into(out);
                }
            }
        }
    }

    /// Content equality (same bytes, regardless of representation).
    /// O(len); intended for tests and small-scale verification.
    pub fn content_eq(&self, other: &Payload) -> bool {
        if self.len() != other.len() {
            return false;
        }
        if self == other {
            return true; // cheap structural fast path
        }
        self.to_bytes() == other.to_bytes()
    }

    /// Content checksum of the payload: absorb into a fresh
    /// [`Checksum`] state and fold. Streams synthetic payloads (patterns
    /// block-wise, zero runs in closed form) without materializing them,
    /// so it is safe on any payload size.
    pub fn content_checksum(&self) -> u64 {
        let mut state = Checksum::new();
        self.absorb_to(&mut state);
        state.finalize()
    }

    /// Absorb this payload's bytes into a running [`Checksum`] state.
    /// Absorbing payloads in sequence equals checksumming their
    /// concatenation — the write pipelines use this to stamp coalesced
    /// records without assembling the merged payload.
    pub fn absorb_to(&self, state: &mut Checksum) {
        match self {
            Payload::Bytes(b) => state.absorb_bytes(b),
            Payload::Zeros { len } => state.absorb_zeros(*len),
            Payload::Pattern { seed, offset, len } => {
                let mut pos = *offset;
                let end = offset + len;
                while pos < end {
                    // Fast path: the stream word boundary and the pattern
                    // block boundary coincide, so whole blocks absorb as
                    // words in one register-resident bulk loop.
                    if state.word_aligned() && pos % 8 == 0 && end - pos >= 32 {
                        let quads = (end - pos) / 32;
                        state.absorb_pattern_quads(*seed, pos / 8, quads);
                        pos += quads * 32;
                    } else if state.word_aligned() && pos % 8 == 0 && end - pos >= 8 {
                        state.absorb_word(splitmix64(seed ^ (pos / 8)));
                        pos += 8;
                    } else {
                        let block = splitmix64(seed ^ (pos / 8));
                        let in_block = (pos % 8) as u32;
                        let take = ((8 - in_block) as u64).min(end - pos) as u32;
                        let shifted = block >> (8 * in_block);
                        state.absorb_bytes(&shifted.to_le_bytes()[..take as usize]);
                        pos += take as u64;
                    }
                }
            }
            Payload::Chain(parts) => {
                for p in parts {
                    p.absorb_to(state);
                }
            }
        }
    }
}

/// The lane multiplier (odd, so xor-then-multiply is a bijection per
/// absorb and corruption can never cancel out of a lane).
const WORD_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

/// Distinct nonzero lane seeds.
const LANE_INIT: [u64; 4] = [splitmix64(1), splitmix64(2), splitmix64(3), splitmix64(4)];

/// Streaming content-checksum state: four multiply-xor lanes fed
/// round-robin with the stream's 8-byte little-endian words, a
/// partial-word buffer so arbitrary byte splits compose exactly, and a
/// length-aware final fold.
///
/// The digest is a pure function of the byte stream — however that
/// stream is split across payloads, chain parts, or representation
/// (bytes vs. synthetic). Word-granular absorption keeps four
/// independent multiply chains in flight, so verifying runs at
/// memcpy-class throughput instead of the one-multiply-per-byte serial
/// chain of a classic FNV loop; any corruption of a word changes its
/// lane irreversibly (each absorb is a bijection), and zero runs and
/// length changes are caught by the word counter folded into
/// [`finalize`](Checksum::finalize).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checksum {
    lanes: [u64; 4],
    /// Bytes of the in-progress stream word, little-endian, low bytes
    /// first.
    partial: u64,
    /// How many bytes of `partial` are filled (0..8).
    partial_len: u32,
    /// Completed stream words — selects the next lane round-robin.
    words: u64,
}

impl Default for Checksum {
    fn default() -> Self {
        Checksum::new()
    }
}

impl Checksum {
    /// A fresh state (no bytes absorbed).
    pub fn new() -> Self {
        Checksum {
            lanes: LANE_INIT,
            partial: 0,
            partial_len: 0,
            words: 0,
        }
    }

    /// Whether the stream position is on an 8-byte word boundary.
    #[inline]
    fn word_aligned(&self) -> bool {
        self.partial_len == 0
    }

    #[inline]
    fn absorb_word(&mut self, w: u64) {
        let lane = (self.words & 3) as usize;
        self.lanes[lane] = (self.lanes[lane] ^ w).wrapping_mul(WORD_MUL);
        self.words += 1;
    }

    /// Absorb `quads * 4` consecutive synthetic pattern blocks starting
    /// at `first_block`, word-aligned. The lanes live in locals for the
    /// whole run, so the hot loop is four independent xor-multiply
    /// chains plus the block generation — no per-word state traffic.
    fn absorb_pattern_quads(&mut self, seed: u64, first_block: u64, quads: u64) {
        let p = (self.words & 3) as usize;
        let mut l0 = self.lanes[p];
        let mut l1 = self.lanes[(p + 1) & 3];
        let mut l2 = self.lanes[(p + 2) & 3];
        let mut l3 = self.lanes[(p + 3) & 3];
        let mut k = first_block;
        for _ in 0..quads {
            l0 = (l0 ^ splitmix64(seed ^ k)).wrapping_mul(WORD_MUL);
            l1 = (l1 ^ splitmix64(seed ^ (k + 1))).wrapping_mul(WORD_MUL);
            l2 = (l2 ^ splitmix64(seed ^ (k + 2))).wrapping_mul(WORD_MUL);
            l3 = (l3 ^ splitmix64(seed ^ (k + 3))).wrapping_mul(WORD_MUL);
            k += 4;
        }
        self.lanes[p] = l0;
        self.lanes[(p + 1) & 3] = l1;
        self.lanes[(p + 2) & 3] = l2;
        self.lanes[(p + 3) & 3] = l3;
        self.words += quads * 4;
    }

    #[inline]
    fn push_byte(&mut self, b: u8) {
        self.partial |= (b as u64) << (8 * self.partial_len);
        self.partial_len += 1;
        if self.partial_len == 8 {
            let w = self.partial;
            self.partial = 0;
            self.partial_len = 0;
            self.absorb_word(w);
        }
    }

    /// Absorb a run of real bytes.
    pub fn absorb_bytes(&mut self, bytes: &[u8]) {
        let mut rest = bytes;
        // Top up a partially-filled word first.
        while !self.word_aligned() && !rest.is_empty() {
            self.push_byte(rest[0]);
            rest = &rest[1..];
        }
        // Aligned middle, four words per step with register-resident
        // lanes (phase is loop-invariant: each step advances the
        // round-robin by a full cycle).
        let p = (self.words & 3) as usize;
        let mut quads = rest.chunks_exact(32);
        let mut l0 = self.lanes[p];
        let mut l1 = self.lanes[(p + 1) & 3];
        let mut l2 = self.lanes[(p + 2) & 3];
        let mut l3 = self.lanes[(p + 3) & 3];
        let mut n = 0u64;
        for q in &mut quads {
            let w0 = u64::from_le_bytes(q[0..8].try_into().expect("quad word"));
            let w1 = u64::from_le_bytes(q[8..16].try_into().expect("quad word"));
            let w2 = u64::from_le_bytes(q[16..24].try_into().expect("quad word"));
            let w3 = u64::from_le_bytes(q[24..32].try_into().expect("quad word"));
            l0 = (l0 ^ w0).wrapping_mul(WORD_MUL);
            l1 = (l1 ^ w1).wrapping_mul(WORD_MUL);
            l2 = (l2 ^ w2).wrapping_mul(WORD_MUL);
            l3 = (l3 ^ w3).wrapping_mul(WORD_MUL);
            n += 4;
        }
        self.lanes[p] = l0;
        self.lanes[(p + 1) & 3] = l1;
        self.lanes[(p + 2) & 3] = l2;
        self.lanes[(p + 3) & 3] = l3;
        self.words += n;
        let rest = quads.remainder();
        let mut words = rest.chunks_exact(8);
        for w in &mut words {
            self.absorb_word(u64::from_le_bytes(w.try_into().expect("8-byte chunk")));
        }
        for &b in words.remainder() {
            self.push_byte(b);
        }
    }

    /// Absorb a run of `n` zero bytes in O(log n): a zero word maps a
    /// lane to `lane · M`, so each lane soaks up `M^(its share of the
    /// run)` in closed form.
    pub fn absorb_zeros(&mut self, mut n: u64) {
        while !self.word_aligned() && n > 0 {
            self.push_byte(0);
            n -= 1;
        }
        let k = n / 8;
        if k > 0 {
            for j in 0..4u64 {
                let lane = ((self.words + j) & 3) as usize;
                let cnt = k / 4 + u64::from(j < k % 4);
                self.lanes[lane] = self.lanes[lane].wrapping_mul(pow_mul(WORD_MUL, cnt));
            }
            self.words += k;
            n -= k * 8;
        }
        // Trailing zero bytes buffer into the (all-zero) partial word.
        self.partial_len += n as u32;
    }

    /// Fold the state to the 64-bit digest. Pure: the state keeps
    /// absorbing afterwards — the coalescing write paths re-finalize as
    /// a record grows under them.
    pub fn finalize(&self) -> u64 {
        let len = self
            .words
            .wrapping_mul(8)
            .wrapping_add(self.partial_len as u64);
        let mut h = self.partial.wrapping_add(splitmix64(len));
        for &lane in &self.lanes {
            h = (h ^ lane).wrapping_mul(WORD_MUL);
        }
        splitmix64(h)
    }
}

/// `base^n mod 2^64` by binary exponentiation — the closed form of a
/// zero-word run's lane transform.
fn pow_mul(mut base: u64, mut n: u64) -> u64 {
    let mut acc = 1u64;
    while n > 0 {
        if n & 1 == 1 {
            acc = acc.wrapping_mul(base);
        }
        base = base.wrapping_mul(base);
        n >>= 1;
    }
    acc
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Payload::Bytes(b) => write!(f, "Bytes({}B)", b.len()),
            Payload::Pattern { seed, offset, len } => {
                write!(f, "Pattern(seed={seed:#x}, off={offset}, {len}B)")
            }
            Payload::Zeros { len } => write!(f, "Zeros({len}B)"),
            Payload::Chain(parts) => {
                write!(f, "Chain[{}B; {} parts]", self.len(), parts.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_is_deterministic() {
        let a = Payload::pattern(42, 1000);
        let b = Payload::pattern(42, 1000);
        assert_eq!(a.to_bytes(), b.to_bytes());
        let c = Payload::pattern(43, 1000);
        assert_ne!(a.to_bytes(), c.to_bytes());
    }

    #[test]
    fn pattern_slice_matches_materialized_slice() {
        let p = Payload::pattern(7, 4096);
        let full = p.to_bytes();
        for (start, len) in [(0u64, 4096u64), (1, 100), (4000, 96), (17, 0), (4095, 1)] {
            let s = p.slice(start, len);
            assert_eq!(
                s.to_bytes(),
                full.slice(start as usize..(start + len) as usize),
                "slice [{start}, +{len})"
            );
        }
    }

    #[test]
    fn pattern_byte_at_matches_stream() {
        let p = Payload::pattern(99, 300);
        let bytes = p.to_bytes();
        for i in 0..300u64 {
            assert_eq!(p.byte_at(i), bytes[i as usize]);
        }
    }

    #[test]
    fn chain_merges_adjacent_pattern_windows() {
        let p = Payload::pattern(5, 1000);
        let (a, b) = p.split_at(400);
        let rejoined = Payload::chain([a, b]);
        // Merged back into a single pattern — structural equality holds.
        assert_eq!(rejoined, p);
    }

    #[test]
    fn chain_of_mixed_parts_reads_correctly() {
        let a = Payload::from_bytes(&b"hello "[..]);
        let b = Payload::from_bytes(&b"world"[..]);
        let c = Payload::chain([a, Payload::zeros(2), b]);
        assert_eq!(c.len(), 13);
        assert_eq!(&c.to_bytes()[..], b"hello \0\0world");
        assert_eq!(c.byte_at(7), 0);
        assert_eq!(c.byte_at(8), b'w');
    }

    #[test]
    fn materialize_into_matches_to_bytes_for_every_shape() {
        let shapes = [
            Payload::from_bytes(&b"hello"[..]),
            Payload::zeros(17),
            Payload::pattern(42, 100).slice(3, 90),
            Payload::chain([
                Payload::from_bytes(&b"abcd"[..]),
                Payload::zeros(3),
                Payload::pattern(7, 50),
                Payload::chain([Payload::pattern(9, 10), Payload::from_bytes(&b"xy"[..])]),
            ]),
        ];
        for p in shapes {
            let mut out = b"prefix".to_vec();
            p.materialize_into(&mut out);
            assert_eq!(&out[..6], b"prefix");
            assert_eq!(&out[6..], &p.to_bytes()[..]);
        }
    }

    #[test]
    fn chain_slice_spanning_parts() {
        let c = Payload::chain([
            Payload::from_bytes(&b"abcd"[..]),
            Payload::from_bytes(&b"efgh"[..]),
            Payload::from_bytes(&b"ijkl"[..]),
        ]);
        assert_eq!(&c.slice(2, 8).to_bytes()[..], b"cdefghij");
    }

    #[test]
    fn huge_payload_slicing_never_materializes() {
        // 2 TB synthetic payload: all structural operations must be cheap.
        let p = Payload::pattern(1, 2 << 40);
        let s = p.slice(1 << 40, 1 << 20);
        assert_eq!(s.len(), 1 << 20);
        let (l, r) = p.split_at(1 << 39);
        assert_eq!(l.len() + r.len(), p.len());
    }

    #[test]
    #[should_panic(expected = "refusing to materialize")]
    fn materializing_huge_payload_panics() {
        let _ = Payload::pattern(1, 2 << 40).to_bytes();
    }

    #[test]
    fn content_eq_across_representations() {
        let p = Payload::pattern(3, 64);
        let materialized = Payload::from_bytes(p.to_bytes());
        assert!(p.content_eq(&materialized));
        assert_ne!(p, materialized); // structurally different
    }

    #[test]
    fn zeros_and_empty() {
        assert!(Payload::empty().is_empty());
        let z = Payload::zeros(16);
        assert_eq!(z.to_bytes(), Bytes::from(vec![0u8; 16]));
    }

    #[test]
    fn checksum_distinguishes_content() {
        let a = Payload::pattern(1, 128);
        let b = Payload::pattern(2, 128);
        assert_ne!(a.content_checksum(), b.content_checksum());
        assert_eq!(
            a.content_checksum(),
            Payload::from_bytes(a.to_bytes()).content_checksum()
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_out_of_range_panics() {
        Payload::pattern(1, 10).slice(5, 6);
    }

    #[test]
    fn checksum_is_representation_independent() {
        // Same bytes through every representation → same checksum.
        let shapes = [
            Payload::pattern(11, 300).slice(7, 200),
            Payload::zeros(129),
            Payload::chain([
                Payload::from_bytes(&b"abc"[..]),
                Payload::zeros(17),
                Payload::pattern(3, 64).slice(1, 60),
            ]),
        ];
        for p in shapes {
            let materialized = Payload::from_bytes(p.to_bytes());
            assert_eq!(p.content_checksum(), materialized.content_checksum());
        }
    }

    #[test]
    fn checksum_state_composes_like_concatenation() {
        let a = Payload::pattern(5, 100);
        let b = Payload::zeros(33);
        let c = Payload::from_bytes(&b"tail"[..]);
        let whole = Payload::chain([a.clone(), b.clone(), c.clone()]);
        let mut state = Checksum::new();
        a.absorb_to(&mut state);
        b.absorb_to(&mut state);
        c.absorb_to(&mut state);
        assert_eq!(whole.content_checksum(), state.finalize());
    }

    #[test]
    fn checksum_is_split_invariant_at_any_byte_boundary() {
        // The digest must be a pure function of the byte stream no
        // matter how awkwardly the stream is partitioned — the write
        // pipelines chain arbitrary-size payloads through one state.
        let bytes: Vec<u8> = (0..97u8).collect();
        let expected = Payload::from_bytes(bytes.clone()).content_checksum();
        for split in [1usize, 3, 7, 8, 9, 31, 32, 33, 64, 96] {
            let mut state = Checksum::new();
            state.absorb_bytes(&bytes[..split]);
            state.absorb_bytes(&bytes[split..]);
            assert_eq!(state.finalize(), expected, "diverged at split {split}");
        }
        // Zero runs interleaved with bytes at odd offsets.
        let with_zeros = Payload::chain([
            Payload::from_bytes(&bytes[..5]),
            Payload::zeros(41),
            Payload::from_bytes(&bytes[5..]),
        ]);
        let materialized = Payload::from_bytes(with_zeros.to_bytes());
        assert_eq!(
            with_zeros.content_checksum(),
            materialized.content_checksum()
        );
    }

    #[test]
    fn checksum_detects_single_byte_and_length_changes() {
        let bytes: Vec<u8> = (0..64u8).collect();
        let clean = Payload::from_bytes(bytes.clone()).content_checksum();
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0xFF;
            assert_ne!(
                Payload::from_bytes(flipped).content_checksum(),
                clean,
                "flip at byte {i} undetected"
            );
        }
        assert_ne!(
            Payload::from_bytes(&bytes[..63]).content_checksum(),
            clean,
            "truncation undetected"
        );
        assert_ne!(
            Payload::zeros(64).content_checksum(),
            Payload::zeros(72).content_checksum(),
            "zero-run length change undetected"
        );
    }

    #[test]
    fn huge_synthetic_checksum_never_materializes() {
        // Checksumming must stream: a 2 TB zero run is O(log n), and a
        // large pattern is block-wise with no allocation.
        let z = Payload::zeros(2 << 40);
        let _ = z.content_checksum();
        let p = Payload::pattern(9, 8 << 20);
        assert_eq!(
            p.content_checksum(),
            Payload::from_bytes(p.to_bytes()).content_checksum()
        );
    }
}
