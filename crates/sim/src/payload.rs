//! Data payloads.
//!
//! The UniviStor reproduction is *functional*: bytes written through the
//! MPI-IO interface land in real log chunks / burst-buffer objects / OST
//! objects and read back identical. But the paper's experiments move up to
//! 2 TB of logical data per phase (8192 processes × 256 MB), which must not
//! be materialized. [`Payload`] solves both needs:
//!
//! * [`Payload::Bytes`] — real, materialized bytes (used by tests, examples,
//!   and any small-scale run).
//! * [`Payload::Pattern`] — a deterministic pseudo-random byte sequence
//!   identified by a seed and a window `[offset, offset + len)` into the
//!   infinite stream that seed generates. Slicing, splitting and comparing
//!   are O(1) in memory; any byte can be regenerated on demand.
//! * [`Payload::Zeros`] — holes (unwritten ranges) when a caller asks for a
//!   tolerant read.
//! * [`Payload::Chain`] — a rope of the above, produced when a read gathers
//!   segments from several places.
//!
//! All storage tiers store `Payload`s, so the *placement* of data is always
//! exact even when the bytes themselves are virtual.

use crate::bytes::Bytes;
use std::fmt;

/// Maximum size `to_bytes` will materialize (1 GiB). Larger payloads are
/// always synthetic at paper scale; materializing them indicates a bug.
pub const MAX_MATERIALIZE: u64 = 1 << 30;

/// A (possibly virtual) run of bytes. See module docs.
#[derive(Clone, PartialEq, Eq)]
pub enum Payload {
    /// Real bytes.
    Bytes(Bytes),
    /// `len` bytes of the deterministic stream of `seed`, starting at
    /// stream position `offset`.
    Pattern { seed: u64, offset: u64, len: u64 },
    /// A run of zero bytes (reads of holes).
    Zeros { len: u64 },
    /// Concatenation of parts. Invariants: no nested chains, no empty parts,
    /// at least two parts.
    Chain(Vec<Payload>),
}

/// SplitMix64 — small, fast, high-quality 64-bit mixer used for pattern data.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The pattern byte at stream position `pos` for `seed`.
#[inline]
pub fn pattern_byte(seed: u64, pos: u64) -> u8 {
    let block = splitmix64(seed ^ (pos / 8));
    (block >> (8 * (pos % 8))) as u8
}

impl Payload {
    /// An empty payload.
    pub fn empty() -> Payload {
        Payload::Bytes(Bytes::new())
    }

    /// A synthetic payload of `len` bytes drawn from `seed`'s stream.
    pub fn pattern(seed: u64, len: u64) -> Payload {
        Payload::Pattern {
            seed,
            offset: 0,
            len,
        }
    }

    /// A payload of real bytes.
    pub fn from_bytes(bytes: impl Into<Bytes>) -> Payload {
        Payload::Bytes(bytes.into())
    }

    /// `len` zero bytes.
    pub fn zeros(len: u64) -> Payload {
        Payload::Zeros { len }
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        match self {
            Payload::Bytes(b) => b.len() as u64,
            Payload::Pattern { len, .. } | Payload::Zeros { len } => *len,
            Payload::Chain(parts) => parts.iter().map(Payload::len).sum(),
        }
    }

    /// True when the payload holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Concatenate parts into one payload, flattening chains and merging
    /// adjacent compatible parts (contiguous pattern windows, zero runs).
    pub fn chain(parts: impl IntoIterator<Item = Payload>) -> Payload {
        let mut flat: Vec<Payload> = Vec::new();
        for part in parts {
            match part {
                Payload::Chain(sub) => flat.extend(sub),
                p if p.is_empty() => {}
                p => flat.push(p),
            }
        }
        // Merge adjacent parts where representation allows.
        let mut merged: Vec<Payload> = Vec::with_capacity(flat.len());
        for part in flat {
            match (merged.last_mut(), part) {
                (
                    Some(Payload::Pattern { seed, offset, len }),
                    Payload::Pattern {
                        seed: s2,
                        offset: o2,
                        len: l2,
                    },
                ) if *seed == s2 && *offset + *len == o2 => *len += l2,
                (Some(Payload::Zeros { len }), Payload::Zeros { len: l2 }) => *len += l2,
                (_, part) => merged.push(part),
            }
        }
        match merged.len() {
            0 => Payload::empty(),
            1 => merged.pop().expect("len checked"),
            _ => Payload::Chain(merged),
        }
    }

    /// The sub-payload `[start, start + len)`. Panics if out of range —
    /// callers (tier stores) always hold the true extent bounds.
    pub fn slice(&self, start: u64, len: u64) -> Payload {
        let total = self.len();
        assert!(
            start.checked_add(len).is_some_and(|end| end <= total),
            "slice [{start}, {start}+{len}) out of range for payload of {total} bytes"
        );
        if len == 0 {
            return Payload::empty();
        }
        if start == 0 && len == total {
            return self.clone();
        }
        match self {
            Payload::Bytes(b) => Payload::Bytes(b.slice(start as usize..(start + len) as usize)),
            Payload::Pattern { seed, offset, .. } => Payload::Pattern {
                seed: *seed,
                offset: offset + start,
                len,
            },
            Payload::Zeros { .. } => Payload::Zeros { len },
            Payload::Chain(parts) => {
                let mut out = Vec::new();
                let mut pos = 0u64;
                let end = start + len;
                for part in parts {
                    let plen = part.len();
                    let pstart = pos;
                    let pend = pos + plen;
                    pos = pend;
                    if pend <= start {
                        continue;
                    }
                    if pstart >= end {
                        break;
                    }
                    let s = start.max(pstart) - pstart;
                    let e = end.min(pend) - pstart;
                    out.push(part.slice(s, e - s));
                }
                Payload::chain(out)
            }
        }
    }

    /// Split into `[0, mid)` and `[mid, len)`.
    pub fn split_at(&self, mid: u64) -> (Payload, Payload) {
        let len = self.len();
        (self.slice(0, mid), self.slice(mid, len - mid))
    }

    /// The byte at position `pos`. O(depth) for chains, O(1) otherwise.
    pub fn byte_at(&self, pos: u64) -> u8 {
        assert!(pos < self.len(), "byte_at({pos}) out of range");
        match self {
            Payload::Bytes(b) => b[pos as usize],
            Payload::Pattern { seed, offset, .. } => pattern_byte(*seed, offset + pos),
            Payload::Zeros { .. } => 0,
            Payload::Chain(parts) => {
                let mut p = pos;
                for part in parts {
                    let l = part.len();
                    if p < l {
                        return part.byte_at(p);
                    }
                    p -= l;
                }
                unreachable!("pos bounds checked above")
            }
        }
    }

    /// Materialize to real bytes. Panics above [`MAX_MATERIALIZE`] — at
    /// paper scale payloads stay virtual by design.
    pub fn to_bytes(&self) -> Bytes {
        let len = self.len();
        assert!(
            len <= MAX_MATERIALIZE,
            "refusing to materialize {len} bytes (> {MAX_MATERIALIZE})"
        );
        if let Payload::Bytes(b) = self {
            return b.clone();
        }
        let mut v = Vec::with_capacity(len as usize);
        self.materialize_into(&mut v);
        Bytes::from(v)
    }

    /// Append this payload's bytes to `out` in one pass. Chains recurse
    /// part by part into the same buffer, so a rope fills one pre-sized
    /// allocation instead of materializing every part into a temporary
    /// that is then copied again. Callers enforce [`MAX_MATERIALIZE`]
    /// (as [`to_bytes`](Self::to_bytes) does).
    pub fn materialize_into(&self, out: &mut Vec<u8>) {
        match self {
            Payload::Bytes(b) => out.extend_from_slice(b),
            Payload::Zeros { len } => out.resize(out.len() + *len as usize, 0),
            Payload::Pattern { seed, offset, len } => {
                let mut pos = *offset;
                let end = offset + len;
                while pos < end {
                    let block = splitmix64(seed ^ (pos / 8));
                    let in_block = (pos % 8) as u32;
                    let take = ((8 - in_block) as u64).min(end - pos) as u32;
                    let shifted = block >> (8 * in_block);
                    out.extend_from_slice(&shifted.to_le_bytes()[..take as usize]);
                    pos += take as u64;
                }
            }
            Payload::Chain(parts) => {
                for part in parts {
                    part.materialize_into(out);
                }
            }
        }
    }

    /// Content equality (same bytes, regardless of representation).
    /// O(len); intended for tests and small-scale verification.
    pub fn content_eq(&self, other: &Payload) -> bool {
        if self.len() != other.len() {
            return false;
        }
        if self == other {
            return true; // cheap structural fast path
        }
        self.to_bytes() == other.to_bytes()
    }

    /// FNV-1a checksum of the content. O(len); for verification at small
    /// and medium scale.
    pub fn content_checksum(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = FNV_OFFSET;
        match self {
            Payload::Chain(parts) => {
                for part in parts {
                    for b in part.to_bytes().iter() {
                        h = (h ^ *b as u64).wrapping_mul(FNV_PRIME);
                    }
                }
            }
            _ => {
                for b in self.to_bytes().iter() {
                    h = (h ^ *b as u64).wrapping_mul(FNV_PRIME);
                }
            }
        }
        h
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Payload::Bytes(b) => write!(f, "Bytes({}B)", b.len()),
            Payload::Pattern { seed, offset, len } => {
                write!(f, "Pattern(seed={seed:#x}, off={offset}, {len}B)")
            }
            Payload::Zeros { len } => write!(f, "Zeros({len}B)"),
            Payload::Chain(parts) => {
                write!(f, "Chain[{}B; {} parts]", self.len(), parts.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_is_deterministic() {
        let a = Payload::pattern(42, 1000);
        let b = Payload::pattern(42, 1000);
        assert_eq!(a.to_bytes(), b.to_bytes());
        let c = Payload::pattern(43, 1000);
        assert_ne!(a.to_bytes(), c.to_bytes());
    }

    #[test]
    fn pattern_slice_matches_materialized_slice() {
        let p = Payload::pattern(7, 4096);
        let full = p.to_bytes();
        for (start, len) in [(0u64, 4096u64), (1, 100), (4000, 96), (17, 0), (4095, 1)] {
            let s = p.slice(start, len);
            assert_eq!(
                s.to_bytes(),
                full.slice(start as usize..(start + len) as usize),
                "slice [{start}, +{len})"
            );
        }
    }

    #[test]
    fn pattern_byte_at_matches_stream() {
        let p = Payload::pattern(99, 300);
        let bytes = p.to_bytes();
        for i in 0..300u64 {
            assert_eq!(p.byte_at(i), bytes[i as usize]);
        }
    }

    #[test]
    fn chain_merges_adjacent_pattern_windows() {
        let p = Payload::pattern(5, 1000);
        let (a, b) = p.split_at(400);
        let rejoined = Payload::chain([a, b]);
        // Merged back into a single pattern — structural equality holds.
        assert_eq!(rejoined, p);
    }

    #[test]
    fn chain_of_mixed_parts_reads_correctly() {
        let a = Payload::from_bytes(&b"hello "[..]);
        let b = Payload::from_bytes(&b"world"[..]);
        let c = Payload::chain([a, Payload::zeros(2), b]);
        assert_eq!(c.len(), 13);
        assert_eq!(&c.to_bytes()[..], b"hello \0\0world");
        assert_eq!(c.byte_at(7), 0);
        assert_eq!(c.byte_at(8), b'w');
    }

    #[test]
    fn materialize_into_matches_to_bytes_for_every_shape() {
        let shapes = [
            Payload::from_bytes(&b"hello"[..]),
            Payload::zeros(17),
            Payload::pattern(42, 100).slice(3, 90),
            Payload::chain([
                Payload::from_bytes(&b"abcd"[..]),
                Payload::zeros(3),
                Payload::pattern(7, 50),
                Payload::chain([Payload::pattern(9, 10), Payload::from_bytes(&b"xy"[..])]),
            ]),
        ];
        for p in shapes {
            let mut out = b"prefix".to_vec();
            p.materialize_into(&mut out);
            assert_eq!(&out[..6], b"prefix");
            assert_eq!(&out[6..], &p.to_bytes()[..]);
        }
    }

    #[test]
    fn chain_slice_spanning_parts() {
        let c = Payload::chain([
            Payload::from_bytes(&b"abcd"[..]),
            Payload::from_bytes(&b"efgh"[..]),
            Payload::from_bytes(&b"ijkl"[..]),
        ]);
        assert_eq!(&c.slice(2, 8).to_bytes()[..], b"cdefghij");
    }

    #[test]
    fn huge_payload_slicing_never_materializes() {
        // 2 TB synthetic payload: all structural operations must be cheap.
        let p = Payload::pattern(1, 2 << 40);
        let s = p.slice(1 << 40, 1 << 20);
        assert_eq!(s.len(), 1 << 20);
        let (l, r) = p.split_at(1 << 39);
        assert_eq!(l.len() + r.len(), p.len());
    }

    #[test]
    #[should_panic(expected = "refusing to materialize")]
    fn materializing_huge_payload_panics() {
        let _ = Payload::pattern(1, 2 << 40).to_bytes();
    }

    #[test]
    fn content_eq_across_representations() {
        let p = Payload::pattern(3, 64);
        let materialized = Payload::from_bytes(p.to_bytes());
        assert!(p.content_eq(&materialized));
        assert_ne!(p, materialized); // structurally different
    }

    #[test]
    fn zeros_and_empty() {
        assert!(Payload::empty().is_empty());
        let z = Payload::zeros(16);
        assert_eq!(z.to_bytes(), Bytes::from(vec![0u8; 16]));
    }

    #[test]
    fn checksum_distinguishes_content() {
        let a = Payload::pattern(1, 128);
        let b = Payload::pattern(2, 128);
        assert_ne!(a.content_checksum(), b.content_checksum());
        assert_eq!(
            a.content_checksum(),
            Payload::from_bytes(a.to_bytes()).content_checksum()
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_out_of_range_panics() {
        Payload::pattern(1, 10).slice(5, 6);
    }
}
