//! Simulated time.
//!
//! Time is a non-negative `f64` number of seconds. Single-threaded IEEE-754
//! arithmetic is deterministic, which is all the experiments need; the
//! newtype exists so that times and durations cannot be confused with
//! byte counts or rates.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (seconds since experiment start).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimTime(pub f64);

impl SimTime {
    /// Time zero — the start of every experiment.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Construct from seconds. Panics on negative or non-finite input:
    /// such values indicate a bug in a cost model, not a recoverable state.
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime must be finite and non-negative, got {secs}"
        );
        SimTime(secs)
    }

    /// Seconds since experiment start.
    #[inline]
    pub fn secs(self) -> f64 {
        self.0
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl Eq for SimTime {}

// SimTime is always finite (enforced at construction and by arithmetic on
// finite operands), so total ordering is well-defined.
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).expect("SimTime is finite")
    }
}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 + rhs)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, rhs: f64) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = f64;
    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::from_secs(1.0);
        let b = a + 2.5;
        assert!(b > a);
        assert_eq!(b - a, 2.5);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_rejected() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_time_rejected() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_secs(0.5).to_string(), "0.500000s");
    }
}
