//! Per-node CPU core and NUMA machinery.
//!
//! This module provides what §II-C of the paper calls the scheduling
//! substrate: a description of a node's sockets/cores, an assignment of
//! processes to cores, the CFS-like *baseline* placement policy (oblivious
//! to program membership and NUMA), and a contention model that converts an
//! assignment into per-process effective memory rates.
//!
//! UniviStor's interference-aware policy implements [`PlacementPolicy`] in
//! `univistor-core::sched` — it is part of the paper's contribution, not the
//! substrate.

use crate::rng::DetRng;
use std::collections::HashMap;

/// Socket/core geometry of one compute node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeShape {
    /// NUMA sockets.
    pub sockets: usize,
    /// Cores per socket.
    pub cores_per_socket: usize,
}

impl NodeShape {
    /// Total cores.
    pub fn cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Socket owning `core`.
    pub fn socket_of(&self, core: usize) -> usize {
        assert!(core < self.cores(), "core {core} out of range");
        core / self.cores_per_socket
    }

    /// Core indices of `socket`.
    pub fn cores_of_socket(&self, socket: usize) -> std::ops::Range<usize> {
        assert!(socket < self.sockets, "socket {socket} out of range");
        let start = socket * self.cores_per_socket;
        start..start + self.cores_per_socket
    }
}

/// One process instance on a node: which program it belongs to and its
/// per-node index within that program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcSlot {
    /// Program id (e.g. 0 = App 1, 1 = App 2, `SERVER_PROGRAM` = servers).
    pub program: u32,
    /// Index of this process within its program on this node.
    pub index: u32,
}

/// Conventional program id for UniviStor server processes.
pub const SERVER_PROGRAM: u32 = u32::MAX;

/// An assignment of process slots to cores on one node.
#[derive(Debug, Clone)]
pub struct CoreAssignment {
    /// Node geometry.
    pub shape: NodeShape,
    per_core: Vec<Vec<ProcSlot>>,
    location: HashMap<ProcSlot, usize>,
}

impl CoreAssignment {
    /// An empty assignment for `shape`.
    pub fn new(shape: NodeShape) -> Self {
        CoreAssignment {
            shape,
            per_core: vec![Vec::new(); shape.cores()],
            location: HashMap::new(),
        }
    }

    /// Pin `slot` to `core` (replacing any previous pin).
    pub fn assign(&mut self, slot: ProcSlot, core: usize) {
        assert!(core < self.shape.cores(), "core {core} out of range");
        if let Some(old) = self.location.insert(slot, core) {
            self.per_core[old].retain(|s| *s != slot);
        }
        self.per_core[core].push(slot);
    }

    /// Current core of `slot`.
    pub fn core_of(&self, slot: ProcSlot) -> Option<usize> {
        self.location.get(&slot).copied()
    }

    /// Processes pinned to `core`.
    pub fn procs_on_core(&self, core: usize) -> &[ProcSlot] {
        &self.per_core[core]
    }

    /// All placed slots.
    pub fn slots(&self) -> impl Iterator<Item = ProcSlot> + '_ {
        self.location.keys().copied()
    }

    /// Total processes pinned on cores of `socket`.
    pub fn socket_load(&self, socket: usize) -> usize {
        self.shape
            .cores_of_socket(socket)
            .map(|c| self.per_core[c].len())
            .sum()
    }

    /// Number of cores hosting more than one process.
    pub fn stacked_cores(&self) -> usize {
        self.per_core.iter().filter(|v| v.len() > 1).count()
    }

    /// Move `slot` to `core` (used for flush-time migration).
    pub fn migrate(&mut self, slot: ProcSlot, core: usize) {
        assert!(
            self.location.contains_key(&slot),
            "cannot migrate unplaced slot {slot:?}"
        );
        self.assign(slot, core);
    }

    /// Largest per-socket load minus smallest (0 = perfectly NUMA-balanced).
    pub fn numa_imbalance(&self) -> usize {
        let loads: Vec<usize> = (0..self.shape.sockets)
            .map(|s| self.socket_load(s))
            .collect();
        let max = loads.iter().copied().max().unwrap_or(0);
        let min = loads.iter().copied().min().unwrap_or(0);
        max - min
    }
}

/// A policy deciding where each program's processes land on a node.
pub trait PlacementPolicy {
    /// Place `programs` — a list of `(program id, process count)` — on a
    /// node of the given shape.
    fn place(&mut self, shape: NodeShape, programs: &[(u32, usize)]) -> CoreAssignment;
}

/// The CFS-like baseline (§II-C, Fig. 4a): placement is oblivious to program
/// membership and NUMA topology. Processes arrive in an interleaved order;
/// each lands on the least-loaded core *unless* wake-affinity strikes
/// (`stack_prob`), in which case it lands on a uniformly random core — which
/// may stack it on a busy core while others idle.
#[derive(Debug)]
pub struct CfsPolicy {
    rng: DetRng,
    stack_prob: f64,
}

impl CfsPolicy {
    /// Baseline policy with the given seed and wake-affinity probability.
    pub fn new(seed: u64, stack_prob: f64) -> Self {
        CfsPolicy {
            rng: DetRng::seed(seed),
            stack_prob,
        }
    }
}

impl PlacementPolicy for CfsPolicy {
    fn place(&mut self, shape: NodeShape, programs: &[(u32, usize)]) -> CoreAssignment {
        let mut assignment = CoreAssignment::new(shape);
        // Interleave arrivals across programs, then shuffle: CFS sees an
        // arbitrary wake-up order, not program groups.
        let mut arrivals: Vec<ProcSlot> = Vec::new();
        for &(program, count) in programs {
            for index in 0..count {
                arrivals.push(ProcSlot {
                    program,
                    index: index as u32,
                });
            }
        }
        self.rng.shuffle(&mut arrivals);

        let cores = shape.cores();
        for slot in arrivals {
            let core = if self.rng.chance(self.stack_prob) {
                self.rng.below(cores)
            } else {
                // Least-loaded core, random tiebreak.
                let min_load = (0..cores)
                    .map(|c| assignment.procs_on_core(c).len())
                    .min()
                    .expect("node has cores");
                let candidates: Vec<usize> = (0..cores)
                    .filter(|&c| assignment.procs_on_core(c).len() == min_load)
                    .collect();
                candidates[self.rng.below(candidates.len())]
            };
            assignment.assign(slot, core);
        }
        assignment
    }
}

/// Effective memory rate of one active process.
#[derive(Debug, Clone, Copy)]
pub struct ProcRate {
    /// The process.
    pub slot: ProcSlot,
    /// Socket whose memory system it uses.
    pub socket: usize,
    /// Per-process rate cap (bytes/s) after core timeslicing and
    /// context-switch penalties. Socket-level sharing is applied by the
    /// flow simulator via the socket resource.
    pub rate_cap: f64,
}

/// Converts a core assignment plus the set of *active* processes into
/// per-process rate caps.
#[derive(Debug, Clone, Copy)]
pub struct ContentionModel {
    /// Single-core copy bandwidth (bytes/s).
    pub per_proc_copy_bw: f64,
    /// Multiplicative efficiency per extra active process on the same core.
    pub ctx_switch_efficiency: f64,
}

impl ContentionModel {
    /// Rates for every active process. `active` filters slots (e.g. only
    /// client processes during a write phase, only servers during a flush).
    pub fn proc_rates(
        &self,
        assignment: &CoreAssignment,
        active: impl Fn(ProcSlot) -> bool,
    ) -> Vec<ProcRate> {
        let mut rates = Vec::new();
        for core in 0..assignment.shape.cores() {
            let active_here: Vec<ProcSlot> = assignment
                .procs_on_core(core)
                .iter()
                .copied()
                .filter(|s| active(*s))
                .collect();
            let k = active_here.len();
            if k == 0 {
                continue;
            }
            // Timeslicing divides the core k ways; every context switch
            // also costs cache refill, modeled multiplicatively.
            let cap =
                self.per_proc_copy_bw / k as f64 * self.ctx_switch_efficiency.powi(k as i32 - 1);
            let socket = assignment.shape.socket_of(core);
            for slot in active_here {
                rates.push(ProcRate {
                    slot,
                    socket,
                    rate_cap: cap,
                });
            }
        }
        rates.sort_by_key(|r| r.slot);
        rates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHAPE: NodeShape = NodeShape {
        sockets: 2,
        cores_per_socket: 3,
    };

    fn slot(p: u32, i: u32) -> ProcSlot {
        ProcSlot {
            program: p,
            index: i,
        }
    }

    #[test]
    fn shape_geometry() {
        assert_eq!(SHAPE.cores(), 6);
        assert_eq!(SHAPE.socket_of(0), 0);
        assert_eq!(SHAPE.socket_of(2), 0);
        assert_eq!(SHAPE.socket_of(3), 1);
        assert_eq!(SHAPE.cores_of_socket(1), 3..6);
    }

    #[test]
    fn assign_and_migrate() {
        let mut a = CoreAssignment::new(SHAPE);
        a.assign(slot(0, 0), 0);
        a.assign(slot(0, 1), 0);
        assert_eq!(a.procs_on_core(0).len(), 2);
        assert_eq!(a.stacked_cores(), 1);
        a.migrate(slot(0, 1), 5);
        assert_eq!(a.procs_on_core(0).len(), 1);
        assert_eq!(a.core_of(slot(0, 1)), Some(5));
        assert_eq!(a.stacked_cores(), 0);
    }

    #[test]
    fn socket_load_and_imbalance() {
        let mut a = CoreAssignment::new(SHAPE);
        a.assign(slot(0, 0), 0);
        a.assign(slot(0, 1), 1);
        a.assign(slot(0, 2), 2);
        assert_eq!(a.socket_load(0), 3);
        assert_eq!(a.socket_load(1), 0);
        assert_eq!(a.numa_imbalance(), 3);
    }

    #[test]
    fn cfs_is_deterministic_per_seed() {
        let programs = [(0u32, 2usize), (1, 2), (SERVER_PROGRAM, 2)];
        let a = CfsPolicy::new(42, 0.3).place(SHAPE, &programs);
        let b = CfsPolicy::new(42, 0.3).place(SHAPE, &programs);
        for s in a.slots() {
            assert_eq!(a.core_of(s), b.core_of(s));
        }
    }

    #[test]
    fn cfs_places_everyone() {
        let programs = [(0u32, 4usize), (1, 4)];
        let a = CfsPolicy::new(1, 0.3).place(SHAPE, &programs);
        assert_eq!(a.slots().count(), 8);
    }

    #[test]
    fn cfs_with_stacking_prob_stacks_sometimes() {
        // 6 procs on 6 cores: a NUMA/program-aware policy would never stack;
        // the CFS baseline with wake affinity does, over enough seeds.
        let programs = [(0u32, 6usize)];
        let stacked_seeds = (0..50)
            .filter(|&seed| {
                CfsPolicy::new(seed, 0.3)
                    .place(SHAPE, &programs)
                    .stacked_cores()
                    > 0
            })
            .count();
        assert!(stacked_seeds > 10, "only {stacked_seeds}/50 seeds stacked");
    }

    #[test]
    fn cfs_zero_stack_prob_never_stacks_when_cores_suffice() {
        let programs = [(0u32, 6usize)];
        for seed in 0..20 {
            let a = CfsPolicy::new(seed, 0.0).place(SHAPE, &programs);
            assert_eq!(a.stacked_cores(), 0);
        }
    }

    #[test]
    fn contention_model_penalizes_stacking() {
        let model = ContentionModel {
            per_proc_copy_bw: 2e9,
            ctx_switch_efficiency: 0.7,
        };
        let mut a = CoreAssignment::new(SHAPE);
        a.assign(slot(0, 0), 0);
        a.assign(slot(0, 1), 0); // stacked pair
        a.assign(slot(0, 2), 3); // alone
        let rates = model.proc_rates(&a, |_| true);
        let by_slot: HashMap<ProcSlot, f64> = rates.iter().map(|r| (r.slot, r.rate_cap)).collect();
        assert_eq!(by_slot[&slot(0, 2)], 2e9);
        assert!((by_slot[&slot(0, 0)] - 2e9 / 2.0 * 0.7).abs() < 1.0);
        assert_eq!(by_slot[&slot(0, 0)], by_slot[&slot(0, 1)]);
    }

    #[test]
    fn contention_model_ignores_inactive() {
        let model = ContentionModel {
            per_proc_copy_bw: 2e9,
            ctx_switch_efficiency: 0.7,
        };
        let mut a = CoreAssignment::new(SHAPE);
        a.assign(slot(0, 0), 0);
        a.assign(slot(SERVER_PROGRAM, 0), 0); // idle server stacked on top
        let rates = model.proc_rates(&a, |s| s.program == 0);
        assert_eq!(rates.len(), 1);
        // Idle server does not steal the core.
        assert_eq!(rates[0].rate_cap, 2e9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn socket_of_bounds_checked() {
        SHAPE.socket_of(6);
    }

    #[test]
    #[should_panic(expected = "unplaced slot")]
    fn migrating_unplaced_slot_panics() {
        let mut a = CoreAssignment::new(SHAPE);
        a.migrate(slot(0, 0), 1);
    }

    #[test]
    fn cfs_oversubscription_places_everyone() {
        // 10 procs on 6 cores: every proc lands somewhere, stacking is
        // inevitable.
        let programs = [(0u32, 10usize)];
        let a = CfsPolicy::new(5, 0.3).place(SHAPE, &programs);
        assert_eq!(a.slots().count(), 10);
        assert!(a.stacked_cores() >= 2);
    }

    #[test]
    fn contention_three_deep_stacking_compounds() {
        let model = ContentionModel {
            per_proc_copy_bw: 3e9,
            ctx_switch_efficiency: 0.5,
        };
        let mut a = CoreAssignment::new(SHAPE);
        for i in 0..3 {
            a.assign(slot(0, i), 0);
        }
        let rates = model.proc_rates(&a, |_| true);
        // 3-way timeslice × 0.5² cache penalty.
        for r in rates {
            assert!((r.rate_cap - 3e9 / 3.0 * 0.25).abs() < 1.0);
        }
    }

    #[test]
    fn proc_rates_report_socket() {
        let model = ContentionModel {
            per_proc_copy_bw: 1e9,
            ctx_switch_efficiency: 0.7,
        };
        let mut a = CoreAssignment::new(SHAPE);
        a.assign(slot(0, 0), 4); // socket 1
        let rates = model.proc_rates(&a, |_| true);
        assert_eq!(rates[0].socket, 1);
    }
}
