//! Error type shared by the substrate.

use std::fmt;

/// Errors produced by the simulation substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A resource id referenced a resource that was never registered.
    UnknownResource(usize),
    /// A resource was registered with a non-positive bandwidth.
    InvalidBandwidth(f64),
    /// A flow was submitted with an invalid parameter (negative size, etc.).
    InvalidFlow(String),
    /// A read touched a byte range with no data (hole in a sparse buffer)
    /// where the caller required full coverage.
    Hole { offset: u64, len: u64 },
    /// Generic out-of-capacity condition (log full, tier full, ...).
    OutOfCapacity { requested: u64, available: u64 },
    /// A topology/config parameter was inconsistent.
    InvalidConfig(String),
    /// A transient I/O fault (injected or environmental): the operation
    /// failed at `site` but is safe to retry. `attempt` is how many
    /// attempts had been made when the error was surfaced (0 = first try;
    /// retry loops rewrite it so an exhausted error carries the budget).
    Transient { site: String, attempt: u64 },
    /// A checksum verify failed and no clean copy of the data exists.
    /// Not retryable: the bytes on every copy disagree with the checksum
    /// stamped at write commit. `site` is the verify point that detected
    /// it (`read_fetch`, `flush_gather`, `tiering_copy`, `repair_source`,
    /// `scrub`).
    Integrity { site: String, offset: u64, len: u64 },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownResource(id) => write!(f, "unknown resource id {id}"),
            SimError::InvalidBandwidth(bw) => write!(f, "invalid bandwidth {bw}"),
            SimError::InvalidFlow(msg) => write!(f, "invalid flow: {msg}"),
            SimError::Hole { offset, len } => {
                write!(f, "hole in data at offset {offset} (+{len} bytes)")
            }
            SimError::OutOfCapacity {
                requested,
                available,
            } => write!(
                f,
                "out of capacity: requested {requested} bytes, {available} available"
            ),
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::Transient { site, attempt } => {
                write!(f, "transient fault at {site} (attempt {attempt})")
            }
            SimError::Integrity { site, offset, len } => write!(
                f,
                "integrity failure at {site}: no clean copy of [{offset}, +{len} bytes)"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Convenience alias used throughout the substrate.
pub type SimResult<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_display_names_site_and_attempt() {
        let e = SimError::Transient {
            site: "chain_append".into(),
            attempt: 3,
        };
        let text = e.to_string();
        assert!(text.contains("transient"), "{text}");
        assert!(text.contains("chain_append"), "{text}");
        assert!(text.contains('3'), "{text}");
    }
}
