//! Cluster topology: a Cori-like machine as flow resources.
//!
//! [`ClusterSpec`] describes the job's slice of the machine; [`build`]
//! registers each contended device with a [`FlowSim`] and returns the
//! resource ids experiments use to route flows:
//!
//! * one memory-system resource per NUMA socket per node,
//! * one NIC resource per node,
//! * one SSD resource per burst-buffer node,
//! * one resource per Lustre OST.
//!
//! [`build`]: ClusterSpec::build

use crate::calibration::Calibration;
use crate::cores::NodeShape;
use crate::error::{SimError, SimResult};
use crate::flow::FlowSim;
use crate::resource::ResourceId;

/// The job's view of the machine.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Compute nodes allocated to the job.
    pub nodes: usize,
    /// Platform constants.
    pub cal: Calibration,
}

impl ClusterSpec {
    /// A Cori-like job of `nodes` Haswell nodes with default calibration.
    pub fn cori_like(nodes: usize) -> Self {
        ClusterSpec {
            nodes,
            cal: Calibration::default(),
        }
    }

    /// Node geometry.
    pub fn node_shape(&self) -> NodeShape {
        NodeShape {
            sockets: self.cal.sockets_per_node,
            cores_per_socket: self.cal.cores_per_socket,
        }
    }

    /// Burst-buffer nodes in this job's allocation.
    pub fn bb_nodes(&self) -> usize {
        self.cal.bb_nodes_for_job(self.nodes)
    }

    /// Register all devices with `sim`.
    pub fn build(&self, sim: &mut FlowSim) -> SimResult<ClusterResources> {
        if self.nodes == 0 {
            return Err(SimError::InvalidConfig("cluster with 0 nodes".into()));
        }
        let mut socket_mem = Vec::with_capacity(self.nodes);
        let mut nic = Vec::with_capacity(self.nodes);
        for n in 0..self.nodes {
            let mut sockets = Vec::with_capacity(self.cal.sockets_per_node);
            for s in 0..self.cal.sockets_per_node {
                sockets.push(
                    sim.add_resource(format!("node{n}.socket{s}.mem"), self.cal.socket_mem_bw)?,
                );
            }
            socket_mem.push(sockets);
            nic.push(sim.add_resource(format!("node{n}.nic"), self.cal.nic_bw)?);
        }
        let bb = (0..self.bb_nodes())
            .map(|b| sim.add_resource(format!("bb{b}.ssd"), self.cal.bb_node_bw))
            .collect::<SimResult<Vec<_>>>()?;
        let ost = (0..self.cal.ost_count)
            .map(|o| sim.add_resource(format!("ost{o}"), self.cal.ost_bw))
            .collect::<SimResult<Vec<_>>>()?;
        Ok(ClusterResources {
            socket_mem,
            nic,
            bb,
            ost,
        })
    }
}

/// Resource ids of every registered device.
#[derive(Debug, Clone)]
pub struct ClusterResources {
    /// `socket_mem[node][socket]` — per-socket memory systems.
    pub socket_mem: Vec<Vec<ResourceId>>,
    /// `nic[node]` — per-node NIC injection.
    pub nic: Vec<ResourceId>,
    /// `bb[i]` — per-burst-buffer-node SSD.
    pub bb: Vec<ResourceId>,
    /// `ost[i]` — per-OST disk bandwidth.
    pub ost: Vec<ResourceId>,
}

impl ClusterResources {
    /// The burst-buffer node a round-robin layout maps `index` to.
    pub fn bb_for(&self, index: u64) -> ResourceId {
        self.bb[(index % self.bb.len() as u64) as usize]
    }

    /// The OST resource with logical index `i` (mod count).
    pub fn ost_for(&self, i: u64) -> ResourceId {
        self.ost[(i % self.ost.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowSpec;
    use crate::time::SimTime;

    #[test]
    fn build_registers_all_devices() {
        let spec = ClusterSpec::cori_like(4);
        let mut sim = FlowSim::new();
        let res = spec.build(&mut sim).unwrap();
        assert_eq!(res.socket_mem.len(), 4);
        assert_eq!(res.socket_mem[0].len(), 2);
        assert_eq!(res.nic.len(), 4);
        assert_eq!(res.bb.len(), spec.bb_nodes());
        assert_eq!(res.ost.len(), 248);
        let expected = 4 * 2 + 4 + spec.bb_nodes() + 248;
        assert_eq!(sim.resource_count(), expected);
    }

    #[test]
    fn zero_nodes_rejected() {
        let spec = ClusterSpec::cori_like(0);
        assert!(spec.build(&mut FlowSim::new()).is_err());
    }

    #[test]
    fn resources_are_usable_in_flows() {
        let spec = ClusterSpec::cori_like(2);
        let mut sim = FlowSim::new();
        let res = spec.build(&mut sim).unwrap();
        // Node 0 writes 1 GB over its NIC to OST 0.
        sim.add_flow(FlowSpec::new(
            SimTime::ZERO,
            1e9,
            vec![res.nic[0], res.ost[0]],
        ))
        .unwrap();
        let out = sim.run();
        // OST (1.2 GB/s) is the bottleneck, not the 9 GB/s NIC.
        let expect = 1e9 / spec.cal.ost_bw;
        assert!((out[0].finish.secs() - expect).abs() < 1e-9);
    }

    #[test]
    fn round_robin_helpers_wrap() {
        let spec = ClusterSpec::cori_like(2);
        let mut sim = FlowSim::new();
        let res = spec.build(&mut sim).unwrap();
        let n = res.bb.len() as u64;
        assert_eq!(res.bb_for(0), res.bb_for(n));
        assert_eq!(res.ost_for(1), res.ost_for(1 + 248));
    }

    #[test]
    fn node_shape_matches_calibration() {
        let spec = ClusterSpec::cori_like(1);
        let shape = spec.node_shape();
        assert_eq!(shape.cores(), spec.cal.cores_per_node());
    }
}
