//! Max–min fair flow-level discrete-event simulator.
//!
//! This is the timing engine of the reproduction. A *flow* is a bulk data
//! transfer that traverses an ordered set of [`Resource`]s (its *path*) —
//! e.g. a process flushing to an OST traverses its node's NIC, the fabric,
//! and the OST. At every instant, bandwidth is divided among the active
//! flows by progressive-filling **max–min fairness**: the most contended
//! resource is saturated first, its flows are fixed at their fair share, its
//! bandwidth is subtracted, and the procedure repeats. Flow completion and
//! arrival events re-trigger the allocation.
//!
//! Because HPC I/O phases are bulk-synchronous and SPMD-symmetric, flows are
//! submitted as *groups* of `count` identical members — 8192 ranks writing
//! 256 MB each through per-socket memory systems collapse into a handful of
//! groups, keeping paper-scale experiments fast.
//!
//! Per-flow `rate_cap` models endpoint limits (a single core's copy
//! bandwidth); `latency` models fixed startup costs (RPCs, lock acquisition)
//! that delay the transfer without consuming bandwidth.

use crate::error::{SimError, SimResult};
use crate::resource::{Resource, ResourceId};
use crate::time::SimTime;

/// Identifier of a submitted flow group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId(pub usize);

/// A group of `count` identical flows.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Submission time.
    pub start: SimTime,
    /// Bytes *per flow*.
    pub bytes: f64,
    /// Number of identical flows in the group (≥ 1).
    pub count: u64,
    /// Resources each flow traverses. Duplicates are removed.
    pub path: Vec<ResourceId>,
    /// Optional per-flow rate cap (bytes/s), e.g. single-core copy speed.
    pub rate_cap: Option<f64>,
    /// Fixed delay before the transfer starts (seconds).
    pub latency: f64,
}

impl FlowSpec {
    /// A single flow of `bytes` over `path` starting at `start`.
    pub fn new(start: SimTime, bytes: f64, path: Vec<ResourceId>) -> Self {
        FlowSpec {
            start,
            bytes,
            count: 1,
            path,
            rate_cap: None,
            latency: 0.0,
        }
    }

    /// Set the group size.
    pub fn with_count(mut self, count: u64) -> Self {
        self.count = count;
        self
    }

    /// Set a per-flow rate cap.
    pub fn with_rate_cap(mut self, cap: f64) -> Self {
        self.rate_cap = Some(cap);
        self
    }

    /// Set a fixed startup latency.
    pub fn with_latency(mut self, latency: f64) -> Self {
        self.latency = latency;
        self
    }
}

/// Result of one flow group after [`FlowSim::run`].
#[derive(Debug, Clone, Copy)]
pub struct FlowOutcome {
    /// The id returned by [`FlowSim::add_flow`].
    pub id: FlowId,
    /// Submission time (before latency).
    pub start: SimTime,
    /// Completion time of the group (all member flows finish together).
    pub finish: SimTime,
    /// Bytes per flow.
    pub bytes: f64,
    /// Flows in the group.
    pub count: u64,
}

impl FlowOutcome {
    /// Aggregate throughput of the group in bytes/second.
    pub fn rate(&self) -> f64 {
        let dur = self.finish - self.start;
        if dur <= 0.0 {
            f64::INFINITY
        } else {
            self.bytes * self.count as f64 / dur
        }
    }
}

#[derive(Debug)]
struct GroupState {
    id: FlowId,
    spec: FlowSpec,
    /// Effective start (submission + latency).
    ready: SimTime,
    /// Bytes remaining per flow.
    remaining: f64,
    finish: Option<SimTime>,
}

/// The flow simulator. Register resources, add flows, then [`run`].
///
/// [`run`]: FlowSim::run
#[derive(Debug, Default)]
pub struct FlowSim {
    resources: Vec<Resource>,
    groups: Vec<GroupState>,
    next_id: usize,
}

/// Bytes below which a flow is considered complete (guards float drift).
const BYTES_EPS: f64 = 1e-6;

impl FlowSim {
    /// A simulator with no resources or flows.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a device. Returns its id for use in flow paths.
    pub fn add_resource(
        &mut self,
        name: impl Into<String>,
        bandwidth: f64,
    ) -> SimResult<ResourceId> {
        let r = Resource::new(name, bandwidth)?;
        self.resources.push(r);
        Ok(ResourceId(self.resources.len() - 1))
    }

    /// Look up a registered resource.
    pub fn resource(&self, id: ResourceId) -> SimResult<&Resource> {
        self.resources
            .get(id.0)
            .ok_or(SimError::UnknownResource(id.0))
    }

    /// Number of registered resources.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// Submit a flow group.
    pub fn add_flow(&mut self, mut spec: FlowSpec) -> SimResult<FlowId> {
        if !(spec.bytes.is_finite() && spec.bytes >= 0.0) {
            return Err(SimError::InvalidFlow(format!("bytes = {}", spec.bytes)));
        }
        if spec.count == 0 {
            return Err(SimError::InvalidFlow("count = 0".into()));
        }
        if !(spec.latency.is_finite() && spec.latency >= 0.0) {
            return Err(SimError::InvalidFlow(format!("latency = {}", spec.latency)));
        }
        if let Some(cap) = spec.rate_cap {
            if !(cap.is_finite() && cap > 0.0) {
                return Err(SimError::InvalidFlow(format!("rate_cap = {cap}")));
            }
        }
        for rid in &spec.path {
            if rid.0 >= self.resources.len() {
                return Err(SimError::UnknownResource(rid.0));
            }
        }
        // Dedupe path: traversing a device twice still shares it once at the
        // flow level.
        spec.path.sort_unstable();
        spec.path.dedup();

        let id = FlowId(self.next_id);
        self.next_id += 1;
        self.groups.push(GroupState {
            id,
            ready: spec.start + spec.latency,
            remaining: spec.bytes,
            finish: None,
            spec,
        });
        Ok(id)
    }

    /// Max–min fair per-flow rates for the given active group indices.
    /// Returns rates parallel to `active`.
    fn maxmin_rates(&self, active: &[usize]) -> Vec<f64> {
        let mut rates = vec![f64::INFINITY; active.len()];
        if active.is_empty() {
            return rates;
        }
        let mut residual: Vec<f64> = self.resources.iter().map(|r| r.bandwidth).collect();
        let mut unfixed: Vec<bool> = vec![true; active.len()];
        let mut n_unfixed = active.len();

        while n_unfixed > 0 {
            // Fair share per flow on each resource with unfixed flows.
            let mut flows_on: Vec<u64> = vec![0; self.resources.len()];
            for (i, &gi) in active.iter().enumerate() {
                if unfixed[i] {
                    for rid in &self.groups[gi].spec.path {
                        flows_on[rid.0] += self.groups[gi].spec.count;
                    }
                }
            }
            let mut bottleneck_share = f64::INFINITY;
            let mut bottleneck: Option<usize> = None;
            for (r, &n) in flows_on.iter().enumerate() {
                if n > 0 {
                    let share = residual[r].max(0.0) / n as f64;
                    if share < bottleneck_share {
                        bottleneck_share = share;
                        bottleneck = Some(r);
                    }
                }
            }
            // The smallest unfixed rate cap may bind before any resource.
            let mut cap_min = f64::INFINITY;
            for (i, &gi) in active.iter().enumerate() {
                if unfixed[i] {
                    if let Some(cap) = self.groups[gi].spec.rate_cap {
                        cap_min = cap_min.min(cap);
                    }
                }
            }

            if cap_min < bottleneck_share {
                // Fix every group whose cap binds at or below this level.
                for (i, &gi) in active.iter().enumerate() {
                    if !unfixed[i] {
                        continue;
                    }
                    let g = &self.groups[gi];
                    if g.spec.rate_cap.is_some_and(|c| c <= cap_min) {
                        let rate = g.spec.rate_cap.expect("checked above");
                        rates[i] = rate;
                        unfixed[i] = false;
                        n_unfixed -= 1;
                        for rid in &g.spec.path {
                            residual[rid.0] -= rate * g.spec.count as f64;
                        }
                    }
                }
            } else if let Some(br) = bottleneck {
                // Fix every unfixed group crossing the bottleneck resource.
                for (i, &gi) in active.iter().enumerate() {
                    if !unfixed[i] {
                        continue;
                    }
                    let g = &self.groups[gi];
                    if g.spec.path.iter().any(|rid| rid.0 == br) {
                        rates[i] = bottleneck_share;
                        unfixed[i] = false;
                        n_unfixed -= 1;
                        for rid in &g.spec.path {
                            residual[rid.0] -= bottleneck_share * g.spec.count as f64;
                        }
                    }
                }
            } else {
                // Remaining groups have empty paths and no caps: unbounded.
                break;
            }
        }
        rates
    }

    /// Run all submitted flows to completion; returns per-group outcomes in
    /// submission order. The simulator can be reused: completed groups keep
    /// their results and further flows can be added and `run` again.
    pub fn run(&mut self) -> Vec<FlowOutcome> {
        // Zero-byte groups complete the moment they are ready.
        for g in &mut self.groups {
            if g.finish.is_none() && g.remaining <= BYTES_EPS {
                g.finish = Some(g.ready);
            }
        }

        let mut now = SimTime::ZERO;
        loop {
            // Active: ready, unfinished. Pending: not yet ready.
            let active: Vec<usize> = (0..self.groups.len())
                .filter(|&i| self.groups[i].finish.is_none() && self.groups[i].ready <= now)
                .collect();
            let next_arrival: Option<SimTime> = self
                .groups
                .iter()
                .filter(|g| g.finish.is_none() && g.ready > now)
                .map(|g| g.ready)
                .min();

            if active.is_empty() {
                match next_arrival {
                    Some(t) => {
                        now = t;
                        continue;
                    }
                    None => break, // everything finished
                }
            }

            let rates = self.maxmin_rates(&active);

            // Unbounded flows (empty path, no cap) finish instantly.
            let mut any_instant = false;
            for (i, &gi) in active.iter().enumerate() {
                if rates[i].is_infinite() {
                    self.groups[gi].remaining = 0.0;
                    self.groups[gi].finish = Some(now);
                    any_instant = true;
                }
            }
            if any_instant {
                continue; // re-evaluate allocation
            }

            // Time until the first group drains at current rates.
            let mut dt = f64::INFINITY;
            for (i, &gi) in active.iter().enumerate() {
                if rates[i] > 0.0 {
                    dt = dt.min(self.groups[gi].remaining / rates[i]);
                }
            }
            // ... or the next arrival, whichever is sooner.
            if let Some(t) = next_arrival {
                dt = dt.min(t - now);
            }
            assert!(
                dt.is_finite(),
                "flow simulation stalled: active flows with zero rate and no arrivals"
            );

            let new_now = now + dt;
            for (i, &gi) in active.iter().enumerate() {
                let g = &mut self.groups[gi];
                g.remaining -= rates[i] * dt;
                if g.remaining <= BYTES_EPS {
                    g.remaining = 0.0;
                    g.finish = Some(new_now);
                }
            }
            now = new_now;
        }

        let mut outcomes: Vec<FlowOutcome> = self
            .groups
            .iter()
            .map(|g| FlowOutcome {
                id: g.id,
                start: g.spec.start,
                finish: g.finish.expect("all groups finished"),
                bytes: g.spec.bytes,
                count: g.spec.count,
            })
            .collect();
        outcomes.sort_by_key(|o| o.id.0);
        outcomes
    }

    /// Completion time of the latest flow (after `run`).
    pub fn makespan(outcomes: &[FlowOutcome]) -> SimTime {
        outcomes
            .iter()
            .map(|o| o.finish)
            .max()
            .unwrap_or(SimTime::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) {
        assert!(
            (a - b).abs() < 1e-6 * b.abs().max(1.0),
            "expected ≈{b}, got {a}"
        );
    }

    #[test]
    fn single_flow_takes_bytes_over_bandwidth() {
        let mut sim = FlowSim::new();
        let r = sim.add_resource("disk", 100.0).unwrap();
        sim.add_flow(FlowSpec::new(SimTime::ZERO, 1000.0, vec![r]))
            .unwrap();
        let out = sim.run();
        approx(out[0].finish.secs(), 10.0);
        approx(out[0].rate(), 100.0);
    }

    #[test]
    fn two_flows_share_fairly() {
        let mut sim = FlowSim::new();
        let r = sim.add_resource("disk", 100.0).unwrap();
        for _ in 0..2 {
            sim.add_flow(FlowSpec::new(SimTime::ZERO, 1000.0, vec![r]))
                .unwrap();
        }
        let out = sim.run();
        approx(out[0].finish.secs(), 20.0);
        approx(out[1].finish.secs(), 20.0);
    }

    #[test]
    fn group_of_n_equals_n_individual_flows() {
        let mut a = FlowSim::new();
        let ra = a.add_resource("disk", 100.0).unwrap();
        a.add_flow(FlowSpec::new(SimTime::ZERO, 100.0, vec![ra]).with_count(8))
            .unwrap();
        let out_a = a.run();

        let mut b = FlowSim::new();
        let rb = b.add_resource("disk", 100.0).unwrap();
        for _ in 0..8 {
            b.add_flow(FlowSpec::new(SimTime::ZERO, 100.0, vec![rb]))
                .unwrap();
        }
        let out_b = b.run();
        approx(out_a[0].finish.secs(), out_b[7].finish.secs());
    }

    #[test]
    fn maxmin_bottleneck_redistribution() {
        // A on r1 (bw 10); B on r1+r2 (r2 bw 4). B is bottlenecked at 4 by
        // r2; A gets the residual 6 on r1. A: 40/6 ≈ 6.667 s; B: 40/4 = 10 s.
        let mut sim = FlowSim::new();
        let r1 = sim.add_resource("r1", 10.0).unwrap();
        let r2 = sim.add_resource("r2", 4.0).unwrap();
        let a = sim
            .add_flow(FlowSpec::new(SimTime::ZERO, 40.0, vec![r1]))
            .unwrap();
        let b = sim
            .add_flow(FlowSpec::new(SimTime::ZERO, 40.0, vec![r1, r2]))
            .unwrap();
        let out = sim.run();
        approx(out[a.0].finish.secs(), 40.0 / 6.0);
        approx(out[b.0].finish.secs(), 10.0);
    }

    #[test]
    fn rate_released_after_completion() {
        // Two flows share bw 100; flow A is 500 B, B is 1500 B. Phase 1:
        // both at 50 until A drains at t=10. Phase 2: B alone at 100,
        // remaining 1000 → finishes at t=20.
        let mut sim = FlowSim::new();
        let r = sim.add_resource("r", 100.0).unwrap();
        sim.add_flow(FlowSpec::new(SimTime::ZERO, 500.0, vec![r]))
            .unwrap();
        sim.add_flow(FlowSpec::new(SimTime::ZERO, 1500.0, vec![r]))
            .unwrap();
        let out = sim.run();
        approx(out[0].finish.secs(), 10.0);
        approx(out[1].finish.secs(), 20.0);
    }

    #[test]
    fn staggered_arrivals() {
        // Flow A (1000 B) starts at 0 alone at 100 B/s. Flow B arrives at
        // t=5 when A has 500 left; they share 50/50. A drains at 5+10=15;
        // B then speeds to 100, remaining 1000-500=500 → 15+5=20.
        let mut sim = FlowSim::new();
        let r = sim.add_resource("r", 100.0).unwrap();
        sim.add_flow(FlowSpec::new(SimTime::ZERO, 1000.0, vec![r]))
            .unwrap();
        sim.add_flow(FlowSpec::new(SimTime::from_secs(5.0), 1000.0, vec![r]))
            .unwrap();
        let out = sim.run();
        approx(out[0].finish.secs(), 15.0);
        approx(out[1].finish.secs(), 20.0);
    }

    #[test]
    fn rate_cap_binds_below_fair_share() {
        let mut sim = FlowSim::new();
        let r = sim.add_resource("r", 100.0).unwrap();
        sim.add_flow(FlowSpec::new(SimTime::ZERO, 100.0, vec![r]).with_rate_cap(10.0))
            .unwrap();
        let out = sim.run();
        approx(out[0].finish.secs(), 10.0);
    }

    #[test]
    fn rate_cap_releases_bandwidth_to_others() {
        // Capped flow takes 10; uncapped flow gets the remaining 90.
        let mut sim = FlowSim::new();
        let r = sim.add_resource("r", 100.0).unwrap();
        sim.add_flow(FlowSpec::new(SimTime::ZERO, 100.0, vec![r]).with_rate_cap(10.0))
            .unwrap();
        sim.add_flow(FlowSpec::new(SimTime::ZERO, 450.0, vec![r]))
            .unwrap();
        let out = sim.run();
        approx(out[0].finish.secs(), 10.0);
        approx(out[1].finish.secs(), 5.0);
    }

    #[test]
    fn latency_delays_start() {
        let mut sim = FlowSim::new();
        let r = sim.add_resource("r", 100.0).unwrap();
        sim.add_flow(FlowSpec::new(SimTime::ZERO, 100.0, vec![r]).with_latency(2.0))
            .unwrap();
        let out = sim.run();
        approx(out[0].finish.secs(), 3.0);
    }

    #[test]
    fn zero_byte_flow_finishes_at_ready_time() {
        let mut sim = FlowSim::new();
        let r = sim.add_resource("r", 100.0).unwrap();
        sim.add_flow(FlowSpec::new(SimTime::from_secs(1.0), 0.0, vec![r]).with_latency(0.5))
            .unwrap();
        let out = sim.run();
        approx(out[0].finish.secs(), 1.5);
    }

    #[test]
    fn empty_path_finishes_instantly() {
        let mut sim = FlowSim::new();
        sim.add_flow(FlowSpec::new(SimTime::from_secs(3.0), 100.0, vec![]))
            .unwrap();
        let out = sim.run();
        approx(out[0].finish.secs(), 3.0);
    }

    #[test]
    fn duplicate_path_entries_count_once() {
        let mut sim = FlowSim::new();
        let r = sim.add_resource("r", 100.0).unwrap();
        sim.add_flow(FlowSpec::new(SimTime::ZERO, 1000.0, vec![r, r, r]))
            .unwrap();
        let out = sim.run();
        approx(out[0].finish.secs(), 10.0);
    }

    #[test]
    fn invalid_flows_rejected() {
        let mut sim = FlowSim::new();
        let r = sim.add_resource("r", 1.0).unwrap();
        assert!(sim
            .add_flow(FlowSpec::new(SimTime::ZERO, -1.0, vec![r]))
            .is_err());
        assert!(sim
            .add_flow(FlowSpec::new(SimTime::ZERO, 1.0, vec![r]).with_count(0))
            .is_err());
        assert!(sim
            .add_flow(FlowSpec::new(SimTime::ZERO, 1.0, vec![ResourceId(99)]))
            .is_err());
        assert!(sim
            .add_flow(FlowSpec::new(SimTime::ZERO, 1.0, vec![r]).with_rate_cap(0.0))
            .is_err());
    }

    #[test]
    fn simulator_is_reusable_across_runs() {
        let mut sim = FlowSim::new();
        let r = sim.add_resource("r", 100.0).unwrap();
        sim.add_flow(FlowSpec::new(SimTime::ZERO, 1000.0, vec![r]))
            .unwrap();
        let first = sim.run();
        approx(first[0].finish.secs(), 10.0);
        // Add a second flow starting where the first ended; re-running
        // keeps the first group's result and completes the new one.
        sim.add_flow(FlowSpec::new(SimTime::from_secs(10.0), 500.0, vec![r]))
            .unwrap();
        let both = sim.run();
        approx(both[0].finish.secs(), 10.0);
        approx(both[1].finish.secs(), 15.0);
    }

    #[test]
    fn resource_lookup_and_errors() {
        let mut sim = FlowSim::new();
        let r = sim.add_resource("disk", 5.0).unwrap();
        assert_eq!(sim.resource(r).unwrap().name, "disk");
        assert!(sim.resource(ResourceId(9)).is_err());
        assert!(sim.add_resource("bad", -1.0).is_err());
    }

    #[test]
    fn outcome_rate_helper() {
        let mut sim = FlowSim::new();
        let r = sim.add_resource("r", 50.0).unwrap();
        sim.add_flow(FlowSpec::new(SimTime::ZERO, 100.0, vec![r]).with_count(2))
            .unwrap();
        let out = sim.run();
        // Two flows × 100 B over 4 s → 50 B/s aggregate.
        approx(out[0].rate(), 50.0);
    }

    #[test]
    fn large_symmetric_groups_are_fast_and_fair() {
        // 8192 flows over 512 sockets: grouped submission must solve quickly
        // and give every group the same finish time.
        let mut sim = FlowSim::new();
        let sockets: Vec<ResourceId> = (0..512)
            .map(|i| sim.add_resource(format!("s{i}"), 60e9).unwrap())
            .collect();
        for s in &sockets {
            sim.add_flow(FlowSpec::new(SimTime::ZERO, 256e6, vec![*s]).with_count(16))
                .unwrap();
        }
        let out = sim.run();
        let t0 = out[0].finish.secs();
        approx(t0, 256e6 * 16.0 / 60e9);
        for o in &out {
            approx(o.finish.secs(), t0);
        }
    }
}
