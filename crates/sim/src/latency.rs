//! Analytic latency models for RPCs and MPI-style collectives.
//!
//! These costs delay flows (they do not consume bandwidth) and are the basis
//! of the Collective Open/Close (COC) study: without COC, `p` processes all
//! send the same metadata RPC to one server, which services them serially —
//! an all-to-one storm. With COC only the root talks to the server and
//! broadcasts the result in `log2(p)` network steps.

/// Time for one RPC round trip plus server-side service.
pub fn rpc_round_trip(net_latency: f64, service_time: f64) -> f64 {
    2.0 * net_latency + service_time
}

/// Serial service of `p` identical RPCs at one server (all-to-one storm).
/// The requests overlap in the network but queue at the server, so the last
/// requester waits `p` service times plus one round trip.
pub fn all_to_one_storm(p: u64, net_latency: f64, service_time: f64) -> f64 {
    2.0 * net_latency + p as f64 * service_time
}

/// Binomial-tree broadcast/barrier cost over `p` processes.
pub fn tree_collective(p: u64, net_latency: f64) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    (p as f64).log2().ceil() * 2.0 * net_latency
}

/// Collective open/close cost with the COC optimization: one root RPC plus a
/// broadcast of the result.
pub fn collective_open_close(p: u64, net_latency: f64, service_time: f64) -> f64 {
    rpc_round_trip(net_latency, service_time) + tree_collective(p, net_latency)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LAT: f64 = 2e-6;
    const SVC: f64 = 20e-6;

    #[test]
    fn storm_scales_linearly() {
        let t1 = all_to_one_storm(64, LAT, SVC);
        let t2 = all_to_one_storm(8192, LAT, SVC);
        assert!(t2 / t1 > 100.0);
        assert!((all_to_one_storm(1, LAT, SVC) - rpc_round_trip(LAT, SVC)).abs() < 1e-12);
    }

    #[test]
    fn coc_scales_logarithmically() {
        let t64 = collective_open_close(64, LAT, SVC);
        let t8k = collective_open_close(8192, LAT, SVC);
        // 128× more processes, far less than 3× the cost.
        assert!(t8k < 3.0 * t64);
    }

    #[test]
    fn coc_beats_storm_at_scale() {
        assert!(collective_open_close(8192, LAT, SVC) < all_to_one_storm(8192, LAT, SVC) / 100.0);
    }

    #[test]
    fn tree_collective_edge_cases() {
        assert_eq!(tree_collective(1, LAT), 0.0);
        assert_eq!(tree_collective(0, LAT), 0.0);
        assert!(tree_collective(2, LAT) > 0.0);
    }
}
