//! Sparse extent buffers.
//!
//! Every functional store in the reproduction — log-file chunks, burst-buffer
//! objects, Lustre OST objects — is a [`SparseBuffer`]: an ordered map from
//! byte offset to [`Payload`] extent. Writes split and overwrite overlapping
//! extents (last-writer-wins, byte-granular); reads gather extents and can
//! either fill holes with zeros or fail.

use crate::error::{SimError, SimResult};
use crate::payload::Payload;
use std::collections::BTreeMap;

/// A sparse, byte-addressed buffer of non-overlapping payload extents.
#[derive(Debug, Clone, Default)]
pub struct SparseBuffer {
    /// start offset → extent payload. Invariant: extents never overlap and
    /// are never empty.
    extents: BTreeMap<u64, Payload>,
}

impl SparseBuffer {
    /// A new, empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored extents (after splitting/merging by writes).
    pub fn extent_count(&self) -> usize {
        self.extents.len()
    }

    /// Total bytes stored (sum of extent lengths, not the span).
    pub fn bytes_stored(&self) -> u64 {
        self.extents.values().map(Payload::len).sum()
    }

    /// One past the last written byte, or 0 when empty.
    pub fn end_offset(&self) -> u64 {
        self.extents
            .last_key_value()
            .map(|(start, p)| start + p.len())
            .unwrap_or(0)
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.extents.is_empty()
    }

    /// Remove all extents.
    pub fn clear(&mut self) {
        self.extents.clear();
    }

    /// Write `payload` at `offset`, overwriting any overlapped bytes.
    pub fn write(&mut self, offset: u64, payload: Payload) {
        let len = payload.len();
        if len == 0 {
            return;
        }
        let end = offset
            .checked_add(len)
            .expect("write range overflows u64 address space");

        // Find all extents overlapping [offset, end). An extent starting
        // before `offset` may still overlap, so step back one entry.
        let first_candidate = self
            .extents
            .range(..offset)
            .next_back()
            .map(|(s, _)| *s)
            .unwrap_or(offset);
        let overlapping: Vec<u64> = self
            .extents
            .range(first_candidate..end)
            .filter(|(s, p)| **s < end && **s + p.len() > offset)
            .map(|(s, _)| *s)
            .collect();

        for s in overlapping {
            let existing = self.extents.remove(&s).expect("key from range scan");
            let e_end = s + existing.len();
            if s < offset {
                // Keep the left fragment.
                self.extents.insert(s, existing.slice(0, offset - s));
            }
            if e_end > end {
                // Keep the right fragment.
                self.extents
                    .insert(end, existing.slice(end - s, e_end - end));
            }
        }
        self.extents.insert(offset, payload);
    }

    /// Read `[offset, offset + len)`, filling unwritten holes with zeros.
    pub fn read(&self, offset: u64, len: u64) -> Payload {
        self.gather(offset, len, /* tolerate_holes = */ true)
            .expect("tolerant read cannot fail")
    }

    /// Read `[offset, offset + len)`, failing on the first hole.
    pub fn read_exact(&self, offset: u64, len: u64) -> SimResult<Payload> {
        self.gather(offset, len, false)
    }

    fn gather(&self, offset: u64, len: u64, tolerate_holes: bool) -> SimResult<Payload> {
        if len == 0 {
            return Ok(Payload::empty());
        }
        let end = offset
            .checked_add(len)
            .expect("read range overflows u64 address space");
        let mut parts: Vec<Payload> = Vec::new();
        let mut cursor = offset;

        let first_candidate = self
            .extents
            .range(..=offset)
            .next_back()
            .map(|(s, _)| *s)
            .unwrap_or(offset);
        for (s, p) in self.extents.range(first_candidate..end) {
            let e_end = s + p.len();
            if e_end <= cursor {
                continue;
            }
            if *s > cursor {
                if !tolerate_holes {
                    return Err(SimError::Hole {
                        offset: cursor,
                        len: *s - cursor,
                    });
                }
                parts.push(Payload::zeros(*s - cursor));
                cursor = *s;
            }
            let take_start = cursor - s;
            let take_end = end.min(e_end) - s;
            parts.push(p.slice(take_start, take_end - take_start));
            cursor = s + take_end;
            if cursor >= end {
                break;
            }
        }
        if cursor < end {
            if !tolerate_holes {
                return Err(SimError::Hole {
                    offset: cursor,
                    len: end - cursor,
                });
            }
            parts.push(Payload::zeros(end - cursor));
        }
        Ok(Payload::chain(parts))
    }

    /// Iterate over `(offset, payload)` extents in offset order.
    pub fn extents(&self) -> impl Iterator<Item = (u64, &Payload)> {
        self.extents.iter().map(|(s, p)| (*s, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytes::Bytes;

    fn bp(s: &'static [u8]) -> Payload {
        Payload::from_bytes(Bytes::from_static(s))
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut buf = SparseBuffer::new();
        buf.write(10, bp(b"hello"));
        assert_eq!(&buf.read(10, 5).to_bytes()[..], b"hello");
        assert_eq!(buf.bytes_stored(), 5);
        assert_eq!(buf.end_offset(), 15);
    }

    #[test]
    fn read_fills_holes_with_zeros() {
        let mut buf = SparseBuffer::new();
        buf.write(4, bp(b"ab"));
        let got = buf.read(0, 10);
        assert_eq!(&got.to_bytes()[..], b"\0\0\0\0ab\0\0\0\0");
    }

    #[test]
    fn read_exact_fails_on_hole() {
        let mut buf = SparseBuffer::new();
        buf.write(0, bp(b"abc"));
        buf.write(6, bp(b"def"));
        assert!(buf.read_exact(0, 3).is_ok());
        let err = buf.read_exact(0, 9).unwrap_err();
        assert_eq!(err, SimError::Hole { offset: 3, len: 3 });
    }

    #[test]
    fn overwrite_middle_splits_extent() {
        let mut buf = SparseBuffer::new();
        buf.write(0, bp(b"aaaaaaaaaa"));
        buf.write(3, bp(b"BBB"));
        assert_eq!(&buf.read(0, 10).to_bytes()[..], b"aaaBBBaaaa");
        assert_eq!(buf.extent_count(), 3);
    }

    #[test]
    fn overwrite_left_and_right_edges() {
        let mut buf = SparseBuffer::new();
        buf.write(5, bp(b"xxxxx"));
        buf.write(3, bp(b"LLL")); // overlaps [5,6)
        buf.write(8, bp(b"RRR")); // overlaps [8,10)
        assert_eq!(&buf.read(3, 8).to_bytes()[..], b"LLLxxRRR");
    }

    #[test]
    fn overwrite_exact_and_covering() {
        let mut buf = SparseBuffer::new();
        buf.write(0, bp(b"abc"));
        buf.write(0, bp(b"xyz"));
        assert_eq!(&buf.read(0, 3).to_bytes()[..], b"xyz");
        buf.write(1, bp(b"q"));
        buf.write(0, bp(b"12345")); // covers everything
        assert_eq!(&buf.read(0, 5).to_bytes()[..], b"12345");
        assert_eq!(buf.extent_count(), 1);
    }

    #[test]
    fn overwrite_spanning_multiple_extents() {
        let mut buf = SparseBuffer::new();
        buf.write(0, bp(b"aa"));
        buf.write(4, bp(b"bb"));
        buf.write(8, bp(b"cc"));
        buf.write(1, bp(b"ZZZZZZZZ")); // [1, 9)
        assert_eq!(&buf.read(0, 10).to_bytes()[..], b"aZZZZZZZZc");
    }

    #[test]
    fn zero_len_ops_are_noops() {
        let mut buf = SparseBuffer::new();
        buf.write(5, Payload::empty());
        assert!(buf.is_empty());
        assert!(buf.read(0, 0).is_empty());
    }

    #[test]
    fn huge_sparse_writes_stay_virtual() {
        let mut buf = SparseBuffer::new();
        // Two 100 GB synthetic extents at far-apart offsets.
        buf.write(0, Payload::pattern(1, 100 << 30));
        buf.write(1 << 42, Payload::pattern(2, 100 << 30));
        assert_eq!(buf.bytes_stored(), 200 << 30);
        assert_eq!(buf.read(10, 100).len(), 100);
    }

    #[test]
    fn pattern_roundtrip_through_overwrites() {
        let mut buf = SparseBuffer::new();
        let base = Payload::pattern(9, 1 << 16);
        buf.write(0, base.clone());
        let patch = Payload::pattern(10, 100);
        buf.write(1000, patch.clone());
        let expected = {
            let mut v = base.to_bytes().to_vec();
            v[1000..1100].copy_from_slice(&patch.to_bytes());
            Bytes::from(v)
        };
        assert_eq!(buf.read(0, 1 << 16).to_bytes(), expected);
    }
}
