//! Calibration constants for the Cori-like simulated platform.
//!
//! The paper's absolute numbers come from Cori (Cray XC40): Haswell nodes
//! with 32 cores over 2 NUMA sockets and 128 GB DRAM, a Cray DataWarp shared
//! burst buffer, and a 248-OST Lustre file system. We do not try to match
//! absolute seconds — only the *shape* of the results. The constants below
//! are chosen so that the relative bandwidths of the storage layers land in
//! the ratios the paper reports (see EXPERIMENTS.md):
//!
//! * effective DRAM-cache write bandwidth ≈ 3.3× the per-node burst-buffer
//!   path (paper Fig. 6a: UniviStor/DRAM ≈ 4.3× DE, UniviStor/BB ≈ 1.3× DE);
//! * burst buffer ≫ Lustre at scale, with Lustre additionally degraded by
//!   shared-file lock contention (up to ≈46× DRAM-vs-Lustre at 8192 procs);
//! * metadata RPCs cost tens of microseconds, so all-to-one open/close
//!   storms hurt only at scale (Fig. 5a/5b COC curves).

/// Platform constants. `Calibration::default()` is the Cori-like setting
/// used by every experiment; individual studies override fields.
#[derive(Debug, Clone)]
pub struct Calibration {
    // --- Compute node ---
    /// NUMA sockets per compute node.
    pub sockets_per_node: usize,
    /// Cores per socket (Cori Haswell: 2 × 16).
    pub cores_per_socket: usize,
    /// Effective memory-system bandwidth per socket for cache writes
    /// (bytes/s). Below STREAM peak: it reflects memcpy into mmap'd shared
    /// memory including UniviStor bookkeeping.
    pub socket_mem_bw: f64,
    /// Per-process single-core copy bandwidth cap (bytes/s). Chosen so a
    /// fully-populated node is CPU-bound (32 × 0.66 ≈ 21 GB/s < 2 sockets
    /// × 30 GB/s): per-core copy costs, not raw DRAM bandwidth, limit
    /// cache writes — which is also what makes core stacking (Fig. 4) and
    /// phase overlap (Fig. 9) matter.
    pub per_proc_copy_bw: f64,
    /// DRAM capacity per node available to UniviStor's cache (bytes).
    /// 44 GiB: 5 VPIC timesteps/node (40 GiB) fit, 10 do not — matching the
    /// paper's spill setup (§III-C).
    pub dram_cache_capacity_per_node: u64,
    /// Multiplicative efficiency per extra process stacked on one core
    /// (context-switch + cache-pollution penalty).
    pub ctx_switch_efficiency: f64,
    /// Probability that the CFS-like baseline places a waking process on an
    /// already-busy core despite idle cores existing (wake-affinity).
    pub cfs_stack_prob: f64,
    /// Lower bound on a process's effective core share under CFS, as a
    /// fraction of `per_proc_copy_bw`: CFS's periodic load balancing
    /// migrates deeply-stacked processes away within a few quanta, so the
    /// phase-long effective rate never drops below this share.
    pub cfs_min_share: f64,

    // --- Node-local SSD (optional layer between DRAM and the shared BB;
    //     Cori's Haswell nodes had none, so the default is absent, but
    //     DHP supports it per §II-B1) ---
    /// Capacity of the node-local SSD available to UniviStor (bytes);
    /// `None` disables the layer.
    pub node_local_capacity: Option<u64>,
    /// Node-local SSD bandwidth (bytes/s).
    pub node_local_bw: f64,

    // --- Network ---
    /// NIC injection bandwidth per node (bytes/s).
    pub nic_bw: f64,
    /// One-way network latency (seconds).
    pub net_latency: f64,
    /// Service time of one metadata RPC at a UniviStor server (seconds).
    /// This is what the all-to-one open/close storm serializes on.
    pub rpc_service_time: f64,
    /// Service time of one open/create RPC at the Lustre MDS or the
    /// DataWarp metadata server (dedicated, beefier hardware).
    pub mds_service_time: f64,

    // --- Shared burst buffer ---
    /// Burst-buffer nodes allocated per compute node of the job
    /// (DataWarp-style proportional allocation), before `bb_nodes_max`.
    pub bb_nodes_per_compute_node: f64,
    /// Minimum / maximum BB nodes in an allocation.
    pub bb_nodes_min: usize,
    pub bb_nodes_max: usize,
    /// SSD bandwidth per burst-buffer node (bytes/s).
    pub bb_node_bw: f64,
    /// Capacity per burst-buffer node (bytes).
    pub bb_capacity_per_node: u64,

    // --- Lustre PFS ---
    /// Number of object storage targets (Cori: 248).
    pub ost_count: usize,
    /// Bandwidth per OST (bytes/s).
    pub ost_bw: f64,
    /// Per-(server, OST) stripe synchronization overhead (seconds): connect
    /// + lock round trips paid once per storage unit a writer touches.
    pub ost_sync_overhead: f64,
    /// Fixed per-write-RPC service overhead at an OST (seconds). Small
    /// stripes pay it often: effective OST bandwidth for stripe size `s`
    /// is `ost_bw · t_data/(t_data + overhead)` with `t_data = s/ost_bw`.
    pub ost_rpc_overhead: f64,
    /// Per-chunk commit overhead when UniviStor appends its log chunks
    /// directly on the PFS (the "Disk" cache configuration): each 8 MiB
    /// chunk append is a synchronous create/commit round trip, far more
    /// expensive than a buffered stripe write.
    pub pfs_log_commit_overhead: f64,
    /// Maximum allowed stripe size (Lustre `Smax`, bytes).
    pub max_stripe_size: u64,
    /// Default stripe size used by non-adaptive flushes and by the
    /// DataWarp/DE baseline (bytes).
    pub default_stripe_size: u64,
    /// Shared-file lock-contention coefficient for Lustre: efficiency is
    /// `1 / (1 + c·log2(concurrent writers))`.
    pub lustre_shared_contention: f64,
    /// Same coefficient for the burst buffer's shared-file mode (DataWarp
    /// striped shared files — the layout Data Elevator uses).
    pub bb_shared_contention: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            sockets_per_node: 2,
            cores_per_socket: 16,
            socket_mem_bw: 30e9,
            per_proc_copy_bw: 0.66e9,
            dram_cache_capacity_per_node: 44 * (1 << 30),
            ctx_switch_efficiency: 0.80,
            cfs_stack_prob: 0.30,
            cfs_min_share: 0.45,

            node_local_capacity: None,
            node_local_bw: 2e9,

            nic_bw: 11e9,
            net_latency: 2e-6,
            rpc_service_time: 60e-6,
            mds_service_time: 10e-6,

            bb_nodes_per_compute_node: 1.0,
            bb_nodes_min: 2,
            bb_nodes_max: 288,
            bb_node_bw: 6.5e9,
            bb_capacity_per_node: 6_400_000_000_000,

            ost_count: 248,
            ost_bw: 1.2e9,
            ost_sync_overhead: 3e-3,
            ost_rpc_overhead: 0.5e-3,
            pfs_log_commit_overhead: 5e-3,
            max_stripe_size: 1 << 30,
            default_stripe_size: 1 << 20,
            lustre_shared_contention: 0.07,
            bb_shared_contention: 0.05,
        }
    }
}

impl Calibration {
    /// Cores per node.
    pub fn cores_per_node(&self) -> usize {
        self.sockets_per_node * self.cores_per_socket
    }

    /// Burst-buffer nodes allocated to a job with `compute_nodes` nodes.
    pub fn bb_nodes_for_job(&self, compute_nodes: usize) -> usize {
        let n = (compute_nodes as f64 * self.bb_nodes_per_compute_node).ceil() as usize;
        n.clamp(self.bb_nodes_min, self.bb_nodes_max)
    }

    /// Peak aggregate Lustre bandwidth (all OSTs).
    pub fn lustre_peak_bw(&self) -> f64 {
        self.ost_count as f64 * self.ost_bw
    }

    /// Shared-file write efficiency on Lustre with `writers` concurrent
    /// writers to one file (lock ping-pong model).
    pub fn lustre_shared_efficiency(&self, writers: u64) -> f64 {
        shared_efficiency(self.lustre_shared_contention, writers)
    }

    /// Shared-file write efficiency on the burst buffer.
    pub fn bb_shared_efficiency(&self, writers: u64) -> f64 {
        shared_efficiency(self.bb_shared_contention, writers)
    }
}

/// Effective fraction of an OST's bandwidth delivered when writing in
/// stripes of `stripe` bytes, given the per-RPC overhead.
pub fn small_io_efficiency(stripe: u64, ost_bw: f64, rpc_overhead: f64) -> f64 {
    let t_data = stripe.max(1) as f64 / ost_bw;
    t_data / (t_data + rpc_overhead)
}

/// `1 / (1 + c·log2(writers))`, clamped to (0, 1].
pub fn shared_efficiency(coeff: f64, writers: u64) -> f64 {
    if writers <= 1 {
        return 1.0;
    }
    1.0 / (1.0 + coeff * (writers as f64).log2())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = Calibration::default();
        assert_eq!(c.cores_per_node(), 32);
        assert!(c.socket_mem_bw > c.per_proc_copy_bw);
        assert!(c.lustre_peak_bw() > 100e9);
    }

    #[test]
    fn bb_allocation_scales_and_clamps() {
        let c = Calibration::default();
        assert_eq!(c.bb_nodes_for_job(1), c.bb_nodes_min);
        assert_eq!(c.bb_nodes_for_job(100), 100);
        assert_eq!(c.bb_nodes_for_job(1000), c.bb_nodes_max);
    }

    #[test]
    fn shared_efficiency_monotone_decreasing() {
        let c = Calibration::default();
        let mut prev = 1.0;
        for p in [1u64, 2, 64, 1024, 8192] {
            let e = c.lustre_shared_efficiency(p);
            assert!(e <= prev && e > 0.0, "eff({p}) = {e}");
            prev = e;
        }
        // At 8192 writers Lustre loses a large share of its bandwidth.
        assert!(c.lustre_shared_efficiency(8192) < 0.6);
        // The BB penalty is milder than Lustre's.
        assert!(c.bb_shared_efficiency(8192) > c.lustre_shared_efficiency(8192));
    }

    #[test]
    fn small_stripes_waste_ost_bandwidth() {
        let c = Calibration::default();
        let small = small_io_efficiency(1 << 20, c.ost_bw, c.ost_rpc_overhead);
        let large = small_io_efficiency(1 << 30, c.ost_bw, c.ost_rpc_overhead);
        assert!(small < 0.7, "1 MiB stripes should pay: {small}");
        assert!(large > 0.99, "1 GiB stripes should not: {large}");
    }

    #[test]
    fn dram_fits_5_not_10_vpic_steps() {
        // 32 procs × 256 MB per step per node.
        let c = Calibration::default();
        let per_step = 32u64 * 256 * (1 << 20);
        assert!(5 * per_step <= c.dram_cache_capacity_per_node);
        assert!(10 * per_step > c.dram_cache_capacity_per_node);
    }
}
