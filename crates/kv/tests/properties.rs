//! Property-based tests: DistKv must behave exactly like a single ordered
//! map, regardless of how records are partitioned across servers.

use proptest::prelude::*;
use std::collections::BTreeMap;
use univistor_kv::{DistKv, PartitionKey};

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct SegKey {
    fid: u8,
    offset: u64,
}

impl PartitionKey for SegKey {
    fn partition_point(&self) -> u64 {
        self.offset
    }
}

#[derive(Debug, Clone)]
enum Op {
    Put(SegKey, u64),
    Remove(SegKey),
    Get(SegKey),
    Scan { lo: u64, hi: u64, fid: u8 },
}

fn key_strategy() -> impl Strategy<Value = SegKey> {
    (0u8..3, 0u64..200).prop_map(|(fid, offset)| SegKey { fid, offset })
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (key_strategy(), any::<u64>()).prop_map(|(k, v)| Op::Put(k, v)),
        key_strategy().prop_map(Op::Remove),
        key_strategy().prop_map(Op::Get),
        (0u64..220, 0u64..220, 0u8..3).prop_map(|(a, b, fid)| Op::Scan {
            lo: a.min(b),
            hi: a.max(b),
            fid
        }),
    ]
}

proptest! {
    #[test]
    fn distkv_matches_btreemap_model(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        range_size in 1u64..64,
        servers in 1usize..9,
    ) {
        let mut kv: DistKv<SegKey, u64> = DistKv::new(range_size, servers);
        let mut model: BTreeMap<SegKey, u64> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Put(k, v) => {
                    let (_, old) = kv.put(k, v);
                    prop_assert_eq!(old, model.insert(k, v));
                }
                Op::Remove(k) => {
                    let (_, removed) = kv.remove(&k);
                    prop_assert_eq!(removed, model.remove(&k));
                }
                Op::Get(k) => {
                    let (_, got) = kv.get(&k);
                    prop_assert_eq!(got.copied(), model.get(&k).copied());
                }
                Op::Scan { lo, hi, fid } => {
                    let (_, got) = kv.range_scan(lo, hi, |k| k.fid == fid);
                    let expect: Vec<(SegKey, u64)> = model
                        .iter()
                        .filter(|(k, _)| k.fid == fid && k.offset >= lo && k.offset < hi)
                        .map(|(k, v)| (*k, *v))
                        .collect();
                    let got: Vec<(SegKey, u64)> =
                        got.into_iter().map(|(k, v)| (k, *v)).collect();
                    prop_assert_eq!(got, expect);
                }
            }
        }
        prop_assert_eq!(kv.len(), model.len());
    }

    #[test]
    fn every_key_is_routed_to_exactly_one_server(
        offsets in proptest::collection::vec(0u64..10_000, 1..100),
        range_size in 1u64..128,
        servers in 1usize..16,
    ) {
        let mut kv: DistKv<SegKey, u64> = DistKv::new(range_size, servers);
        for &off in &offsets {
            let k = SegKey { fid: 0, offset: off };
            let (s_put, _) = kv.put(k, off);
            let (s_get, v) = kv.get(&k);
            prop_assert_eq!(s_put, s_get);
            prop_assert_eq!(v.copied(), Some(off));
        }
    }

    #[test]
    fn shard_sizes_sum_to_len(
        offsets in proptest::collection::vec(0u64..1_000, 0..200),
        servers in 1usize..8,
    ) {
        let mut kv: DistKv<SegKey, u64> = DistKv::new(16, servers);
        for &off in &offsets {
            kv.put(SegKey { fid: 1, offset: off }, off);
        }
        prop_assert_eq!(kv.shard_sizes().iter().sum::<usize>(), kv.len());
    }
}
