//! Randomized-model tests: DistKv must behave exactly like a single ordered
//! map, regardless of how records are partitioned across servers.
//!
//! Cases are generated with a tiny seeded SplitMix64 generator (the
//! workspace builds without external crates, so no proptest); each test
//! runs a few hundred deterministic trials.

use std::collections::BTreeMap;
use univistor_kv::{DistKv, PartitionKey};

/// Minimal deterministic generator for test-case construction.
struct TestRng(u64);

impl TestRng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        ((self.next() as u128 * n as u128) >> 64) as u64
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct SegKey {
    fid: u8,
    offset: u64,
}

impl PartitionKey for SegKey {
    fn partition_point(&self) -> u64 {
        self.offset
    }
}

fn gen_key(rng: &mut TestRng) -> SegKey {
    SegKey {
        fid: rng.below(3) as u8,
        offset: rng.below(200),
    }
}

#[test]
fn distkv_matches_btreemap_model() {
    let mut rng = TestRng(0x0d15_7001);
    for _trial in 0..200 {
        let range_size = 1 + rng.below(63);
        let servers = 1 + rng.below(8) as usize;
        let n_ops = 1 + rng.below(199);
        let kv: DistKv<SegKey, u64> = DistKv::new(range_size, servers);
        let mut model: BTreeMap<SegKey, u64> = BTreeMap::new();

        for _ in 0..n_ops {
            match rng.below(4) {
                0 => {
                    let (k, v) = (gen_key(&mut rng), rng.next());
                    let (_, old) = kv.put(k, v);
                    assert_eq!(old, model.insert(k, v));
                }
                1 => {
                    let k = gen_key(&mut rng);
                    let (_, removed) = kv.remove(&k);
                    assert_eq!(removed, model.remove(&k));
                }
                2 => {
                    let k = gen_key(&mut rng);
                    let (_, got) = kv.get(&k);
                    assert_eq!(got, model.get(&k).copied());
                }
                _ => {
                    let (a, b) = (rng.below(220), rng.below(220));
                    let (lo, hi) = (a.min(b), a.max(b));
                    let fid = rng.below(3) as u8;
                    let (_, got) = kv.range_scan(lo, hi, |k| k.fid == fid);
                    let expect: Vec<(SegKey, u64)> = model
                        .iter()
                        .filter(|(k, _)| k.fid == fid && k.offset >= lo && k.offset < hi)
                        .map(|(k, v)| (*k, *v))
                        .collect();
                    assert_eq!(got, expect);
                }
            }
        }
        assert_eq!(kv.len(), model.len());
    }
}

#[test]
fn every_key_is_routed_to_exactly_one_server() {
    let mut rng = TestRng(0x0d15_7002);
    for _trial in 0..200 {
        let range_size = 1 + rng.below(127);
        let servers = 1 + rng.below(15) as usize;
        let n = 1 + rng.below(99);
        let kv: DistKv<SegKey, u64> = DistKv::new(range_size, servers);
        for _ in 0..n {
            let off = rng.below(10_000);
            let k = SegKey {
                fid: 0,
                offset: off,
            };
            let (s_put, _) = kv.put(k, off);
            let (s_get, v) = kv.get(&k);
            assert_eq!(s_put, s_get);
            assert_eq!(v, Some(off));
        }
    }
}

#[test]
fn shard_sizes_sum_to_len() {
    let mut rng = TestRng(0x0d15_7003);
    for _trial in 0..200 {
        let servers = 1 + rng.below(7) as usize;
        let n = rng.below(200);
        let kv: DistKv<SegKey, u64> = DistKv::new(16, servers);
        for _ in 0..n {
            let off = rng.below(1_000);
            kv.put(
                SegKey {
                    fid: 1,
                    offset: off,
                },
                off,
            );
        }
        assert_eq!(kv.shard_sizes().iter().sum::<usize>(), kv.len());
    }
}
