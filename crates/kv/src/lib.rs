//! # univistor-kv — range-partitioned distributed key-value store
//!
//! UniviStor stores the map from a segment's logical file offset to its
//! virtual address and source process in "a distributed key-value (KV)
//! store maintained by all UniviStor servers" (§II-B3). Records are
//! partitioned into fixed-size *ranges* by their logical offset, and ranges
//! are assigned to servers **round-robin** (Fig. 3: ranges 1-4, 5-8, 9-12,
//! 13-16 alternate between the servers on Node 1 and Node 2).
//!
//! The crate provides:
//!
//! * [`RangePartitioner`] — the offset→server mapping;
//! * [`DistKv`] — the distributed store (one [`shard`](KvShard) per
//!   server) with put/get/remove/range-scan and per-server statistics;
//! * [`CentralizedKv`] — the paper's rejected "naïve solution" (a global
//!   map on a single server), kept as the scalability ablation baseline.
//!
//! Both stores report which server serviced each operation so the timing
//! plane can charge RPC costs, and both count per-server operations so
//! experiments can verify load balance.

pub mod partition;
pub mod store;

pub use partition::{PartitionKey, RangePartitioner, ServerId};
pub use store::{CentralizedKv, DistKv, KvShard, KvStats};
