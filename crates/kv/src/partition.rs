//! Offset-range partitioning with round-robin server assignment (Fig. 3).

use std::fmt;

/// Index of a metadata server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServerId(pub usize);

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Keys locatable by a one-dimensional partition point (the logical file
/// offset for UniviStor's metadata records).
pub trait PartitionKey {
    /// The coordinate partitioning is performed on.
    fn partition_point(&self) -> u64;
}

impl PartitionKey for u64 {
    fn partition_point(&self) -> u64 {
        *self
    }
}

/// Fixed-size ranges of the partition coordinate assigned to servers
/// round-robin: range `r = point / range_size` goes to server
/// `r % servers`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangePartitioner {
    /// Width of one range in partition-coordinate units (bytes of logical
    /// offset for metadata).
    pub range_size: u64,
    /// Number of servers.
    pub servers: usize,
}

impl RangePartitioner {
    /// Construct; panics on degenerate parameters (misconfiguration is a
    /// programming error, not a runtime condition).
    pub fn new(range_size: u64, servers: usize) -> Self {
        assert!(range_size > 0, "range_size must be positive");
        assert!(servers > 0, "need at least one server");
        RangePartitioner {
            range_size,
            servers,
        }
    }

    /// Index of the range containing `point`.
    pub fn range_index(&self, point: u64) -> u64 {
        point / self.range_size
    }

    /// Server owning `point`.
    pub fn server_for(&self, point: u64) -> ServerId {
        ServerId((self.range_index(point) % self.servers as u64) as usize)
    }

    /// Servers whose ranges intersect `[lo, hi)`, deduplicated, in first-
    /// touch order. Visits at most `servers` entries even for huge spans.
    pub fn servers_for_span(&self, lo: u64, hi: u64) -> Vec<ServerId> {
        if lo >= hi {
            return Vec::new();
        }
        let first = self.range_index(lo);
        let last = self.range_index(hi - 1);
        let n_ranges = last - first + 1;
        let mut out = Vec::new();
        let mut seen = vec![false; self.servers];
        for r in first..first + n_ranges.min(self.servers as u64) {
            let s = (r % self.servers as u64) as usize;
            if !seen[s] {
                seen[s] = true;
                out.push(ServerId(s));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_round_robin_example() {
        // Fig. 3: 16 records, range width 4, 4 servers on 2 nodes — but the
        // round-robin property is the same for any server count. With 2
        // servers: ranges 0,2 → S0; ranges 1,3 → S1.
        let p = RangePartitioner::new(4, 2);
        assert_eq!(p.server_for(0), ServerId(0)); // offsets 0-3
        assert_eq!(p.server_for(3), ServerId(0));
        assert_eq!(p.server_for(4), ServerId(1)); // offsets 4-7
        assert_eq!(p.server_for(8), ServerId(0)); // offsets 8-11
        assert_eq!(p.server_for(12), ServerId(1)); // offsets 12-15
    }

    #[test]
    fn span_visits_each_server_once() {
        let p = RangePartitioner::new(10, 3);
        let servers = p.servers_for_span(0, 1000);
        assert_eq!(servers.len(), 3);
        let servers = p.servers_for_span(0, 10);
        assert_eq!(servers, vec![ServerId(0)]);
        let servers = p.servers_for_span(5, 15);
        assert_eq!(servers, vec![ServerId(0), ServerId(1)]);
    }

    #[test]
    fn empty_span_is_empty() {
        let p = RangePartitioner::new(10, 3);
        assert!(p.servers_for_span(5, 5).is_empty());
        assert!(p.servers_for_span(9, 3).is_empty());
    }

    #[test]
    fn huge_span_terminates_quickly() {
        let p = RangePartitioner::new(1, 7);
        let servers = p.servers_for_span(0, u64::MAX);
        assert_eq!(servers.len(), 7);
    }

    #[test]
    #[should_panic(expected = "range_size")]
    fn zero_range_size_rejected() {
        RangePartitioner::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "server")]
    fn zero_servers_rejected() {
        RangePartitioner::new(1, 0);
    }
}
