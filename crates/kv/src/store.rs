//! The distributed store and its centralized ablation baseline.
//!
//! [`DistKv`] is internally synchronized: each server shard carries its own
//! `RwLock` and the per-server operation counters are atomics, so clients on
//! different threads whose keys land on different shards never contend — the
//! in-process analogue of the paper's independent metadata servers (§II-B3).
//! Every method therefore takes `&self`; lookups return owned values so no
//! shard lock outlives the call.

use crate::partition::{PartitionKey, RangePartitioner, ServerId};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Per-server operation counters, used both for load-balance assertions in
/// tests and by the timing plane to charge RPC costs.
#[derive(Debug, Clone, Default)]
pub struct KvStats {
    /// Puts serviced per server.
    pub puts: Vec<u64>,
    /// Gets (including range-scan visits) serviced per server.
    pub gets: Vec<u64>,
}

impl KvStats {
    /// Total operations across servers.
    pub fn total_ops(&self) -> u64 {
        self.puts.iter().sum::<u64>() + self.gets.iter().sum::<u64>()
    }

    /// Max-over-min load ratio across servers (1.0 = perfectly balanced).
    /// Servers with zero load are ignored in the min.
    pub fn imbalance(&self) -> f64 {
        let loads: Vec<u64> = self
            .puts
            .iter()
            .zip(&self.gets)
            .map(|(p, g)| p + g)
            .collect();
        let max = loads.iter().copied().max().unwrap_or(0);
        let min = loads.iter().copied().filter(|&l| l > 0).min().unwrap_or(0);
        if min == 0 {
            return f64::INFINITY;
        }
        max as f64 / min as f64
    }
}

/// One server's shard: an ordered map. Used directly by the centralized
/// baseline; `DistKv` wraps one per server in an `RwLock`.
#[derive(Debug, Clone)]
pub struct KvShard<K: Ord, V> {
    map: BTreeMap<K, V>,
}

impl<K: Ord, V> Default for KvShard<K, V> {
    fn default() -> Self {
        KvShard {
            map: BTreeMap::new(),
        }
    }
}

impl<K: Ord, V> KvShard<K, V> {
    /// Records stored in this shard.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the shard holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate records in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.map.iter()
    }
}

/// The distributed KV store: `servers` shards with range partitioning, each
/// shard behind its own `RwLock`.
#[derive(Debug)]
pub struct DistKv<K: Ord + PartitionKey, V> {
    partitioner: RangePartitioner,
    shards: Vec<RwLock<BTreeMap<K, V>>>,
    puts: Vec<AtomicU64>,
    gets: Vec<AtomicU64>,
}

impl<K: Ord + PartitionKey + Clone, V: Clone> DistKv<K, V> {
    /// A store with `servers` shards and the given range width.
    pub fn new(range_size: u64, servers: usize) -> Self {
        let partitioner = RangePartitioner::new(range_size, servers);
        DistKv {
            partitioner,
            shards: (0..servers).map(|_| RwLock::new(BTreeMap::new())).collect(),
            puts: (0..servers).map(|_| AtomicU64::new(0)).collect(),
            gets: (0..servers).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The partitioner in use.
    pub fn partitioner(&self) -> RangePartitioner {
        self.partitioner
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, s: ServerId) -> std::sync::RwLockReadGuard<'_, BTreeMap<K, V>> {
        self.shards[s.0].read().expect("kv shard poisoned")
    }

    fn shard_mut(&self, s: ServerId) -> std::sync::RwLockWriteGuard<'_, BTreeMap<K, V>> {
        self.shards[s.0].write().expect("kv shard poisoned")
    }

    /// Insert, returning the servicing server and any displaced value.
    pub fn put(&self, key: K, value: V) -> (ServerId, Option<V>) {
        let server = self.partitioner.server_for(key.partition_point());
        self.puts[server.0].fetch_add(1, Ordering::Relaxed);
        let old = self.shard_mut(server).insert(key, value);
        (server, old)
    }

    /// Look up a key, returning a copy of the value and the servicing server.
    pub fn get(&self, key: &K) -> (ServerId, Option<V>) {
        let server = self.partitioner.server_for(key.partition_point());
        self.gets[server.0].fetch_add(1, Ordering::Relaxed);
        (server, self.shard(server).get(key).cloned())
    }

    /// Remove a key.
    pub fn remove(&self, key: &K) -> (ServerId, Option<V>) {
        let server = self.partitioner.server_for(key.partition_point());
        self.puts[server.0].fetch_add(1, Ordering::Relaxed);
        (server, self.shard_mut(server).remove(key))
    }

    /// Remove `key` only if its current value equals `expected` — a
    /// compare-and-delete claim. Concurrent displacement paths use this so a
    /// record observed by two threads is released by exactly one of them.
    pub fn remove_if_eq(&self, key: &K, expected: &V) -> (ServerId, bool)
    where
        V: PartialEq,
    {
        let server = self.partitioner.server_for(key.partition_point());
        self.puts[server.0].fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard_mut(server);
        let claimed = match shard.get(key) {
            Some(v) if v == expected => {
                shard.remove(key);
                true
            }
            _ => false,
        };
        (server, claimed)
    }

    /// Replace `key`'s value with `new` only if it currently equals
    /// `expected` — a compare-and-swap. Returns whether the swap happened.
    pub fn replace_if_eq(&self, key: &K, expected: &V, new: V) -> (ServerId, bool)
    where
        V: PartialEq,
    {
        let server = self.partitioner.server_for(key.partition_point());
        self.puts[server.0].fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard_mut(server);
        let swapped = match shard.get_mut(key) {
            Some(v) if v == expected => {
                *v = new;
                true
            }
            _ => false,
        };
        (server, swapped)
    }

    /// Scan all records whose partition point lies in `[lo, hi)` and whose
    /// key satisfies `filter`. Returns the records sorted by key, plus the
    /// servers visited (for RPC accounting). Each shard is locked shared for
    /// the duration of its scan only — the result set is a snapshot, not a
    /// consistent cut across shards.
    ///
    /// This walks every record of each visited shard — fine for modest
    /// stores; hot paths with ordered keys should use
    /// [`range_scan_bounded`](Self::range_scan_bounded).
    pub fn range_scan(
        &self,
        lo: u64,
        hi: u64,
        filter: impl Fn(&K) -> bool,
    ) -> (Vec<ServerId>, Vec<(K, V)>) {
        let servers = self.partitioner.servers_for_span(lo, hi);
        let mut out: Vec<(K, V)> = Vec::new();
        for s in &servers {
            self.gets[s.0].fetch_add(1, Ordering::Relaxed);
            for (k, v) in self.shard(*s).iter() {
                let p = k.partition_point();
                if p >= lo && p < hi && filter(k) {
                    out.push((k.clone(), v.clone()));
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        (servers, out)
    }

    /// Like [`range_scan`](Self::range_scan), but additionally bounded by
    /// a key interval `[lo_key, hi_key)` that the caller guarantees
    /// contains every key with a partition point in `[lo, hi)` (plus
    /// whatever filtering slack it wants). Each visited shard is scanned
    /// with an O(log n + hits) ordered-map range, which keeps million-
    /// record stores fast.
    pub fn range_scan_bounded(
        &self,
        lo_key: &K,
        hi_key: &K,
        lo: u64,
        hi: u64,
        filter: impl Fn(&K) -> bool,
    ) -> (Vec<ServerId>, Vec<(K, V)>) {
        let servers = self.partitioner.servers_for_span(lo, hi);
        let mut out: Vec<(K, V)> = Vec::new();
        for s in &servers {
            self.gets[s.0].fetch_add(1, Ordering::Relaxed);
            for (k, v) in self.shard(*s).range(lo_key.clone()..hi_key.clone()) {
                let p = k.partition_point();
                if p >= lo && p < hi && filter(k) {
                    out.push((k.clone(), v.clone()));
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        (servers, out)
    }

    /// Borrowing variant of [`range_scan_bounded`](Self::range_scan_bounded):
    /// visit every record whose partition point lies in `[lo, hi)` and whose
    /// key lies in `[lo_key, hi_key)` without cloning keys or values. Shards
    /// are visited in first-touch server order and each shard's records in
    /// key order, so the overall visit order is **not** globally key-sorted —
    /// callers that need order collect and sort what they keep. The visitor
    /// runs under the shard's read lock and must not reenter the store.
    /// Returns the servers visited (each visit is one get for accounting,
    /// exactly as for the cloning scans).
    pub fn for_each_in_range(
        &self,
        lo_key: &K,
        hi_key: &K,
        lo: u64,
        hi: u64,
        mut visit: impl FnMut(&K, &V),
    ) -> Vec<ServerId> {
        let servers = self.partitioner.servers_for_span(lo, hi);
        for s in &servers {
            self.gets[s.0].fetch_add(1, Ordering::Relaxed);
            for (k, v) in self.shard(*s).range(lo_key.clone()..hi_key.clone()) {
                let p = k.partition_point();
                if p >= lo && p < hi {
                    visit(k, v);
                }
            }
        }
        servers
    }

    /// Insert a run of records, taking each shard's write lock once per
    /// consecutive same-server group rather than once per record. Callers
    /// pass key-sorted runs so that each partition touched costs exactly one
    /// lock round-trip (range partitioning maps sorted keys to grouped
    /// servers). Per-server put counters advance once per record, as for
    /// [`put`](Self::put). Returns the number of shard write-lock
    /// acquisitions taken.
    pub fn put_batch(&self, items: impl IntoIterator<Item = (K, V)>) -> u64 {
        let mut acquisitions = 0u64;
        let mut held: Option<(ServerId, std::sync::RwLockWriteGuard<'_, BTreeMap<K, V>>)> = None;
        for (k, v) in items {
            let server = self.partitioner.server_for(k.partition_point());
            if !matches!(&held, Some((s, _)) if *s == server) {
                held = Some((server, self.shard_mut(server)));
                acquisitions += 1;
            }
            self.puts[server.0].fetch_add(1, Ordering::Relaxed);
            held.as_mut().expect("guard just installed").1.insert(k, v);
        }
        acquisitions
    }

    /// Compare-and-delete a run of `(key, expected)` pairs, grouping
    /// consecutive same-server items under one shard write-lock acquisition.
    /// Each item has the exact semantics of
    /// [`remove_if_eq`](Self::remove_if_eq), including its per-attempt put
    /// accounting. Returns the per-item claim flags (in input order) and the
    /// number of shard write-lock acquisitions taken.
    pub fn remove_if_eq_batch(&self, items: &[(K, V)]) -> (Vec<bool>, u64)
    where
        V: PartialEq,
    {
        let mut claimed = Vec::with_capacity(items.len());
        let mut acquisitions = 0u64;
        let mut held: Option<(ServerId, std::sync::RwLockWriteGuard<'_, BTreeMap<K, V>>)> = None;
        for (k, expected) in items {
            let server = self.partitioner.server_for(k.partition_point());
            if !matches!(&held, Some((s, _)) if *s == server) {
                held = Some((server, self.shard_mut(server)));
                acquisitions += 1;
            }
            self.puts[server.0].fetch_add(1, Ordering::Relaxed);
            let shard = &mut held.as_mut().expect("guard just installed").1;
            let ok = match shard.get(k) {
                Some(v) if v == expected => {
                    shard.remove(k);
                    true
                }
                _ => false,
            };
            claimed.push(ok);
        }
        (claimed, acquisitions)
    }

    /// Rebuild a store from previously extracted parts (shard maps plus
    /// per-server counter values, indexed by server). The inverse of
    /// [`into_parts`](Self::into_parts); used by partitioned runtimes to
    /// assemble a locked view from worker-owned slices.
    pub fn from_parts(
        range_size: u64,
        shards: Vec<BTreeMap<K, V>>,
        puts: Vec<u64>,
        gets: Vec<u64>,
    ) -> Self {
        let servers = shards.len();
        assert_eq!(puts.len(), servers);
        assert_eq!(gets.len(), servers);
        DistKv {
            partitioner: RangePartitioner::new(range_size, servers),
            shards: shards.into_iter().map(RwLock::new).collect(),
            puts: puts.into_iter().map(AtomicU64::new).collect(),
            gets: gets.into_iter().map(AtomicU64::new).collect(),
        }
    }

    /// Decompose the store into its shard maps and per-server counter
    /// values. The inverse of [`from_parts`](Self::from_parts).
    pub fn into_parts(self) -> (Vec<BTreeMap<K, V>>, Vec<u64>, Vec<u64>) {
        (
            self.shards
                .into_iter()
                .map(|s| s.into_inner().expect("kv shard poisoned"))
                .collect(),
            self.puts.into_iter().map(|c| c.into_inner()).collect(),
            self.gets.into_iter().map(|c| c.into_inner()).collect(),
        )
    }

    /// Records per server (distribution inspection).
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.read().expect("kv shard poisoned").len())
            .collect()
    }

    /// Total records.
    pub fn len(&self) -> usize {
        self.shard_sizes().iter().sum()
    }

    /// True when no records are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the operation counters.
    pub fn stats(&self) -> KvStats {
        KvStats {
            puts: self
                .puts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            gets: self
                .gets
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// The paper's rejected design: a single global map on one server. Kept as
/// the ablation baseline — every operation hits server 0, which becomes the
/// bottleneck the distributed design removes.
#[derive(Debug, Clone)]
pub struct CentralizedKv<K: Ord, V> {
    shard: KvShard<K, V>,
    ops: u64,
}

impl<K: Ord + Clone, V> CentralizedKv<K, V> {
    /// An empty centralized store.
    pub fn new() -> Self {
        CentralizedKv {
            shard: KvShard::default(),
            ops: 0,
        }
    }

    /// Insert. Always serviced by the single server.
    pub fn put(&mut self, key: K, value: V) -> Option<V> {
        self.ops += 1;
        self.shard.map.insert(key, value)
    }

    /// Look up.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.ops += 1;
        self.shard.map.get(key)
    }

    /// Range scan by key order.
    pub fn range_scan(&mut self, lo: &K, hi: &K) -> Vec<(K, &V)> {
        self.ops += 1;
        self.shard
            .map
            .range(lo.clone()..hi.clone())
            .map(|(k, v)| (k.clone(), v))
            .collect()
    }

    /// Operations serviced by the lone server.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Records stored.
    pub fn len(&self) -> usize {
        self.shard.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.shard.is_empty()
    }
}

impl<K: Ord + Clone, V> Default for CentralizedKv<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Key type mirroring UniviStor metadata keys: (file id, offset),
    /// partitioned by offset.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    struct SegKey {
        fid: u32,
        offset: u64,
    }

    impl PartitionKey for SegKey {
        fn partition_point(&self) -> u64 {
            self.offset
        }
    }

    fn key(fid: u32, offset: u64) -> SegKey {
        SegKey { fid, offset }
    }

    #[test]
    fn put_get_roundtrip() {
        let kv: DistKv<SegKey, &str> = DistKv::new(16, 4);
        kv.put(key(1, 0), "a");
        kv.put(key(1, 100), "b");
        assert_eq!(kv.get(&key(1, 0)).1, Some("a"));
        assert_eq!(kv.get(&key(1, 100)).1, Some("b"));
        assert_eq!(kv.get(&key(2, 0)).1, None);
        assert_eq!(kv.len(), 2);
    }

    #[test]
    fn put_returns_displaced_value() {
        let kv: DistKv<SegKey, u32> = DistKv::new(16, 2);
        assert_eq!(kv.put(key(1, 5), 10).1, None);
        assert_eq!(kv.put(key(1, 5), 20).1, Some(10));
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn remove_works() {
        let kv: DistKv<SegKey, u32> = DistKv::new(16, 2);
        kv.put(key(1, 5), 10);
        assert_eq!(kv.remove(&key(1, 5)).1, Some(10));
        assert_eq!(kv.get(&key(1, 5)).1, None);
        assert!(kv.is_empty());
    }

    #[test]
    fn remove_if_eq_claims_exactly_once() {
        let kv: DistKv<SegKey, u32> = DistKv::new(16, 2);
        kv.put(key(1, 5), 10);
        assert!(!kv.remove_if_eq(&key(1, 5), &99).1); // wrong value
        assert!(kv.remove_if_eq(&key(1, 5), &10).1); // claims
        assert!(!kv.remove_if_eq(&key(1, 5), &10).1); // already gone
        assert!(kv.is_empty());
    }

    #[test]
    fn replace_if_eq_is_a_cas() {
        let kv: DistKv<SegKey, u32> = DistKv::new(16, 2);
        kv.put(key(1, 5), 10);
        assert!(kv.replace_if_eq(&key(1, 5), &10, 11).1);
        assert!(!kv.replace_if_eq(&key(1, 5), &10, 12).1); // stale expectation
        assert_eq!(kv.get(&key(1, 5)).1, Some(11));
    }

    #[test]
    fn records_distribute_round_robin() {
        // 64 records at offsets 0..64, range width 4, 4 servers → each
        // server owns exactly 4 ranges × 4 records.
        let kv: DistKv<SegKey, u64> = DistKv::new(4, 4);
        for off in 0..64 {
            kv.put(key(1, off), off);
        }
        assert_eq!(kv.shard_sizes(), vec![16, 16, 16, 16]);
        assert!(kv.stats().imbalance() < 1.01);
    }

    #[test]
    fn same_offset_different_fid_coexist() {
        // Segments from different source processes can share a VA/offset —
        // the composite key keeps them distinct.
        let kv: DistKv<SegKey, &str> = DistKv::new(16, 2);
        kv.put(key(1, 42), "file1");
        kv.put(key(2, 42), "file2");
        assert_eq!(kv.get(&key(1, 42)).1, Some("file1"));
        assert_eq!(kv.get(&key(2, 42)).1, Some("file2"));
    }

    #[test]
    fn range_scan_returns_sorted_and_filtered() {
        let kv: DistKv<SegKey, u64> = DistKv::new(8, 3);
        for off in (0..100).step_by(10) {
            kv.put(key(1, off), off);
            kv.put(key(2, off), off + 1000);
        }
        let (servers, records) = kv.range_scan(20, 60, |k| k.fid == 1);
        assert!(!servers.is_empty());
        let offsets: Vec<u64> = records.iter().map(|(k, _)| k.offset).collect();
        assert_eq!(offsets, vec![20, 30, 40, 50]);
        let sorted = {
            let mut s = records.clone();
            s.sort_by_key(|a| a.0);
            s
        };
        assert_eq!(records, sorted);
    }

    #[test]
    fn range_scan_empty_span() {
        let kv: DistKv<SegKey, u64> = DistKv::new(8, 3);
        kv.put(key(1, 5), 5);
        let (servers, records) = kv.range_scan(100, 100, |_| true);
        assert!(servers.is_empty());
        assert!(records.is_empty());
    }

    #[test]
    fn for_each_in_range_matches_cloning_scan() {
        let kv: DistKv<SegKey, u64> = DistKv::new(8, 3);
        for off in (0..100).step_by(10) {
            kv.put(key(1, off), off);
            kv.put(key(2, off), off + 1000);
        }
        let gets_before = kv.stats().gets.iter().sum::<u64>();
        let (scan_servers, scan_records) =
            kv.range_scan_bounded(&key(1, 20), &key(1, 60), 20, 60, |k| k.fid == 1);
        let mut visited: Vec<(SegKey, u64)> = Vec::new();
        let visit_servers = kv.for_each_in_range(&key(1, 20), &key(1, 60), 20, 60, |k, v| {
            if k.fid == 1 {
                visited.push((*k, *v));
            }
        });
        visited.sort_by_key(|(k, _)| *k);
        assert_eq!(visit_servers, scan_servers);
        assert_eq!(visited, scan_records);
        // Both scans charge one get per visited server.
        let gets_after = kv.stats().gets.iter().sum::<u64>();
        assert_eq!(gets_after - gets_before, 2 * scan_servers.len() as u64);
    }

    #[test]
    fn put_batch_groups_sorted_runs_by_server() {
        // Range width 4, 4 servers: offsets 0..16 span 4 partitions, so a
        // sorted run of 16 records costs exactly 4 write-lock acquisitions.
        let kv: DistKv<SegKey, u64> = DistKv::new(4, 4);
        let items: Vec<(SegKey, u64)> = (0..16).map(|off| (key(1, off), off)).collect();
        let acquisitions = kv.put_batch(items);
        assert_eq!(acquisitions, 4);
        assert_eq!(kv.len(), 16);
        assert_eq!(kv.shard_sizes(), vec![4, 4, 4, 4]);
        // Put accounting matches the one-at-a-time path: one per record.
        assert_eq!(kv.stats().puts, vec![4; 4]);
        for off in 0..16 {
            assert_eq!(kv.get(&key(1, off)).1, Some(off));
        }
    }

    #[test]
    fn remove_if_eq_batch_claims_like_singles() {
        let kv: DistKv<SegKey, u64> = DistKv::new(4, 2);
        kv.put(key(1, 0), 10);
        kv.put(key(1, 1), 20);
        kv.put(key(1, 4), 30);
        let items = vec![
            (key(1, 0), 10u64), // matches → claimed
            (key(1, 1), 99),    // stale expectation → left alone
            (key(1, 4), 30),    // matches → claimed
            (key(1, 5), 40),    // absent → not claimed
        ];
        let (claims, acquisitions) = kv.remove_if_eq_batch(&items);
        assert_eq!(claims, vec![true, false, true, false]);
        // Offsets 0/1 share partition 0 (server 0), 4/5 share partition 1
        // (server 1): two grouped acquisitions for four items.
        assert_eq!(acquisitions, 2);
        assert_eq!(kv.get(&key(1, 0)).1, None);
        assert_eq!(kv.get(&key(1, 1)).1, Some(20));
        assert_eq!(kv.get(&key(1, 4)).1, None);
    }

    #[test]
    fn concurrent_puts_on_distinct_shards_all_land() {
        use std::sync::Arc;
        let kv: Arc<DistKv<SegKey, u64>> = Arc::new(DistKv::new(16, 4));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let kv = Arc::clone(&kv);
                scope.spawn(move || {
                    // Each thread owns one partition range stride.
                    for i in 0..256u64 {
                        let off = (i * 4 + t) * 16; // lands on server (i*4+t)%4 == t
                        kv.put(key(t as u32, off), off);
                    }
                });
            }
        });
        assert_eq!(kv.len(), 4 * 256);
        let stats = kv.stats();
        assert_eq!(stats.puts, vec![256; 4]);
    }

    #[test]
    fn centralized_funnels_everything_to_one_server() {
        let mut central: CentralizedKv<SegKey, u64> = CentralizedKv::new();
        let dist: DistKv<SegKey, u64> = DistKv::new(4, 8);
        for off in 0..800 {
            central.put(key(1, off), off);
            dist.put(key(1, off), off);
        }
        assert_eq!(central.ops(), 800);
        // Distributed: no server saw more than ~1/8 of the puts.
        let max_per_server = *dist.stats().puts.iter().max().unwrap();
        assert!(max_per_server <= 101, "max {max_per_server}");
    }

    #[test]
    fn centralized_range_scan() {
        let mut central: CentralizedKv<SegKey, u64> = CentralizedKv::new();
        for off in 0..10 {
            central.put(key(1, off), off);
        }
        let got = central.range_scan(&key(1, 3), &key(1, 7));
        assert_eq!(got.len(), 4);
    }
}
