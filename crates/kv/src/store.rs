//! The distributed store and its centralized ablation baseline.

use crate::partition::{PartitionKey, RangePartitioner, ServerId};
use std::collections::BTreeMap;

/// Per-server operation counters, used both for load-balance assertions in
/// tests and by the timing plane to charge RPC costs.
#[derive(Debug, Clone, Default)]
pub struct KvStats {
    /// Puts serviced per server.
    pub puts: Vec<u64>,
    /// Gets (including range-scan visits) serviced per server.
    pub gets: Vec<u64>,
}

impl KvStats {
    fn with_servers(n: usize) -> Self {
        KvStats {
            puts: vec![0; n],
            gets: vec![0; n],
        }
    }

    /// Total operations across servers.
    pub fn total_ops(&self) -> u64 {
        self.puts.iter().sum::<u64>() + self.gets.iter().sum::<u64>()
    }

    /// Max-over-min load ratio across servers (1.0 = perfectly balanced).
    /// Servers with zero load are ignored in the min.
    pub fn imbalance(&self) -> f64 {
        let loads: Vec<u64> = self
            .puts
            .iter()
            .zip(&self.gets)
            .map(|(p, g)| p + g)
            .collect();
        let max = loads.iter().copied().max().unwrap_or(0);
        let min = loads.iter().copied().filter(|&l| l > 0).min().unwrap_or(0);
        if min == 0 {
            return f64::INFINITY;
        }
        max as f64 / min as f64
    }
}

/// One server's shard: an ordered map.
#[derive(Debug, Clone)]
pub struct KvShard<K: Ord, V> {
    map: BTreeMap<K, V>,
}

impl<K: Ord, V> Default for KvShard<K, V> {
    fn default() -> Self {
        KvShard {
            map: BTreeMap::new(),
        }
    }
}

impl<K: Ord, V> KvShard<K, V> {
    /// Records stored in this shard.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the shard holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate records in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.map.iter()
    }
}

/// The distributed KV store: `servers` shards with range partitioning.
#[derive(Debug, Clone)]
pub struct DistKv<K: Ord + PartitionKey, V> {
    partitioner: RangePartitioner,
    shards: Vec<KvShard<K, V>>,
    stats: KvStats,
}

impl<K: Ord + PartitionKey + Clone, V> DistKv<K, V> {
    /// A store with `servers` shards and the given range width.
    pub fn new(range_size: u64, servers: usize) -> Self {
        let partitioner = RangePartitioner::new(range_size, servers);
        DistKv {
            partitioner,
            shards: (0..servers).map(|_| KvShard::default()).collect(),
            stats: KvStats::with_servers(servers),
        }
    }

    /// The partitioner in use.
    pub fn partitioner(&self) -> RangePartitioner {
        self.partitioner
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.shards.len()
    }

    /// Insert, returning the servicing server and any displaced value.
    pub fn put(&mut self, key: K, value: V) -> (ServerId, Option<V>) {
        let server = self.partitioner.server_for(key.partition_point());
        self.stats.puts[server.0] += 1;
        let old = self.shards[server.0].map.insert(key, value);
        (server, old)
    }

    /// Look up a key, returning the value and the servicing server.
    pub fn get(&mut self, key: &K) -> (ServerId, Option<&V>) {
        let server = self.partitioner.server_for(key.partition_point());
        self.stats.gets[server.0] += 1;
        (server, self.shards[server.0].map.get(key))
    }

    /// Remove a key.
    pub fn remove(&mut self, key: &K) -> (ServerId, Option<V>) {
        let server = self.partitioner.server_for(key.partition_point());
        self.stats.puts[server.0] += 1;
        (server, self.shards[server.0].map.remove(key))
    }

    /// Scan all records whose partition point lies in `[lo, hi)` and whose
    /// key satisfies `filter`. Returns the records sorted by key, plus the
    /// servers visited (for RPC accounting).
    ///
    /// This walks every record of each visited shard — fine for modest
    /// stores; hot paths with ordered keys should use
    /// [`range_scan_bounded`](Self::range_scan_bounded).
    pub fn range_scan(
        &mut self,
        lo: u64,
        hi: u64,
        filter: impl Fn(&K) -> bool,
    ) -> (Vec<ServerId>, Vec<(K, &V)>) {
        let servers = self.partitioner.servers_for_span(lo, hi);
        let mut out: Vec<(K, &V)> = Vec::new();
        for s in &servers {
            self.stats.gets[s.0] += 1;
            for (k, v) in self.shards[s.0].map.iter() {
                let p = k.partition_point();
                if p >= lo && p < hi && filter(k) {
                    out.push((k.clone(), v));
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        (servers, out)
    }

    /// Like [`range_scan`](Self::range_scan), but additionally bounded by
    /// a key interval `[lo_key, hi_key)` that the caller guarantees
    /// contains every key with a partition point in `[lo, hi)` (plus
    /// whatever filtering slack it wants). Each visited shard is scanned
    /// with an O(log n + hits) ordered-map range, which keeps million-
    /// record stores fast.
    pub fn range_scan_bounded(
        &mut self,
        lo_key: &K,
        hi_key: &K,
        lo: u64,
        hi: u64,
        filter: impl Fn(&K) -> bool,
    ) -> (Vec<ServerId>, Vec<(K, &V)>) {
        let servers = self.partitioner.servers_for_span(lo, hi);
        let mut out: Vec<(K, &V)> = Vec::new();
        for s in &servers {
            self.stats.gets[s.0] += 1;
            for (k, v) in self.shards[s.0].map.range(lo_key.clone()..hi_key.clone()) {
                let p = k.partition_point();
                if p >= lo && p < hi && filter(k) {
                    out.push((k.clone(), v));
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        (servers, out)
    }

    /// Records per server (distribution inspection).
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(KvShard::len).collect()
    }

    /// Total records.
    pub fn len(&self) -> usize {
        self.shards.iter().map(KvShard::len).sum()
    }

    /// True when no records are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Operation counters.
    pub fn stats(&self) -> &KvStats {
        &self.stats
    }
}

/// The paper's rejected design: a single global map on one server. Kept as
/// the ablation baseline — every operation hits server 0, which becomes the
/// bottleneck the distributed design removes.
#[derive(Debug, Clone)]
pub struct CentralizedKv<K: Ord, V> {
    shard: KvShard<K, V>,
    ops: u64,
}

impl<K: Ord + Clone, V> CentralizedKv<K, V> {
    /// An empty centralized store.
    pub fn new() -> Self {
        CentralizedKv {
            shard: KvShard::default(),
            ops: 0,
        }
    }

    /// Insert. Always serviced by the single server.
    pub fn put(&mut self, key: K, value: V) -> Option<V> {
        self.ops += 1;
        self.shard.map.insert(key, value)
    }

    /// Look up.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.ops += 1;
        self.shard.map.get(key)
    }

    /// Range scan by key order.
    pub fn range_scan(&mut self, lo: &K, hi: &K) -> Vec<(K, &V)> {
        self.ops += 1;
        self.shard
            .map
            .range(lo.clone()..hi.clone())
            .map(|(k, v)| (k.clone(), v))
            .collect()
    }

    /// Operations serviced by the lone server.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Records stored.
    pub fn len(&self) -> usize {
        self.shard.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.shard.is_empty()
    }
}

impl<K: Ord + Clone, V> Default for CentralizedKv<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Key type mirroring UniviStor metadata keys: (file id, offset),
    /// partitioned by offset.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    struct SegKey {
        fid: u32,
        offset: u64,
    }

    impl PartitionKey for SegKey {
        fn partition_point(&self) -> u64 {
            self.offset
        }
    }

    fn key(fid: u32, offset: u64) -> SegKey {
        SegKey { fid, offset }
    }

    #[test]
    fn put_get_roundtrip() {
        let mut kv: DistKv<SegKey, &str> = DistKv::new(16, 4);
        kv.put(key(1, 0), "a");
        kv.put(key(1, 100), "b");
        assert_eq!(kv.get(&key(1, 0)).1, Some(&"a"));
        assert_eq!(kv.get(&key(1, 100)).1, Some(&"b"));
        assert_eq!(kv.get(&key(2, 0)).1, None);
        assert_eq!(kv.len(), 2);
    }

    #[test]
    fn put_returns_displaced_value() {
        let mut kv: DistKv<SegKey, u32> = DistKv::new(16, 2);
        assert_eq!(kv.put(key(1, 5), 10).1, None);
        assert_eq!(kv.put(key(1, 5), 20).1, Some(10));
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn remove_works() {
        let mut kv: DistKv<SegKey, u32> = DistKv::new(16, 2);
        kv.put(key(1, 5), 10);
        assert_eq!(kv.remove(&key(1, 5)).1, Some(10));
        assert_eq!(kv.get(&key(1, 5)).1, None);
        assert!(kv.is_empty());
    }

    #[test]
    fn records_distribute_round_robin() {
        // 64 records at offsets 0..64, range width 4, 4 servers → each
        // server owns exactly 4 ranges × 4 records.
        let mut kv: DistKv<SegKey, u64> = DistKv::new(4, 4);
        for off in 0..64 {
            kv.put(key(1, off), off);
        }
        assert_eq!(kv.shard_sizes(), vec![16, 16, 16, 16]);
        assert!(kv.stats().imbalance() < 1.01);
    }

    #[test]
    fn same_offset_different_fid_coexist() {
        // Segments from different source processes can share a VA/offset —
        // the composite key keeps them distinct.
        let mut kv: DistKv<SegKey, &str> = DistKv::new(16, 2);
        kv.put(key(1, 42), "file1");
        kv.put(key(2, 42), "file2");
        assert_eq!(kv.get(&key(1, 42)).1, Some(&"file1"));
        assert_eq!(kv.get(&key(2, 42)).1, Some(&"file2"));
    }

    #[test]
    fn range_scan_returns_sorted_and_filtered() {
        let mut kv: DistKv<SegKey, u64> = DistKv::new(8, 3);
        for off in (0..100).step_by(10) {
            kv.put(key(1, off), off);
            kv.put(key(2, off), off + 1000);
        }
        let (servers, records) = kv.range_scan(20, 60, |k| k.fid == 1);
        assert!(!servers.is_empty());
        let offsets: Vec<u64> = records.iter().map(|(k, _)| k.offset).collect();
        assert_eq!(offsets, vec![20, 30, 40, 50]);
        let sorted = {
            let mut s = records.clone();
            s.sort_by_key(|a| a.0);
            s
        };
        assert_eq!(records, sorted);
    }

    #[test]
    fn range_scan_empty_span() {
        let mut kv: DistKv<SegKey, u64> = DistKv::new(8, 3);
        kv.put(key(1, 5), 5);
        let (servers, records) = kv.range_scan(100, 100, |_| true);
        assert!(servers.is_empty());
        assert!(records.is_empty());
    }

    #[test]
    fn centralized_funnels_everything_to_one_server() {
        let mut central: CentralizedKv<SegKey, u64> = CentralizedKv::new();
        let mut dist: DistKv<SegKey, u64> = DistKv::new(4, 8);
        for off in 0..800 {
            central.put(key(1, off), off);
            dist.put(key(1, off), off);
        }
        assert_eq!(central.ops(), 800);
        // Distributed: no server saw more than ~1/8 of the puts.
        let max_per_server = *dist.stats().puts.iter().max().unwrap();
        assert!(max_per_server <= 101, "max {max_per_server}");
    }

    #[test]
    fn centralized_range_scan() {
        let mut central: CentralizedKv<SegKey, u64> = CentralizedKv::new();
        for off in 0..10 {
            central.put(key(1, off), off);
        }
        let got = central.range_scan(&key(1, 3), &key(1, 7));
        assert_eq!(got.len(), 4);
    }
}
