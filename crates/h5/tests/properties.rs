//! Property-based tests for the HDF5-lite format.

use proptest::prelude::*;
use univistor_h5::format::{Superblock, META_REGION_SIZE};

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,20}".prop_map(|s| s)
}

proptest! {
    /// Any superblock that serializes must parse back identically.
    #[test]
    fn superblock_roundtrips(
        datasets in proptest::collection::vec(
            (name_strategy(), 1u64..(1 << 40), 1u32..64),
            0..50
        ),
    ) {
        let mut sb = Superblock::default();
        let mut inserted = std::collections::HashSet::new();
        for (name, size, elem) in datasets {
            if inserted.insert(name.clone()) {
                sb.allocate(&name, size, elem).unwrap();
            }
        }
        let bytes = match sb.to_bytes() {
            Ok(b) => b,
            Err(_) => return Ok(()), // table legitimately too large
        };
        prop_assert!(bytes.len() as u64 <= META_REGION_SIZE);
        let parsed = Superblock::from_bytes(&bytes).unwrap();
        prop_assert_eq!(parsed, sb);
    }

    /// Dataset allocations never overlap each other or the metadata
    /// region, and the cursor equals the end of the last dataset.
    #[test]
    fn allocations_are_disjoint(
        sizes in proptest::collection::vec(1u64..(1 << 30), 1..40),
    ) {
        let mut sb = Superblock::default();
        for (i, size) in sizes.iter().enumerate() {
            sb.allocate(&format!("d{i}"), *size, 4).unwrap();
        }
        let mut cursor = META_REGION_SIZE;
        for d in &sb.datasets {
            prop_assert!(d.offset >= META_REGION_SIZE);
            prop_assert_eq!(d.offset, cursor);
            cursor += d.size;
        }
        prop_assert_eq!(sb.alloc_cursor, cursor);
    }

    /// Truncated or bit-flipped superblocks never parse as valid (and
    /// never panic).
    #[test]
    fn corruption_is_rejected_gracefully(
        n_datasets in 1usize..10,
        truncate_at in 0usize..200,
        flip in 0usize..200,
    ) {
        let mut sb = Superblock::default();
        for i in 0..n_datasets {
            sb.allocate(&format!("var{i}"), 1 << 20, 4).unwrap();
        }
        let bytes = sb.to_bytes().unwrap();

        // Truncation below the full length must fail.
        if truncate_at < bytes.len() {
            prop_assert!(Superblock::from_bytes(&bytes[..truncate_at]).is_err());
        }
        // A flipped byte either fails or yields a *different* superblock —
        // flipping content can never panic. (Flips in name bytes can still
        // parse; equality to the original is what must break, unless the
        // flip landed in padding-free length fields that alter parse
        // boundaries — those error out.)
        if flip < bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[flip] ^= 0xFF;
            if let Ok(parsed) = Superblock::from_bytes(&corrupted) {
                prop_assert_ne!(parsed, sb);
            }
        }
    }
}
