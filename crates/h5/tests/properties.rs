//! Randomized-property tests for the HDF5-lite format, driven by the
//! substrate's deterministic RNG (the workspace builds without external
//! crates, so no proptest).

use univistor_h5::format::{Superblock, META_REGION_SIZE};
use univistor_sim::rng::DetRng;

fn gen_name(rng: &mut DetRng) -> String {
    let len = 1 + rng.below(20);
    let mut s = String::new();
    s.push((b'a' + rng.below(26) as u8) as char);
    for _ in 1..len {
        let c = match rng.below(3) {
            0 => b'a' + rng.below(26) as u8,
            1 => b'0' + rng.below(10) as u8,
            _ => b'_',
        };
        s.push(c as char);
    }
    s
}

/// Any superblock that serializes must parse back identically.
#[test]
fn superblock_roundtrips() {
    let mut rng = DetRng::seed(0x45f0_0001);
    for _trial in 0..200 {
        let n = rng.below(50);
        let mut sb = Superblock::default();
        let mut inserted = std::collections::HashSet::new();
        for _ in 0..n {
            let name = gen_name(&mut rng);
            let size = 1 + (rng.below(1 << 30) as u64) * (1 + rng.below(1024) as u64);
            let elem = 1 + rng.below(63) as u32;
            if inserted.insert(name.clone()) {
                sb.allocate(&name, size, elem).unwrap();
            }
        }
        let bytes = match sb.to_bytes() {
            Ok(b) => b,
            Err(_) => continue, // table legitimately too large
        };
        assert!(bytes.len() as u64 <= META_REGION_SIZE);
        let parsed = Superblock::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, sb);
    }
}

/// Dataset allocations never overlap each other or the metadata
/// region, and the cursor equals the end of the last dataset.
#[test]
fn allocations_are_disjoint() {
    let mut rng = DetRng::seed(0x45f0_0002);
    for _trial in 0..200 {
        let n = 1 + rng.below(39);
        let sizes: Vec<u64> = (0..n).map(|_| 1 + rng.below(1 << 30) as u64).collect();
        let mut sb = Superblock::default();
        for (i, size) in sizes.iter().enumerate() {
            sb.allocate(&format!("d{i}"), *size, 4).unwrap();
        }
        let mut cursor = META_REGION_SIZE;
        for d in &sb.datasets {
            assert!(d.offset >= META_REGION_SIZE);
            assert_eq!(d.offset, cursor);
            cursor += d.size;
        }
        assert_eq!(sb.alloc_cursor, cursor);
    }
}

/// Truncated or bit-flipped superblocks never parse as valid (and
/// never panic).
#[test]
fn corruption_is_rejected_gracefully() {
    let mut rng = DetRng::seed(0x45f0_0003);
    for _trial in 0..200 {
        let n_datasets = 1 + rng.below(9);
        let mut sb = Superblock::default();
        for i in 0..n_datasets {
            sb.allocate(&format!("var{i}"), 1 << 20, 4).unwrap();
        }
        let bytes = sb.to_bytes().unwrap();

        // Truncation below the full length must fail.
        let truncate_at = rng.below(200);
        if truncate_at < bytes.len() {
            assert!(Superblock::from_bytes(&bytes[..truncate_at]).is_err());
        }
        // A flipped byte either fails or yields a *different* superblock —
        // flipping content can never panic. (Flips in name bytes can still
        // parse; equality to the original is what must break, unless the
        // flip landed in padding-free length fields that alter parse
        // boundaries — those error out.)
        let flip = rng.below(200);
        if flip < bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[flip] ^= 0xFF;
            if let Ok(parsed) = Superblock::from_bytes(&corrupted) {
                assert_ne!(parsed, sb);
            }
        }
    }
}
