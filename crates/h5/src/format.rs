//! On-disk format: superblock + dataset table, hand-serialized.

use univistor_sim::{SimError, SimResult};

/// Size of the metadata region at the head of every HDF5-lite file.
pub const META_REGION_SIZE: u64 = 64 * 1024;

/// File magic.
pub const MAGIC: &[u8; 4] = b"UH5L";

/// Format version.
pub const VERSION: u16 = 1;

/// One dataset: a named contiguous extent in the data region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetInfo {
    /// Dataset name (≤ 255 bytes).
    pub name: String,
    /// Absolute file offset of the dataset's first byte.
    pub offset: u64,
    /// Dataset size in bytes.
    pub size: u64,
    /// Element size in bytes (4 for the paper's float32 particle fields).
    pub elem_size: u32,
}

/// A named attribute attached to the file (empty target) or a dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrEntry {
    /// `""` for file-level attributes, else the dataset name.
    pub target: String,
    /// Attribute name (≤ 255 bytes).
    pub name: String,
    /// Raw attribute value (≤ 64 KiB).
    pub value: Vec<u8>,
}

/// The metadata region's contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Superblock {
    /// Next free byte in the data region (absolute file offset).
    pub alloc_cursor: u64,
    /// Registered datasets, in creation order.
    pub datasets: Vec<DatasetInfo>,
    /// File- and dataset-level attributes, in insertion order.
    pub attributes: Vec<AttrEntry>,
}

impl Default for Superblock {
    fn default() -> Self {
        Superblock {
            alloc_cursor: META_REGION_SIZE,
            datasets: Vec::new(),
            attributes: Vec::new(),
        }
    }
}

impl Superblock {
    /// Find a dataset by name.
    pub fn dataset(&self, name: &str) -> Option<&DatasetInfo> {
        self.datasets.iter().find(|d| d.name == name)
    }

    /// Set (or replace) an attribute. `target` must be `""` (file level)
    /// or the name of an existing dataset.
    pub fn set_attr(&mut self, target: &str, name: &str, value: Vec<u8>) -> SimResult<()> {
        if !target.is_empty() && self.dataset(target).is_none() {
            return Err(SimError::InvalidConfig(format!(
                "attribute target dataset '{target}' does not exist"
            )));
        }
        if name.len() > 255 || target.len() > 255 {
            return Err(SimError::InvalidConfig("attribute name too long".into()));
        }
        if value.len() > 64 << 10 {
            return Err(SimError::InvalidConfig("attribute value too large".into()));
        }
        if let Some(existing) = self
            .attributes
            .iter_mut()
            .find(|a| a.target == target && a.name == name)
        {
            existing.value = value;
        } else {
            self.attributes.push(AttrEntry {
                target: target.to_string(),
                name: name.to_string(),
                value,
            });
        }
        Ok(())
    }

    /// Look up an attribute value.
    pub fn attr(&self, target: &str, name: &str) -> Option<&[u8]> {
        self.attributes
            .iter()
            .find(|a| a.target == target && a.name == name)
            .map(|a| a.value.as_slice())
    }

    /// Allocate `size` bytes in the data region for a new dataset. Errors
    /// on duplicate names.
    pub fn allocate(&mut self, name: &str, size: u64, elem_size: u32) -> SimResult<DatasetInfo> {
        if self.dataset(name).is_some() {
            return Err(SimError::InvalidConfig(format!(
                "dataset '{name}' already exists"
            )));
        }
        if name.len() > 255 {
            return Err(SimError::InvalidConfig("dataset name too long".into()));
        }
        let info = DatasetInfo {
            name: name.to_string(),
            offset: self.alloc_cursor,
            size,
            elem_size,
        };
        self.alloc_cursor = self
            .alloc_cursor
            .checked_add(size)
            .ok_or_else(|| SimError::InvalidConfig("file size overflow".into()))?;
        self.datasets.push(info.clone());
        Ok(info)
    }

    /// Serialize into the metadata region's byte layout.
    pub fn to_bytes(&self) -> SimResult<Vec<u8>> {
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.alloc_cursor.to_le_bytes());
        out.extend_from_slice(&(self.datasets.len() as u32).to_le_bytes());
        for d in &self.datasets {
            out.push(d.name.len() as u8);
            out.extend_from_slice(d.name.as_bytes());
            out.extend_from_slice(&d.offset.to_le_bytes());
            out.extend_from_slice(&d.size.to_le_bytes());
            out.extend_from_slice(&d.elem_size.to_le_bytes());
        }
        out.extend_from_slice(&(self.attributes.len() as u32).to_le_bytes());
        for a in &self.attributes {
            out.push(a.target.len() as u8);
            out.extend_from_slice(a.target.as_bytes());
            out.push(a.name.len() as u8);
            out.extend_from_slice(a.name.as_bytes());
            out.extend_from_slice(&(a.value.len() as u32).to_le_bytes());
            out.extend_from_slice(&a.value);
        }
        if out.len() as u64 > META_REGION_SIZE {
            return Err(SimError::OutOfCapacity {
                requested: out.len() as u64,
                available: META_REGION_SIZE,
            });
        }
        Ok(out)
    }

    /// Parse from metadata-region bytes.
    pub fn from_bytes(bytes: &[u8]) -> SimResult<Superblock> {
        let bad = |why: &str| SimError::InvalidConfig(format!("corrupt superblock: {why}"));
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> SimResult<&[u8]> {
            if *pos + n > bytes.len() {
                return Err(bad("truncated"));
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        if take(&mut pos, 4)? != MAGIC {
            return Err(bad("bad magic"));
        }
        let version = u16::from_le_bytes(take(&mut pos, 2)?.try_into().expect("len 2"));
        if version != VERSION {
            return Err(bad("unsupported version"));
        }
        let alloc_cursor = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("len 8"));
        let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("len 4"));
        // Reject impossible counts before allocating: every dataset entry
        // occupies at least 21 bytes (1 name-length + 8 offset + 8 size +
        // 4 elem-size), so the table cannot hold more than this.
        let remaining = (bytes.len() - pos) as u64;
        if u64::from(count) * 21 > remaining {
            return Err(bad("dataset count exceeds table bytes"));
        }
        let mut datasets = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let name_len = take(&mut pos, 1)?[0] as usize;
            let name = String::from_utf8(take(&mut pos, name_len)?.to_vec())
                .map_err(|_| bad("non-utf8 name"))?;
            let offset = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("len 8"));
            let size = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("len 8"));
            let elem_size = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("len 4"));
            datasets.push(DatasetInfo {
                name,
                offset,
                size,
                elem_size,
            });
        }
        let attr_count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("len 4"));
        // Each attribute entry occupies at least 6 bytes.
        if u64::from(attr_count) * 6 > (bytes.len() - pos) as u64 {
            return Err(bad("attribute count exceeds table bytes"));
        }
        let mut attributes = Vec::with_capacity(attr_count as usize);
        for _ in 0..attr_count {
            let tlen = take(&mut pos, 1)?[0] as usize;
            let target = String::from_utf8(take(&mut pos, tlen)?.to_vec())
                .map_err(|_| bad("non-utf8 attr target"))?;
            let nlen = take(&mut pos, 1)?[0] as usize;
            let name = String::from_utf8(take(&mut pos, nlen)?.to_vec())
                .map_err(|_| bad("non-utf8 attr name"))?;
            let vlen = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("len 4"));
            if u64::from(vlen) > (bytes.len() - pos) as u64 {
                return Err(bad("attribute value exceeds table bytes"));
            }
            let value = take(&mut pos, vlen as usize)?.to_vec();
            attributes.push(AttrEntry {
                target,
                name,
                value,
            });
        }
        Ok(Superblock {
            alloc_cursor,
            datasets,
            attributes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_superblock_roundtrips() {
        let sb = Superblock::default();
        let parsed = Superblock::from_bytes(&sb.to_bytes().unwrap()).unwrap();
        assert_eq!(parsed, sb);
        assert_eq!(parsed.alloc_cursor, META_REGION_SIZE);
    }

    #[test]
    fn allocation_is_contiguous_and_roundtrips() {
        let mut sb = Superblock::default();
        let a = sb.allocate("x", 1000, 4).unwrap();
        let b = sb.allocate("y", 500, 4).unwrap();
        assert_eq!(a.offset, META_REGION_SIZE);
        assert_eq!(b.offset, META_REGION_SIZE + 1000);
        assert_eq!(sb.alloc_cursor, META_REGION_SIZE + 1500);
        let parsed = Superblock::from_bytes(&sb.to_bytes().unwrap()).unwrap();
        assert_eq!(parsed, sb);
        assert_eq!(parsed.dataset("y").unwrap().size, 500);
    }

    #[test]
    fn duplicate_dataset_rejected() {
        let mut sb = Superblock::default();
        sb.allocate("x", 10, 4).unwrap();
        assert!(sb.allocate("x", 10, 4).is_err());
    }

    #[test]
    fn corrupt_inputs_rejected() {
        assert!(Superblock::from_bytes(b"").is_err());
        assert!(Superblock::from_bytes(b"XXXX\x01\x00").is_err());
        let good = Superblock::default().to_bytes().unwrap();
        assert!(Superblock::from_bytes(&good[..good.len() - 1]).is_err());
        let mut bad_version = good.clone();
        bad_version[4] = 99;
        assert!(Superblock::from_bytes(&bad_version).is_err());
    }

    #[test]
    fn vpic_scale_table_fits_metadata_region() {
        // 8 variables as in VPIC-IO — tiny; but also check a stress case
        // of hundreds of datasets still fitting 64 KiB.
        let mut sb = Superblock::default();
        for i in 0..1000 {
            sb.allocate(&format!("var{i:04}"), 1 << 20, 4).unwrap();
        }
        let bytes = sb.to_bytes().unwrap();
        assert!(bytes.len() as u64 <= META_REGION_SIZE);
    }

    #[test]
    fn oversized_table_errors_cleanly() {
        let mut sb = Superblock::default();
        for i in 0..3000 {
            sb.allocate(&format!("dataset-with-a-long-name-{i:06}"), 1, 4)
                .unwrap();
        }
        assert!(matches!(sb.to_bytes(), Err(SimError::OutOfCapacity { .. })));
    }
}
