//! # univistor-h5 — "HDF5-lite" on the simulated MPI-IO layer
//!
//! The paper's workloads (the HDF5 micro-benchmark, VPIC-IO, BD-CATS-IO)
//! all speak HDF5, and the COC/HDF5 optimization of §II-F targets a
//! specific HDF5 behaviour: *the file's metadata region lives at a fixed
//! location, so when every process opens/creates/closes a shared file, all
//! of them read/write the same region served by the same UniviStor server*.
//! HDF5-lite reproduces exactly that access pattern on a drastically
//! simplified format:
//!
//! ```text
//! [ metadata region: 64 KiB                      ][ data region ... ]
//!   magic | version | alloc cursor | dataset table
//! ```
//!
//! Datasets are named, contiguous byte extents allocated from the data
//! region. All metadata updates rewrite the metadata region through the
//! MPI-IO driver — either from **every rank** (HDF5's default, producing
//! the all-to-one storm) or, with the collective-metadata option
//! ([`univistor_mpi::hints::HDF5_COLLECTIVE_KEY`]), from **rank 0 only**
//! followed by a broadcast — the optimization UniviStor's ADIO layer
//! detects (§II-F).
//!
//! The format is functional: dataset tables serialize to real bytes in the
//! file and parse back, so any driver that stores bytes correctly will
//! round-trip HDF5-lite files.

pub mod file;
pub mod format;

pub use file::H5File;
pub use format::{DatasetInfo, Superblock, META_REGION_SIZE};
