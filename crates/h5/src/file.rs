//! The HDF5-lite file object.

use crate::format::{DatasetInfo, Superblock, META_REGION_SIZE};
use univistor_mpi::hints::HDF5_COLLECTIVE_KEY;
use univistor_mpi::OpenMode;
use univistor_mpi::{Comm, FsDriver, Hints, MpiFile};
use univistor_sim::{Payload, SimError, SimResult};

/// An open HDF5-lite file on one rank.
///
/// Metadata consistency model (mirroring parallel HDF5): dataset creation
/// is collective; data reads/writes are independent. Without the
/// collective-metadata hint, *every* rank writes the metadata region on
/// each update — the access pattern that hammers one UniviStor server and
/// that the COC/HDF5 optimization removes.
pub struct H5File<'d> {
    file: MpiFile<'d>,
    comm: Comm,
    collective_md: bool,
    superblock: Superblock,
}

impl<'d> H5File<'d> {
    /// Collectively create a new HDF5-lite file.
    pub fn create(
        comm: &Comm,
        driver: &'d dyn FsDriver,
        path: &str,
        hints: Hints,
    ) -> SimResult<H5File<'d>> {
        let collective_md = hints.get_bool(HDF5_COLLECTIVE_KEY);
        let file = MpiFile::open(comm, driver, path, OpenMode::ReadWrite, hints)?;
        let mut h5 = H5File {
            file,
            comm: comm.clone(),
            collective_md,
            superblock: Superblock::default(),
        };
        h5.store_metadata()?;
        Ok(h5)
    }

    /// Collectively open an existing file and parse its metadata.
    pub fn open(
        comm: &Comm,
        driver: &'d dyn FsDriver,
        path: &str,
        mode: OpenMode,
        hints: Hints,
    ) -> SimResult<H5File<'d>> {
        let collective_md = hints.get_bool(HDF5_COLLECTIVE_KEY);
        let file = MpiFile::open(comm, driver, path, mode, hints)?;
        let mut h5 = H5File {
            file,
            comm: comm.clone(),
            collective_md,
            superblock: Superblock::default(),
        };
        h5.load_metadata()?;
        Ok(h5)
    }

    /// Write the superblock into the metadata region. Collective-metadata
    /// mode: root writes, others wait; default: every rank writes the same
    /// bytes (the storm).
    fn store_metadata(&mut self) -> SimResult<()> {
        let bytes = self.superblock.to_bytes()?;
        // Pad to the full region (zeros stay virtual) so later readers see
        // no holes regardless of table length.
        let pad = META_REGION_SIZE - bytes.len() as u64;
        let region = Payload::chain([Payload::from_bytes(bytes), Payload::zeros(pad)]);
        if self.collective_md {
            if self.comm.is_root() {
                self.file.write_at(0, region)?;
            }
            self.comm.barrier();
        } else {
            self.file.write_at(0, region)?;
            self.comm.barrier();
        }
        Ok(())
    }

    /// Read and parse the superblock. Collective-metadata mode: root reads
    /// and broadcasts; default: every rank reads.
    fn load_metadata(&mut self) -> SimResult<()> {
        // The table length is unknown; read the whole region and parse.
        // (Real HDF5 walks object headers; one bounded read is our
        // equivalent.)
        let parse = |payload: Payload| -> SimResult<Superblock> {
            Superblock::from_bytes(&payload.to_bytes())
        };
        if self.collective_md {
            let root_result: Option<Result<Superblock, String>> = self.comm.is_root().then(|| {
                self.read_meta_region()
                    .and_then(parse)
                    .map_err(|e| e.to_string())
            });
            let shared = self.comm.bcast(0, root_result);
            self.superblock = shared.map_err(SimError::InvalidConfig)?;
        } else {
            let payload = self.read_meta_region()?;
            self.superblock = parse(payload)?;
        }
        Ok(())
    }

    fn read_meta_region(&self) -> SimResult<Payload> {
        // Read only as much as the file holds (freshly created files have a
        // short table, not the full 64 KiB).
        let size = self.file.size()?.min(META_REGION_SIZE);
        self.file.read_at(0, size)
    }

    /// Collectively create a dataset of `size` bytes. All ranks must call
    /// with identical arguments; all ranks observe the new table.
    pub fn create_dataset(
        &mut self,
        name: &str,
        size: u64,
        elem_size: u32,
    ) -> SimResult<DatasetInfo> {
        let info = self.superblock.allocate(name, size, elem_size)?;
        self.store_metadata()?;
        Ok(info)
    }

    /// Collectively set an attribute on the file (`target = ""`) or a
    /// dataset. All ranks must call with identical arguments.
    pub fn set_attribute(&mut self, target: &str, name: &str, value: &[u8]) -> SimResult<()> {
        self.superblock.set_attr(target, name, value.to_vec())?;
        self.store_metadata()
    }

    /// Look up an attribute.
    pub fn attribute(&self, target: &str, name: &str) -> Option<&[u8]> {
        self.superblock.attr(target, name)
    }

    /// Look up a dataset.
    pub fn dataset(&self, name: &str) -> Option<&DatasetInfo> {
        self.superblock.dataset(name)
    }

    /// All datasets in creation order.
    pub fn datasets(&self) -> &[DatasetInfo] {
        &self.superblock.datasets
    }

    /// Independent write of `data` at `offset` within dataset `name`.
    pub fn write(&self, name: &str, offset: u64, data: Payload) -> SimResult<()> {
        let d = self.dataset_checked(name)?;
        let end = offset + data.len();
        if end > d.size {
            return Err(SimError::OutOfCapacity {
                requested: end,
                available: d.size,
            });
        }
        self.file.write_at(d.offset + offset, data)
    }

    /// Independent read of `[offset, offset + len)` within dataset `name`.
    pub fn read(&self, name: &str, offset: u64, len: u64) -> SimResult<Payload> {
        let d = self.dataset_checked(name)?;
        if offset + len > d.size {
            return Err(SimError::OutOfCapacity {
                requested: offset + len,
                available: d.size,
            });
        }
        self.file.read_at(d.offset + offset, len)
    }

    fn dataset_checked(&self, name: &str) -> SimResult<&DatasetInfo> {
        self.superblock
            .dataset(name)
            .ok_or_else(|| SimError::InvalidConfig(format!("no dataset '{name}'")))
    }

    /// Collective close; triggers the driver's close-time behaviour
    /// (UniviStor: flush).
    pub fn close(self) -> SimResult<()> {
        self.file.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use univistor_mpi::{MemDriver, World};

    #[test]
    fn create_write_read_roundtrip_spmd() {
        let driver = MemDriver::new();
        let checks = World::run(4, |comm| {
            let mut h5 = H5File::create(&comm, &driver, "/exp.h5", Hints::new()).unwrap();
            let per = 64u64;
            let total = per * comm.size() as u64;
            h5.create_dataset("energy", total, 4).unwrap();
            let mine = Payload::pattern(comm.rank() as u64, per);
            h5.write("energy", comm.rank() as u64 * per, mine.clone())
                .unwrap();
            comm.barrier();
            // Cross-read a neighbour's slab.
            let next = (comm.rank() + 1) % comm.size();
            let theirs = h5.read("energy", next as u64 * per, per).unwrap();
            let ok = theirs.content_eq(&Payload::pattern(next as u64, per));
            h5.close().unwrap();
            ok
        });
        assert_eq!(checks, vec![true; 4]);
    }

    #[test]
    fn reopen_parses_existing_table() {
        let driver = MemDriver::new();
        World::run(2, |comm| {
            let mut h5 = H5File::create(&comm, &driver, "/f.h5", Hints::new()).unwrap();
            h5.create_dataset("a", 100, 4).unwrap();
            h5.create_dataset("b", 200, 8).unwrap();
            h5.write("b", 0, Payload::pattern(7, 200)).unwrap();
            h5.close().unwrap();
        });
        World::run(3, |comm| {
            let h5 = H5File::open(&comm, &driver, "/f.h5", OpenMode::Read, Hints::new()).unwrap();
            assert_eq!(h5.datasets().len(), 2);
            let b = h5.dataset("b").unwrap();
            assert_eq!((b.size, b.elem_size), (200, 8));
            assert!(h5
                .read("b", 0, 200)
                .unwrap()
                .content_eq(&Payload::pattern(7, 200)));
            h5.close().unwrap();
        });
    }

    #[test]
    fn collective_metadata_mode_matches_default() {
        for collective in [false, true] {
            let driver = MemDriver::new();
            let hints = if collective {
                Hints::new().with(HDF5_COLLECTIVE_KEY, "1")
            } else {
                Hints::new()
            };
            let h = hints.clone();
            World::run(4, move |comm| {
                let mut h5 = H5File::create(&comm, &driver, "/c.h5", h.clone()).unwrap();
                h5.create_dataset("d", 256, 4).unwrap();
                h5.write(
                    "d",
                    comm.rank() as u64 * 64,
                    Payload::pattern(comm.rank() as u64, 64),
                )
                .unwrap();
                comm.barrier();
                for r in 0..comm.size() as u64 {
                    assert!(h5
                        .read("d", r * 64, 64)
                        .unwrap()
                        .content_eq(&Payload::pattern(r, 64)));
                }
                h5.close().unwrap();
            });
        }
    }

    #[test]
    fn out_of_bounds_dataset_io_rejected() {
        let driver = MemDriver::new();
        World::run(1, |comm| {
            let mut h5 = H5File::create(&comm, &driver, "/e.h5", Hints::new()).unwrap();
            h5.create_dataset("d", 100, 4).unwrap();
            assert!(h5.write("d", 90, Payload::zeros(20)).is_err());
            assert!(h5.read("d", 90, 20).is_err());
            assert!(h5.write("nope", 0, Payload::zeros(1)).is_err());
            h5.close().unwrap();
        });
    }

    #[test]
    fn attributes_roundtrip_through_reopen() {
        let driver = MemDriver::new();
        World::run(2, |comm| {
            let mut h5 = H5File::create(&comm, &driver, "/a.h5", Hints::new()).unwrap();
            h5.create_dataset("d", 64, 4).unwrap();
            h5.set_attribute("", "source", b"VPIC").unwrap();
            h5.set_attribute("d", "units", b"m/s").unwrap();
            // Replacement works.
            h5.set_attribute("d", "units", b"km/s").unwrap();
            // Unknown targets are rejected.
            assert!(h5.set_attribute("nope", "x", b"y").is_err());
            h5.close().unwrap();
        });
        World::run(1, |comm| {
            let h5 = H5File::open(&comm, &driver, "/a.h5", OpenMode::Read, Hints::new()).unwrap();
            assert_eq!(h5.attribute("", "source"), Some(&b"VPIC"[..]));
            assert_eq!(h5.attribute("d", "units"), Some(&b"km/s"[..]));
            assert_eq!(h5.attribute("d", "missing"), None);
            h5.close().unwrap();
        });
    }

    #[test]
    fn datasets_do_not_overlap_file_metadata() {
        let driver = MemDriver::new();
        World::run(1, |comm| {
            let mut h5 = H5File::create(&comm, &driver, "/g.h5", Hints::new()).unwrap();
            let d = h5.create_dataset("d", 10, 1).unwrap();
            assert!(d.offset >= META_REGION_SIZE);
            // Writing data must not corrupt the parseable superblock.
            h5.write("d", 0, Payload::pattern(3, 10)).unwrap();
            h5.close().unwrap();
            let h5 = H5File::open(&comm, &driver, "/g.h5", OpenMode::Read, Hints::new()).unwrap();
            assert_eq!(h5.datasets().len(), 1);
            h5.close().unwrap();
        });
    }
}
