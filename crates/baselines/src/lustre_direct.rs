//! Direct-to-Lustre baseline: no caching layer at all.
//!
//! Applications "can only use Lustre to write data from local DRAM to the
//! file system" (§III-A). The driver writes the shared file straight to a
//! functional [`Lustre`] with a typical tuned checkpoint layout (1 MiB
//! stripes across all OSTs), paying shared-file lock contention in full.

use std::collections::HashMap;
use std::sync::Mutex;
use univistor_mpi::driver::{FileHandle, FsDriver, OpenContext};
use univistor_pfs::{Lustre, StripeLayout};
use univistor_sim::calibration::Calibration;
use univistor_sim::{Payload, SimResult};

/// Cumulative counters for the timing plane.
#[derive(Debug, Clone, Copy, Default)]
pub struct LustreDirectStats {
    /// Bytes written through the driver.
    pub bytes_written: u64,
    /// Bytes read through the driver.
    pub bytes_read: u64,
    /// Write RPCs.
    pub write_ops: u64,
}

#[derive(Debug)]
struct State {
    lustre: Lustre,
    open_counts: HashMap<String, usize>,
    stats: LustreDirectStats,
}

/// The Lustre-only ADIO driver.
pub struct LustreDirect {
    state: Mutex<State>,
    stripe_size: u64,
    ost_count: usize,
}

impl LustreDirect {
    /// A driver over a fresh Lustre with the given calibration.
    pub fn new(cal: &Calibration) -> Self {
        LustreDirect {
            state: Mutex::new(State {
                lustre: Lustre::new(cal.ost_count),
                open_counts: HashMap::new(),
                stats: LustreDirectStats::default(),
            }),
            stripe_size: cal.default_stripe_size,
            ost_count: cal.ost_count,
        }
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> LustreDirectStats {
        self.state.lock().unwrap().stats
    }

    /// Lock revocations on the PFS so far.
    pub fn lock_conflicts(&self) -> u64 {
        self.state.lock().unwrap().lustre.lock_conflicts()
    }

    /// Per-OST byte loads.
    pub fn ost_loads(&self) -> Vec<u64> {
        self.state.lock().unwrap().lustre.ost_loads()
    }

    /// File size on the PFS.
    pub fn pfs_file_size(&self, path: &str) -> SimResult<u64> {
        self.state.lock().unwrap().lustre.file_size(path)
    }
}

impl FsDriver for LustreDirect {
    fn name(&self) -> &'static str {
        "lustre"
    }

    fn open(&self, ctx: &OpenContext) -> SimResult<FileHandle> {
        let mut st = self.state.lock().unwrap();
        if !st.lustre.exists(&ctx.path) {
            if !ctx.mode.writable() {
                return Err(univistor_sim::SimError::InvalidConfig(format!(
                    "no such file '{}'",
                    ctx.path
                )));
            }
            st.lustre.create(
                &ctx.path,
                StripeLayout::new(self.stripe_size, self.ost_count, 0),
            )?;
        }
        *st.open_counts.entry(ctx.path.clone()).or_insert(0) += 1;
        Ok(FileHandle {
            fid: 0,
            path: ctx.path.clone(),
            mode: ctx.mode,
            nprocs: ctx.nprocs,
        })
    }

    fn write_at(&self, h: &FileHandle, rank: usize, offset: u64, data: Payload) -> SimResult<()> {
        let mut st = self.state.lock().unwrap();
        st.stats.bytes_written += data.len();
        st.stats.write_ops += 1;
        st.lustre.write(&h.path, offset, data, rank as u64)?;
        Ok(())
    }

    fn read_at(&self, h: &FileHandle, rank: usize, offset: u64, len: u64) -> SimResult<Payload> {
        let mut st = self.state.lock().unwrap();
        st.stats.bytes_read += len;
        st.lustre.read(&h.path, offset, len, rank as u64)
    }

    fn close(&self, h: &FileHandle, _rank: usize) -> SimResult<()> {
        let mut st = self.state.lock().unwrap();
        if let Some(c) = st.open_counts.get_mut(&h.path) {
            *c = c.saturating_sub(1);
        }
        Ok(())
    }

    fn file_size(&self, h: &FileHandle) -> SimResult<u64> {
        self.state.lock().unwrap().lustre.file_size(&h.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use univistor_mpi::driver::OpenMode;
    use univistor_mpi::{Hints, MpiFile, World};

    #[test]
    fn shared_file_roundtrip() {
        let d = LustreDirect::new(&Calibration::default());
        let oks = World::run(4, |comm| {
            let f = MpiFile::open(&comm, &d, "/ckpt", OpenMode::ReadWrite, Hints::new()).unwrap();
            f.write_at_all(
                comm.rank() as u64 * 1024,
                Payload::pattern(comm.rank() as u64, 1024),
            )
            .unwrap();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            let got = f.read_at_all(prev as u64 * 1024, 1024).unwrap();
            let ok = got.content_eq(&Payload::pattern(prev as u64, 1024));
            f.close().unwrap();
            ok
        });
        assert_eq!(oks, vec![true; 4]);
        assert_eq!(d.pfs_file_size("/ckpt").unwrap(), 4096);
        assert_eq!(d.stats().bytes_written, 4096);
    }

    #[test]
    fn interleaved_shared_writes_generate_lock_traffic() {
        let d = LustreDirect::new(&Calibration::default());
        let h = d
            .open(&OpenContext {
                path: "/f".into(),
                mode: OpenMode::Write,
                rank: 0,
                nprocs: 2,
                hints: Hints::new(),
            })
            .unwrap();
        // Two ranks alternate 64 KiB blocks inside one 1 MiB stripe —
        // the classic N-to-1 interleave that lands both writers in the
        // same OST object.
        for i in 0..16u64 {
            d.write_at(&h, (i % 2) as usize, i << 16, Payload::pattern(i, 1 << 16))
                .unwrap();
        }
        assert!(d.lock_conflicts() > 0, "shared-file contention missing");
    }

    #[test]
    fn missing_file_read_only_fails() {
        let d = LustreDirect::new(&Calibration::default());
        let r = d.open(&OpenContext {
            path: "/missing".into(),
            mode: OpenMode::Read,
            rank: 0,
            nprocs: 1,
            hints: Hints::new(),
        });
        assert!(r.is_err());
    }
}
