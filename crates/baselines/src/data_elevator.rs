//! Data Elevator (Dong et al., HiPC'16): transparent burst-buffer caching.
//!
//! DE intercepts writes of a shared (HDF5) file and redirects them to the
//! DataWarp shared burst buffer; at close time its servers asynchronously
//! flush the file to Lustre. Two design points distinguish it from
//! UniviStor and drive the evaluation's gaps:
//!
//! 1. **Shared-file layout on the BB** — DE "lays out processes' data in
//!    one shared HDF5 file" (§III-B) striped across BB nodes, so N-to-1
//!    write contention survives on the burst buffer. We model the BB as a
//!    striped object store with extent locks (structurally identical to
//!    Lustre, parameterized by BB-node count and DataWarp's 8 MiB
//!    granularity).
//! 2. **Static flush striping** — the flush stripes across all OSTs with
//!    the default stripe size, without adaptive striping or
//!    interference-aware scheduling.
//!
//! DE cannot cache in DRAM and cannot serve node-local reads — only
//! UniviStor unifies those layers.

use std::collections::HashMap;
use std::sync::Mutex;
use univistor_core::config::JobGeometry;
use univistor_core::striping::server_ranges;
use univistor_mpi::driver::{FileHandle, FsDriver, OpenContext};
use univistor_pfs::{Lustre, StripeLayout};
use univistor_sim::calibration::Calibration;
use univistor_sim::{Payload, SimError, SimResult};

/// DataWarp's allocation granularity, used as the BB stripe size.
pub const DATAWARP_STRIPE: u64 = 8 << 20;

/// What one DE flush did (timing-plane input).
#[derive(Debug, Clone)]
pub struct DeFlushReceipt {
    /// Destination path.
    pub dest: String,
    /// Bytes flushed.
    pub file_size: u64,
    /// Bytes written by each flushing server.
    pub per_server_bytes: Vec<u64>,
    /// Bytes received per OST.
    pub per_ost_bytes: Vec<u64>,
    /// Distinct OSTs each server contacted.
    pub osts_per_server: usize,
    /// Lock revocations on the PFS during the flush.
    pub lock_revocations: u64,
}

/// Cumulative counters.
#[derive(Debug, Clone, Default)]
pub struct DeStats {
    /// Bytes cached on the burst buffer.
    pub bb_bytes_written: u64,
    /// Bytes read back (from the BB cache).
    pub bytes_read: u64,
    /// Flush receipts in order.
    pub flush_receipts: Vec<DeFlushReceipt>,
}

#[derive(Debug)]
struct State {
    /// The shared burst buffer: structurally a striped object store with
    /// extent locks; "OSTs" here are BB nodes.
    bb: Lustre,
    pfs: Lustre,
    open_counts: HashMap<String, usize>,
    written: HashMap<String, bool>,
    stats: DeStats,
}

/// The Data Elevator driver.
pub struct DataElevator {
    state: Mutex<State>,
    geometry: JobGeometry,
    cal: Calibration,
    bb_nodes: usize,
}

impl DataElevator {
    /// A DE instance for a job of the given geometry.
    pub fn new(geometry: JobGeometry, cal: Calibration) -> Self {
        let bb_nodes = cal.bb_nodes_for_job(geometry.nodes);
        DataElevator {
            state: Mutex::new(State {
                bb: Lustre::new(bb_nodes),
                pfs: Lustre::new(cal.ost_count),
                open_counts: HashMap::new(),
                written: HashMap::new(),
                stats: DeStats::default(),
            }),
            geometry,
            cal,
            bb_nodes,
        }
    }

    /// Burst-buffer nodes in the allocation.
    pub fn bb_nodes(&self) -> usize {
        self.bb_nodes
    }

    /// Snapshot counters.
    pub fn stats(&self) -> DeStats {
        self.state.lock().unwrap().stats.clone()
    }

    /// Lock revocations on the shared-file BB cache so far.
    pub fn bb_lock_conflicts(&self) -> u64 {
        self.state.lock().unwrap().bb.lock_conflicts()
    }

    /// Flushed file size on the PFS.
    pub fn pfs_file_size(&self, path: &str) -> SimResult<u64> {
        self.state.lock().unwrap().pfs.file_size(path)
    }

    /// Read a flushed file back from the PFS (verification).
    pub fn pfs_read(&self, path: &str, offset: u64, len: u64) -> SimResult<Payload> {
        self.state
            .lock()
            .unwrap()
            .pfs
            .read(path, offset, len, u64::MAX)
    }

    /// DE's flush: each server writes a contiguous range to Lustre with
    /// the static all-OST layout.
    fn flush(&self, st: &mut State, path: &str) -> SimResult<DeFlushReceipt> {
        let file_size = st.bb.file_size(path)?;
        if file_size == 0 {
            return Err(SimError::InvalidFlow(format!("flush of empty '{path}'")));
        }
        let servers = self.geometry.total_servers();
        let osts = self.cal.ost_count;
        if st.pfs.exists(path) {
            st.pfs.delete(path)?;
        }
        st.pfs.create(
            path,
            StripeLayout::new(self.cal.default_stripe_size, osts, 0),
        )?;
        let ranges = server_ranges(file_size, servers);
        let mut per_server_bytes = vec![0u64; servers];
        let mut per_ost_bytes = vec![0u64; osts];
        let mut revocations = 0u64;
        let mut osts_per_server = 0usize;
        for (server, &(start, end)) in ranges.iter().enumerate() {
            if end <= start {
                continue;
            }
            let payload = st.bb.read(path, start, end - start, server as u64)?;
            let receipt = st.pfs.write(path, start, payload, server as u64)?;
            revocations += receipt.lock_revocations;
            let loads = receipt.ost_bytes();
            osts_per_server = osts_per_server.max(loads.len());
            for (ost, bytes) in loads {
                per_ost_bytes[ost] += bytes;
            }
            per_server_bytes[server] = end - start;
        }
        Ok(DeFlushReceipt {
            dest: path.to_string(),
            file_size,
            per_server_bytes,
            per_ost_bytes,
            osts_per_server,
            lock_revocations: revocations,
        })
    }
}

impl FsDriver for DataElevator {
    fn name(&self) -> &'static str {
        "data-elevator"
    }

    fn open(&self, ctx: &OpenContext) -> SimResult<FileHandle> {
        let mut st = self.state.lock().unwrap();
        if !st.bb.exists(&ctx.path) {
            if !ctx.mode.writable() {
                return Err(SimError::InvalidConfig(format!(
                    "no such file '{}'",
                    ctx.path
                )));
            }
            // One shared file striped across all BB nodes at DataWarp
            // granularity.
            let nodes = self.bb_nodes;
            st.bb
                .create(&ctx.path, StripeLayout::new(DATAWARP_STRIPE, nodes, 0))?;
        }
        *st.open_counts.entry(ctx.path.clone()).or_insert(0) += 1;
        Ok(FileHandle {
            fid: 0,
            path: ctx.path.clone(),
            mode: ctx.mode,
            nprocs: ctx.nprocs,
        })
    }

    fn write_at(&self, h: &FileHandle, rank: usize, offset: u64, data: Payload) -> SimResult<()> {
        let mut st = self.state.lock().unwrap();
        st.stats.bb_bytes_written += data.len();
        st.bb.write(&h.path, offset, data, rank as u64)?;
        st.written.insert(h.path.clone(), true);
        Ok(())
    }

    fn read_at(&self, h: &FileHandle, rank: usize, offset: u64, len: u64) -> SimResult<Payload> {
        let mut st = self.state.lock().unwrap();
        st.stats.bytes_read += len;
        st.bb.read(&h.path, offset, len, rank as u64)
    }

    fn close(&self, h: &FileHandle, _rank: usize) -> SimResult<()> {
        let mut st = self.state.lock().unwrap();
        let count = st
            .open_counts
            .get_mut(&h.path)
            .ok_or_else(|| SimError::InvalidConfig(format!("close of unopened '{}'", h.path)))?;
        *count = count.saturating_sub(1);
        let last = *count == 0;
        let written = st.written.get(&h.path).copied().unwrap_or(false);
        if last && written && h.mode.writable() {
            let receipt = self.flush(&mut st, &h.path)?;
            st.stats.flush_receipts.push(receipt);
        }
        Ok(())
    }

    fn file_size(&self, h: &FileHandle) -> SimResult<u64> {
        self.state.lock().unwrap().bb.file_size(&h.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use univistor_mpi::driver::OpenMode;
    use univistor_mpi::{Hints, MpiFile, World};

    fn de() -> DataElevator {
        DataElevator::new(
            JobGeometry {
                nodes: 2,
                procs_per_node: 2,
                servers_per_node: 2,
            },
            Calibration::default(),
        )
    }

    #[test]
    fn cache_then_flush_roundtrip() {
        let d = de();
        World::run(4, |comm| {
            let f = MpiFile::open(&comm, &d, "/sim.h5", OpenMode::ReadWrite, Hints::new()).unwrap();
            f.write_at_all(
                comm.rank() as u64 * 4096,
                Payload::pattern(comm.rank() as u64, 4096),
            )
            .unwrap();
            // Reads during the job come from the BB cache.
            let got = f.read_at_all(0, 4096).unwrap();
            assert!(got.content_eq(&Payload::pattern(0, 4096)));
            f.close().unwrap();
        });
        // Close flushed the file to the PFS, byte-exact.
        assert_eq!(d.pfs_file_size("/sim.h5").unwrap(), 4 * 4096);
        for r in 0..4u64 {
            let got = d.pfs_read("/sim.h5", r * 4096, 4096).unwrap();
            assert!(got.content_eq(&Payload::pattern(r, 4096)));
        }
        let stats = d.stats();
        assert_eq!(stats.flush_receipts.len(), 1);
        let receipt = &stats.flush_receipts[0];
        assert_eq!(receipt.file_size, 4 * 4096);
        assert_eq!(receipt.per_server_bytes.iter().sum::<u64>(), 4 * 4096);
    }

    #[test]
    fn shared_file_on_bb_keeps_contention() {
        let d = de();
        let h = d
            .open(&OpenContext {
                path: "/f".into(),
                mode: OpenMode::Write,
                rank: 0,
                nprocs: 4,
                hints: Hints::new(),
            })
            .unwrap();
        // Four ranks interleave 1 MiB blocks inside the 8 MiB DataWarp
        // stripes, landing in the same BB-node objects.
        for i in 0..32u64 {
            d.write_at(&h, (i % 4) as usize, i << 20, Payload::pattern(i, 1 << 20))
                .unwrap();
        }
        assert!(
            d.bb_lock_conflicts() > 0,
            "DE's shared-file BB layout must show contention"
        );
    }

    #[test]
    fn flush_only_on_last_close_of_written_file() {
        let d = de();
        let ctx = |rank| OpenContext {
            path: "/f".into(),
            mode: OpenMode::Write,
            rank,
            nprocs: 2,
            hints: Hints::new(),
        };
        let h0 = d.open(&ctx(0)).unwrap();
        let h1 = d.open(&ctx(1)).unwrap();
        d.write_at(&h0, 0, 0, Payload::pattern(1, 128)).unwrap();
        d.close(&h0, 0).unwrap();
        assert!(d.pfs_file_size("/f").is_err(), "flushed too early");
        d.close(&h1, 1).unwrap();
        assert_eq!(d.pfs_file_size("/f").unwrap(), 128);
    }

    #[test]
    fn read_only_session_does_not_reflush() {
        let d = de();
        let wctx = OpenContext {
            path: "/f".into(),
            mode: OpenMode::Write,
            rank: 0,
            nprocs: 1,
            hints: Hints::new(),
        };
        let h = d.open(&wctx).unwrap();
        d.write_at(&h, 0, 0, Payload::pattern(1, 64)).unwrap();
        d.close(&h, 0).unwrap();
        assert_eq!(d.stats().flush_receipts.len(), 1);
        let rctx = OpenContext {
            mode: OpenMode::Read,
            ..wctx
        };
        let h = d.open(&rctx).unwrap();
        d.read_at(&h, 0, 0, 64).unwrap();
        d.close(&h, 0).unwrap();
        assert_eq!(d.stats().flush_receipts.len(), 1);
    }
}
