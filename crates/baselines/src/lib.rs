//! # univistor-baselines — the systems UniviStor is compared against
//!
//! The paper's evaluation (§III) compares UniviStor with two baselines:
//!
//! * **Lustre** — applications write the shared file straight to the
//!   disk-based PFS ([`lustre_direct::LustreDirect`]). No caching layer,
//!   shared-file extent-lock contention in full.
//! * **Data Elevator** (Dong et al., HiPC'16) — a transparent caching
//!   library that redirects writes of a shared HDF5 file to the DataWarp
//!   shared burst buffer and asynchronously flushes the file to Lustre at
//!   close time ([`data_elevator::DataElevator`]). Crucially, DE keeps the
//!   *shared-file* layout on the burst buffer (one file striped across BB
//!   nodes, all processes writing into it) — the contention that
//!   UniviStor's file-per-process DHP transformation removes — and its
//!   flush stripes across all OSTs without UniviStor's adaptive striping
//!   or interference-aware scheduling.
//!
//! Both are full [`univistor_mpi::FsDriver`]s: the same workloads run
//! unmodified against either baseline or UniviStor, and both are
//! functional (bytes read back exactly from the BB cache and from Lustre
//! after flush).

pub mod data_elevator;
pub mod lustre_direct;

pub use data_elevator::DataElevator;
pub use lustre_direct::LustreDirect;
