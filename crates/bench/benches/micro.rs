//! Micro-benchmarks: the data-structure ablations behind UniviStor's
//! design choices, on a tiny built-in timing harness (`harness = false`;
//! the workspace builds without external crates, so no Criterion).
//!
//! * `log_append` — chunked log-structured appends, including chunk reuse
//!   through the free-chunk stack;
//! * `va_codec` — Eq. 1 encode/decode;
//! * `metadata` — the distributed range-partitioned KV vs. the paper's
//!   rejected centralized map (insert and range-lookup);
//! * `striping` — adaptive (Eqs. 2–6) vs. naive planning;
//! * `read_path` — location-aware vs. naive read planning;
//! * `flow_solver` — max–min fair allocation at growing flow counts;
//! * `sparse_buffer` — extent-map write/read.
//!
//! Run with `cargo bench -p univistor-bench`. Pass a substring argument
//! to filter groups, e.g. `cargo bench -p univistor-bench -- metadata`.

use std::hint::black_box;
use std::time::Instant;
use univistor_core::config::JobGeometry;
use univistor_core::log::LogFile;
use univistor_core::metadata::{ClientId, MetadataService, SegKey, SegmentRecord};
use univistor_core::placement::{ChainSet, ProcChain};
use univistor_core::read::ReadService;
use univistor_core::striping::{adaptive_plan, naive_plan};
use univistor_core::va::{Tier, TierMap, VirtualAddr};
use univistor_kv::CentralizedKv;
use univistor_sim::flow::FlowSpec;
use univistor_sim::{FlowSim, Payload, SimTime, SparseBuffer};

/// Time `f` for at least ~0.2 s after warmup and report ns/iteration.
fn bench<R>(filter: &Option<String>, name: &str, mut f: impl FnMut() -> R) {
    if let Some(pat) = filter {
        if !name.contains(pat.as_str()) {
            return;
        }
    }
    // Warmup + calibration: find an iteration count that runs ≥ 50 ms.
    let mut iters = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = t.elapsed();
        if elapsed.as_millis() >= 50 || iters > 1 << 24 {
            break;
        }
        iters = (iters * 4).max(4);
    }
    // Measured passes: take the best of 3 to damp scheduler noise.
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        best = best.min(t.elapsed().as_secs_f64());
    }
    let per_iter_ns = best / iters as f64 * 1e9;
    let (value, unit) = if per_iter_ns >= 1e6 {
        (per_iter_ns / 1e6, "ms")
    } else if per_iter_ns >= 1e3 {
        (per_iter_ns / 1e3, "µs")
    } else {
        (per_iter_ns, "ns")
    };
    println!("{name:<44} {value:>10.2} {unit}/iter   ({iters} iters)");
}

fn bench_log_append(filter: &Option<String>) {
    bench(filter, "log_append/fresh_chunks", || {
        let mut log = LogFile::new(64 << 20, 1 << 20).unwrap();
        for i in 0..64u64 {
            log.append(Payload::pattern(i, 1 << 20)).unwrap();
        }
        log.live_bytes()
    });
    bench(filter, "log_append/with_chunk_reuse", || {
        let mut log = LogFile::new(8 << 20, 1 << 20).unwrap();
        // Fill, release, refill — exercising the free-chunk stack.
        for round in 0..8u64 {
            let addrs: Vec<_> = (0..8u64)
                .map(|i| {
                    log.append(Payload::pattern(round * 8 + i, 1 << 20))
                        .unwrap()
                })
                .collect();
            for a in addrs {
                log.release(a, 1 << 20);
            }
        }
        log.free_chunks()
    });
}

fn bench_va_codec(filter: &Option<String>) {
    let map = TierMap::new(vec![
        (Tier::Dram, 1 << 30),
        (Tier::SharedBurstBuffer, 8 << 30),
        (Tier::Pfs, u64::MAX),
    ]);
    bench(filter, "va_codec/encode_decode_x1024", || {
        let mut acc = 0u64;
        for i in 0..1024u64 {
            let va = map.encode((i % 3) as usize, i * 4096 % (1 << 30));
            let (layer, _, addr) = map.decode(va);
            acc = acc.wrapping_add(layer as u64 + addr);
        }
        acc
    });
}

fn bench_metadata(filter: &Option<String>) {
    let record = |i: u64| {
        SegmentRecord::new(
            ClientId::new(0, (i % 64) as u32),
            VirtualAddr(i * 4096),
            4096,
        )
    };

    for n in [1_000u64, 10_000] {
        bench(filter, &format!("metadata/distributed_insert/{n}"), || {
            let md = MetadataService::new(1 << 20, 64, 8);
            for i in 0..n {
                md.insert(
                    SegKey {
                        fid: 1,
                        offset: i * 4096,
                    },
                    record(i),
                    0,
                );
            }
            md.len()
        });
        bench(filter, &format!("metadata/centralized_insert/{n}"), || {
            let mut kv: CentralizedKv<SegKey, SegmentRecord> = CentralizedKv::new();
            for i in 0..n {
                kv.put(
                    SegKey {
                        fid: 1,
                        offset: i * 4096,
                    },
                    record(i),
                );
            }
            kv.len()
        });
    }

    // Range lookups over a populated store.
    let md = MetadataService::new(1 << 20, 64, 8);
    for i in 0..100_000u64 {
        md.insert(
            SegKey {
                fid: 1,
                offset: i * 4096,
            },
            record(i),
            0,
        );
    }
    let mut cursor = 0u64;
    bench(filter, "metadata/distributed_range_lookup", || {
        cursor = (cursor + 997) % 90_000;
        let (_, hits) = md.lookup_range(1, cursor * 4096, (cursor + 64) * 4096);
        hits.len()
    });
}

fn bench_striping(filter: &Option<String>) {
    let gb = 1u64 << 30;
    bench(filter, "striping/adaptive_case1", || {
        adaptive_plan(64 * gb, 8, 248, 8, gb).stripe_size
    });
    bench(filter, "striping/adaptive_case2", || {
        adaptive_plan(512 * gb, 512, 248, 8, gb).stripe_size
    });
    bench(filter, "striping/naive", || {
        naive_plan(512 * gb, 512, 248, 1 << 20).osts_per_server
    });
}

fn bench_read_path(filter: &Option<String>) {
    // 4 nodes × 8 clients, 1024 segments of 64 KiB.
    let geometry = JobGeometry {
        nodes: 4,
        procs_per_node: 8,
        servers_per_node: 2,
    };
    let md = MetadataService::new(16 << 20, 8, 4);
    let chains = ChainSet::new();
    let seg = 64u64 << 10;
    for rank in 0..32u32 {
        let client = ClientId::new(0, rank);
        chains
            .ensure(client, || {
                ProcChain::new(vec![(Tier::Dram, 32 * seg), (Tier::Pfs, u64::MAX)], seg)
            })
            .unwrap();
        for i in 0..32u64 {
            let logical = (rank as u64 * 32 + i) * seg;
            let placed = chains
                .append(client, Payload::pattern(logical, seg))
                .unwrap();
            md.insert(
                SegKey {
                    fid: 1,
                    offset: logical,
                },
                SegmentRecord::new(client, placed.va, seg),
                geometry.node_of_rank(rank as usize),
            );
        }
    }
    for (name, aware) in [
        ("read_path/location_aware", true),
        ("read_path/naive", false),
    ] {
        let svc = ReadService::new(&md, &chains, &geometry).location_aware(aware);
        let mut cursor = 0u64;
        bench(filter, name, || {
            cursor = (cursor + 7) % 960;
            let out = svc
                .read(ClientId::new(0, 0), 1, cursor * seg, 8 * seg)
                .unwrap();
            out.payload.len()
        });
    }
}

fn bench_flow_solver(filter: &Option<String>) {
    for groups in [16usize, 128, 1024] {
        bench(filter, &format!("flow_solver/groups/{groups}"), || {
            let mut sim = FlowSim::new();
            let resources: Vec<_> = (0..64)
                .map(|i| sim.add_resource(format!("r{i}"), 1e9 + i as f64).unwrap())
                .collect();
            for i in 0..groups {
                let path = vec![resources[i % 64], resources[(i * 7 + 1) % 64]];
                sim.add_flow(FlowSpec::new(SimTime::ZERO, 1e6 + i as f64, path).with_count(16))
                    .unwrap();
            }
            FlowSim::makespan(&sim.run()).secs()
        });
    }
}

fn bench_sparse_buffer(filter: &Option<String>) {
    bench(filter, "sparse_buffer/sequential_writes", || {
        let mut buf = SparseBuffer::new();
        for i in 0..1024u64 {
            buf.write(i * 4096, Payload::pattern(i, 4096));
        }
        buf.extent_count()
    });
    bench(filter, "sparse_buffer/overlapping_writes_then_read", || {
        let mut buf = SparseBuffer::new();
        for i in 0..256u64 {
            buf.write(i * 1000, Payload::pattern(i, 4096));
        }
        buf.read(0, 256 * 1000 + 4096).len()
    });
}

fn main() {
    // `cargo bench -- <filter>`; cargo also passes --bench, ignore flags.
    let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
    bench_log_append(&filter);
    bench_va_codec(&filter);
    bench_metadata(&filter);
    bench_striping(&filter);
    bench_read_path(&filter);
    bench_flow_solver(&filter);
    bench_sparse_buffer(&filter);
}
