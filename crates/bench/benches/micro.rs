//! Criterion micro-benchmarks: the data-structure ablations behind
//! UniviStor's design choices.
//!
//! * `log_append` — chunked log-structured appends, including chunk reuse
//!   through the free-chunk stack;
//! * `va_codec` — Eq. 1 encode/decode;
//! * `metadata` — the distributed range-partitioned KV vs. the paper's
//!   rejected centralized map (insert and range-lookup);
//! * `striping` — adaptive (Eqs. 2–6) vs. naive planning;
//! * `read_path` — location-aware vs. naive read planning;
//! * `flow_solver` — max–min fair allocation at growing flow counts;
//! * `sparse_buffer` — extent-map write/read.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::{HashMap, HashSet};
use std::hint::black_box;
use univistor_core::config::JobGeometry;
use univistor_core::log::LogFile;
use univistor_core::metadata::{ClientId, MetadataService, SegKey, SegmentRecord};
use univistor_core::placement::ProcChain;
use univistor_core::read::read_segments;
use univistor_core::striping::{adaptive_plan, naive_plan};
use univistor_core::va::{Tier, TierMap, VirtualAddr};
use univistor_kv::CentralizedKv;
use univistor_sim::flow::FlowSpec;
use univistor_sim::{FlowSim, Payload, SimTime, SparseBuffer};

fn bench_log_append(c: &mut Criterion) {
    let mut g = c.benchmark_group("log_append");
    g.sample_size(20);
    g.bench_function("fresh_chunks", |b| {
        b.iter(|| {
            let mut log = LogFile::new(64 << 20, 1 << 20).unwrap();
            for i in 0..64u64 {
                log.append(Payload::pattern(i, 1 << 20)).unwrap();
            }
            black_box(log.live_bytes())
        })
    });
    g.bench_function("with_chunk_reuse", |b| {
        b.iter(|| {
            let mut log = LogFile::new(8 << 20, 1 << 20).unwrap();
            // Fill, release, refill — exercising the free-chunk stack.
            for round in 0..8u64 {
                let addrs: Vec<_> = (0..8u64)
                    .map(|i| log.append(Payload::pattern(round * 8 + i, 1 << 20)).unwrap())
                    .collect();
                for a in addrs {
                    log.release(a, 1 << 20);
                }
            }
            black_box(log.free_chunks())
        })
    });
    g.finish();
}

fn bench_va_codec(c: &mut Criterion) {
    let map = TierMap::new(vec![
        (Tier::Dram, 1 << 30),
        (Tier::SharedBurstBuffer, 8 << 30),
        (Tier::Pfs, u64::MAX),
    ]);
    c.bench_function("va_encode_decode", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1024u64 {
                let va = map.encode((i % 3) as usize, i * 4096 % (1 << 30));
                let (layer, _, addr) = map.decode(va);
                acc = acc.wrapping_add(layer as u64 + addr);
            }
            black_box(acc)
        })
    });
}

fn bench_metadata(c: &mut Criterion) {
    let mut g = c.benchmark_group("metadata");
    g.sample_size(20);
    let record = |i: u64| SegmentRecord::new(ClientId::new(0, (i % 64) as u32), VirtualAddr(i * 4096), 4096);

    for n in [1_000u64, 10_000] {
        g.bench_with_input(BenchmarkId::new("distributed_insert", n), &n, |b, &n| {
            b.iter(|| {
                let mut md = MetadataService::new(1 << 20, 64, 8);
                for i in 0..n {
                    md.insert(SegKey { fid: 1, offset: i * 4096 }, record(i), 0);
                }
                black_box(md.len())
            })
        });
        g.bench_with_input(BenchmarkId::new("centralized_insert", n), &n, |b, &n| {
            b.iter(|| {
                let mut kv: CentralizedKv<SegKey, SegmentRecord> = CentralizedKv::new();
                for i in 0..n {
                    kv.put(SegKey { fid: 1, offset: i * 4096 }, record(i));
                }
                black_box(kv.len())
            })
        });
    }

    // Range lookups over a populated store.
    let mut md = MetadataService::new(1 << 20, 64, 8);
    for i in 0..100_000u64 {
        md.insert(SegKey { fid: 1, offset: i * 4096 }, record(i), 0);
    }
    g.bench_function("distributed_range_lookup", |b| {
        let mut cursor = 0u64;
        b.iter(|| {
            cursor = (cursor + 997) % 90_000;
            let (_, hits) = md.lookup_range(1, cursor * 4096, (cursor + 64) * 4096);
            black_box(hits.len())
        })
    });
    g.finish();
}

fn bench_striping(c: &mut Criterion) {
    let mut g = c.benchmark_group("striping");
    let gb = 1u64 << 30;
    g.bench_function("adaptive_case1", |b| {
        b.iter(|| black_box(adaptive_plan(64 * gb, 8, 248, 8, gb).stripe_size))
    });
    g.bench_function("adaptive_case2", |b| {
        b.iter(|| black_box(adaptive_plan(512 * gb, 512, 248, 8, gb).stripe_size))
    });
    g.bench_function("naive", |b| {
        b.iter(|| black_box(naive_plan(512 * gb, 512, 248, 1 << 20).osts_per_server))
    });
    g.finish();
}

fn bench_read_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("read_path");
    g.sample_size(30);
    // 4 nodes × 8 clients, 1024 segments of 64 KiB.
    let geometry = JobGeometry {
        nodes: 4,
        procs_per_node: 8,
        servers_per_node: 2,
    };
    let mut md = MetadataService::new(16 << 20, 8, 4);
    let mut chains: HashMap<ClientId, ProcChain> = HashMap::new();
    let seg = 64u64 << 10;
    for rank in 0..32u32 {
        let client = ClientId::new(0, rank);
        let mut chain = ProcChain::new(
            vec![(Tier::Dram, 32 * seg), (Tier::Pfs, u64::MAX)],
            seg,
        )
        .unwrap();
        for i in 0..32u64 {
            let logical = (rank as u64 * 32 + i) * seg;
            let placed = chain.append(Payload::pattern(logical, seg)).unwrap();
            md.insert(
                SegKey { fid: 1, offset: logical },
                SegmentRecord::new(client, placed.va, seg),
                geometry.node_of_rank(rank as usize),
            );
        }
        chains.insert(client, chain);
    }
    for (name, aware) in [("location_aware", true), ("naive", false)] {
        g.bench_function(name, |b| {
            let mut cursor = 0u64;
            b.iter(|| {
                cursor = (cursor + 7) % 960;
                let (payload, _, _) = read_segments(
                    &mut md,
                    &chains,
                    &geometry,
                    aware,
                    &HashSet::new(),
                    ClientId::new(0, 0),
                    1,
                    cursor * seg,
                    8 * seg,
                )
                .unwrap();
                black_box(payload.len())
            })
        });
    }
    g.finish();
}

fn bench_flow_solver(c: &mut Criterion) {
    let mut g = c.benchmark_group("flow_solver");
    g.sample_size(20);
    for groups in [16usize, 128, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(groups), &groups, |b, &groups| {
            b.iter(|| {
                let mut sim = FlowSim::new();
                let resources: Vec<_> = (0..64)
                    .map(|i| sim.add_resource(format!("r{i}"), 1e9 + i as f64).unwrap())
                    .collect();
                for i in 0..groups {
                    let path = vec![resources[i % 64], resources[(i * 7 + 1) % 64]];
                    sim.add_flow(
                        FlowSpec::new(SimTime::ZERO, 1e6 + i as f64, path).with_count(16),
                    )
                    .unwrap();
                }
                black_box(FlowSim::makespan(&sim.run()).secs())
            })
        });
    }
    g.finish();
}

fn bench_sparse_buffer(c: &mut Criterion) {
    let mut g = c.benchmark_group("sparse_buffer");
    g.bench_function("sequential_writes", |b| {
        b.iter(|| {
            let mut buf = SparseBuffer::new();
            for i in 0..1024u64 {
                buf.write(i * 4096, Payload::pattern(i, 4096));
            }
            black_box(buf.extent_count())
        })
    });
    g.bench_function("overlapping_writes_then_read", |b| {
        b.iter(|| {
            let mut buf = SparseBuffer::new();
            for i in 0..256u64 {
                buf.write(i * 1000, Payload::pattern(i, 4096));
            }
            black_box(buf.read(0, 256 * 1000 + 4096).len())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_log_append,
    bench_va_codec,
    bench_metadata,
    bench_striping,
    bench_read_path,
    bench_flow_solver,
    bench_sparse_buffer
);
criterion_main!(benches);
