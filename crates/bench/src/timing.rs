//! The timing plane: converts functional receipts into simulated phase
//! times on the calibrated Cori-like platform.
//!
//! Each phase time is the maximum over the bottlenecks the phase crosses
//! (per-process CPU caps, NUMA-socket memory systems, NICs, burst-buffer
//! SSDs, OSTs), plus serial overheads (open/close metadata storms, stripe
//! synchronization, lock revocations). For the symmetric bulk-synchronous
//! phases the evaluation measures, this max-of-bottlenecks closed form
//! equals the max–min-fair flow allocation; the flow simulator in
//! `univistor_sim::flow` is used by tests to cross-check that claim.
//!
//! Scheduling (IA vs. CFS) enters through real placements: every node's
//! core assignment is computed with the actual policy implementations and
//! the contention model turns stacking/imbalance into per-process rate
//! caps.

use univistor_core::config::{Features, JobGeometry};
use univistor_core::flush::FlushReceipt;
use univistor_core::read::ReadTrace;
use univistor_core::sched::InterferenceAwarePolicy;
use univistor_core::va::Tier;
use univistor_sim::calibration::{small_io_efficiency, Calibration};
use univistor_sim::cores::{
    CfsPolicy, ContentionModel, CoreAssignment, NodeShape, PlacementPolicy, SERVER_PROGRAM,
};
use univistor_sim::latency::{all_to_one_storm, collective_open_close};

/// Per-process cached bytes by destination tier for one write phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct TierBytes {
    /// Bytes cached on node-local DRAM.
    pub dram: u64,
    /// Bytes cached on the node-local SSD (when that layer is enabled).
    pub node_local: u64,
    /// Bytes cached on the shared burst buffer (file-per-process logs).
    pub bb: u64,
    /// Bytes spilled to per-process PFS logs.
    pub pfs: u64,
}

impl TierBytes {
    /// Extract the per-process averages from a job's per-tier totals.
    pub fn from_totals(totals: &std::collections::BTreeMap<Tier, u64>, procs: usize) -> Self {
        let per = |t: Tier| totals.get(&t).copied().unwrap_or(0) / procs.max(1) as u64;
        TierBytes {
            dram: per(Tier::Dram),
            node_local: per(Tier::NodeLocal),
            bb: per(Tier::SharedBurstBuffer),
            pfs: per(Tier::Pfs),
        }
    }

    /// Total per-process bytes.
    pub fn total(&self) -> u64 {
        self.dram + self.node_local + self.bb + self.pfs
    }
}

/// The calibrated platform an experiment runs on.
#[derive(Debug, Clone)]
pub struct Platform {
    /// Hardware constants.
    pub cal: Calibration,
    /// Job geometry.
    pub geometry: JobGeometry,
    /// Seed for the CFS baseline's randomness.
    pub seed: u64,
}

/// Summary of per-process memory rates under a placement policy.
#[derive(Debug, Clone, Copy)]
pub struct MemProfile {
    /// Slowest client's effective copy rate (sets the phase makespan
    /// together with socket aggregates).
    pub min_client_rate: f64,
    /// Largest per-socket client count across the job (drives the
    /// socket-bandwidth bound).
    pub max_socket_clients: usize,
    /// Effective per-server copy rate during a flush (after migration
    /// with IA; stacked with clients without).
    pub server_flush_rate: f64,
}

impl Platform {
    /// The paper's platform for `procs` total client processes.
    pub fn paper(procs: usize) -> Self {
        Platform {
            cal: Calibration::default(),
            geometry: JobGeometry::paper(procs),
            seed: 0x5eed_cafe,
        }
    }

    fn shape(&self) -> NodeShape {
        NodeShape {
            sockets: self.cal.sockets_per_node,
            cores_per_socket: self.cal.cores_per_socket,
        }
    }

    /// Total client processes.
    pub fn procs(&self) -> usize {
        self.geometry.total_procs()
    }

    /// Burst-buffer aggregate bandwidth of this job's allocation.
    pub fn bb_aggregate_bw(&self) -> f64 {
        self.cal.bb_nodes_for_job(self.geometry.nodes) as f64 * self.cal.bb_node_bw
    }

    /// NIC aggregate bandwidth.
    pub fn nic_aggregate_bw(&self) -> f64 {
        self.geometry.nodes as f64 * self.cal.nic_bw
    }

    /// Socket-memory aggregate bandwidth.
    pub fn mem_aggregate_bw(&self) -> f64 {
        (self.geometry.nodes * self.cal.sockets_per_node) as f64 * self.cal.socket_mem_bw
    }

    /// Compute real placements on every node with the selected policy and
    /// summarize the contention profile.
    pub fn mem_profile(&self, interference_aware: bool) -> MemProfile {
        let shape = self.shape();
        let programs = [
            (0u32, self.geometry.procs_per_node),
            (SERVER_PROGRAM, self.geometry.servers_per_node),
        ];
        let model = ContentionModel {
            per_proc_copy_bw: self.cal.per_proc_copy_bw,
            ctx_switch_efficiency: self.cal.ctx_switch_efficiency,
        };
        let mut min_client_rate = f64::INFINITY;
        let mut max_socket_clients = 0usize;
        let mut server_flush_rate: f64 = f64::INFINITY;
        // Under IA every node is identical; sample one. Under CFS, place
        // every node with its own seed.
        let node_count = if interference_aware {
            1
        } else {
            self.geometry.nodes
        };
        for node in 0..node_count {
            let assignment: CoreAssignment = if interference_aware {
                InterferenceAwarePolicy::new().place(shape, &programs)
            } else {
                CfsPolicy::new(self.seed.wrapping_add(node as u64), self.cal.cfs_stack_prob)
                    .place(shape, &programs)
            };
            // Client phase rates (servers idle).
            for r in model.proc_rates(&assignment, |s| s.program == 0) {
                min_client_rate = min_client_rate.min(r.rate_cap);
            }
            for socket in 0..shape.sockets {
                let clients = (0..shape.cores_per_socket)
                    .map(|c| {
                        assignment
                            .procs_on_core(socket * shape.cores_per_socket + c)
                            .iter()
                            .filter(|p| p.program == 0)
                            .count()
                    })
                    .sum::<usize>();
                max_socket_clients = max_socket_clients.max(clients);
            }
            // Flush-time server rates: IA migrates clients off server
            // cores (servers run alone); without IA servers stay stacked
            // wherever CFS put them, sharing their cores with clients that
            // are concurrently computing.
            if interference_aware {
                server_flush_rate = self.cal.per_proc_copy_bw;
            } else {
                for r in model.proc_rates(&assignment, |_| true) {
                    if r.slot.program == SERVER_PROGRAM {
                        server_flush_rate = server_flush_rate.min(r.rate_cap);
                    }
                }
            }
        }
        if !interference_aware {
            // CFS load balancing bounds how long any process stays
            // deeply stacked.
            let floor = self.cal.per_proc_copy_bw * self.cal.cfs_min_share;
            min_client_rate = min_client_rate.max(floor.min(self.cal.per_proc_copy_bw));
            server_flush_rate = server_flush_rate.max(floor);
        }
        MemProfile {
            min_client_rate,
            max_socket_clients,
            server_flush_rate,
        }
    }

    /// Cost of a collective open or close under the given features
    /// (§II-F): one root RPC + broadcast with COC, an all-to-one storm
    /// without.
    pub fn open_close_cost(&self, features: &Features) -> f64 {
        let p = self.procs() as u64;
        if features.collective_open_close {
            collective_open_close(p, self.cal.net_latency, self.cal.rpc_service_time)
        } else {
            all_to_one_storm(p, self.cal.net_latency, self.cal.rpc_service_time)
        }
    }

    // ----- write phases ----------------------------------------------

    /// Time of one UniviStor cache-write phase: every client writes
    /// `per_proc` bytes through DHP (already executed functionally; the
    /// tier split comes from the job's receipts), including one collective
    /// open + close.
    pub fn univistor_write_time(
        &self,
        features: &Features,
        per_proc: TierBytes,
        segments_per_proc: u64,
    ) -> f64 {
        let profile = self.mem_profile(features.interference_aware);
        let p = self.procs() as f64;

        // Sub-phase 1: DRAM. Makespan = max(slowest socket drain, slowest
        // capped client).
        let t_dram = if per_proc.dram > 0 {
            let socket_drain =
                (profile.max_socket_clients as u64 * per_proc.dram) as f64 / self.cal.socket_mem_bw;
            let client_drain = per_proc.dram as f64 / profile.min_client_rate;
            socket_drain.max(client_drain)
        } else {
            0.0
        };

        // Sub-phase 1b: node-local SSD — per-node device shared by the
        // node's clients, no network involved.
        let t_node_local = if per_proc.node_local > 0 {
            let node_bytes = per_proc.node_local * self.geometry.procs_per_node as u64;
            (node_bytes as f64 / self.cal.node_local_bw)
                .max(per_proc.node_local as f64 / profile.min_client_rate)
        } else {
            0.0
        };

        // Sub-phase 2: shared burst buffer — file-per-process logs, so no
        // shared-file penalty. Bounded by BB SSDs, NICs, and client CPUs.
        let t_bb = if per_proc.bb > 0 {
            let total = per_proc.bb as f64 * p;
            let bw = self
                .bb_aggregate_bw()
                .min(self.nic_aggregate_bw())
                .min(p * profile.min_client_rate);
            total / bw
        } else {
            0.0
        };

        // Sub-phase 3: spill to per-process PFS log files (file-per-
        // process → no lock contention; one OST per log, round-robin;
        // log-structured 8 MiB chunk writes keep the per-RPC overhead
        // small but nonzero).
        let t_pfs = if per_proc.pfs > 0 {
            let total = per_proc.pfs as f64 * p;
            let chunk_eff = small_io_efficiency(
                8 << 20, // UniviStorConfig::paper() chunk size
                self.cal.ost_bw,
                self.cal.pfs_log_commit_overhead,
            );
            let used_osts = (self.procs().min(self.cal.ost_count)) as f64;
            let bw = (used_osts * self.cal.ost_bw)
                .min(self.nic_aggregate_bw())
                .min(p * profile.min_client_rate)
                * chunk_eff;
            total / bw
        } else {
            0.0
        };

        // Metadata puts: distributed across all metadata servers; each
        // client's puts are pipelined with its writes — the residual cost
        // is one round trip per segment at the client.
        let t_md =
            segments_per_proc as f64 * (2.0 * self.cal.net_latency + self.cal.rpc_service_time);

        t_dram + t_node_local + t_bb + t_pfs + t_md + 2.0 * self.open_close_cost(features)
    }

    /// Direct-Lustre shared-file write (the paper's "Lustre" series).
    pub fn lustre_write_time(&self, per_proc_bytes: u64) -> f64 {
        let p = self.procs() as u64;
        let total = per_proc_bytes as f64 * p as f64;
        let stripe_eff = small_io_efficiency(
            self.cal.default_stripe_size,
            self.cal.ost_bw,
            self.cal.ost_rpc_overhead,
        );
        // Lock ping-pong and per-stripe RPC costs degrade the whole
        // path, not just the OST side — a client stalled on a revoked
        // lock injects nothing into its NIC either.
        let bw = self
            .cal
            .lustre_peak_bw()
            .min(self.nic_aggregate_bw())
            .min(p as f64 * self.cal.per_proc_copy_bw)
            * self.cal.lustre_shared_efficiency(p)
            * stripe_eff;
        // Shared-file open storm at the MDS.
        total / bw + 2.0 * all_to_one_storm(p, self.cal.net_latency, self.cal.mds_service_time)
    }

    /// Data Elevator shared-file write to the burst buffer.
    pub fn de_write_time(&self, per_proc_bytes: u64) -> f64 {
        let p = self.procs() as u64;
        let total = per_proc_bytes as f64 * p as f64;
        let bw = self
            .bb_aggregate_bw()
            .min(self.nic_aggregate_bw())
            .min(p as f64 * self.cal.per_proc_copy_bw)
            * self.cal.bb_shared_efficiency(p);
        total / bw + 2.0 * all_to_one_storm(p, self.cal.net_latency, self.cal.mds_service_time)
    }

    // ----- read phases -----------------------------------------------

    /// Time of one UniviStor read phase from an aggregated [`ReadTrace`].
    pub fn univistor_read_time(&self, features: &Features, trace: &ReadTrace) -> f64 {
        let profile = self.mem_profile(features.interference_aware);
        let p = self.procs() as f64;
        let per = |total: u64| total as f64 / p;

        // Local direct: memcpy out of node-local logs.
        let ld = per(trace.local_direct_bytes);
        let t_local = if ld > 0.0 {
            let socket = profile.max_socket_clients as f64 * ld / self.cal.socket_mem_bw;
            socket.max(ld / profile.min_client_rate)
        } else {
            0.0
        };

        // Local via server: two copies through the socket plus the
        // co-located servers' CPU.
        let vs = per(trace.local_via_server_bytes);
        let t_via = if vs > 0.0 {
            let socket = 2.0 * profile.max_socket_clients as f64 * vs / self.cal.socket_mem_bw;
            let node_bytes = vs * self.geometry.procs_per_node as f64;
            let server_cpu =
                node_bytes / (self.geometry.servers_per_node as f64 * self.cal.per_proc_copy_bw);
            socket.max(server_cpu).max(vs / profile.min_client_rate)
        } else {
            0.0
        };

        // Shared layers fetched directly (BB and PFS logs are globally
        // visible; the SSDs' read channel is independent of writes).
        let t_shared = if trace.shared_direct_bytes > 0 {
            trace.shared_direct_bytes as f64 / self.bb_aggregate_bw().min(self.nic_aggregate_bw())
        } else {
            0.0
        };
        let t_pfs = if trace.pfs_direct_bytes > 0 {
            let used_osts = self.procs().min(self.cal.ost_count) as f64;
            trace.pfs_direct_bytes as f64
                / (used_osts * self.cal.ost_bw).min(self.nic_aggregate_bw())
        } else {
            0.0
        };

        // Remote round trips cross two NICs.
        let t_remote = if trace.remote_bytes > 0 {
            trace.remote_bytes as f64 / (self.nic_aggregate_bw() / 2.0)
        } else {
            0.0
        };

        // Metadata lookups: spread over the metadata servers; the hot-spot
        // is the per-server queue.
        let servers = self.geometry.total_servers() as f64;
        let t_md = (trace.md_rpcs as f64 / servers) * self.cal.rpc_service_time
            + (trace.requests as f64 / p) * 2.0 * self.cal.net_latency;

        t_local + t_via + t_shared + t_pfs + t_remote + t_md + 2.0 * self.open_close_cost(features)
    }

    /// Data Elevator read (always from the shared BB file; shared-file
    /// metadata and striping still cost a mild contention factor on
    /// reads).
    pub fn de_read_time(&self, total_bytes: u64) -> f64 {
        let p = self.procs() as u64;
        let read_eff =
            univistor_sim::calibration::shared_efficiency(self.cal.bb_shared_contention / 2.0, p);
        let bw = self
            .bb_aggregate_bw()
            .min(self.nic_aggregate_bw())
            .min(p as f64 * self.cal.per_proc_copy_bw)
            * read_eff;
        total_bytes as f64 / bw
            + 2.0 * all_to_one_storm(p, self.cal.net_latency, self.cal.mds_service_time)
    }

    /// Direct-Lustre read.
    pub fn lustre_read_time(&self, total_bytes: u64) -> f64 {
        let p = self.procs() as u64;
        // Readers share locks and server-side readahead amortizes part of
        // the per-stripe RPC cost, so reads see half of the write
        // overhead.
        let stripe_eff = small_io_efficiency(
            self.cal.default_stripe_size,
            self.cal.ost_bw,
            self.cal.ost_rpc_overhead / 2.0,
        );
        let bw = self
            .cal
            .lustre_peak_bw()
            .min(self.nic_aggregate_bw())
            .min(p as f64 * self.cal.per_proc_copy_bw)
            * stripe_eff;
        total_bytes as f64 / bw
            + 2.0 * all_to_one_storm(p, self.cal.net_latency, self.cal.mds_service_time)
    }

    // ----- flush phases ----------------------------------------------

    /// Time of one UniviStor server-side flush, from its receipt.
    pub fn univistor_flush_time(&self, features: &Features, receipt: &FlushReceipt) -> f64 {
        let profile = self.mem_profile(features.interference_aware);
        let servers = self.geometry.total_servers();
        let spn = self.geometry.servers_per_node.max(1);

        // OST side: the slowest OST drains last; small stripes pay the
        // per-RPC overhead.
        let stripe_eff = small_io_efficiency(
            receipt.plan.stripe_size,
            self.cal.ost_bw,
            self.cal.ost_rpc_overhead,
        );
        let max_ost = receipt.per_ost_bytes.iter().copied().max().unwrap_or(0);
        // A PFS-sourced flush (the "Disk" configuration) reads its input
        // back off the same OST pool it writes to.
        let pfs_src: u64 = receipt
            .source_tier_bytes
            .iter()
            .filter(|(t, _)| *t == Tier::Pfs)
            .map(|(_, b)| *b)
            .sum();
        let ost_load_factor = 1.0 + pfs_src as f64 / receipt.file_size.max(1) as f64;
        let t_ost = max_ost as f64 * ost_load_factor / (self.cal.ost_bw * stripe_eff);

        // Server CPU side. Pulling source bytes off the shared BB (or the
        // PFS logs) costs the server extra copy work compared with reading
        // node-local DRAM.
        let src_bytes = |tier: Tier| -> u64 {
            receipt
                .source_tier_bytes
                .iter()
                .filter(|(t, _)| *t == tier)
                .map(|(_, b)| *b)
                .sum()
        };
        let remote_src_frac = (src_bytes(Tier::SharedBurstBuffer) + src_bytes(Tier::Pfs)) as f64
            / receipt.file_size.max(1) as f64;
        let cpu_factor = 1.0 + 0.15 * remote_src_frac;
        let max_server = receipt.per_server_bytes.iter().copied().max().unwrap_or(0);
        let t_server = max_server as f64 * cpu_factor / profile.server_flush_rate;

        // NIC side (servers of one node share its NIC).
        let max_node_bytes = receipt
            .per_server_bytes
            .chunks(spn)
            .map(|c| c.iter().sum::<u64>())
            .max()
            .unwrap_or(0);
        let t_nic = max_node_bytes as f64 / self.cal.nic_bw;

        // Source side: reading spilled data back off the BB.
        let bb_src = receipt
            .source_tier_bytes
            .iter()
            .filter(|(t, _)| *t == Tier::SharedBurstBuffer)
            .map(|(_, b)| *b)
            .sum::<u64>();
        let t_src = bb_src as f64 / self.bb_aggregate_bw();

        // Serial overheads: stripe synchronization per contacted OST and
        // lock revocations.
        let sync = receipt.osts_per_server as f64 * self.cal.ost_sync_overhead;
        let locks = (receipt.lock_revocations as f64 / servers.max(1) as f64)
            * (2.0 * self.cal.net_latency + self.cal.rpc_service_time);

        t_ost.max(t_server).max(t_nic).max(t_src) + sync + locks
    }

    /// Data Elevator's flush (static striping, no IA): same bottleneck
    /// structure with DE's fixed parameters.
    pub fn de_flush_time(
        &self,
        receipt: &univistor_baselines::data_elevator::DeFlushReceipt,
    ) -> f64 {
        let spn = self.geometry.servers_per_node.max(1);
        let servers = self.geometry.total_servers();
        let stripe_eff = small_io_efficiency(
            self.cal.default_stripe_size,
            self.cal.ost_bw,
            self.cal.ost_rpc_overhead,
        );
        let max_ost = receipt.per_ost_bytes.iter().copied().max().unwrap_or(0);
        let t_ost = max_ost as f64 / (self.cal.ost_bw * stripe_eff);

        // DE has no interference-aware migration: its flushing servers
        // share cores with the application wherever CFS put them; CFS's
        // load balancing bounds the share they keep.
        let server_rate = self.cal.per_proc_copy_bw * self.cal.cfs_min_share;
        let max_server = receipt.per_server_bytes.iter().copied().max().unwrap_or(0);
        // All source bytes come off the shared BB file.
        let t_server = max_server as f64 * 1.15 / server_rate;

        let max_node_bytes = receipt
            .per_server_bytes
            .chunks(spn)
            .map(|c| c.iter().sum::<u64>())
            .max()
            .unwrap_or(0);
        let t_nic = max_node_bytes as f64 / self.cal.nic_bw;

        // Source side: the whole file is read back from the BB.
        let t_src = receipt.file_size as f64 / self.bb_aggregate_bw();

        let sync = receipt.osts_per_server as f64 * self.cal.ost_sync_overhead;
        let locks = (receipt.lock_revocations as f64 / servers.max(1) as f64)
            * (2.0 * self.cal.net_latency + self.cal.rpc_service_time);

        t_ost.max(t_server).max(t_nic).max(t_src) + sync + locks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features(ia: bool, coc: bool) -> Features {
        Features {
            interference_aware: ia,
            collective_open_close: coc,
            ..Features::default()
        }
    }

    #[test]
    fn ia_speeds_up_dram_writes() {
        let p = Platform::paper(1024);
        let per = TierBytes {
            dram: 256 << 20,
            ..TierBytes::default()
        };
        let with_ia = p.univistor_write_time(&features(true, true), per, 32);
        let without = p.univistor_write_time(&features(false, true), per, 32);
        let speedup = without / with_ia;
        assert!(
            (1.2..4.0).contains(&speedup),
            "IA write speedup {speedup} out of plausible band"
        );
    }

    #[test]
    fn coc_matters_more_at_scale() {
        let small = Platform::paper(64);
        let large = Platform::paper(8192);
        let per = TierBytes {
            dram: 256 << 20,
            ..TierBytes::default()
        };
        let s_gain = small.univistor_write_time(&features(true, false), per, 32)
            / small.univistor_write_time(&features(true, true), per, 32);
        let l_gain = large.univistor_write_time(&features(true, false), per, 32)
            / large.univistor_write_time(&features(true, true), per, 32);
        assert!(
            l_gain > s_gain,
            "COC gain must grow with scale: {s_gain} vs {l_gain}"
        );
        assert!(l_gain > 1.1, "COC gain at 8192 procs too small: {l_gain}");
    }

    #[test]
    fn dram_beats_bb_beats_lustre() {
        let p = Platform::paper(2048);
        let f = Features::default();
        let dram = p.univistor_write_time(
            &f,
            TierBytes {
                dram: 256 << 20,
                ..Default::default()
            },
            32,
        );
        let bb = p.univistor_write_time(
            &f,
            TierBytes {
                bb: 256 << 20,
                ..Default::default()
            },
            32,
        );
        let de = p.de_write_time(256 << 20);
        let lustre = p.lustre_write_time(256 << 20);
        assert!(dram < bb, "DRAM {dram} !< BB {bb}");
        assert!(bb < de, "UniviStor/BB {bb} !< DE {de}");
        assert!(de < lustre, "DE {de} !< Lustre {lustre}");
    }

    #[test]
    fn dram_vs_lustre_gap_grows_toward_paper_band() {
        let f = Features::default();
        let per = TierBytes {
            dram: 256 << 20,
            ..Default::default()
        };
        let gap_small = {
            let p = Platform::paper(64);
            p.lustre_write_time(256 << 20) / p.univistor_write_time(&f, per, 32)
        };
        let gap_large = {
            let p = Platform::paper(8192);
            p.lustre_write_time(256 << 20) / p.univistor_write_time(&f, per, 32)
        };
        assert!(gap_large > gap_small);
        assert!(
            (20.0..80.0).contains(&gap_large),
            "paper reports up to ≈46×, got {gap_large}"
        );
    }

    #[test]
    fn analytic_write_time_matches_flow_simulator() {
        // The module doc promises the closed form equals the max–min-fair
        // flow allocation for symmetric phases. Check the DRAM sub-phase
        // against an explicit FlowSim run with one flow per client.
        use univistor_core::sched::InterferenceAwarePolicy;
        use univistor_sim::cores::{ContentionModel, PlacementPolicy, SERVER_PROGRAM};
        use univistor_sim::flow::FlowSpec;
        use univistor_sim::{FlowSim, SimTime};

        let p = Platform::paper(256); // 8 nodes x 32 clients
        let bytes = 64u64 << 20;
        let f = Features {
            collective_open_close: true,
            ..Features::default()
        };
        // Analytic DRAM time, stripped of the md/open-close latencies.
        let analytic = p.univistor_write_time(
            &f,
            TierBytes {
                dram: bytes,
                ..Default::default()
            },
            0,
        ) - 2.0 * p.open_close_cost(&f);

        // Flow-simulator ground truth: per-socket memory resources,
        // one flow per client with its contention-model rate cap.
        let shape = univistor_sim::cores::NodeShape {
            sockets: p.cal.sockets_per_node,
            cores_per_socket: p.cal.cores_per_socket,
        };
        let programs = [
            (0u32, p.geometry.procs_per_node),
            (SERVER_PROGRAM, p.geometry.servers_per_node),
        ];
        let assignment = InterferenceAwarePolicy::new().place(shape, &programs);
        let model = ContentionModel {
            per_proc_copy_bw: p.cal.per_proc_copy_bw,
            ctx_switch_efficiency: p.cal.ctx_switch_efficiency,
        };
        let mut sim = FlowSim::new();
        // All nodes are identical under IA; simulate one node.
        let sockets: Vec<_> = (0..shape.sockets)
            .map(|s| {
                sim.add_resource(format!("s{s}"), p.cal.socket_mem_bw)
                    .unwrap()
            })
            .collect();
        for r in model.proc_rates(&assignment, |s| s.program == 0) {
            sim.add_flow(
                FlowSpec::new(SimTime::ZERO, bytes as f64, vec![sockets[r.socket]])
                    .with_rate_cap(r.rate_cap),
            )
            .unwrap();
        }
        let simulated = FlowSim::makespan(&sim.run()).secs();
        assert!(
            (analytic - simulated).abs() < 1e-6 * simulated.max(1e-12),
            "analytic {analytic} vs simulated {simulated}"
        );
    }

    #[test]
    fn mem_profile_cfs_is_worse_but_deterministic() {
        let p = Platform::paper(1024);
        let ia = p.mem_profile(true);
        let cfs1 = p.mem_profile(false);
        let cfs2 = p.mem_profile(false);
        assert_eq!(cfs1.max_socket_clients, cfs2.max_socket_clients);
        assert!(cfs1.max_socket_clients >= ia.max_socket_clients);
        assert!(cfs1.min_client_rate <= ia.min_client_rate);
        assert!(cfs1.server_flush_rate < ia.server_flush_rate);
    }
}
