//! Flush-plane microbenchmark: what a close-time flush costs in Lustre
//! write calls, OST object writes, and chain-gather round-trips under
//! the parallel pipelined engine vs. the sequential reference
//! (DESIGN.md §15), on both runtimes.
//!
//! The workload is the differential suite's geometry: 2 nodes × 2
//! procs, 4 KV partitions, records capped at 256 B so the 16 KiB
//! block-per-rank tiling yields 64 records at a quarter of the adaptive
//! stripe unit — many records per unit, so coalescing is measurable.
//! The file is tiled once; each op then reopens and closes it, which
//! re-drains the identical cached bytes (flush copies, it does not
//! evict), so every rep measures a steady-state full-file drain.
//!
//! The per-op counters (`univistor_flush_{write_calls,ost_writes,
//! spans,gather_round_trips,catchup_passes}_total`) are deterministic
//! and portable. Wall-clock flushes/sec is not the headline on a 1-CPU
//! host: the gather workers and the writer stage time-slice one core,
//! so the stage overlap and per-server parallelism cannot show up as
//! latency wins there — the counter reductions are the result.

use std::time::Instant;
use univistor_bench::cli::Options;
use univistor_core::config::{FlushPipeline, Runtime, UniviStorConfig};
use univistor_core::metadata::ClientId;
use univistor_core::server::UniviStorJob;
use univistor_mpi::driver::OpenMode;
use univistor_obs::Json;
use univistor_sim::Payload;

/// Ranks tiling the file (2 nodes × 2 procs).
const RANKS: u64 = 4;
/// Contiguous block each rank writes.
const BLOCK: u64 = 4096;
/// Write granularity — also the record cap (`metadata_range_size`).
const RECORD: u64 = 256;

fn config(runtime: Runtime, pipeline: FlushPipeline) -> UniviStorConfig {
    let mut cfg = UniviStorConfig::test_small(2, 2);
    cfg.runtime = runtime;
    cfg.partitions = 4; // explicit pool: 4 workers even on one CPU
    cfg.flush_pipeline = pipeline;
    cfg.metadata_range_size = RECORD;
    cfg
}

/// Flush-plane counter snapshot.
struct Plane {
    write_calls: u64,
    ost_writes: u64,
    spans: u64,
    gather_round_trips: u64,
    catchup_passes: u64,
}

fn plane(job: &UniviStorJob) -> Plane {
    let snap = job.metrics();
    Plane {
        write_calls: snap.counter_total("univistor_flush_write_calls_total"),
        ost_writes: snap.counter_total("univistor_flush_ost_writes_total"),
        spans: snap.counter_total("univistor_flush_spans_total"),
        gather_round_trips: snap.counter_total("univistor_flush_gather_round_trips_total"),
        catchup_passes: snap.counter_total("univistor_flush_catchup_passes_total"),
    }
}

fn client(rank: u32) -> ClientId {
    ClientId::new(0, rank)
}

fn tile(job: &UniviStorJob) {
    job.open_file("/flush")
        .read_write()
        .representing(RANKS as usize)
        .by(client(0))
        .unwrap();
    for rank in 0..RANKS {
        for i in 0..(BLOCK / RECORD) {
            let offset = rank * BLOCK + i * RECORD;
            job.write(
                client(rank as u32),
                "/flush",
                offset,
                Payload::pattern(offset, RECORD),
            )
            .unwrap();
        }
    }
}

fn run(runtime: Runtime, pipeline: FlushPipeline, reps: usize) -> Json {
    let job = UniviStorJob::new(config(runtime, pipeline));
    tile(&job);
    // First flush outside the measured window: creates the Lustre file,
    // so every measured rep drains into an existing destination.
    job.close(
        "/flush",
        client(0),
        OpenMode::ReadWrite,
        RANKS as usize,
        true,
    )
    .unwrap();

    let before = plane(&job);
    let start = Instant::now();
    for _ in 0..reps {
        job.open_file("/flush").read_write().by(client(0)).unwrap();
        job.close("/flush", client(0), OpenMode::ReadWrite, 1, true)
            .unwrap()
            .expect("close should flush");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let after = plane(&job);

    let per = |a: u64, b: u64| (a - b) as f64 / reps as f64;
    let write_calls = per(after.write_calls, before.write_calls);
    let ost_writes = per(after.ost_writes, before.ost_writes);
    let spans = per(after.spans, before.spans);
    let gathers = per(after.gather_round_trips, before.gather_round_trips);
    let catchups = per(after.catchup_passes, before.catchup_passes);
    let label = format!("{runtime:?}/{pipeline:?}");
    println!(
        "{label:>22}: {write_calls:>7.1} writes/op {ost_writes:>7.1} ost-writes/op \
         {gathers:>7.1} gathers/op {spans:>6.1} spans/op {:>10.0} flushes/sec",
        reps as f64 / elapsed
    );
    Json::object([
        ("runtime", Json::string(&format!("{runtime:?}"))),
        ("pipeline", Json::string(&format!("{pipeline:?}"))),
        ("reps", Json::Number(reps as f64)),
        ("write_calls_per_op", Json::Number(write_calls)),
        ("ost_writes_per_op", Json::Number(ost_writes)),
        ("spans_per_op", Json::Number(spans)),
        ("gather_round_trips_per_op", Json::Number(gathers)),
        ("catchup_passes_per_op", Json::Number(catchups)),
        ("elapsed_s", Json::Number(elapsed)),
        ("flushes_per_sec", Json::Number(reps as f64 / elapsed)),
    ])
}

fn main() {
    let opts = Options::from_env();
    let reps = if opts.max_procs <= 512 { 200 } else { 2_000 };
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "flush bench: {reps} full-file drains per cell, 64 × 256 B records, \
         {cpus} CPU(s)"
    );

    let mut rows = Vec::new();
    for runtime in [Runtime::Locked, Runtime::Partitioned] {
        for pipeline in [FlushPipeline::Sequential, FlushPipeline::Parallel] {
            rows.push(run(runtime, pipeline, reps));
        }
    }

    // Stage-overlap accounting: the pipelined engine's shape for this
    // geometry. Four nonempty server ranges feed min(4, cpus) gather
    // workers through a bounded channel (capacity 2×workers) into one
    // reorder-buffer writer; on a 1-CPU host the stages still overlap
    // logically (gather of range k+1 proceeds while range k sits queued)
    // but time-slice a single core, so the overlap is architectural, not
    // a wall-clock win.
    let workers = RANKS.min(cpus as u64);
    let overlap = Json::object([
        ("server_ranges", Json::Number(RANKS as f64)),
        ("gather_workers", Json::Number(workers as f64)),
        (
            "pipeline_channel_capacity",
            Json::Number((workers * 2) as f64),
        ),
        ("writer_stages", Json::Number(1.0)),
    ]);

    let doc = Json::object([
        ("bench", Json::string("flush")),
        (
            "workload",
            Json::string(
                "16 KiB file, block-per-rank tiling, 64 x 256 B records at a \
                 quarter of the adaptive stripe unit; each op is a full-file \
                 close-time drain to Lustre",
            ),
        ),
        ("reps_per_cell", Json::Number(reps as f64)),
        ("cpus_available", Json::Number(cpus as f64)),
        ("results", Json::Array(rows)),
        ("stage_overlap", overlap),
        (
            "note",
            Json::string(
                "write_calls/ost_writes/gather_round_trips per op are \
                 deterministic and portable: the sequential reference drains \
                 span-at-a-time (64/64/64 for this geometry) while the \
                 parallel engine coalesces adjacent spans into per-range runs \
                 and batches same-client gathers (4/32/4). Wall-clock \
                 flushes/sec is bounded by cpus_available: on a 1-CPU host the \
                 gather workers and writer stage time-slice one core, so the \
                 per-server parallelism and stage overlap cannot appear as \
                 latency wins there — only a multi-core re-run can convert the \
                 round-trip and write-call reductions into wall-clock speedup",
            ),
        ),
    ]);
    let out = "BENCH_flush.json";
    std::fs::write(out, doc.render() + "\n").expect("write BENCH_flush.json");
    println!("wrote {out}");
}
