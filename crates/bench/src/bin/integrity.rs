//! Integrity-plane benchmark: what write-commit checksums cost the data
//! path, and how fast the scrubber verifies and repairs.
//!
//! Six clients on three nodes write one replicated file N-to-N style as
//! 512-byte segment records, then scan it sequentially — once with
//! checksums on (the default) and once with the integrity plane disabled,
//! in interleaved rounds on fresh jobs. The paired ratios give the
//! checksum overhead on writes (hash at commit) and reads (full-record
//! fetch + verify). A third phase times a full scrub sweep over the file
//! (clean verify throughput), then corrupts the stored primaries and
//! times the detect-and-repair sweep.
//!
//! Timing is wall-clock minima over interleaved rounds; overhead ratios
//! are medians of per-round pairs. Results land in
//! `BENCH_integrity.json` so later PRs have a baseline to beat.

use std::time::Instant;
use univistor_bench::cli::Options;
use univistor_core::config::{JobGeometry, UniviStorConfig};
use univistor_core::fault::FaultConfig;
use univistor_core::metadata::ClientId;
use univistor_core::server::UniviStorJob;
use univistor_obs::Json;
use univistor_sim::Payload;

/// Clients (two per node).
const RANKS: usize = 6;
/// 512-byte segments, one record per write call.
const SEGMENT: u64 = 512;
/// Segments per read call.
const SEGMENTS_PER_READ: u64 = 64;

fn config(checksums: bool) -> UniviStorConfig {
    let mut cfg = UniviStorConfig::paper(RANKS);
    cfg.geometry = JobGeometry {
        nodes: 3,
        procs_per_node: 2,
        servers_per_node: 2,
    };
    cfg.features.flush_on_close = false;
    cfg.replicate_volatile = true;
    cfg.chunk_size = 16 << 10;
    cfg.segment_size = SEGMENT;
    cfg.metadata_range_size = 32 << 10;
    cfg.integrity.checksums = checksums;
    cfg
}

struct PhaseStats {
    write_s: f64,
    read_s: f64,
    read_calls: u64,
}

/// Write `segments` records N-to-N, then `read_passes` sequential scans.
fn run_data_path(cfg: UniviStorConfig, segments: u64, read_passes: u64) -> PhaseStats {
    let job = UniviStorJob::new(cfg);
    let clients: Vec<ClientId> = (0..RANKS).map(|r| ClientId::new(0, r as u32)).collect();
    for &c in &clients {
        job.connect(c);
    }
    job.open_file("/integrity/f")
        .read_write()
        .representing(RANKS)
        .by(clients[0])
        .unwrap();
    let per_rank = segments / RANKS as u64;
    let write_start = Instant::now();
    for s in 0..segments {
        job.write(
            clients[(s / per_rank) as usize],
            "/integrity/f",
            s * SEGMENT,
            Payload::pattern(s, SEGMENT),
        )
        .unwrap();
    }
    let write_s = write_start.elapsed().as_secs_f64();

    let block = SEGMENTS_PER_READ * SEGMENT;
    let blocks = segments / SEGMENTS_PER_READ;
    let reader = clients[2];
    // Warm the metadata caches before timing reads.
    for i in 0..blocks {
        job.read(reader, "/integrity/f", i * block, block).unwrap();
    }
    let read_start = Instant::now();
    for i in 0..read_passes * blocks {
        let offset = (i % blocks) * block;
        let got = job.read(reader, "/integrity/f", offset, block).unwrap();
        debug_assert!(got
            .slice(0, SEGMENT)
            .content_eq(&Payload::pattern((i % blocks) * SEGMENTS_PER_READ, SEGMENT)));
    }
    PhaseStats {
        write_s,
        read_s: read_start.elapsed().as_secs_f64(),
        read_calls: read_passes * blocks,
    }
}

struct ScrubStats {
    clean_s: f64,
    clean_scanned: u64,
    repair_s: f64,
    corrupted: usize,
    repaired: u64,
}

/// Time a clean verify sweep over the file, then corrupt every stored
/// primary and time the detect-and-repair sweep.
fn run_scrub(segments: u64) -> ScrubStats {
    let mut cfg = config(true);
    // Targeted corruption needs an injector; zero probabilities keep the
    // data path fault-free.
    cfg.fault = Some(FaultConfig {
        seed: 1,
        ..FaultConfig::default()
    });
    // One pass per node sweeps the whole file.
    cfg.integrity.scrub.max_segments_per_pass = segments as usize;
    let job = UniviStorJob::new(cfg);
    let clients: Vec<ClientId> = (0..RANKS).map(|r| ClientId::new(0, r as u32)).collect();
    for &c in &clients {
        job.connect(c);
    }
    job.open_file("/integrity/f")
        .read_write()
        .representing(RANKS)
        .by(clients[0])
        .unwrap();
    let per_rank = segments / RANKS as u64;
    for s in 0..segments {
        job.write(
            clients[(s / per_rank) as usize],
            "/integrity/f",
            s * SEGMENT,
            Payload::pattern(s, SEGMENT),
        )
        .unwrap();
    }

    let clean_start = Instant::now();
    let clean = job.scrub().scrub_now().unwrap();
    let clean_s = clean_start.elapsed().as_secs_f64();
    assert_eq!(clean.corrupt_copies, 0, "clean sweep found corruption");
    assert_eq!(clean.scanned_records, segments, "sweep missed records");

    let corrupted = job
        .corrupt_stored_range("/integrity/f", 0, segments * SEGMENT, false)
        .unwrap();
    let repair_start = Instant::now();
    let repair = job.scrub().scrub_now().unwrap();
    let repair_s = repair_start.elapsed().as_secs_f64();
    assert_eq!(repair.repaired_copies, corrupted as u64, "{repair:?}");
    assert_eq!(repair.unrepaired_copies, 0, "{repair:?}");

    // Post-repair byte-identity, first try, no reroutes.
    let whole = job
        .read(clients[2], "/integrity/f", 0, segments * SEGMENT)
        .unwrap();
    for s in 0..segments {
        assert!(
            whole
                .slice(s * SEGMENT, SEGMENT)
                .content_eq(&Payload::pattern(s, SEGMENT)),
            "segment {s} corrupt after repair"
        );
    }
    ScrubStats {
        clean_s,
        clean_scanned: clean.scanned_records,
        repair_s,
        corrupted,
        repaired: repair.repaired_copies,
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn main() {
    let opts = Options::from_env();
    // --quick shrinks the workload for CI smoke runs.
    let (segments, read_passes) = if opts.max_procs <= 512 {
        (768, 2)
    } else {
        (3_072, 4)
    };

    println!(
        "integrity bench: {RANKS} producers on 3 nodes, {segments} replicated \
         {SEGMENT} B segments; checksums on vs off, then scrub sweeps"
    );

    let mut on: Option<PhaseStats> = None;
    let mut off: Option<PhaseStats> = None;
    let mut write_ratios = Vec::new();
    let mut read_ratios = Vec::new();
    for round in 0..9 {
        // Alternate which variant runs first so slow machine drift within
        // a round cancels out of the paired ratios.
        let (with, without) = if round % 2 == 0 {
            let with = run_data_path(config(true), segments, read_passes);
            (with, run_data_path(config(false), segments, read_passes))
        } else {
            let without = run_data_path(config(false), segments, read_passes);
            (run_data_path(config(true), segments, read_passes), without)
        };
        write_ratios.push(with.write_s / without.write_s);
        read_ratios.push(with.read_s / without.read_s);
        let fold = |slot: &mut Option<PhaseStats>, r: PhaseStats| match slot {
            None => *slot = Some(r),
            Some(b) => {
                b.write_s = b.write_s.min(r.write_s);
                b.read_s = b.read_s.min(r.read_s);
            }
        };
        fold(&mut on, with);
        fold(&mut off, without);
    }
    let on = on.expect("nine rounds");
    let off = off.expect("nine rounds");
    let write_overhead = median(write_ratios);
    let read_overhead = median(read_ratios);

    let scrub = run_scrub(segments);
    let scrub_seg_per_sec = scrub.clean_scanned as f64 / scrub.clean_s;
    let repair_seg_per_sec = scrub.repaired as f64 / scrub.repair_s;

    let w_on = segments as f64 / on.write_s;
    let w_off = segments as f64 / off.write_s;
    let r_on = on.read_calls as f64 / on.read_s;
    let r_off = off.read_calls as f64 / off.read_s;
    println!(
        "    writes: {w_on:>9.0} ops/sec checksummed vs {w_off:>9.0} plain \
         ({:+.1}% overhead, median of paired rounds)",
        (write_overhead - 1.0) * 100.0
    );
    println!(
        "     reads: {r_on:>9.0} ops/sec verified vs {r_off:>9.0} plain \
         ({:+.1}% overhead, median of paired rounds)",
        (read_overhead - 1.0) * 100.0
    );
    println!(
        "     scrub: {} records verified in {:.4} s = {scrub_seg_per_sec:.0} segments/sec clean",
        scrub.clean_scanned, scrub.clean_s
    );
    println!(
        "    repair: {} corrupt copies rebuilt in {:.4} s = {repair_seg_per_sec:.0} segments/sec",
        scrub.repaired, scrub.repair_s
    );

    let doc = Json::object([
        ("bench", Json::string("integrity")),
        (
            "workload",
            Json::string(
                "6 producers on 3 nodes write one replicated file N-to-N \
                 (contiguous shares of 512 B segment records) and scan it \
                 sequentially, with the integrity plane on vs off on fresh \
                 jobs; then a full scrub sweep clean, and again after every \
                 stored primary is silently corrupted",
            ),
        ),
        ("segments", Json::Number(segments as f64)),
        ("segment_bytes", Json::Number(SEGMENT as f64)),
        ("write_ops_per_sec_checksums_on", Json::Number(w_on)),
        ("write_ops_per_sec_checksums_off", Json::Number(w_off)),
        ("write_checksum_overhead", Json::Number(write_overhead)),
        ("read_calls", Json::Number(on.read_calls as f64)),
        ("read_ops_per_sec_checksums_on", Json::Number(r_on)),
        ("read_ops_per_sec_checksums_off", Json::Number(r_off)),
        ("read_checksum_overhead", Json::Number(read_overhead)),
        (
            "scrub",
            Json::object([
                ("clean_elapsed_s", Json::Number(scrub.clean_s)),
                ("scanned_records", Json::Number(scrub.clean_scanned as f64)),
                ("segments_per_sec", Json::Number(scrub_seg_per_sec)),
                ("corrupted_copies", Json::Number(scrub.corrupted as f64)),
                ("repair_elapsed_s", Json::Number(scrub.repair_s)),
                ("repaired_copies", Json::Number(scrub.repaired as f64)),
                ("repair_segments_per_sec", Json::Number(repair_seg_per_sec)),
            ]),
        ),
        (
            "note",
            Json::string(
                "ops/sec is hardware-dependent; overhead ratios are medians \
                 of order-alternated paired rounds on fresh jobs; scrub \
                 sweeps verify both copies of every record. The read ratio \
                 overstates real-world verify cost: simulated reads are \
                 zero-copy rope operations that never touch payload bytes, \
                 so the checksum is the only per-byte work on the path — \
                 the absolute verify cost is ~0.1 us per 512 B record \
                 (hashing at ~5 GB/s), which a data path that actually \
                 moves bytes would amortize to low single digits",
            ),
        ),
    ]);
    let out = "BENCH_integrity.json";
    std::fs::write(out, doc.render() + "\n").expect("write BENCH_integrity.json");
    println!("wrote {out}");
}
