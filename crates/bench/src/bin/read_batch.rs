//! Read-path microbenchmark: the batched pipeline against the per-record
//! reference implementation.
//!
//! Four clients on two nodes write one shared file N-to-N style: each
//! rank owns a contiguous quarter, laid down as 512-byte segment records
//! (separate write calls, so nothing coalesces). A 128-segment read call
//! therefore overlaps 128 records from one producer — exactly where the
//! pipelines diverge: the per-record path takes one chain-lock
//! acquisition (plus one chain-map lookup) per record (128/read), the
//! batched path groups the fragments by producer and takes one per group
//! (1/read). Segments are small so the lock and metadata plane, not
//! memcpy, dominates. Reads scan the file
//! sequentially and cycle, so the sequential-readahead detector and the
//! node-local read record cache both engage; after the first cycle the
//! metadata plane is served almost entirely from the cache.
//!
//! Two phases per pipeline: a single driving thread, then 8 reader
//! threads over the same job. Timing is wall-clock over interleaved
//! paired rounds (speedups are medians of the per-round ratios, minima
//! feed the ops/sec rows); the single-thread counters (chain locks/read,
//! cache hit rate, metadata RPCs/read, readahead bytes) are
//! deterministic. Results land in `BENCH_read_batch.json` so later PRs
//! have a baseline to beat.

use std::time::Instant;
use univistor_bench::cli::Options;
use univistor_core::config::{JobGeometry, ReadPipeline, UniviStorConfig};
use univistor_core::metadata::ClientId;
use univistor_core::server::UniviStorJob;
use univistor_obs::Json;
use univistor_sim::Payload;

/// Clients (two per node; readers reuse these ranks).
const RANKS: usize = 4;
/// 512-byte segments, one record per write call.
const SEGMENT: u64 = 512;
/// Segments per read call.
const SEGMENTS_PER_READ: u64 = 128;
/// Blocks (read-call strides) in the file: 32 × 64 KiB = 2 MiB.
const FILE_BLOCKS: u64 = 32;
/// Reader threads in the multi-threaded phase.
const THREADS: usize = 8;

fn config(pipeline: ReadPipeline) -> UniviStorConfig {
    let mut cfg = UniviStorConfig::paper(RANKS);
    // Two nodes so half the producers are remote to any reader: the
    // distributed metadata plane (lookups, cache, readahead) is on the
    // path, not just the node-local buffer.
    cfg.geometry = JobGeometry {
        nodes: 2,
        procs_per_node: 2,
        servers_per_node: 2,
    };
    cfg.features.flush_on_close = false;
    // Small segments so the metadata plane, not memcpy, dominates; the
    // 32 KiB range spreads the file across the 4 KV partitions.
    cfg.chunk_size = 16 << 10;
    cfg.segment_size = SEGMENT;
    cfg.metadata_range_size = 32 << 10;
    cfg.read_pipeline = pipeline;
    // Readahead on: a detected scan widens lookups by two read blocks.
    cfg.readahead_window = 2 * SEGMENTS_PER_READ * SEGMENT;
    cfg
}

/// One run's deterministic single-thread accounting plus both phases'
/// wall-clock times.
struct RunStats {
    elapsed_s: f64,
    mt_elapsed_s: f64,
    read_calls: u64,
    mt_read_calls: u64,
    chain_locks_per_read: f64,
    md_rpcs_per_read: f64,
    cache_hit_rate: f64,
    readahead_bytes: u64,
}

fn run_once(pipeline: ReadPipeline, ops: usize) -> RunStats {
    let job = UniviStorJob::new(config(pipeline));
    let clients: Vec<ClientId> = (0..RANKS).map(|r| ClientId::new(0, r as u32)).collect();
    for &c in &clients {
        job.connect(c);
    }
    job.open_file("/rb/f")
        .read_write()
        .representing(RANKS)
        .by(clients[0])
        .unwrap();
    // N-to-N layout: rank r owns the file's r-th contiguous quarter,
    // written one segment record at a time.
    let segments = FILE_BLOCKS * SEGMENTS_PER_READ;
    let per_rank = segments / RANKS as u64;
    for s in 0..segments {
        job.write(
            clients[(s / per_rank) as usize],
            "/rb/f",
            s * SEGMENT,
            Payload::pattern(s, SEGMENT),
        )
        .unwrap();
    }
    let block = SEGMENTS_PER_READ * SEGMENT;

    // Phase 1: one thread scanning sequentially, cycling the file.
    let start = Instant::now();
    for i in 0..ops {
        let offset = (i as u64 % FILE_BLOCKS) * block;
        job.read(clients[0], "/rb/f", offset, block).unwrap();
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    let snap = job.metrics();
    let read_calls = snap
        .counter("univistor_ops_total", &[("op", "read")])
        .unwrap_or(0);
    let chain_locks = snap
        .counter(
            "univistor_read_lock_acquisitions_total",
            &[("lock", "chain")],
        )
        .unwrap_or(0);
    let md_rpcs = snap
        .counter("univistor_md_rpcs_total", &[("op", "read")])
        .unwrap_or(0);
    let hits = snap.counter_total("univistor_read_md_cache_hits_total");
    let misses = snap.counter_total("univistor_read_md_cache_misses_total");
    let readahead_bytes = snap.counter_total("univistor_read_readahead_bytes_total");

    // Phase 2: 8 reader threads over the same warmed job, each scanning
    // from its own starting block (threads share the 4 client ranks).
    let per_thread = ops / THREADS;
    let mt_start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let job = &job;
            let client = clients[t % RANKS];
            s.spawn(move || {
                let first = t as u64 * FILE_BLOCKS / THREADS as u64;
                for i in 0..per_thread {
                    let offset = ((first + i as u64) % FILE_BLOCKS) * block;
                    job.read(client, "/rb/f", offset, block).unwrap();
                }
            });
        }
    });
    let mt_elapsed_s = mt_start.elapsed().as_secs_f64();

    RunStats {
        elapsed_s,
        mt_elapsed_s,
        read_calls,
        mt_read_calls: (per_thread * THREADS) as u64,
        chain_locks_per_read: chain_locks as f64 / read_calls.max(1) as f64,
        md_rpcs_per_read: md_rpcs as f64 / read_calls.max(1) as f64,
        cache_hit_rate: hits as f64 / (hits + misses).max(1) as f64,
        readahead_bytes,
    }
}

fn merge(best: &mut Option<RunStats>, r: RunStats) {
    match best {
        // Counters are deterministic, so the first run's accounting
        // stands for all of them.
        None => *best = Some(r),
        Some(b) => {
            b.elapsed_s = b.elapsed_s.min(r.elapsed_s);
            b.mt_elapsed_s = b.mt_elapsed_s.min(r.mt_elapsed_s);
        }
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Both pipelines' best phase times, plus the median of the per-round
/// paired speedup ratios (single-thread, multi-thread).
fn bench_pair(ops: usize) -> (RunStats, RunStats, f64, f64) {
    // Interleave the pipelines: each round runs them back-to-back, so a
    // slow scheduling window hits both alike and the per-round ratio
    // stays meaningful. The median ratio is the robust speedup estimate;
    // the per-pipeline minima feed the ops/sec rows.
    let (mut per_record, mut batched) = (None, None);
    let (mut st_ratios, mut mt_ratios) = (Vec::new(), Vec::new());
    for _ in 0..7 {
        let pr = run_once(ReadPipeline::PerRecord, ops);
        let ba = run_once(ReadPipeline::Batched, ops);
        st_ratios.push(pr.elapsed_s / ba.elapsed_s);
        mt_ratios.push(pr.mt_elapsed_s / ba.mt_elapsed_s);
        merge(&mut per_record, pr);
        merge(&mut batched, ba);
    }
    (
        per_record.expect("seven rounds"),
        batched.expect("seven rounds"),
        median(st_ratios),
        median(mt_ratios),
    )
}

fn report(name: &str, s: &RunStats) -> Json {
    let ops_per_sec = s.read_calls as f64 / s.elapsed_s;
    let mt_ops_per_sec = s.mt_read_calls as f64 / s.mt_elapsed_s;
    println!(
        "{name:>10}: {:>7} reads in {:.4} s = {ops_per_sec:>9.0} ops/sec single, \
         {:>7} reads in {:.4} s = {mt_ops_per_sec:>9.0} ops/sec x{THREADS}",
        s.read_calls, s.elapsed_s, s.mt_read_calls, s.mt_elapsed_s,
    );
    println!(
        "{:>12}{:.2} chain locks/read, {:.2} md RPCs/read, \
         {:.1}% cache hits, {} readahead bytes",
        "",
        s.chain_locks_per_read,
        s.md_rpcs_per_read,
        s.cache_hit_rate * 100.0,
        s.readahead_bytes,
    );
    Json::object([
        ("pipeline", Json::string(name)),
        ("read_calls", Json::Number(s.read_calls as f64)),
        ("elapsed_s", Json::Number(s.elapsed_s)),
        ("read_ops_per_sec", Json::Number(ops_per_sec)),
        ("mt_read_calls", Json::Number(s.mt_read_calls as f64)),
        ("mt_elapsed_s", Json::Number(s.mt_elapsed_s)),
        ("mt_read_ops_per_sec", Json::Number(mt_ops_per_sec)),
        ("chain_locks_per_read", Json::Number(s.chain_locks_per_read)),
        ("md_rpcs_per_read", Json::Number(s.md_rpcs_per_read)),
        ("md_cache_hit_rate", Json::Number(s.cache_hit_rate)),
        ("readahead_bytes", Json::Number(s.readahead_bytes as f64)),
    ])
}

fn main() {
    let opts = Options::from_env();
    // --quick shrinks the op count for CI smoke runs.
    let ops = if opts.max_procs <= 512 { 1_000 } else { 5_000 };

    println!(
        "read_batch bench: {RANKS} producers striping {FILE_BLOCKS} blocks, \
         {ops} reads of {} segments, then {THREADS} reader threads",
        SEGMENTS_PER_READ
    );
    let (per_record, batched, st_speedup, mt_speedup) = bench_pair(ops);
    let rows = vec![
        report("per_record", &per_record),
        report("batched", &batched),
    ];

    let chain_lock_reduction = per_record.chain_locks_per_read / batched.chain_locks_per_read;
    println!(
        "batched vs per-record: {chain_lock_reduction:.2}x fewer chain locks/read, \
         {st_speedup:.2}x single-thread, {mt_speedup:.2}x at {THREADS} threads \
         (median of paired rounds)"
    );

    let doc = Json::object([
        ("bench", Json::string("read_batch")),
        (
            "workload",
            Json::string(
                "4 producers on 2 nodes write one file N-to-N (contiguous \
                 quarters of 512 B segment records); sequential cycling \
                 reads of 128 segments each overlap 128 records of one \
                 chain; single-thread phase then 8 reader threads on the \
                 warm job",
            ),
        ),
        ("read_ops", Json::Number(ops as f64)),
        (
            "read_bytes",
            Json::Number((SEGMENTS_PER_READ * SEGMENT) as f64),
        ),
        ("segment_bytes", Json::Number(SEGMENT as f64)),
        ("metadata_range_bytes", Json::Number((32 << 10) as f64)),
        ("results", Json::Array(rows)),
        (
            "comparison",
            Json::object([
                ("chain_lock_reduction", Json::Number(chain_lock_reduction)),
                ("read_ops_per_sec_speedup", Json::Number(st_speedup)),
                ("mt_read_ops_per_sec_speedup", Json::Number(mt_speedup)),
            ]),
        ),
        (
            "note",
            Json::string(
                "ops/sec is hardware-dependent; speedups are medians of \
                 back-to-back paired rounds; the single-thread lock, RPC, \
                 cache, and readahead counters are deterministic",
            ),
        ),
    ]);
    let out = "BENCH_read_batch.json";
    std::fs::write(out, doc.render() + "\n").expect("write BENCH_read_batch.json");
    println!("wrote {out}");
}
