//! Reproduces Fig. 6a/6b/6c: micro write/read/flush comparing UniviStor
//! (DRAM and BB configurations) with Data Elevator and Lustre.

use univistor_bench::cli::Options;
use univistor_bench::figures::{fig6, paper_scales};
use univistor_bench::report::{emit_outputs, print_figure, print_speedup};
use univistor_bench::systems::accumulated_metrics;

fn main() {
    let opts = Options::from_env();
    let scales = paper_scales(opts.max_procs);
    let (w, r, f) = fig6(&scales, opts.bytes_per_proc).expect("fig6");
    for fig in [&w, &r, &f] {
        print_figure(fig);
    }
    println!("Speedups (paper: UV/DRAM 3.7–5.6× DE write, up to 46× Lustre; UV/BB 1.2–1.7× DE):");
    print_speedup("Fig6a write", &w.series[0], &w.series[2]);
    print_speedup("Fig6a write", &w.series[1], &w.series[2]);
    print_speedup("Fig6a write", &w.series[0], &w.series[3]);
    print_speedup("Fig6b read", &r.series[0], &r.series[2]);
    print_speedup("Fig6b read", &r.series[1], &r.series[2]);
    print_speedup("Fig6b read", &r.series[0], &r.series[3]);
    print_speedup("Fig6c flush", &f.series[0], &f.series[2]);
    print_speedup("Fig6c flush", &f.series[1], &f.series[2]);

    if let Some(dir) = &opts.csv_dir {
        emit_outputs(&[&w, &r, &f], &accumulated_metrics(), dir);
    }
}
