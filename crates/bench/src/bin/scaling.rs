//! Thread-scaling bench: measured (wall-clock) aggregate throughput of
//! mixed cache writes + reads through `UniviStorJob` at 1/2/4/8 client
//! threads, under **both** server-core runtimes.
//!
//! Unlike the figure binaries — which model paper-scale platforms with
//! the analytic timing plane and therefore stay on the deterministic
//! rank loop — this bench times the *real* code under OS-thread
//! concurrency. The `locked` sweep quantifies what the sharded job locks
//! buy; the `partitioned` sweep runs the same workload through the
//! shared-nothing partition workers (zero counted locks, mailbox routing
//! instead). Results are written to `BENCH_scaling.json` so later PRs
//! have a baseline to beat.
//!
//! Numbers are hardware-dependent: on a single-CPU container the speedup
//! at 8 threads is ~1× by physics (there is one core to share), the
//! partition pool collapses to one worker, and the partitioned runtime
//! pays message-passing overhead with no parallelism to buy it back —
//! the comparison only separates lock-contention limits from core-count
//! limits on a multi-core host. The `cpus` field records what the run
//! had available.

use std::time::Instant;
use univistor_bench::cli::Options;
use univistor_core::config::{Runtime, UniviStorConfig};
use univistor_core::metadata::ClientId;
use univistor_core::server::UniviStorJob;
use univistor_mpi::driver::OpenMode;
use univistor_obs::Json;
use univistor_sim::Payload;
use univistor_workloads::for_each_rank;

/// Blocks each thread cycles over (bounds live bytes; overwrites past the
/// window exercise the punch/displacement path under contention).
const WINDOW_BLOCKS: u64 = 64;

/// One timed run: `threads` clients, each doing `ops` write+read pairs of
/// `block`-byte blocks on its own file, straight against the job API
/// (each thread is its own independent client — no collective
/// open/close, which would route every rank through one root).
/// Returns elapsed seconds.
fn run_once(runtime: Runtime, threads: usize, ops: usize, block: u64) -> f64 {
    let mut cfg = UniviStorConfig::paper(threads.max(2));
    // Pure cache-path benchmark: no flush on close, no replication.
    cfg.features.flush_on_close = false;
    cfg.runtime = runtime;
    let job = UniviStorJob::new(cfg);

    let start = Instant::now();
    for_each_rank::<univistor_core::error::Error>(threads, threads, |t| {
        let client = ClientId::new(0, t as u32);
        let path = format!("/scaling/f{t}");
        job.connect(client);
        job.open_file(&path).read_write().by(client)?;
        for i in 0..ops {
            let offset = (i as u64 % WINDOW_BLOCKS) * block;
            job.write(client, &path, offset, Payload::pattern(i as u64, block))?;
            let got = job.read(client, &path, offset, block)?;
            assert_eq!(got.len(), block);
        }
        job.close(&path, client, OpenMode::ReadWrite, 1, true)?;
        job.disconnect(client);
        Ok(())
    })
    .expect("scaling workload failed");
    start.elapsed().as_secs_f64()
}

fn main() {
    let opts = Options::from_env();
    // --quick shrinks the op count; --threads extends the sweep past 8.
    let ops = if opts.max_procs <= 512 { 2_000 } else { 20_000 };
    let block = 4096u64;
    let mut sweep = vec![1usize, 2, 4, 8];
    if opts.threads > 8 {
        sweep.push(opts.threads);
    }

    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("scaling bench: {ops} write+read pairs/thread, {block} B blocks, {cpus} CPU(s)");

    let mut rows = Vec::new();
    for (runtime, label) in [
        (Runtime::Locked, "locked"),
        (Runtime::Partitioned, "partitioned"),
    ] {
        println!(
            "{label}: {:>8} {:>12} {:>16} {:>12}",
            "threads", "elapsed s", "agg ops/sec", "speedup"
        );
        let mut base_ops_per_sec = 0.0f64;
        for &threads in &sweep {
            // Best of 3 to damp scheduler noise.
            let elapsed = (0..3)
                .map(|_| run_once(runtime, threads, ops, block))
                .fold(f64::INFINITY, f64::min);
            let total_ops = (threads * ops * 2) as f64;
            let ops_per_sec = total_ops / elapsed;
            if threads == 1 {
                base_ops_per_sec = ops_per_sec;
            }
            let speedup = ops_per_sec / base_ops_per_sec;
            println!("{label}: {threads:>8} {elapsed:>12.4} {ops_per_sec:>16.0} {speedup:>11.2}x");
            rows.push(Json::object([
                ("runtime", Json::string(label)),
                ("threads", Json::Number(threads as f64)),
                ("elapsed_s", Json::Number(elapsed)),
                ("agg_ops_per_sec", Json::Number(ops_per_sec)),
                ("speedup_vs_1_thread", Json::Number(speedup)),
            ]));
        }
    }

    let doc = Json::object([
        ("bench", Json::string("scaling")),
        (
            "workload",
            Json::string(
                "per-thread file: write block then read it back, cycling a 64-block window",
            ),
        ),
        ("ops_per_thread", Json::Number(ops as f64)),
        ("block_bytes", Json::Number(block as f64)),
        ("cpus_available", Json::Number(cpus as f64)),
        ("results", Json::Array(rows)),
        (
            "note",
            Json::string(
                "speedup is bounded by cpus_available, which limits what \
                 this record can claim: on a 1-CPU host threads time-slice \
                 one core, the curve is flat by physics for BOTH runtimes, \
                 and the partitioned runtime's mailbox hop shows as pure \
                 overhead (its one-worker pool buys no parallelism here). \
                 A flat locked curve on this host is a core-count limit, \
                 NOT evidence of lock-free scaling; only a multi-core \
                 re-run can separate lock-contention limits (locked curve \
                 bends, partitioned keeps climbing) from core-count limits \
                 (both flatten together)",
            ),
        ),
    ]);
    let out = "BENCH_scaling.json";
    std::fs::write(out, doc.render() + "\n").expect("write BENCH_scaling.json");
    println!("wrote {out}");
}
