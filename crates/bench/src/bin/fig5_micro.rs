//! Reproduces Fig. 5a/5b/5c: micro write/read/flush with Interference-
//! Aware scheduling (IA), Collective Open/Close (COC), and ADaPTive
//! striping (ADPT) toggled.

use univistor_bench::cli::Options;
use univistor_bench::figures::{fig5_flush, fig5_write_read, paper_scales};
use univistor_bench::report::{emit_outputs, print_figure, print_speedup};
use univistor_bench::systems::accumulated_metrics;

fn main() {
    let opts = Options::from_env();
    let scales = paper_scales(opts.max_procs);
    let (w, r) = fig5_write_read(&scales, opts.bytes_per_proc).expect("fig5 a/b");
    print_figure(&w);
    print_speedup("Fig5a write", &w.series[0], &w.series[1]);
    print_speedup("Fig5a write", &w.series[0], &w.series[2]);
    println!();
    print_figure(&r);
    print_speedup("Fig5b read", &r.series[0], &r.series[1]);
    print_speedup("Fig5b read", &r.series[0], &r.series[2]);
    println!();
    let f = fig5_flush(&scales, opts.bytes_per_proc).expect("fig5c");
    print_figure(&f);
    print_speedup("Fig5c flush", &f.series[0], &f.series[3]);

    if let Some(dir) = &opts.csv_dir {
        emit_outputs(&[&w, &r, &f], &accumulated_metrics(), dir);
    }
}
