//! Reproduces Fig. 9: the 5-timestep VPIC-IO → BD-CATS-IO workflow in
//! overlap (workflow-managed) and nonoverlap modes vs. DE and Lustre.

use univistor_bench::cli::Options;
use univistor_bench::figures::{fig_workflow, paper_scales};
use univistor_bench::report::{emit_outputs, print_figure, print_speedup_times};
use univistor_bench::systems::accumulated_metrics;

fn main() {
    let opts = Options::from_env();
    let scales = paper_scales(opts.max_procs);
    let fig = fig_workflow(&scales, 5, opts.vpic_scale(), "Fig. 9", false).expect("fig9");
    print_figure(&fig);
    println!("Speedups (paper: overlap 1.2–1.7×/1.5–2× over nonoverlap; UV nonoverlap 3.5–17×/1.3–7.2× over DE):");
    print_speedup_times("Fig9", &fig.series[0], &fig.series[1]);
    print_speedup_times("Fig9", &fig.series[2], &fig.series[3]);
    print_speedup_times("Fig9", &fig.series[1], &fig.series[4]);
    print_speedup_times("Fig9", &fig.series[3], &fig.series[4]);
    print_speedup_times("Fig9", &fig.series[1], &fig.series[5]);

    if let Some(dir) = &opts.csv_dir {
        emit_outputs(&[&fig], &accumulated_metrics(), dir);
    }
}
