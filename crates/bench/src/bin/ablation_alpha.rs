//! Ablation: sensitivity of the adaptive-striping flush to α (Eq. 2) and
//! of the metadata service to its server count — the two tunables
//! DESIGN.md calls out beyond the paper's own figures.
//!
//! * α is "the minimum storage unit count that saturates a server's write
//!   bandwidth": too small starves each server of OST parallelism; too
//!   large reintroduces the all-OST synchronization overhead the adaptive
//!   scheme exists to avoid.
//! * Metadata servers: the paper's rejected centralized design is the
//!   1-server point of the sweep.

use univistor_bench::cli::Options;
use univistor_bench::report::{emit_outputs, rate_gbs};
use univistor_bench::systems::{accumulated_metrics, uv_job, uv_micro_write, UvMode};
use univistor_bench::timing::Platform;
use univistor_core::config::Features;
use univistor_core::driver::UniviStorDriver;
use univistor_core::metadata::{ClientId, MetadataService, SegKey, SegmentRecord};
use univistor_core::va::VirtualAddr;
use univistor_workloads::MicroIo;

fn main() {
    let opts = Options::from_env();

    println!("== Ablation A — flush rate vs. α (Eq. 2), procs sweep ==");
    println!(
        "{:>8} {:>8} {:>16} {:>18}",
        "procs", "alpha", "osts/server", "flush rate (GB/s)"
    );
    let mut scales = vec![64usize, 512, 2048];
    scales.retain(|&p| p <= opts.max_procs.max(64));
    scales.dedup();
    for procs in scales {
        for alpha in [1usize, 2, 4, 8, 16, 32, 64] {
            let platform = Platform::paper(procs);
            let driver = {
                // uv_job builds from the paper config; patch α by rebuilding.
                let job = uv_job(&platform, UvMode::Dram, Features::default());
                let mut cfg = job.cfg().clone();
                cfg.alpha = alpha;
                UniviStorDriver::new(
                    std::sync::Arc::new(univistor_core::server::UniviStorJob::new(cfg)),
                    0,
                )
            };
            let micro = MicroIo::scaled(procs, opts.bytes_per_proc.min(64 << 20));
            let out = uv_micro_write(&platform, &driver, &micro, "/a").expect("run");
            let receipt = out.receipt.expect("flush receipt");
            println!(
                "{:>8} {:>8} {:>16} {:>18.2}",
                procs,
                alpha,
                receipt.osts_per_server,
                rate_gbs(micro.file_size(), out.flush_time)
            );
        }
    }

    println!();
    println!("== Ablation B — metadata load balance vs. server count ==");
    println!(
        "{:>10} {:>12} {:>14} {:>22}",
        "servers", "records", "max/server", "imbalance (max/mean)"
    );
    let records = 100_000u64;
    for servers in [1usize, 4, 16, 64, 256, 1024] {
        let md = MetadataService::new(64 << 20, servers, 8);
        for i in 0..records {
            md.insert(
                SegKey {
                    fid: 1,
                    offset: i * (8 << 20),
                },
                SegmentRecord::new(ClientId::new(0, (i % 512) as u32), VirtualAddr(i), 8 << 20),
                (i % 8) as usize,
            );
        }
        let sizes = md.shard_sizes();
        let max = *sizes.iter().max().expect("servers > 0");
        let mean = records as f64 / servers as f64;
        println!(
            "{:>10} {:>12} {:>14} {:>22.3}",
            servers,
            records,
            max,
            max as f64 / mean
        );
    }
    println!(
        "\n(1 server = the paper's rejected centralized design: every record \
         and every lookup lands on one host.)"
    );

    if let Some(dir) = &opts.csv_dir {
        emit_outputs(&[], &accumulated_metrics(), dir);
    }
}
