//! Message-plane microbenchmark: what a routed op costs in messages,
//! awaited round-trips, and reply-channel allocations under the fused
//! commit protocol (vs. the PR 7 multi-wave protocol, modeled).
//!
//! Three single-threaded phases on the partitioned runtime, using the
//! differential suite's geometry (2 nodes × 2 procs, 4 KV partitions,
//! 1 KiB metadata ranges, an explicit 4-worker pool so the partition
//! dimension is real even on one CPU):
//!
//! * `fused` — rank 0 rewriting its own first metadata block: the
//!   single-owner fast path, one awaited round-trip per write.
//! * `wide` — 4 KiB writes spanning all four KV partitions, cycling a
//!   window so later passes overwrite (punch + sweep + release load):
//!   one append plus one `WriteCommit` per span owner; the finish wave
//!   is fire-and-forget.
//! * `read` — 4 KiB streaming reads: one fused `ReadPlan`, then scan /
//!   fetch waves as the plan demands.
//!
//! The per-op message/round-trip/allocation counters are deterministic
//! and read from the metrics registry
//! (`univistor_partition_{messages,round_trips}_total`,
//! `univistor_msgplane_reply_pool_{hits,misses}_total` — a pool miss is
//! exactly one reply-slot allocation; PR 7 allocated a fresh
//! `mpsc::channel()` per awaited request, i.e. its miss rate was 100%).
//! The PR 7 baseline is *modeled* from its wave structure — EnsureChain →
//! Append → Punch → PutRecords → BufferApply → BufferInsert, each wave
//! one awaited round-trip per involved worker — because this PR removes
//! that protocol; the span math below reproduces its counts for this
//! exact geometry. Wall-clock throughput is recorded best-of-3, but on a
//! 1-CPU host the router and all four workers time-slice one core, so
//! latency wins from fewer round-trips are mostly invisible there — the
//! allocation and message counts are the portable result.

use std::time::Instant;
use univistor_bench::cli::Options;
use univistor_core::config::{Runtime, UniviStorConfig};
use univistor_core::metadata::ClientId;
use univistor_core::server::UniviStorJob;
use univistor_obs::Json;
use univistor_sim::Payload;

/// Blocks the wide phase cycles over (bounds live bytes; later passes
/// overwrite and exercise punch + sweep + release).
const WINDOW_BLOCKS: u64 = 16;
/// Wide-phase write size: 4 metadata ranges → all 4 KV partitions.
const WIDE_BLOCK: u64 = 4096;

fn config() -> UniviStorConfig {
    let mut cfg = UniviStorConfig::test_small(2, 2);
    cfg.runtime = Runtime::Partitioned;
    cfg.partitions = 4; // explicit pool: 4 workers even on one CPU
    cfg.features.flush_on_close = false;
    cfg
}

/// Counter deltas around one phase.
struct Plane {
    messages: u64,
    round_trips: u64,
    pool_misses: u64,
}

fn plane(job: &UniviStorJob) -> Plane {
    let snap = job.metrics();
    Plane {
        messages: snap.counter_total("univistor_partition_messages_total"),
        round_trips: snap.counter_total("univistor_partition_round_trips_total"),
        pool_misses: snap.counter_total("univistor_msgplane_reply_pool_misses_total"),
    }
}

fn phase_row(label: &str, job: &UniviStorJob, before: &Plane, ops: usize, elapsed: f64) -> Json {
    let after = plane(job);
    let per = |a: u64, b: u64| (a - b) as f64 / ops as f64;
    let messages = per(after.messages, before.messages);
    let round_trips = per(after.round_trips, before.round_trips);
    let allocs = per(after.pool_misses, before.pool_misses);
    println!(
        "{label:>6}: {messages:>10.2} msgs/op {round_trips:>8.2} round-trips/op \
         {allocs:>8.4} allocs/op {:>12.0} ops/sec",
        ops as f64 / elapsed
    );
    Json::object([
        ("phase", Json::string(label)),
        ("ops", Json::Number(ops as f64)),
        ("messages_per_op", Json::Number(messages)),
        ("round_trips_per_op", Json::Number(round_trips)),
        ("reply_allocations_per_op", Json::Number(allocs)),
        ("elapsed_s", Json::Number(elapsed)),
        ("ops_per_sec", Json::Number(ops as f64 / elapsed)),
    ])
}

fn main() {
    let opts = Options::from_env();
    let ops = if opts.max_procs <= 512 { 2_000 } else { 20_000 };
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("msgplane bench: {ops} ops/phase, 4 partition workers, {cpus} CPU(s)");

    let job = UniviStorJob::new(config());
    let c0 = ClientId::new(0, 0);
    job.connect(c0);
    job.open_file("/mp").read_write().by(c0).unwrap();

    // Warm-up: create the chain and the file's first records so every
    // phase measures steady state, not first-touch setup.
    job.write(c0, "/mp", 0, Payload::pattern(0, WIDE_BLOCK))
        .unwrap();

    let mut rows = Vec::new();

    // Phase 1: fused single-owner rewrites of block 0.
    let before = plane(&job);
    let start = Instant::now();
    for i in 0..ops {
        job.write(c0, "/mp", 0, Payload::pattern(i as u64, 1024))
            .unwrap();
    }
    rows.push(phase_row(
        "fused",
        &job,
        &before,
        ops,
        start.elapsed().as_secs_f64(),
    ));

    // Phase 2: all-partition writes cycling an overwrite window.
    let before = plane(&job);
    let start = Instant::now();
    for i in 0..ops {
        let offset = (i as u64 % WINDOW_BLOCKS) * WIDE_BLOCK;
        job.write(c0, "/mp", offset, Payload::pattern(i as u64, WIDE_BLOCK))
            .unwrap();
    }
    rows.push(phase_row(
        "wide",
        &job,
        &before,
        ops,
        start.elapsed().as_secs_f64(),
    ));

    // Phase 3: streaming reads over the window.
    let before = plane(&job);
    let start = Instant::now();
    for i in 0..ops {
        let offset = (i as u64 % WINDOW_BLOCKS) * WIDE_BLOCK;
        let got = job.read(c0, "/mp", offset, WIDE_BLOCK).unwrap();
        assert_eq!(got.len(), WIDE_BLOCK);
    }
    rows.push(phase_row(
        "read",
        &job,
        &before,
        ops,
        start.elapsed().as_secs_f64(),
    ));

    // PR 7 modeled baseline for the same geometry (protocol removed this
    // PR): every wave was awaited, one round-trip per involved worker,
    // one mpsc::channel() allocation per round-trip. A wide overwrite
    // spanning all 4 partitions cost Append(1) + Punch(4) +
    // PutRecords(fragments, ≤2) + BufferApply(4, broadcast) +
    // PutRecords(records, 4) + BufferInsert(1) + Release(≤2) ≈ 16
    // round-trips across 6 waves; the fused protocol does it in 5 (1
    // append + 4 WriteCommit) with the rest fire-and-forget. The
    // single-owner rewrite drops from ≈6 waves to 1 round-trip.
    let pr7 = Json::object([
        ("wide_waves", Json::Number(6.0)),
        ("wide_round_trips_modeled", Json::Number(16.0)),
        ("fused_round_trips_modeled", Json::Number(6.0)),
        ("reply_allocations_per_round_trip", Json::Number(1.0)),
    ]);

    let doc = Json::object([
        ("bench", Json::string("msgplane")),
        (
            "workload",
            Json::string(
                "partitioned runtime, 4 workers: fused single-block rewrites, \
                 all-partition overwriting writes, streaming reads",
            ),
        ),
        ("ops_per_phase", Json::Number(ops as f64)),
        ("cpus_available", Json::Number(cpus as f64)),
        ("results", Json::Array(rows)),
        ("pr7_protocol_modeled", pr7),
        (
            "note",
            Json::string(
                "messages/round-trips/allocations per op are deterministic and \
                 portable; the PR 7 comparison is modeled from its wave \
                 structure because this PR removes that protocol. Wall-clock \
                 ops/sec is bounded by cpus_available: on a 1-CPU host the \
                 router and all four workers time-slice one core, so fewer \
                 round-trips cannot show up as latency wins there — only a \
                 multi-core re-run can convert the round-trip reduction into \
                 wall-clock speedup. Reply allocations near zero reflect the \
                 reply-slot pool recycling; PR 7 allocated one channel pair \
                 per awaited request by construction",
            ),
        ),
    ]);
    let out = "BENCH_msgplane.json";
    std::fs::write(out, doc.render() + "\n").expect("write BENCH_msgplane.json");
    println!("wrote {out}");
}
