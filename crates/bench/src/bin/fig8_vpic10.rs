//! Reproduces Fig. 8: 10-timestep VPIC-IO, where the data no longer fits
//! in DRAM — UniviStor/(DRAM+BB+Disk) vs /(BB+Disk) vs /(Disk).

use univistor_bench::cli::Options;
use univistor_bench::figures::{fig8, paper_scales};
use univistor_bench::report::{emit_outputs, print_figure, print_speedup_times};
use univistor_bench::systems::accumulated_metrics;

fn main() {
    let opts = Options::from_env();
    let scales = paper_scales(opts.max_procs);
    let fig = fig8(&scales, opts.vpic_scale()).expect("fig8");
    print_figure(&fig);
    println!("Speedups (paper: DRAM+BB+Disk 1.2–1.6× over BB+Disk, 1.4–2× over Disk):");
    print_speedup_times("Fig8", &fig.series[0], &fig.series[1]);
    print_speedup_times("Fig8", &fig.series[0], &fig.series[2]);

    if let Some(dir) = &opts.csv_dir {
        emit_outputs(&[&fig], &accumulated_metrics(), dir);
    }
}
