//! Write-path microbenchmark: the batched pipeline against the per-piece
//! reference implementation.
//!
//! Four clients each stream segment-grid-spanning writes into their own
//! file, cycling a fixed block window so later passes overwrite earlier
//! ones and exercise the punch/displacement path. Every write call covers
//! 16 segments, so the two pipelines diverge exactly where the batching
//! work lives: piece planning, `append_many`, one whole-span punch,
//! partition-grouped `put_batch`, and segment coalescing (capped at the
//! metadata range, here 8 segments — a fully coalescible call commits 2
//! records instead of 16).
//!
//! Timing is wall-clock (best of 3); the pipeline counters
//! (`univistor_write_pieces_total`, `univistor_write_records_total`,
//! `univistor_write_lock_acquisitions_total`) and the final KV record
//! count are deterministic, so they are read from the last run. Results
//! land in `BENCH_write_batch.json` so later PRs have a baseline to beat.

use std::time::Instant;
use univistor_bench::cli::Options;
use univistor_core::config::{UniviStorConfig, WritePipeline};
use univistor_core::metadata::ClientId;
use univistor_core::server::UniviStorJob;
use univistor_obs::Json;
use univistor_sim::Payload;

/// Single-thread bench: a handful of clients driven by one rank loop.
const RANKS: usize = 4;
/// Blocks each client cycles over (bounds live bytes; overwrites past the
/// window exercise punch + displaced-span release).
const WINDOW_BLOCKS: u64 = 64;
/// Segments per write call (block = 16 segments).
const PIECES_PER_WRITE: u64 = 16;

const LOCKS: [&str; 4] = ["chain", "kv_shard", "node_buffer", "accounting"];

fn config(pipeline: WritePipeline) -> UniviStorConfig {
    let mut cfg = UniviStorConfig::paper(RANKS);
    // Pure cache-path benchmark: no flush on close.
    cfg.features.flush_on_close = false;
    // Small segments so the metadata plane, not memcpy, dominates: each
    // 64 KiB write call plans 16 pieces, and the 32 KiB metadata range
    // caps coalesced records at 8 segments.
    cfg.chunk_size = 64 << 10;
    cfg.segment_size = 4 << 10;
    cfg.metadata_range_size = 32 << 10;
    cfg.write_pipeline = pipeline;
    cfg
}

/// One run's deterministic pipeline accounting plus its wall-clock time.
struct RunStats {
    elapsed_s: f64,
    write_calls: u64,
    pieces: u64,
    records: u64,
    kv_records: u64,
    /// Lock acquisitions per write call, indexed like [`LOCKS`].
    locks_per_write: [f64; 4],
}

fn run_once(pipeline: WritePipeline, ops: usize, block: u64) -> RunStats {
    let job = UniviStorJob::new(config(pipeline));
    let clients: Vec<ClientId> = (0..RANKS).map(|r| ClientId::new(0, r as u32)).collect();
    for (r, &c) in clients.iter().enumerate() {
        job.connect(c);
        job.open_file(&format!("/wb/f{r}"))
            .read_write()
            .by(c)
            .unwrap();
    }

    let start = Instant::now();
    for i in 0..ops {
        let offset = (i as u64 % WINDOW_BLOCKS) * block;
        for (r, &c) in clients.iter().enumerate() {
            job.write(
                c,
                &format!("/wb/f{r}"),
                offset,
                Payload::pattern(i as u64, block),
            )
            .unwrap();
        }
    }
    let elapsed_s = start.elapsed().as_secs_f64();

    let snap = job.metrics();
    let write_calls = snap
        .counter("univistor_ops_total", &[("op", "write")])
        .unwrap_or(0);
    let per_write = |total: u64| total as f64 / write_calls.max(1) as f64;
    RunStats {
        elapsed_s,
        write_calls,
        pieces: snap.counter_total("univistor_write_pieces_total"),
        records: snap.counter_total("univistor_write_records_total"),
        kv_records: job.metadata_records() as u64,
        locks_per_write: LOCKS.map(|l| {
            per_write(
                snap.counter("univistor_write_lock_acquisitions_total", &[("lock", l)])
                    .unwrap_or(0),
            )
        }),
    }
}

fn bench(pipeline: WritePipeline, ops: usize, block: u64) -> RunStats {
    // Best of 3 to damp scheduler noise; the counters are deterministic,
    // so keep whichever run was fastest.
    (0..3)
        .map(|_| run_once(pipeline, ops, block))
        .min_by(|a, b| a.elapsed_s.total_cmp(&b.elapsed_s))
        .expect("three runs")
}

fn report(name: &str, s: &RunStats) -> Json {
    let ops_per_sec = s.write_calls as f64 / s.elapsed_s;
    println!(
        "{name:>10}: {:>8} writes in {:.4} s = {ops_per_sec:>10.0} ops/sec, \
         {} pieces -> {} records (ratio {:.2}), {} KV records live",
        s.write_calls,
        s.elapsed_s,
        s.pieces,
        s.records,
        s.pieces as f64 / s.records.max(1) as f64,
        s.kv_records,
    );
    for (l, per) in LOCKS.iter().zip(s.locks_per_write) {
        println!("{:>12}{l} locks/write: {per:.2}", "");
    }
    Json::object([
        ("pipeline", Json::string(name)),
        ("write_calls", Json::Number(s.write_calls as f64)),
        ("elapsed_s", Json::Number(s.elapsed_s)),
        ("write_ops_per_sec", Json::Number(ops_per_sec)),
        ("pieces", Json::Number(s.pieces as f64)),
        ("records_committed", Json::Number(s.records as f64)),
        (
            "coalescing_ratio",
            Json::Number(s.pieces as f64 / s.records.max(1) as f64),
        ),
        ("kv_records_final", Json::Number(s.kv_records as f64)),
        (
            "lock_acquisitions_per_write",
            Json::object(
                LOCKS
                    .iter()
                    .zip(s.locks_per_write)
                    .map(|(l, per)| (*l, Json::Number(per))),
            ),
        ),
    ])
}

fn main() {
    let opts = Options::from_env();
    // --quick shrinks the op count for CI smoke runs.
    let ops = if opts.max_procs <= 512 { 500 } else { 5_000 };
    let block = PIECES_PER_WRITE * (4 << 10);

    println!(
        "write_batch bench: {RANKS} clients x {ops} writes of {block} B \
         ({PIECES_PER_WRITE} segments/write), {WINDOW_BLOCKS}-block window"
    );
    let per_piece = bench(WritePipeline::PerPiece, ops, block);
    let batched = bench(WritePipeline::Batched, ops, block);
    let rows = vec![report("per_piece", &per_piece), report("batched", &batched)];

    let speedup = (batched.write_calls as f64 / batched.elapsed_s)
        / (per_piece.write_calls as f64 / per_piece.elapsed_s);
    let record_reduction = 1.0 - batched.kv_records as f64 / per_piece.kv_records.max(1) as f64;
    println!(
        "batched vs per-piece: {speedup:.2}x write ops/sec, \
         {:.1}% fewer live KV records",
        record_reduction * 100.0
    );

    let doc = Json::object([
        ("bench", Json::string("write_batch")),
        (
            "workload",
            Json::string(
                "4 clients, one file each: sequential 16-segment writes \
                 cycling a 64-block window (later passes overwrite and \
                 displace earlier ones), single driving thread",
            ),
        ),
        ("ops_per_client", Json::Number(ops as f64)),
        ("block_bytes", Json::Number(block as f64)),
        ("segment_bytes", Json::Number(4096.0)),
        ("metadata_range_bytes", Json::Number((32 << 10) as f64)),
        ("results", Json::Array(rows)),
        (
            "comparison",
            Json::object([
                ("write_ops_per_sec_speedup", Json::Number(speedup)),
                ("kv_record_reduction", Json::Number(record_reduction)),
            ]),
        ),
        (
            "note",
            Json::string(
                "ops/sec is hardware-dependent; the piece/record/lock \
                 counters and KV record counts are deterministic",
            ),
        ),
    ]);
    let out = "BENCH_write_batch.json";
    std::fs::write(out, doc.render() + "\n").expect("write BENCH_write_batch.json");
    println!("wrote {out}");
}
