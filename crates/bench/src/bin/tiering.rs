//! Background-tiering benchmark: what the continuous drain buys a
//! checkpoint-style write stream under tier pressure.
//!
//! Four clients on two nodes run the [`TierPressure`] stream — every
//! round appends a fresh region of 4 KiB records, with the DRAM and BB
//! calibrations sized far below the stream so the fast tiers sit above
//! their watermarks throughout. Rounds are separated by a short emulated
//! compute phase (the same idea as the VPIC benches' `--compute-gap`):
//! checkpoint streams come from applications that compute between
//! checkpoints, and that slack is precisely what the background drain
//! overlaps with. Two systems, identical workload:
//!
//! * **close-flush baseline** — tiering disabled; all PFS work happens
//!   in the close-time flush after the last round;
//! * **tiering** — the [`TieringDaemon`] actors spill over-watermark
//!   tiers and continuously drain cold spans to Lustre while the rounds
//!   are still writing, so the close is a catch-up over the spans the
//!   ledger could not cover.
//!
//! The headline metric is application-visible I/O time: the write calls
//! plus the close, excluding the emulated compute (which both systems
//! spend identically — the daemon just happens to work during it).
//! Timing is wall-clock minima over interleaved rounds; the speedup is
//! the median of per-round pairs. Byte-identity of the flushed file is
//! asserted every round via `verify_flush`. Results land in
//! `BENCH_tiering.json`.

use std::sync::Arc;
use std::time::{Duration, Instant};
use univistor_bench::cli::Options;
use univistor_core::config::{JobGeometry, TieringConfig, UniviStorConfig};
use univistor_core::driver::UniviStorDriver;
use univistor_core::metadata::ClientId;
use univistor_core::server::UniviStorJob;
use univistor_core::tiering::{TieringDaemon, TieringStats};
use univistor_mpi::driver::OpenMode;
use univistor_obs::Json;
use univistor_workloads::TierPressure;

/// Clients (two per node).
const RANKS: usize = 4;
/// One record per write call.
const RECORD: u64 = 4 << 10;
/// Records per rank per round.
const SLOTS: u64 = 16;
/// Shared file under test.
const PATH: &str = "/tiering/stream";
/// Emulated compute between checkpoint rounds — the slack a real
/// application leaves between checkpoints, which the daemon drains
/// into. Spent identically by both systems and excluded from timing.
const COMPUTE_GAP: Duration = Duration::from_millis(2);

fn config(tiered: bool) -> UniviStorConfig {
    let mut cfg = UniviStorConfig::paper(RANKS);
    cfg.geometry = JobGeometry {
        nodes: 2,
        procs_per_node: 2,
        servers_per_node: 2,
    };
    cfg.chunk_size = RECORD;
    cfg.segment_size = RECORD;
    cfg.metadata_range_size = 64 << 10;
    // Fast tiers far below the stream: one round (256 KiB) already
    // exceeds both, so the watermarks stay crossed for the whole run.
    cfg.cal.dram_cache_capacity_per_node = 64 << 10;
    cfg.cal.bb_capacity_per_node = 128 << 10;
    cfg.cal.bb_nodes_min = 1;
    cfg.cal.bb_nodes_per_compute_node = 0.5;
    if tiered {
        cfg.tiering = TieringConfig::on();
        // Actors only: keep the drain cadence off the write path so the
        // comparison isolates the background overlap.
        cfg.tiering.drain_cadence_ops = 0;
        cfg.tiering.daemon_interval_ms = 1;
        cfg.tiering.drain_batch = 512;
        cfg.tiering.spill_batch = 16;
    }
    cfg
}

struct RunStats {
    write_s: f64,
    close_s: f64,
    catchup_bytes: u64,
    tiering: TieringStats,
}

fn run_once(w: &TierPressure, tiered: bool) -> RunStats {
    let job = Arc::new(UniviStorJob::new(config(tiered)));
    let driver = UniviStorDriver::new(Arc::clone(&job), 0);
    let daemon = TieringDaemon::spawn(Arc::clone(&job));
    let handles = w.open_all(&driver, PATH, OpenMode::Write).unwrap();

    let mut write_s = 0.0;
    for round in 0..w.rounds {
        let start = Instant::now();
        w.write_round(&driver, &handles, round).unwrap();
        write_s += start.elapsed().as_secs_f64();
        std::thread::sleep(COMPUTE_GAP);
    }

    let start = Instant::now();
    w.close_all(&driver, &handles).unwrap();
    let close_s = start.elapsed().as_secs_f64();
    daemon.shutdown();

    let stats = job.stats();
    let receipt = stats.flush_receipts.last().expect("last close flushed");
    assert_eq!(receipt.file_size, w.file_size());
    assert!(
        job.verify_flush(ClientId::new(0, 0), PATH).unwrap(),
        "flushed bytes diverge from the cached stream"
    );
    RunStats {
        write_s,
        close_s,
        catchup_bytes: receipt.drained_ahead_bytes,
        tiering: job.tiering().stats(),
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn main() {
    let opts = Options::from_env();
    // --quick shrinks the stream for CI smoke runs.
    let rounds = if opts.max_procs <= 512 { 8 } else { 64 };
    let w = TierPressure {
        procs: RANKS,
        slots_per_proc: SLOTS,
        record: RECORD,
        rounds,
    };
    let bytes = w.file_size();
    println!(
        "tiering bench: {RANKS} ranks stream {rounds} rounds x {} KiB \
         ({} KiB total) under tier pressure, {:?} emulated compute per \
         round; close-flush baseline vs background drain + catch-up close",
        w.round_bytes() >> 10,
        bytes >> 10,
        COMPUTE_GAP
    );

    let mut base: Option<RunStats> = None;
    let mut tier: Option<RunStats> = None;
    let mut speedups = Vec::new();
    // One untimed warmup pair absorbs allocator and thread-spawn
    // cold-start costs before the paired rounds.
    run_once(&w, false);
    run_once(&w, true);
    for _ in 0..5 {
        let b = run_once(&w, false);
        let t = run_once(&w, true);
        speedups.push((b.write_s + b.close_s) / (t.write_s + t.close_s));
        let keep = |best: &mut Option<RunStats>, r: RunStats| match best {
            None => *best = Some(r),
            Some(s) => {
                s.write_s = s.write_s.min(r.write_s);
                s.close_s = s.close_s.min(r.close_s);
                // Keep the richest tiering evidence across rounds.
                if r.catchup_bytes > s.catchup_bytes {
                    s.catchup_bytes = r.catchup_bytes;
                    s.tiering = r.tiering;
                }
            }
        };
        keep(&mut base, b);
        keep(&mut tier, t);
    }
    let (b, t) = (base.expect("five rounds"), tier.expect("five rounds"));
    let speedup = median(speedups);

    let mb = bytes as f64 / (1 << 20) as f64;
    let base_bw = mb / (b.write_s + b.close_s);
    let tier_bw = mb / (t.write_s + t.close_s);
    println!(
        "  baseline: write {:.4} s + close {:.4} s = {base_bw:>7.1} MiB/s app-visible",
        b.write_s, b.close_s
    );
    println!(
        "   tiering: write {:.4} s + close {:.4} s = {tier_bw:>7.1} MiB/s app-visible \
         ({speedup:.2}x, median of paired rounds)",
        t.write_s, t.close_s
    );
    println!(
        "   daemon: {} segments spilled, {} KiB drained ahead, \
         {} KiB skipped by the catch-up close",
        t.tiering.spilled_segments,
        t.tiering.drained_bytes >> 10,
        t.catchup_bytes >> 10
    );

    let doc = Json::object([
        ("bench", Json::string("tiering")),
        (
            "workload",
            Json::string(
                "4 ranks on 2 nodes append checkpoint rounds of 4 KiB \
                 records into one shared file, with emulated compute \
                 between rounds; DRAM/BB calibrations sit far below the \
                 stream so the watermarks stay crossed; baseline flushes \
                 everything at close, tiering drains cold spans during \
                 the compute gaps and closes as a catch-up",
            ),
        ),
        ("rounds", Json::Number(rounds as f64)),
        ("compute_gap_s", Json::Number(COMPUTE_GAP.as_secs_f64())),
        ("stream_bytes", Json::Number(bytes as f64)),
        ("baseline_write_s", Json::Number(b.write_s)),
        ("baseline_close_s", Json::Number(b.close_s)),
        ("baseline_mib_per_s_to_durable", Json::Number(base_bw)),
        ("tiering_write_s", Json::Number(t.write_s)),
        ("tiering_close_s", Json::Number(t.close_s)),
        ("tiering_mib_per_s_to_durable", Json::Number(tier_bw)),
        ("speedup_to_durable", Json::Number(speedup)),
        (
            "spilled_segments",
            Json::Number(t.tiering.spilled_segments as f64),
        ),
        (
            "drained_bytes",
            Json::Number(t.tiering.drained_bytes as f64),
        ),
        (
            "catchup_skipped_bytes",
            Json::Number(t.catchup_bytes as f64),
        ),
        (
            "note",
            Json::string(
                "timings cover the write calls and the close only — the \
                 per-round compute gap is spent identically by both \
                 systems and excluded; MiB/s is hardware-dependent; the \
                 speedup is a median of back-to-back paired runs; \
                 byte-identity of the flushed file is asserted every \
                 round",
            ),
        ),
    ]);
    let out = "BENCH_tiering.json";
    std::fs::write(out, doc.render() + "\n").expect("write BENCH_tiering.json");
    println!("wrote {out}");
}
