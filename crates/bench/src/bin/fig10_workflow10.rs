//! Reproduces Fig. 10: the 10-timestep workflow across UniviStor tier
//! configurations — /(DRAM+BB) vs /(BB) vs /(Disk).

use univistor_bench::cli::Options;
use univistor_bench::figures::{fig_workflow, paper_scales};
use univistor_bench::report::{emit_outputs, print_figure, print_speedup_times};
use univistor_bench::systems::accumulated_metrics;

fn main() {
    let opts = Options::from_env();
    let scales = paper_scales(opts.max_procs);
    let fig = fig_workflow(&scales, 10, opts.vpic_scale(), "Fig. 10", true).expect("fig10");
    print_figure(&fig);
    println!("Speedups (paper: DRAM+BB 1.5–2× over BB, 4–4.8× over Disk):");
    print_speedup_times("Fig10", &fig.series[0], &fig.series[1]);
    print_speedup_times("Fig10", &fig.series[0], &fig.series[2]);

    if let Some(dir) = &opts.csv_dir {
        emit_outputs(&[&fig], &accumulated_metrics(), dir);
    }
}
