//! Reproduces Fig. 7: total I/O time of a 5-timestep VPIC-IO run across
//! UniviStor/DRAM, UniviStor/BB, Data Elevator, and Lustre (write + last
//! flush components).

use univistor_bench::cli::Options;
use univistor_bench::figures::{fig7, paper_scales};
use univistor_bench::report::{emit_outputs, print_figure, Series};
use univistor_bench::systems::accumulated_metrics;

fn main() {
    let opts = Options::from_env();
    let scales = paper_scales(opts.max_procs);
    let fig = fig7(&scales, opts.vpic_scale()).expect("fig7");
    print_figure(&fig);
    // Totals (write + flush), as the paper's bars stack them.
    let total = |w: &Series, f: &Series| -> Vec<f64> {
        w.values.iter().zip(&f.values).map(|(a, b)| a + b).collect()
    };
    let dram = total(&fig.series[0], &fig.series[1]);
    let bb = total(&fig.series[2], &fig.series[3]);
    let de = total(&fig.series[4], &fig.series[5]);
    println!("totals: UV/DRAM {dram:?}\n        UV/BB   {bb:?}\n        DE      {de:?}");

    if let Some(dir) = &opts.csv_dir {
        emit_outputs(&[&fig], &accumulated_metrics(), dir);
    }
}
