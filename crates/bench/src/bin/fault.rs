//! Fault-tolerance benchmark: what node loss costs the read path, and
//! how fast online repair restores full redundancy.
//!
//! Six clients on three nodes write one replicated file N-to-N style as
//! 512-byte segment records. Three timed phases per round, on the same
//! job: (1) healthy sequential reads; (2) the same reads after node 0's
//! volatile storage is lost — every record produced there reroutes to
//! its buddy replica inside the read plan; (3) `rebuild_degraded()`,
//! which re-reads each surviving copy and re-mirrors it onto a healthy
//! buddy chain. Phase 2 over phase 1 is the degraded-read overhead; the
//! repair phase reports segments/s and bytes/s. A post-repair read pass
//! confirms byte-identity against the written pattern each round.
//!
//! Timing is wall-clock minima over interleaved rounds; the overhead
//! ratio is the median of per-round ratios. Results land in
//! `BENCH_fault.json` so later PRs have a baseline to beat.

use std::time::Instant;
use univistor_bench::cli::Options;
use univistor_core::config::{JobGeometry, UniviStorConfig};
use univistor_core::metadata::ClientId;
use univistor_core::repair::RepairReport;
use univistor_core::server::UniviStorJob;
use univistor_obs::Json;
use univistor_sim::Payload;

/// Clients (two per node).
const RANKS: usize = 6;
/// 512-byte segments, one record per write call.
const SEGMENT: u64 = 512;
/// Segments per read call.
const SEGMENTS_PER_READ: u64 = 64;
/// The node whose volatile storage is lost mid-round.
const LOST_NODE: usize = 0;

fn config() -> UniviStorConfig {
    let mut cfg = UniviStorConfig::paper(RANKS);
    cfg.geometry = JobGeometry {
        nodes: 3,
        procs_per_node: 2,
        servers_per_node: 2,
    };
    cfg.features.flush_on_close = false;
    // Replication on: without replicas a node loss is data loss, not a
    // degraded mode. Small segments keep the metadata plane on the path.
    cfg.replicate_volatile = true;
    cfg.chunk_size = 16 << 10;
    cfg.segment_size = SEGMENT;
    cfg.metadata_range_size = 32 << 10;
    cfg
}

struct RunStats {
    healthy_s: f64,
    degraded_s: f64,
    repair_s: f64,
    read_calls: u64,
    report: RepairReport,
}

fn run_once(segments: u64, read_passes: u64) -> RunStats {
    let job = UniviStorJob::new(config());
    let clients: Vec<ClientId> = (0..RANKS).map(|r| ClientId::new(0, r as u32)).collect();
    for &c in &clients {
        job.connect(c);
    }
    job.open_file("/fault/f")
        .read_write()
        .representing(RANKS)
        .by(clients[0])
        .unwrap();
    // N-to-N layout: rank r owns the file's r-th contiguous share,
    // written one segment record at a time, each mirrored onto a buddy.
    let per_rank = segments / RANKS as u64;
    for s in 0..segments {
        job.write(
            clients[(s / per_rank) as usize],
            "/fault/f",
            s * SEGMENT,
            Payload::pattern(s, SEGMENT),
        )
        .unwrap();
    }
    let block = SEGMENTS_PER_READ * SEGMENT;
    let blocks = segments / SEGMENTS_PER_READ;
    // The reader lives on node 1 — it survives the loss of node 0.
    let reader = clients[2];
    let scan = |label: &str| {
        let start = Instant::now();
        for i in 0..read_passes * blocks {
            let offset = (i % blocks) * block;
            let got = job.read(reader, "/fault/f", offset, block).unwrap();
            debug_assert!(
                got.slice(0, SEGMENT)
                    .content_eq(&Payload::pattern((i % blocks) * SEGMENTS_PER_READ, SEGMENT)),
                "{label}: corrupt read"
            );
        }
        start.elapsed().as_secs_f64()
    };

    // Warm the metadata caches and readahead state before timing, so
    // the healthy phase doesn't absorb every cold miss.
    scan("warmup");
    let healthy_s = scan("healthy");
    job.fail_node(LOST_NODE);
    let degraded_s = scan("degraded");

    let repair_start = Instant::now();
    let report = job.rebuild_degraded().unwrap();
    let repair_s = repair_start.elapsed().as_secs_f64();
    assert_eq!(job.degraded_segments(), 0, "repair left degraded records");
    assert!(job.restore_node(LOST_NODE));

    // Post-repair byte-identity: the whole file, against the pattern.
    let whole = job.read(reader, "/fault/f", 0, segments * SEGMENT).unwrap();
    for s in 0..segments {
        assert!(
            whole
                .slice(s * SEGMENT, SEGMENT)
                .content_eq(&Payload::pattern(s, SEGMENT)),
            "segment {s} corrupt after repair"
        );
    }

    RunStats {
        healthy_s,
        degraded_s,
        repair_s,
        read_calls: read_passes * blocks,
        report,
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn main() {
    let opts = Options::from_env();
    // --quick shrinks the workload for CI smoke runs.
    let (segments, read_passes) = if opts.max_procs <= 512 {
        (768, 2)
    } else {
        (3_072, 4)
    };

    println!(
        "fault bench: {RANKS} producers on 3 nodes, {segments} replicated \
         {SEGMENT} B segments; healthy vs degraded scans of \
         {SEGMENTS_PER_READ}-segment blocks, then online repair"
    );

    let mut best: Option<RunStats> = None;
    let mut overhead_ratios = Vec::new();
    for _ in 0..5 {
        let r = run_once(segments, read_passes);
        overhead_ratios.push(r.degraded_s / r.healthy_s);
        match &mut best {
            // The repair report is deterministic; keep the first.
            None => best = Some(r),
            Some(b) => {
                b.healthy_s = b.healthy_s.min(r.healthy_s);
                b.degraded_s = b.degraded_s.min(r.degraded_s);
                b.repair_s = b.repair_s.min(r.repair_s);
            }
        }
    }
    let s = best.expect("five rounds");
    let overhead = median(overhead_ratios);

    let healthy_ops = s.read_calls as f64 / s.healthy_s;
    let degraded_ops = s.read_calls as f64 / s.degraded_s;
    let repaired_segments = s.report.repaired_primary + s.report.repaired_replica;
    let repair_seg_per_sec = repaired_segments as f64 / s.repair_s;
    let repair_bytes_per_sec = s.report.repaired_bytes as f64 / s.repair_s;

    println!(
        "   healthy: {:>7} reads in {:.4} s = {healthy_ops:>9.0} ops/sec",
        s.read_calls, s.healthy_s
    );
    println!(
        "  degraded: {:>7} reads in {:.4} s = {degraded_ops:>9.0} ops/sec \
         ({overhead:.2}x read overhead, median of paired rounds)",
        s.read_calls, s.degraded_s
    );
    println!(
        "    repair: {repaired_segments} segments ({} bytes) in {:.4} s = \
         {repair_seg_per_sec:.0} segments/sec, {repair_bytes_per_sec:.0} bytes/sec",
        s.report.repaired_bytes, s.repair_s
    );

    let doc = Json::object([
        ("bench", Json::string("fault")),
        (
            "workload",
            Json::string(
                "6 producers on 3 nodes write one replicated file N-to-N \
                 (contiguous shares of 512 B segment records); sequential \
                 block scans healthy, then with node 0 lost (replica \
                 reroute), then rebuild_degraded() re-mirrors every \
                 affected record and reads verify byte-identity",
            ),
        ),
        ("segments", Json::Number(segments as f64)),
        ("segment_bytes", Json::Number(SEGMENT as f64)),
        ("read_calls", Json::Number(s.read_calls as f64)),
        ("healthy_elapsed_s", Json::Number(s.healthy_s)),
        ("healthy_read_ops_per_sec", Json::Number(healthy_ops)),
        ("degraded_elapsed_s", Json::Number(s.degraded_s)),
        ("degraded_read_ops_per_sec", Json::Number(degraded_ops)),
        ("degraded_read_overhead", Json::Number(overhead)),
        (
            "repair",
            Json::object([
                ("elapsed_s", Json::Number(s.repair_s)),
                (
                    "repaired_primary",
                    Json::Number(s.report.repaired_primary as f64),
                ),
                (
                    "repaired_replica",
                    Json::Number(s.report.repaired_replica as f64),
                ),
                (
                    "repaired_bytes",
                    Json::Number(s.report.repaired_bytes as f64),
                ),
                ("segments_per_sec", Json::Number(repair_seg_per_sec)),
                ("bytes_per_sec", Json::Number(repair_bytes_per_sec)),
                ("lost_records", Json::Number(s.report.lost_records as f64)),
                (
                    "remaining_degraded",
                    Json::Number(s.report.remaining_degraded as f64),
                ),
            ]),
        ),
        (
            "note",
            Json::string(
                "ops/sec is hardware-dependent; the overhead ratio is a \
                 median of back-to-back paired phases on one job; the \
                 repair report is deterministic",
            ),
        ),
    ]);
    let out = "BENCH_fault.json";
    std::fs::write(out, doc.render() + "\n").expect("write BENCH_fault.json");
    println!("wrote {out}");
}
