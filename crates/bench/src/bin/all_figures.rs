//! Runs the full evaluation — every figure of §III — and prints each
//! table plus the headline speedups. This is the binary whose output
//! EXPERIMENTS.md records.

use univistor_bench::cli::Options;
use univistor_bench::figures::{
    fig5_flush, fig5_write_read, fig6, fig7, fig8, fig_workflow, paper_scales,
};
use univistor_bench::report::{
    print_figure, print_speedup, print_speedup_times, save_figure_csv, save_metrics_json, Figure,
};
use univistor_bench::systems::accumulated_metrics;

fn main() {
    let opts = Options::from_env();
    let scales = paper_scales(opts.max_procs);
    let vpic = opts.vpic_scale();
    let emit = |fig: &Figure| {
        if let Some(dir) = &opts.csv_dir {
            match save_figure_csv(fig, dir) {
                Ok(path) => eprintln!("wrote {}", path.display()),
                Err(e) => eprintln!("csv write failed for {}: {e}", fig.id),
            }
        }
    };

    let (w, r) = fig5_write_read(&scales, opts.bytes_per_proc).expect("fig5ab");
    print_figure(&w);
    emit(&w);
    print_speedup("Fig5a IA gain", &w.series[0], &w.series[1]);
    print_speedup("Fig5a COC gain", &w.series[0], &w.series[2]);
    print_figure(&r);
    emit(&r);
    print_speedup("Fig5b IA gain", &r.series[0], &r.series[1]);
    print_speedup("Fig5b COC gain", &r.series[0], &r.series[2]);
    let f5c = fig5_flush(&scales, opts.bytes_per_proc).expect("fig5c");
    print_figure(&f5c);
    emit(&f5c);
    print_speedup("Fig5c IA+ADPT gain", &f5c.series[0], &f5c.series[3]);

    let (w6, r6, f6c) = fig6(&scales, opts.bytes_per_proc).expect("fig6");
    for fig in [&w6, &r6, &f6c] {
        print_figure(fig);
        emit(fig);
    }
    print_speedup("Fig6a UV/DRAM vs DE", &w6.series[0], &w6.series[2]);
    print_speedup("Fig6a UV/BB vs DE", &w6.series[1], &w6.series[2]);
    print_speedup("Fig6a UV/DRAM vs Lustre", &w6.series[0], &w6.series[3]);
    print_speedup("Fig6a UV/BB vs Lustre", &w6.series[1], &w6.series[3]);
    print_speedup("Fig6b UV/DRAM vs DE", &r6.series[0], &r6.series[2]);
    print_speedup("Fig6b UV/BB vs DE", &r6.series[1], &r6.series[2]);
    print_speedup("Fig6b UV/DRAM vs Lustre", &r6.series[0], &r6.series[3]);
    print_speedup("Fig6c UV/DRAM vs DE", &f6c.series[0], &f6c.series[2]);
    print_speedup("Fig6c UV/BB vs DE", &f6c.series[1], &f6c.series[2]);

    let f7 = fig7(&scales, vpic).expect("fig7");
    print_figure(&f7);
    emit(&f7);

    let f8 = fig8(&scales, vpic).expect("fig8");
    print_figure(&f8);
    emit(&f8);
    print_speedup_times("Fig8 vs BB+Disk", &f8.series[0], &f8.series[1]);
    print_speedup_times("Fig8 vs Disk", &f8.series[0], &f8.series[2]);

    let f9 = fig_workflow(&scales, 5, vpic, "Fig. 9", false).expect("fig9");
    print_figure(&f9);
    emit(&f9);
    print_speedup_times("Fig9 DRAM overlap", &f9.series[0], &f9.series[1]);
    print_speedup_times("Fig9 BB overlap", &f9.series[2], &f9.series[3]);
    print_speedup_times("Fig9 UV/DRAM-non vs DE", &f9.series[1], &f9.series[4]);
    print_speedup_times("Fig9 UV/BB-non vs DE", &f9.series[3], &f9.series[4]);
    print_speedup_times("Fig9 UV/DRAM-non vs Lustre", &f9.series[1], &f9.series[5]);

    let f10 = fig_workflow(&scales, 10, vpic, "Fig. 10", true).expect("fig10");
    print_figure(&f10);
    emit(&f10);
    print_speedup_times("Fig10 vs BB", &f10.series[0], &f10.series[1]);
    print_speedup_times("Fig10 vs Disk", &f10.series[0], &f10.series[2]);

    // The combined telemetry of every UniviStor job the run built, next
    // to the figure CSVs.
    if let Some(dir) = &opts.csv_dir {
        match save_metrics_json(&accumulated_metrics(), dir) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("metrics write failed: {e}"),
        }
    }
}
