//! Tabular reporting: every harness binary prints the same rows/series
//! the paper plots, plus the derived speedups its text quotes.

/// One plotted series of a figure.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label, matching the paper's.
    pub label: String,
    /// One value per x-axis point.
    pub values: Vec<f64>,
}

impl Series {
    /// Construct from a label and values.
    pub fn new(label: impl Into<String>, values: Vec<f64>) -> Self {
        Series {
            label: label.into(),
            values,
        }
    }
}

/// A reproduced figure.
#[derive(Debug, Clone)]
pub struct Figure {
    /// "Fig. 6a" etc.
    pub id: String,
    /// Caption-style description.
    pub title: String,
    /// X-axis label ("Number of processes").
    pub x_label: String,
    /// Y-axis label ("I/O rate (GB/s)" / "Time (s)").
    pub y_label: String,
    /// X-axis points.
    pub x: Vec<u64>,
    /// The series.
    pub series: Vec<Series>,
}

/// Format a rate in GB/s from (bytes, seconds).
pub fn rate_gbs(bytes: u64, secs: f64) -> f64 {
    if secs <= 0.0 {
        return f64::INFINITY;
    }
    bytes as f64 / secs / 1e9
}

/// Geometric mean of pairwise ratios `num[i]/den[i]` (the "×" numbers the
/// paper's text reports as averages), plus min and max.
pub fn speedup_stats(num: &[f64], den: &[f64]) -> (f64, f64, f64) {
    assert_eq!(num.len(), den.len());
    assert!(!num.is_empty());
    let ratios: Vec<f64> = num.iter().zip(den).map(|(n, d)| n / d).collect();
    let min = ratios.iter().copied().fold(f64::INFINITY, f64::min);
    let max = ratios.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let geo = ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64;
    (min, geo.exp(), max)
}

/// Render a figure as CSV (x column + one column per series) — the format
/// plotting scripts consume.
pub fn figure_to_csv(fig: &Figure) -> String {
    let mut out = String::new();
    out.push_str(&fig.x_label.replace(',', "_"));
    for s in &fig.series {
        out.push(',');
        out.push_str(&s.label.replace(',', "_"));
    }
    out.push('\n');
    for (i, x) in fig.x.iter().enumerate() {
        out.push_str(&x.to_string());
        for s in &fig.series {
            out.push(',');
            out.push_str(&format!("{:.6}", s.values[i]));
        }
        out.push('\n');
    }
    out
}

/// Write a figure's CSV next to the given directory, named after its id
/// ("Fig. 6a" → `fig_6a.csv`). Returns the path written.
pub fn save_figure_csv(fig: &Figure, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
    let name = fig
        .id
        .to_ascii_lowercase()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect::<String>()
        .trim_matches('_')
        .replace("__", "_");
    let path = dir.join(format!("{name}.csv"));
    std::fs::create_dir_all(dir)?;
    std::fs::write(&path, figure_to_csv(fig))?;
    Ok(path)
}

/// Write a telemetry snapshot as `metrics.json` into the same directory
/// the figure CSVs land in. Returns the path written.
pub fn save_metrics_json(
    snapshot: &univistor_core::MetricsSnapshot,
    dir: &std::path::Path,
) -> std::io::Result<std::path::PathBuf> {
    let path = dir.join("metrics.json");
    std::fs::create_dir_all(dir)?;
    std::fs::write(&path, snapshot.to_json())?;
    Ok(path)
}

/// Honor `--csv-dir`: write each figure's CSV plus the run's combined
/// telemetry as `metrics.json`, logging every path (or failure) to
/// stderr. The harness binaries all funnel through this.
pub fn emit_outputs(
    figs: &[&Figure],
    metrics: &univistor_core::MetricsSnapshot,
    dir: &std::path::Path,
) {
    for fig in figs {
        match save_figure_csv(fig, dir) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("csv write failed for {}: {e}", fig.id),
        }
    }
    match save_metrics_json(metrics, dir) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("metrics write failed: {e}"),
    }
}

/// Print a figure as an aligned table.
pub fn print_figure(fig: &Figure) {
    println!("== {} — {} ==", fig.id, fig.title);
    print!("{:>12}", fig.x_label);
    for s in &fig.series {
        print!("  {:>22}", s.label);
    }
    println!("   [{}]", fig.y_label);
    for (i, x) in fig.x.iter().enumerate() {
        print!("{:>12}", x);
        for s in &fig.series {
            print!("  {:>22.4}", s.values[i]);
        }
        println!();
    }
    println!();
}

/// Print "A is min–max× (avg) faster than B" for *rate* figures (higher
/// is better): speedup = rate_A / rate_B.
pub fn print_speedup(context: &str, fast: &Series, slow: &Series) {
    let (min, avg, max) = speedup_stats(&fast.values, &slow.values);
    println!(
        "  {context}: {} vs {}: {:.2}×–{:.2}× ({:.2}× avg)",
        fast.label, slow.label, min, max, avg
    );
}

/// Print speedups for *time* figures (lower is better): speedup =
/// time_B / time_A.
pub fn print_speedup_times(context: &str, fast: &Series, slow: &Series) {
    let (min, avg, max) = speedup_stats(&slow.values, &fast.values);
    println!(
        "  {context}: {} vs {}: {:.2}×–{:.2}× ({:.2}× avg)",
        fast.label, slow.label, min, max, avg
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_math() {
        assert!((rate_gbs(2_000_000_000, 2.0) - 1.0).abs() < 1e-12);
        assert!(rate_gbs(1, 0.0).is_infinite());
    }

    #[test]
    fn speedup_stats_ranges() {
        let (min, avg, max) = speedup_stats(&[2.0, 4.0, 8.0], &[1.0, 1.0, 1.0]);
        assert_eq!(min, 2.0);
        assert_eq!(max, 8.0);
        assert!((avg - 4.0).abs() < 1e-12); // geometric mean
    }

    #[test]
    fn csv_rendering_is_wellformed() {
        let fig = Figure {
            id: "Fig. 9".into(),
            title: "t".into(),
            x_label: "procs".into(),
            y_label: "s".into(),
            x: vec![64, 128],
            series: vec![
                Series::new("a,b", vec![1.0, 2.0]),
                Series::new("c", vec![3.5, 4.25]),
            ],
        };
        let csv = figure_to_csv(&fig);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "procs,a_b,c");
        assert!(lines[1].starts_with("64,1.000000,3.500000"));
    }

    #[test]
    fn figures_print_without_panicking() {
        let fig = Figure {
            id: "Fig. X".into(),
            title: "test".into(),
            x_label: "procs".into(),
            y_label: "GB/s".into(),
            x: vec![64, 128],
            series: vec![Series::new("a", vec![1.0, 2.0])],
        };
        print_figure(&fig);
        print_speedup("t", &fig.series[0], &fig.series[0]);
    }
}
