//! # univistor-bench — the evaluation harness
//!
//! Reproduces every figure of the paper's evaluation (§III). Each
//! experiment **actually runs** the functional systems — UniviStor, Data
//! Elevator, direct Lustre — at the paper's scales (64 → 8192 processes,
//! rank-loop execution, virtual payloads), then converts the resulting
//! receipts and counters into simulated times with the analytic
//! bottleneck models in [`timing`] (built on the calibrated Cori-like
//! platform of `univistor_sim::calibration`).
//!
//! | binary | paper figure |
//! |---|---|
//! | `fig5_micro`      | Fig. 5a/5b/5c — IA / COC / ADPT ablations |
//! | `fig6_compare`    | Fig. 6a/6b/6c — UniviStor vs. DE vs. Lustre micro |
//! | `fig7_vpic5`      | Fig. 7 — VPIC-IO, 5 timesteps |
//! | `fig8_vpic10`     | Fig. 8 — VPIC-IO, 10 timesteps, tier spill |
//! | `fig9_workflow5`  | Fig. 9 — VPIC→BD-CATS workflow, 5 steps |
//! | `fig10_workflow10`| Fig. 10 — workflow, 10 steps, tier spill |
//! | `all_figures`     | run everything (used to build EXPERIMENTS.md) |
//!
//! Criterion micro-benches (`benches/micro.rs`) cover the data-structure
//! ablations (log append, VA codec, distributed-vs-centralized metadata,
//! striping planners, read paths, flow solver).

pub mod cli;
pub mod figures;
pub mod report;
pub mod systems;
pub mod timing;

pub use report::{print_figure, Figure, Series};
pub use timing::Platform;
