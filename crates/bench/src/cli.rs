//! Minimal argument parsing shared by the figure binaries.
//!
//! Flags:
//! * `--max-procs N`      — largest process count of the sweep (default 8192);
//! * `--bytes-per-proc N` — micro/VPIC bytes per process (default 256 MiB;
//!   accepts suffixes K/M/G);
//! * `--compute-gap S`    — seconds of emulated computation between VPIC
//!   checkpoints (default 60, the paper's sleep);
//! * `--threads N`        — OS threads driving ranks concurrently
//!   (default 1, the deterministic rank loop; figure benches stay at 1 so
//!   their CSVs are reproducible — only the `scaling` bench sweeps this);
//! * `--quick`            — shorthand for `--max-procs 512
//!   --bytes-per-proc 16M` (fast smoke runs).

use crate::figures::VpicScale;

/// Parsed harness options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Largest process count.
    pub max_procs: usize,
    /// Bytes per process for micro phases.
    pub bytes_per_proc: u64,
    /// VPIC compute gap in seconds.
    pub compute_gap: f64,
    /// OS threads driving ranks concurrently (1 = rank loop).
    pub threads: usize,
    /// Directory to also write per-figure CSV files into.
    pub csv_dir: Option<std::path::PathBuf>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            max_procs: 8192,
            bytes_per_proc: 256 << 20,
            compute_gap: 60.0,
            threads: 1,
            csv_dir: None,
        }
    }
}

impl Options {
    /// Parse from an argument iterator (skip the program name first).
    pub fn parse(args: impl Iterator<Item = String>) -> Result<Options, String> {
        let mut opts = Options::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => {
                    opts.max_procs = 512;
                    opts.bytes_per_proc = 16 << 20;
                }
                "--max-procs" => {
                    let v = args.next().ok_or("--max-procs needs a value")?;
                    opts.max_procs = v.parse().map_err(|e| format!("--max-procs: {e}"))?;
                }
                "--bytes-per-proc" => {
                    let v = args.next().ok_or("--bytes-per-proc needs a value")?;
                    opts.bytes_per_proc = parse_bytes(&v)?;
                }
                "--compute-gap" => {
                    let v = args.next().ok_or("--compute-gap needs a value")?;
                    opts.compute_gap = v.parse().map_err(|e| format!("--compute-gap: {e}"))?;
                }
                "--threads" => {
                    let v = args.next().ok_or("--threads needs a value")?;
                    opts.threads = v.parse().map_err(|e| format!("--threads: {e}"))?;
                    if opts.threads == 0 {
                        return Err("--threads must be at least 1".into());
                    }
                }
                "--csv-dir" => {
                    let v = args.next().ok_or("--csv-dir needs a value")?;
                    opts.csv_dir = Some(std::path::PathBuf::from(v));
                }
                "--help" | "-h" => {
                    return Err("usage: [--quick] [--max-procs N] [--bytes-per-proc N[K|M|G]] [--compute-gap SECONDS] [--threads N] [--csv-dir DIR]".into());
                }
                other => return Err(format!("unknown flag '{other}'")),
            }
        }
        Ok(opts)
    }

    /// Parse from `std::env::args()`.
    pub fn from_env() -> Options {
        match Options::parse(std::env::args().skip(1)) {
            Ok(o) => o,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// The VPIC scaling implied by these options (bytes per proc → particle
    /// count at 8 variables × 4 bytes).
    pub fn vpic_scale(&self) -> VpicScale {
        VpicScale {
            particles_per_proc: (self.bytes_per_proc / 32).max(1),
            compute_gap: self.compute_gap,
        }
    }
}

/// Parse "64", "16M", "1G", "512K" into bytes.
pub fn parse_bytes(s: &str) -> Result<u64, String> {
    let s = s.trim();
    let (num, mult) = match s.chars().last() {
        Some('K') | Some('k') => (&s[..s.len() - 1], 1u64 << 10),
        Some('M') | Some('m') => (&s[..s.len() - 1], 1u64 << 20),
        Some('G') | Some('g') => (&s[..s.len() - 1], 1u64 << 30),
        _ => (s, 1),
    };
    num.parse::<u64>()
        .map(|n| n * mult)
        .map_err(|e| format!("bad byte count '{s}': {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        Options::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.max_procs, 8192);
        assert_eq!(o.bytes_per_proc, 256 << 20);
    }

    #[test]
    fn quick_mode() {
        let o = parse(&["--quick"]).unwrap();
        assert_eq!(o.max_procs, 512);
        assert_eq!(o.bytes_per_proc, 16 << 20);
    }

    #[test]
    fn explicit_flags() {
        let o = parse(&[
            "--max-procs",
            "1024",
            "--bytes-per-proc",
            "8M",
            "--compute-gap",
            "5",
        ])
        .unwrap();
        assert_eq!(o.max_procs, 1024);
        assert_eq!(o.bytes_per_proc, 8 << 20);
        assert_eq!(o.compute_gap, 5.0);
    }

    #[test]
    fn byte_suffixes() {
        assert_eq!(parse_bytes("7").unwrap(), 7);
        assert_eq!(parse_bytes("2K").unwrap(), 2048);
        assert_eq!(parse_bytes("3m").unwrap(), 3 << 20);
        assert_eq!(parse_bytes("1G").unwrap(), 1 << 30);
        assert!(parse_bytes("x").is_err());
    }

    #[test]
    fn csv_dir_flag() {
        let o = parse(&["--csv-dir", "/tmp/figs"]).unwrap();
        assert_eq!(
            o.csv_dir.as_deref(),
            Some(std::path::Path::new("/tmp/figs"))
        );
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(parse(&["--bogus"]).is_err());
    }

    #[test]
    fn threads_flag() {
        assert_eq!(parse(&[]).unwrap().threads, 1);
        assert_eq!(parse(&["--threads", "8"]).unwrap().threads, 8);
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--threads"]).is_err());
    }

    #[test]
    fn vpic_scale_derivation() {
        let o = parse(&["--bytes-per-proc", "256M"]).unwrap();
        assert_eq!(o.vpic_scale().particles_per_proc, 8 << 20);
    }
}
