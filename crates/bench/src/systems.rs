//! Experiment runners: execute the functional systems at paper scale and
//! pair the receipts with the timing plane.

use crate::timing::{Platform, TierBytes};
use std::sync::{Arc, Mutex, OnceLock};
use univistor_baselines::{DataElevator, LustreDirect};
use univistor_core::config::{Features, UniviStorConfig};
use univistor_core::driver::UniviStorDriver;
use univistor_core::flush::FlushReceipt;
use univistor_core::metrics::JobMetrics;
use univistor_core::server::UniviStorJob;
use univistor_core::MetricsSnapshot;
use univistor_sim::SimResult;
use univistor_workloads::{BdCatsIo, MicroIo, VpicIo, VpicLayout};

/// Which storage layers UniviStor is allowed to cache on — the paper's
/// "UniviStor/DRAM", "UniviStor/BB", "UniviStor/(DRAM+BB+Disk)" and
/// "UniviStor/(Disk)" configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UvMode {
    /// DRAM first (spilling if needed) — the default.
    Dram,
    /// Burst buffer only (DRAM disabled).
    Bb,
    /// PFS logs only (both caches disabled).
    Disk,
}

impl UvMode {
    /// Apply the mode to a configuration.
    pub fn apply(self, cfg: &mut UniviStorConfig) {
        match self {
            UvMode::Dram => {}
            UvMode::Bb => cfg.enable_dram = false,
            UvMode::Disk => {
                cfg.enable_dram = false;
                cfg.enable_bb = false;
            }
        }
    }

    /// Display label matching the paper's series names.
    pub fn label(self) -> &'static str {
        match self {
            UvMode::Dram => "UniviStor/DRAM",
            UvMode::Bb => "UniviStor/BB",
            UvMode::Disk => "UniviStor/Disk",
        }
    }

    /// Fraction of an in-flight flush that stalls the application's next
    /// cache-write phase: the share of the flush's resource footprint that
    /// the new writes also need. DRAM/BB caches are disjoint from the
    /// flush's Lustre-write side (SSD read and write channels are
    /// independent), but the Disk configuration writes new data into the
    /// same OST pool the flush is draining into.
    pub fn flush_stall_factor(self) -> f64 {
        match self {
            UvMode::Dram | UvMode::Bb => 0.0,
            UvMode::Disk => 0.4,
        }
    }
}

/// Data Elevator's flush contends harder with its own next step: the
/// flush re-reads the shared BB file while the application writes the
/// next shared file through the same DataWarp metadata and lock state,
/// and DE's flush queue shares the server processes.
pub const DE_FLUSH_STALL: f64 = 0.3;

/// Every UniviStor job built through [`uv_job`] leaves its telemetry
/// panel here, so a harness binary can dump the combined counters of a
/// whole run as `metrics.json`. Panels are `Arc`-held and monotonic:
/// they outlive their jobs and are each absorbed exactly once per
/// [`accumulated_metrics`] call.
fn metrics_ledger() -> &'static Mutex<Vec<Arc<JobMetrics>>> {
    static LEDGER: OnceLock<Mutex<Vec<Arc<JobMetrics>>>> = OnceLock::new();
    LEDGER.get_or_init(|| Mutex::new(Vec::new()))
}

/// Combined telemetry of every UniviStor job this process has built —
/// per-tier byte counters, read-path classification, flush histograms —
/// merged across jobs with [`MetricsSnapshot::absorb`].
pub fn accumulated_metrics() -> MetricsSnapshot {
    let ledger = metrics_ledger().lock().expect("metrics ledger poisoned");
    let mut total = MetricsSnapshot::default();
    for panel in ledger.iter() {
        total.absorb(&panel.snapshot());
    }
    total
}

/// Build the paper-configured UniviStor job.
pub fn uv_job(platform: &Platform, mode: UvMode, features: Features) -> Arc<UniviStorJob> {
    let mut cfg = UniviStorConfig::paper(platform.procs());
    cfg.geometry = platform.geometry;
    cfg.cal = platform.cal.clone();
    cfg.features = features;
    mode.apply(&mut cfg);
    let job = Arc::new(UniviStorJob::new(cfg));
    metrics_ledger()
        .lock()
        .expect("metrics ledger poisoned")
        .push(Arc::clone(job.metrics_handle()));
    job
}

/// One measured write phase.
#[derive(Debug, Clone)]
pub struct WriteOutcome {
    /// Cache-write time (client-visible).
    pub write_time: f64,
    /// Server-side flush time (asynchronous).
    pub flush_time: f64,
    /// The flush receipt, when one occurred.
    pub receipt: Option<FlushReceipt>,
    /// Per-process tier split of this phase.
    pub tier_bytes: TierBytes,
}

/// Run the micro write phase on UniviStor and time it.
pub fn uv_micro_write(
    platform: &Platform,
    driver: &UniviStorDriver,
    micro: &MicroIo,
    path: &str,
) -> SimResult<WriteOutcome> {
    micro.write_phase(driver, path)?;
    let stats = driver.job().take_stats();
    let features = driver.job().cfg().features;
    let tier_bytes = TierBytes::from_totals(&stats.bytes_by_tier, micro.procs);
    let segments = stats.segments / micro.procs.max(1) as u64;
    let write_time = platform.univistor_write_time(&features, tier_bytes, segments);
    let receipt = stats.flush_receipts.into_iter().next_back();
    let flush_time = receipt
        .as_ref()
        .map(|r| platform.univistor_flush_time(&features, r))
        .unwrap_or(0.0);
    Ok(WriteOutcome {
        write_time,
        flush_time,
        receipt,
        tier_bytes,
    })
}

/// Run the micro read phase on UniviStor and time it.
pub fn uv_micro_read(
    platform: &Platform,
    driver: &UniviStorDriver,
    micro: &MicroIo,
    path: &str,
) -> SimResult<f64> {
    micro.read_phase(driver, path, false)?;
    let stats = driver.job().take_stats();
    let features = driver.job().cfg().features;
    Ok(platform.univistor_read_time(&features, &stats.read_trace))
}

/// Run the micro write on Data Elevator; returns (write_time, flush_time).
pub fn de_micro_write(
    platform: &Platform,
    de: &DataElevator,
    micro: &MicroIo,
    path: &str,
) -> SimResult<(f64, f64)> {
    micro.write_phase(de, path)?;
    let write_time = platform.de_write_time(micro.bytes_per_proc);
    let flush_time = de
        .stats()
        .flush_receipts
        .last()
        .map(|r| platform.de_flush_time(r))
        .unwrap_or(0.0);
    Ok((write_time, flush_time))
}

/// Run the micro write on direct Lustre; returns the write time.
pub fn lustre_micro_write(
    platform: &Platform,
    lustre: &LustreDirect,
    micro: &MicroIo,
    path: &str,
) -> SimResult<f64> {
    micro.write_phase(lustre, path)?;
    Ok(platform.lustre_write_time(micro.bytes_per_proc))
}

/// Result of a multi-step VPIC run.
#[derive(Debug, Clone, Default)]
pub struct VpicOutcome {
    /// Per-step cache-write times.
    pub write_times: Vec<f64>,
    /// Per-step flush times.
    pub flush_times: Vec<f64>,
    /// Time the application stalled waiting for a previous flush to drain
    /// before its next checkpoint could start.
    pub stall_time: f64,
}

impl VpicOutcome {
    /// The paper's "total I/O time": all cache writes (+ stalls) plus the
    /// last step's flush.
    pub fn total_io(&self) -> f64 {
        self.write_times.iter().sum::<f64>()
            + self.stall_time
            + self.flush_times.last().copied().unwrap_or(0.0)
    }

    /// Sum of write times only (the non-flush component plotted in
    /// Figs. 7/8).
    pub fn write_total(&self) -> f64 {
        self.write_times.iter().sum::<f64>() + self.stall_time
    }

    /// The flush component plotted in Figs. 7/8.
    pub fn last_flush(&self) -> f64 {
        self.flush_times.last().copied().unwrap_or(0.0)
    }
}

/// Run a multi-step VPIC checkpoint sequence on UniviStor with a
/// `compute_gap`-second compute phase between checkpoints; flushes overlap
/// the gaps, and a flush slower than the gap stalls the next step.
pub fn uv_vpic_run(
    platform: &Platform,
    driver: &UniviStorDriver,
    vpic: &VpicIo,
    compute_gap: f64,
    flush_stall_factor: f64,
) -> SimResult<VpicOutcome> {
    let features = driver.job().cfg().features;
    let mut out = VpicOutcome::default();
    let mut flush_busy_until = 0.0f64;
    let mut clock = 0.0f64;
    for step in 0..vpic.steps {
        // The contended share of a previous in-flight flush must drain
        // before the next checkpoint proceeds at full speed.
        if flush_busy_until > clock {
            out.stall_time += flush_busy_until - clock;
            clock = flush_busy_until;
        }
        vpic.write_step(driver, step)?;
        let stats = driver.job().take_stats();
        let tier_bytes = TierBytes::from_totals(&stats.bytes_by_tier, vpic.layout.procs);
        let segments = stats.segments / vpic.layout.procs.max(1) as u64;
        let w = platform.univistor_write_time(&features, tier_bytes, segments);
        out.write_times.push(w);
        clock += w;
        let f = stats
            .flush_receipts
            .last()
            .map(|r| platform.univistor_flush_time(&features, r))
            .unwrap_or(0.0);
        out.flush_times.push(f);
        flush_busy_until = clock + f * flush_stall_factor;
        if step + 1 < vpic.steps {
            clock += compute_gap;
        }
    }
    Ok(out)
}

/// The same VPIC sequence on Data Elevator.
pub fn de_vpic_run(
    platform: &Platform,
    de: &DataElevator,
    vpic: &VpicIo,
    compute_gap: f64,
) -> SimResult<VpicOutcome> {
    let mut out = VpicOutcome::default();
    let mut flush_busy_until = 0.0f64;
    let mut clock = 0.0f64;
    let mut seen_flushes = 0usize;
    for step in 0..vpic.steps {
        if flush_busy_until > clock {
            out.stall_time += flush_busy_until - clock;
            clock = flush_busy_until;
        }
        vpic.write_step(de, step)?;
        let w = platform.de_write_time(vpic.layout.bytes_per_proc());
        out.write_times.push(w);
        clock += w;
        let stats = de.stats();
        let f = stats
            .flush_receipts
            .get(seen_flushes)
            .map(|r| platform.de_flush_time(r))
            .unwrap_or(0.0);
        seen_flushes = stats.flush_receipts.len();
        out.flush_times.push(f);
        flush_busy_until = clock + f * DE_FLUSH_STALL;
        if step + 1 < vpic.steps {
            clock += compute_gap;
        }
    }
    Ok(out)
}

/// The same VPIC sequence writing straight to Lustre (no flush component).
pub fn lustre_vpic_run(
    platform: &Platform,
    lustre: &LustreDirect,
    vpic: &VpicIo,
) -> SimResult<VpicOutcome> {
    let mut out = VpicOutcome::default();
    for step in 0..vpic.steps {
        vpic.write_step(lustre, step)?;
        out.write_times
            .push(platform.lustre_write_time(vpic.layout.bytes_per_proc()));
        out.flush_times.push(0.0);
    }
    Ok(out)
}

/// Run BD-CATS reads of `steps` step files through UniviStor, returning
/// per-step read times.
pub fn uv_bdcats_run(
    platform: &Platform,
    driver: &UniviStorDriver,
    bdcats: &BdCatsIo,
    steps: usize,
) -> SimResult<Vec<f64>> {
    let features = driver.job().cfg().features;
    let mut times = Vec::with_capacity(steps);
    for step in 0..steps {
        bdcats.read_step(driver, step, false)?;
        let stats = driver.job().take_stats();
        times.push(platform.univistor_read_time(&features, &stats.read_trace));
    }
    Ok(times)
}

/// Per-step read times for DE / Lustre (analytic; the functional read has
/// no UniviStor-specific trace to mine).
pub fn baseline_bdcats_times(
    platform: &Platform,
    layout: &VpicLayout,
    steps: usize,
    on_lustre: bool,
) -> Vec<f64> {
    let per_step = layout.dataset_bytes() * 8;
    (0..steps)
        .map(|_| {
            if on_lustre {
                platform.lustre_read_time(per_step)
            } else {
                platform.de_read_time(per_step)
            }
        })
        .collect()
}

/// Combine per-step write and read times into workflow elapsed times:
/// `overlap` pipelines read of step *i* with write of step *i+1*
/// (coordinated by the workflow state file); `!overlap` serializes the
/// full producer before the consumer.
pub fn workflow_elapsed(writes: &[f64], reads: &[f64], overlap: bool) -> f64 {
    assert_eq!(writes.len(), reads.len());
    if writes.is_empty() {
        return 0.0;
    }
    if !overlap {
        return writes.iter().sum::<f64>() + reads.iter().sum::<f64>();
    }
    // Pipeline: stage i overlaps write[i] with read[i-1]; reads are served
    // by different cores / the BB read channel, so a stage costs the
    // longer of the two.
    let mut elapsed = writes[0];
    for i in 1..writes.len() {
        elapsed += writes[i].max(reads[i - 1]);
    }
    elapsed + reads[reads.len() - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use univistor_workloads::MicroIo;

    /// Small-but-real end-to-end run: 64 procs, scaled-down payloads.
    fn platform() -> Platform {
        Platform::paper(64)
    }

    #[test]
    fn uv_micro_write_read_roundtrip_and_times() {
        let p = platform();
        let job = uv_job(&p, UvMode::Dram, Features::default());
        let driver = UniviStorDriver::new(job, 0);
        let micro = MicroIo::scaled(64, 1 << 20);
        let w = uv_micro_write(&p, &driver, &micro, "/m").unwrap();
        assert!(w.write_time > 0.0);
        assert!(w.flush_time > 0.0, "close must trigger a flush");
        assert_eq!(w.tier_bytes.dram, 1 << 20, "all data fits DRAM");
        assert_eq!(w.tier_bytes.bb + w.tier_bytes.pfs, 0);
        let r = uv_micro_read(&p, &driver, &micro, "/m").unwrap();
        assert!(r > 0.0);
        // Flushed data verifies on Lustre.
        assert_eq!(
            driver.job().lustre_file_size("/m").unwrap(),
            micro.file_size()
        );
    }

    #[test]
    fn bb_mode_places_nothing_in_dram() {
        let p = platform();
        let job = uv_job(&p, UvMode::Bb, Features::default());
        let driver = UniviStorDriver::new(job, 0);
        let micro = MicroIo::scaled(64, 1 << 20);
        let w = uv_micro_write(&p, &driver, &micro, "/m").unwrap();
        assert_eq!(w.tier_bytes.dram, 0);
        assert_eq!(w.tier_bytes.bb, 1 << 20);
    }

    #[test]
    fn dram_mode_is_fastest_bb_next_disk_last() {
        let p = platform();
        let micro = MicroIo::scaled(64, 1 << 20);
        let mut times = Vec::new();
        for mode in [UvMode::Dram, UvMode::Bb, UvMode::Disk] {
            let driver = UniviStorDriver::new(uv_job(&p, mode, Features::default()), 0);
            let w = uv_micro_write(&p, &driver, &micro, "/m").unwrap();
            times.push(w.write_time);
        }
        assert!(times[0] < times[1], "DRAM {} !< BB {}", times[0], times[1]);
        assert!(times[1] < times[2], "BB {} !< Disk {}", times[1], times[2]);
    }

    #[test]
    fn de_and_lustre_run_and_are_slower_than_uv_dram() {
        let p = platform();
        let micro = MicroIo::scaled(64, 1 << 20);
        let uv = UniviStorDriver::new(uv_job(&p, UvMode::Dram, Features::default()), 0);
        let uv_t = uv_micro_write(&p, &uv, &micro, "/m").unwrap().write_time;
        let de = DataElevator::new(p.geometry, p.cal.clone());
        let (de_t, de_f) = de_micro_write(&p, &de, &micro, "/m").unwrap();
        assert!(de_f > 0.0);
        let lu = LustreDirect::new(&p.cal);
        let lu_t = lustre_micro_write(&p, &lu, &micro, "/m").unwrap();
        assert!(uv_t < de_t, "UV {uv_t} !< DE {de_t}");
        assert!(de_t < lu_t, "DE {de_t} !< Lustre {lu_t}");
    }

    #[test]
    fn vpic_run_accumulates_steps_and_flushes() {
        let p = platform();
        let job = uv_job(&p, UvMode::Dram, Features::default());
        let driver = UniviStorDriver::new(job, 0);
        let vpic = VpicIo::scaled(64, 3, 1024);
        let out = uv_vpic_run(&p, &driver, &vpic, 60.0, 0.0).unwrap();
        assert_eq!(out.write_times.len(), 3);
        assert_eq!(out.flush_times.len(), 3);
        assert!(out.total_io() > out.write_total());
        // With a 60 s gap and tiny data, flushes hide completely.
        assert_eq!(out.stall_time, 0.0);
    }

    #[test]
    fn accumulated_metrics_cover_ledgered_jobs() {
        let p = platform();
        let before = accumulated_metrics().counter_total("univistor_segments_total");
        let driver = UniviStorDriver::new(uv_job(&p, UvMode::Dram, Features::default()), 0);
        let micro = MicroIo::scaled(64, 1 << 20);
        uv_micro_write(&p, &driver, &micro, "/acc").unwrap();
        // The job's panel feeds the process-wide accumulator even though
        // take_stats() already reset the per-phase JobStats view.
        let after = accumulated_metrics();
        let placed = driver
            .job()
            .metrics()
            .counter_total("univistor_segments_total");
        assert!(placed > 0);
        assert!(
            after.counter_total("univistor_segments_total") >= before + placed,
            "ledger lost this job's segments"
        );
        // The dump round-trips: this is exactly what metrics.json holds.
        let back = univistor_core::MetricsSnapshot::from_json(&after.to_json()).unwrap();
        assert_eq!(back, after);
    }

    #[test]
    fn workflow_overlap_is_never_slower() {
        let writes = vec![2.0, 2.0, 2.0];
        let reads = vec![1.5, 1.5, 1.5];
        let over = workflow_elapsed(&writes, &reads, true);
        let non = workflow_elapsed(&writes, &reads, false);
        assert!(over < non);
        // Perfect pipeline bound: first write + max-stages + last read.
        assert!((over - (2.0 + 2.0 + 2.0 + 1.5)).abs() < 1e-9);
        assert!((non - 10.5).abs() < 1e-9);
    }

    #[test]
    fn vpic_bdcats_full_cycle_through_univistor() {
        let p = platform();
        let job = uv_job(&p, UvMode::Dram, Features::all());
        let driver = UniviStorDriver::new(job, 0);
        let vpic = VpicIo::scaled(64, 2, 512);
        let out = uv_vpic_run(&p, &driver, &vpic, 0.0, 0.0).unwrap();
        let bdcats = BdCatsIo::new(vpic.layout, 32);
        let reader = UniviStorDriver::new(Arc::clone(driver.job_arc()), 1);
        let reads = uv_bdcats_run(&p, &reader, &bdcats, 2).unwrap();
        assert_eq!(reads.len(), 2);
        assert!(reads.iter().all(|&t| t > 0.0));
        let elapsed = workflow_elapsed(&out.write_times, &reads, true);
        assert!(elapsed > 0.0);
    }
}
