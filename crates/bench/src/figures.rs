//! One runner per paper figure. Every runner executes the functional
//! systems at each scale and returns the plotted series.

use crate::report::{rate_gbs, Figure, Series};
use crate::systems::{
    baseline_bdcats_times, de_micro_write, de_vpic_run, lustre_micro_write, lustre_vpic_run,
    uv_bdcats_run, uv_job, uv_micro_read, uv_micro_write, uv_vpic_run, workflow_elapsed, UvMode,
    VpicOutcome,
};
use crate::timing::Platform;
use std::sync::Arc;
use univistor_baselines::{DataElevator, LustreDirect};
use univistor_core::config::{Features, JobGeometry};
use univistor_core::driver::UniviStorDriver;
use univistor_sim::SimResult;
use univistor_workloads::{BdCatsIo, MicroIo, VpicIo};

/// The paper's x-axis: 64 → 8192 processes in 2× steps, truncated at
/// `max_procs` (for quick runs).
pub fn paper_scales(max_procs: usize) -> Vec<usize> {
    let mut scales = Vec::new();
    let mut p = 64usize;
    while p <= max_procs {
        scales.push(p);
        p *= 2;
    }
    scales
}

/// Per-process bytes for micro/VPIC runs. The paper uses 256 MB; the
/// functional data plane stays virtual, but the bookkeeping is real, so
/// quick runs may scale this down (shapes are unchanged — times scale
/// linearly in bytes).
pub const PAPER_BYTES_PER_PROC: u64 = 256 << 20;

/// Fig. 5 feature matrix: (label, IA, COC-or-ADPT).
fn fig5_configs() -> [(&'static str, bool, bool); 4] {
    [
        ("IA+X", true, true),
        ("X only (no IA)", false, true),
        ("IA only (no X)", true, false),
        ("Neither", false, false),
    ]
}

fn features_for(ia: bool, coc: bool, adpt: bool) -> Features {
    Features {
        interference_aware: ia,
        collective_open_close: coc,
        adaptive_striping: adpt,
        ..Features::default()
    }
}

/// Fig. 5a/5b — micro write/read to distributed DRAM with IA and COC
/// toggled. Returns (write figure, read figure).
pub fn fig5_write_read(scales: &[usize], bytes_per_proc: u64) -> SimResult<(Figure, Figure)> {
    let mut write_series: Vec<Series> = Vec::new();
    let mut read_series: Vec<Series> = Vec::new();
    for (label, ia, coc) in fig5_configs() {
        let label = label.replace('X', "COC");
        let mut writes = Vec::new();
        let mut reads = Vec::new();
        for &procs in scales {
            let platform = Platform::paper(procs);
            let features = features_for(ia, coc, true);
            let driver = UniviStorDriver::new(uv_job(&platform, UvMode::Dram, features), 0);
            let micro = MicroIo::scaled(procs, bytes_per_proc);
            let w = uv_micro_write(&platform, &driver, &micro, "/micro")?;
            let r = uv_micro_read(&platform, &driver, &micro, "/micro")?;
            writes.push(rate_gbs(micro.file_size(), w.write_time));
            reads.push(rate_gbs(micro.file_size(), r));
        }
        write_series.push(Series::new(label.clone(), writes));
        read_series.push(Series::new(label, reads));
    }
    Ok((
        Figure {
            id: "Fig. 5a".into(),
            title: "Write to distributed DRAM with IA / COC".into(),
            x_label: "procs".into(),
            y_label: "I/O rate (GB/s)".into(),
            x: scales.iter().map(|&p| p as u64).collect(),
            series: write_series,
        },
        Figure {
            id: "Fig. 5b".into(),
            title: "Read from distributed DRAM with IA / COC".into(),
            x_label: "procs".into(),
            y_label: "I/O rate (GB/s)".into(),
            x: scales.iter().map(|&p| p as u64).collect(),
            series: read_series,
        },
    ))
}

/// Fig. 5c — flush from DRAM to Lustre with IA and ADPT toggled.
pub fn fig5_flush(scales: &[usize], bytes_per_proc: u64) -> SimResult<Figure> {
    let mut series: Vec<Series> = Vec::new();
    for (label, ia, adpt) in fig5_configs() {
        let label = label.replace('X', "ADPT");
        let mut rates = Vec::new();
        for &procs in scales {
            let platform = Platform::paper(procs);
            let features = features_for(ia, true, adpt);
            let driver = UniviStorDriver::new(uv_job(&platform, UvMode::Dram, features), 0);
            let micro = MicroIo::scaled(procs, bytes_per_proc);
            let w = uv_micro_write(&platform, &driver, &micro, "/micro")?;
            rates.push(rate_gbs(micro.file_size(), w.flush_time));
        }
        series.push(Series::new(label, rates));
    }
    Ok(Figure {
        id: "Fig. 5c".into(),
        title: "Server-side flush to Lustre with IA / ADPT".into(),
        x_label: "procs".into(),
        y_label: "Flush rate (GB/s)".into(),
        x: scales.iter().map(|&p| p as u64).collect(),
        series,
    })
}

/// Fig. 6a/6b/6c — UniviStor vs. Data Elevator vs. Lustre on the micro
/// benchmark. Returns (write, read, flush) figures.
pub fn fig6(scales: &[usize], bytes_per_proc: u64) -> SimResult<(Figure, Figure, Figure)> {
    let mut w_dram = Vec::new();
    let mut w_bb = Vec::new();
    let mut w_de = Vec::new();
    let mut w_lustre = Vec::new();
    let mut r_dram = Vec::new();
    let mut r_bb = Vec::new();
    let mut r_de = Vec::new();
    let mut r_lustre = Vec::new();
    let mut f_dram = Vec::new();
    let mut f_bb = Vec::new();
    let mut f_de = Vec::new();

    for &procs in scales {
        let platform = Platform::paper(procs);
        let micro = MicroIo::scaled(procs, bytes_per_proc);
        let total = micro.file_size();

        for (mode, w_out, r_out, f_out) in [
            (UvMode::Dram, &mut w_dram, &mut r_dram, &mut f_dram),
            (UvMode::Bb, &mut w_bb, &mut r_bb, &mut f_bb),
        ] {
            let driver = UniviStorDriver::new(uv_job(&platform, mode, Features::default()), 0);
            let w = uv_micro_write(&platform, &driver, &micro, "/micro")?;
            let r = uv_micro_read(&platform, &driver, &micro, "/micro")?;
            w_out.push(rate_gbs(total, w.write_time));
            r_out.push(rate_gbs(total, r));
            f_out.push(rate_gbs(total, w.flush_time));
        }

        let de = DataElevator::new(platform.geometry, platform.cal.clone());
        let (de_w, de_f) = de_micro_write(&platform, &de, &micro, "/micro")?;
        w_de.push(rate_gbs(total, de_w));
        r_de.push(rate_gbs(total, platform.de_read_time(total)));
        f_de.push(rate_gbs(total, de_f));

        let lustre = LustreDirect::new(&platform.cal);
        let lu_w = lustre_micro_write(&platform, &lustre, &micro, "/micro")?;
        w_lustre.push(rate_gbs(total, lu_w));
        r_lustre.push(rate_gbs(total, platform.lustre_read_time(total)));
    }

    let x: Vec<u64> = scales.iter().map(|&p| p as u64).collect();
    Ok((
        Figure {
            id: "Fig. 6a".into(),
            title: "Micro write: UniviStor vs. Data Elevator vs. Lustre".into(),
            x_label: "procs".into(),
            y_label: "I/O rate (GB/s)".into(),
            x: x.clone(),
            series: vec![
                Series::new("UniviStor/DRAM", w_dram),
                Series::new("UniviStor/BB", w_bb),
                Series::new("Data Elevator", w_de),
                Series::new("Lustre", w_lustre),
            ],
        },
        Figure {
            id: "Fig. 6b".into(),
            title: "Micro read".into(),
            x_label: "procs".into(),
            y_label: "I/O rate (GB/s)".into(),
            x: x.clone(),
            series: vec![
                Series::new("UniviStor/DRAM", r_dram),
                Series::new("UniviStor/BB", r_bb),
                Series::new("Data Elevator", r_de),
                Series::new("Lustre", r_lustre),
            ],
        },
        Figure {
            id: "Fig. 6c".into(),
            title: "Flush to Lustre".into(),
            x_label: "procs".into(),
            y_label: "Flush rate (GB/s)".into(),
            x,
            series: vec![
                Series::new("UniviStor/DRAM", f_dram),
                Series::new("UniviStor/BB", f_bb),
                Series::new("Data Elevator", f_de),
            ],
        },
    ))
}

/// VPIC step count plus payload scale used by figs. 7–10. At full paper
/// scale each proc writes 256 MB/step; quick runs shrink the particle
/// count.
#[derive(Debug, Clone, Copy)]
pub struct VpicScale {
    /// Particles per process (paper: 8 Mi → 256 MB/step/proc).
    pub particles_per_proc: u64,
    /// Compute seconds between checkpoints (paper: 60 s in §III-C).
    pub compute_gap: f64,
}

impl Default for VpicScale {
    fn default() -> Self {
        VpicScale {
            particles_per_proc: 8 << 20,
            compute_gap: 60.0,
        }
    }
}

fn uv_vpic(
    platform: &Platform,
    mode: UvMode,
    steps: usize,
    scale: VpicScale,
) -> SimResult<VpicOutcome> {
    let driver = UniviStorDriver::new(uv_job(platform, mode, Features::default()), 0);
    let vpic = VpicIo::scaled(platform.procs(), steps, scale.particles_per_proc);
    uv_vpic_run(
        platform,
        &driver,
        &vpic,
        scale.compute_gap,
        mode.flush_stall_factor(),
    )
}

/// Fig. 7 — total I/O time of 5-timestep VPIC-IO across systems, with the
/// write and flush components reported separately.
pub fn fig7(scales: &[usize], scale: VpicScale) -> SimResult<Figure> {
    fig_vpic(scales, 5, scale, "Fig. 7", true)
}

/// Fig. 8 — 10-timestep VPIC-IO on UniviStor tier configurations
/// (DRAM+BB+Disk vs. BB+Disk vs. Disk).
pub fn fig8(scales: &[usize], scale: VpicScale) -> SimResult<Figure> {
    let mut series: Vec<Series> = vec![
        Series::new("UniviStor/(DRAM+BB+Disk)", Vec::new()),
        Series::new("UniviStor/(BB+Disk)", Vec::new()),
        Series::new("UniviStor/(Disk)", Vec::new()),
    ];
    for &procs in scales {
        let platform = Platform::paper(procs);
        for (i, mode) in [UvMode::Dram, UvMode::Bb, UvMode::Disk]
            .into_iter()
            .enumerate()
        {
            let out = uv_vpic(&platform, mode, 10, scale)?;
            series[i].values.push(out.total_io());
        }
    }
    Ok(Figure {
        id: "Fig. 8".into(),
        title: "10-timestep VPIC-IO across UniviStor storage layers".into(),
        x_label: "procs".into(),
        y_label: "Total I/O time (s)".into(),
        x: scales.iter().map(|&p| p as u64).collect(),
        series,
    })
}

fn fig_vpic(
    scales: &[usize],
    steps: usize,
    scale: VpicScale,
    id: &str,
    include_baselines: bool,
) -> SimResult<Figure> {
    let mut s_dram = Series::new("UniviStor/DRAM", Vec::new());
    let mut s_dram_fl = Series::new("UniviStor/DRAM Flush", Vec::new());
    let mut s_bb = Series::new("UniviStor/BB", Vec::new());
    let mut s_bb_fl = Series::new("UniviStor/BB Flush", Vec::new());
    let mut s_de = Series::new("DE", Vec::new());
    let mut s_de_fl = Series::new("DE Flush", Vec::new());
    let mut s_lustre = Series::new("Lustre", Vec::new());

    for &procs in scales {
        let platform = Platform::paper(procs);
        let out = uv_vpic(&platform, UvMode::Dram, steps, scale)?;
        s_dram.values.push(out.write_total());
        s_dram_fl.values.push(out.last_flush());
        let out = uv_vpic(&platform, UvMode::Bb, steps, scale)?;
        s_bb.values.push(out.write_total());
        s_bb_fl.values.push(out.last_flush());

        if include_baselines {
            let de = DataElevator::new(platform.geometry, platform.cal.clone());
            let vpic = VpicIo::scaled(procs, steps, scale.particles_per_proc);
            let out = de_vpic_run(&platform, &de, &vpic, scale.compute_gap)?;
            s_de.values.push(out.write_total());
            s_de_fl.values.push(out.last_flush());

            let lustre = LustreDirect::new(&platform.cal);
            let out = lustre_vpic_run(&platform, &lustre, &vpic)?;
            s_lustre.values.push(out.write_total());
        }
    }

    let mut series = vec![s_dram, s_dram_fl, s_bb, s_bb_fl];
    if include_baselines {
        series.push(s_de);
        series.push(s_de_fl);
        series.push(s_lustre);
    }
    Ok(Figure {
        id: id.into(),
        title: format!("{steps}-timestep VPIC-IO total I/O time (write + last flush)"),
        x_label: "procs".into(),
        y_label: "Time (s)".into(),
        x: scales.iter().map(|&p| p as u64).collect(),
        series,
    })
}

/// One workflow configuration's elapsed time on UniviStor.
fn uv_workflow(
    procs: usize,
    mode: UvMode,
    steps: usize,
    scale: VpicScale,
    overlap: bool,
) -> SimResult<f64> {
    // Half the processes produce, half analyze, on the same nodes.
    let nodes = JobGeometry::paper(procs).nodes;
    let half = JobGeometry {
        nodes,
        procs_per_node: (procs / 2).div_ceil(nodes).max(1),
        servers_per_node: 2,
    };
    let platform = Platform {
        cal: univistor_sim::calibration::Calibration::default(),
        geometry: half,
        seed: 0x5eed_cafe,
    };
    let job = uv_job(&platform, mode, Features::all());
    let writer = UniviStorDriver::new(Arc::clone(&job), 0);
    let vpic = VpicIo::scaled(platform.procs(), steps, scale.particles_per_proc);
    // Workflow runs have no emulated compute between steps.
    let w = uv_vpic_run(&platform, &writer, &vpic, 0.0, mode.flush_stall_factor())?;
    let reader = UniviStorDriver::new(job, 1);
    let bdcats = BdCatsIo::new(vpic.layout, platform.procs());
    let r = uv_bdcats_run(&platform, &reader, &bdcats, steps)?;
    Ok(workflow_elapsed(&w.write_times, &r, overlap) + w.stall_time)
}

/// Figs. 9/10 — the VPIC→BD-CATS workflow.
pub fn fig_workflow(
    scales: &[usize],
    steps: usize,
    scale: VpicScale,
    id: &str,
    tier_study: bool,
) -> SimResult<Figure> {
    let mut series: Vec<Series> = if tier_study {
        vec![
            Series::new("UniviStor/(DRAM+BB)", Vec::new()),
            Series::new("UniviStor/(BB)", Vec::new()),
            Series::new("UniviStor/(Disk)", Vec::new()),
        ]
    } else {
        vec![
            Series::new("UniviStor/DRAM Overlap", Vec::new()),
            Series::new("UniviStor/DRAM Nonoverlap", Vec::new()),
            Series::new("UniviStor/BB Overlap", Vec::new()),
            Series::new("UniviStor/BB Nonoverlap", Vec::new()),
            Series::new("DE", Vec::new()),
            Series::new("Lustre", Vec::new()),
        ]
    };

    for &procs in scales {
        if tier_study {
            for (i, mode) in [UvMode::Dram, UvMode::Bb, UvMode::Disk]
                .into_iter()
                .enumerate()
            {
                series[i]
                    .values
                    .push(uv_workflow(procs, mode, steps, scale, true)?);
            }
        } else {
            series[0]
                .values
                .push(uv_workflow(procs, UvMode::Dram, steps, scale, true)?);
            series[1]
                .values
                .push(uv_workflow(procs, UvMode::Dram, steps, scale, false)?);
            series[2]
                .values
                .push(uv_workflow(procs, UvMode::Bb, steps, scale, true)?);
            series[3]
                .values
                .push(uv_workflow(procs, UvMode::Bb, steps, scale, false)?);

            // DE / Lustre run nonoverlapped (no workflow management).
            let nodes = JobGeometry::paper(procs).nodes;
            let half = JobGeometry {
                nodes,
                procs_per_node: (procs / 2).div_ceil(nodes).max(1),
                servers_per_node: 2,
            };
            let platform = Platform {
                cal: univistor_sim::calibration::Calibration::default(),
                geometry: half,
                seed: 0x5eed_cafe,
            };
            let vpic = VpicIo::scaled(platform.procs(), steps, scale.particles_per_proc);
            let de = DataElevator::new(platform.geometry, platform.cal.clone());
            let de_out = de_vpic_run(&platform, &de, &vpic, 0.0)?;
            // DE is a write-through cache: by the time the analysis job
            // starts, the flushed files' BB copies are being evicted and
            // BD-CATS reads them from Lustre.
            let de_reads = baseline_bdcats_times(&platform, &vpic.layout, steps, true);
            series[4]
                .values
                .push(workflow_elapsed(&de_out.write_times, &de_reads, false) + de_out.stall_time);

            let lustre = LustreDirect::new(&platform.cal);
            let lu_out = lustre_vpic_run(&platform, &lustre, &vpic)?;
            let lu_reads = baseline_bdcats_times(&platform, &vpic.layout, steps, true);
            series[5]
                .values
                .push(workflow_elapsed(&lu_out.write_times, &lu_reads, false));
        }
    }

    Ok(Figure {
        id: id.into(),
        title: format!("VPIC-IO → BD-CATS-IO workflow, {steps} timesteps"),
        x_label: "procs".into(),
        y_label: "Elapsed time (s)".into(),
        x: scales.iter().map(|&p| p as u64).collect(),
        series,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::speedup_stats;

    /// Small scales + small payloads: shapes must already hold.
    const SCALES: [usize; 3] = [64, 128, 256];
    const SMALL: u64 = 4 << 20; // 4 MB per proc

    #[test]
    fn fig5_ia_and_coc_both_help_writes() {
        let (w, r) = fig5_write_read(&SCALES, SMALL).unwrap();
        // Series 0 = both on; it must dominate everywhere.
        for i in 0..SCALES.len() {
            for s in 1..4 {
                assert!(
                    w.series[0].values[i] >= w.series[s].values[i] * 0.999,
                    "write: config {s} beat IA+COC at scale {i}"
                );
                assert!(
                    r.series[0].values[i] >= r.series[s].values[i] * 0.999,
                    "read: config {s} beat IA+COC at scale {i}"
                );
            }
        }
    }

    #[test]
    fn fig5c_adaptive_striping_helps_flush() {
        let f = fig5_flush(&SCALES, SMALL).unwrap();
        let (_, avg, _) = speedup_stats(&f.series[0].values, &f.series[3].values);
        assert!(avg > 1.2, "IA+ADPT vs neither only {avg}×");
    }

    #[test]
    fn fig6_ordering_holds() {
        let (w, r, f) = fig6(&SCALES, SMALL).unwrap();
        for i in 0..SCALES.len() {
            assert!(w.series[0].values[i] > w.series[1].values[i]); // DRAM > BB
            assert!(w.series[1].values[i] > w.series[2].values[i]); // BB > DE
            assert!(w.series[2].values[i] > w.series[3].values[i]); // DE > Lustre
            assert!(r.series[0].values[i] > r.series[2].values[i]); // DRAM > DE
            assert!(f.series[0].values[i] > f.series[2].values[i]); // UV flush > DE flush
        }
        // BB-class reads beat Lustre only once the job is large enough
        // that Lustre's spare aggregate bandwidth is used up (at a
        // handful of nodes the 248-OST pool is idle and fast — reads
        // cross over; see EXPERIMENTS.md). Check at 2048 processes.
        let (_, r, _) = fig6(&[2048], SMALL).unwrap();
        assert!(r.series[1].values[0] > r.series[3].values[0]); // BB > Lustre
        assert!(r.series[2].values[0] > r.series[3].values[0]); // DE > Lustre
    }

    #[test]
    fn fig8_tier_stack_ordering() {
        let scale = VpicScale {
            particles_per_proc: 256, // 8 KB/proc/step
            compute_gap: 0.0,
        };
        let f = fig8(&[64], scale).unwrap();
        let dram_bb = f.series[0].values[0];
        let bb = f.series[1].values[0];
        let disk = f.series[2].values[0];
        assert!(dram_bb < bb, "DRAM+BB {dram_bb} !< BB {bb}");
        assert!(bb < disk, "BB {bb} !< Disk {disk}");
    }

    #[test]
    fn fig9_overlap_beats_nonoverlap_and_de() {
        let scale = VpicScale {
            particles_per_proc: 256,
            compute_gap: 0.0,
        };
        let f = fig_workflow(&[64], 3, scale, "Fig. 9", false).unwrap();
        let over = f.series[0].values[0];
        let non = f.series[1].values[0];
        let de = f.series[4].values[0];
        let lustre = f.series[5].values[0];
        assert!(over < non, "overlap {over} !< nonoverlap {non}");
        assert!(non < de, "UV nonoverlap {non} !< DE {de}");
        assert!(non < lustre, "UV nonoverlap {non} !< Lustre {lustre}");
    }
}
