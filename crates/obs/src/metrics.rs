//! Metric primitives and the registry that owns them.
//!
//! Counters and gauges are single atomics; histograms are a fixed array
//! of atomic bucket counts plus an atomic bit-packed f64 sum. All handles
//! are cheap clones sharing the underlying atomics, so instrumented code
//! holds its handles and never touches a lock per operation.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::snapshot::{FamilyKind, FamilySnapshot, HistogramSnapshot, MetricsSnapshot, Sample};

/// Canonical label set: sorted key→value pairs (BTreeMap keeps snapshots
/// deterministic regardless of registration order).
pub(crate) type Labels = BTreeMap<String, String>;

fn labels_of(pairs: &[(&str, &str)]) -> Labels {
    pairs
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// A counter not attached to any registry (useful in tests).
    pub fn detached() -> Self {
        Self::default()
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// A gauge not attached to any registry (useful in tests).
    pub fn detached() -> Self {
        Self::default()
    }

    /// Set to an absolute value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrement by one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Upper bounds of the finite buckets; an implicit `+Inf` bucket
    /// follows, so `counts.len() == bounds.len() + 1`.
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observations, accumulated as f64 bits via CAS.
    sum_bits: AtomicU64,
}

/// A fixed-bucket histogram of f64 observations (simulated seconds,
/// bytes per flush, queue depths — whatever the family's unit is).
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    pub(crate) fn with_bounds(bounds: &[f64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            inner: Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                counts,
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0f64.to_bits()),
            }),
        }
    }

    /// A histogram not attached to any registry (useful in tests).
    pub fn detached(bounds: &[f64]) -> Self {
        Self::with_bounds(bounds)
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let idx = self
            .inner
            .bounds
            .partition_point(|&b| b < v)
            .min(self.inner.bounds.len());
        self.inner.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.inner.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.inner.sum_bits.load(Ordering::Relaxed))
    }

    fn snap(&self) -> HistogramSnapshot {
        // Per-bucket counts; the final entry is the +Inf bucket.
        let buckets = self
            .inner
            .bounds
            .iter()
            .copied()
            .chain(std::iter::once(f64::INFINITY))
            .zip(self.inner.counts.iter().map(|c| c.load(Ordering::Relaxed)))
            .collect();
        HistogramSnapshot {
            buckets,
            count: self.count(),
            sum: self.sum(),
        }
    }
}

struct FamilyCore<M> {
    name: String,
    help: String,
    children: Mutex<BTreeMap<Labels, M>>,
}

impl<M: Clone> FamilyCore<M> {
    fn new(name: &str, help: &str) -> Self {
        FamilyCore {
            name: name.to_string(),
            help: help.to_string(),
            children: Mutex::new(BTreeMap::new()),
        }
    }

    fn with(&self, pairs: &[(&str, &str)], make: impl FnOnce() -> M) -> M {
        let labels = labels_of(pairs);
        let mut children = self.children.lock().unwrap();
        children.entry(labels).or_insert_with(make).clone()
    }
}

/// A named family of counters, one child per label set.
#[derive(Clone)]
pub struct CounterFamily {
    core: Arc<FamilyCore<Counter>>,
}

impl CounterFamily {
    /// Get (or create) the child with these labels. Cache the returned
    /// handle on hot paths — this takes the family lock.
    pub fn with(&self, labels: &[(&str, &str)]) -> Counter {
        self.core.with(labels, Counter::default)
    }

    fn snap(&self) -> FamilySnapshot {
        let children = self.core.children.lock().unwrap();
        FamilySnapshot {
            name: self.core.name.clone(),
            help: self.core.help.clone(),
            kind: FamilyKind::Counter,
            samples: children
                .iter()
                .map(|(labels, c)| Sample::counter(labels.clone(), c.get()))
                .collect(),
        }
    }
}

/// A named family of gauges, one child per label set.
#[derive(Clone)]
pub struct GaugeFamily {
    core: Arc<FamilyCore<Gauge>>,
}

impl GaugeFamily {
    /// Get (or create) the child with these labels.
    pub fn with(&self, labels: &[(&str, &str)]) -> Gauge {
        self.core.with(labels, Gauge::default)
    }

    fn snap(&self) -> FamilySnapshot {
        let children = self.core.children.lock().unwrap();
        FamilySnapshot {
            name: self.core.name.clone(),
            help: self.core.help.clone(),
            kind: FamilyKind::Gauge,
            samples: children
                .iter()
                .map(|(labels, g)| Sample::gauge(labels.clone(), g.get()))
                .collect(),
        }
    }
}

/// A named family of histograms sharing one bucket layout.
#[derive(Clone)]
pub struct HistogramFamily {
    core: Arc<FamilyCore<Histogram>>,
    bounds: Arc<Vec<f64>>,
}

impl HistogramFamily {
    /// Get (or create) the child with these labels.
    pub fn with(&self, labels: &[(&str, &str)]) -> Histogram {
        let bounds = Arc::clone(&self.bounds);
        self.core
            .with(labels, move || Histogram::with_bounds(&bounds))
    }

    fn snap(&self) -> FamilySnapshot {
        let children = self.core.children.lock().unwrap();
        FamilySnapshot {
            name: self.core.name.clone(),
            help: self.core.help.clone(),
            kind: FamilyKind::Histogram,
            samples: children
                .iter()
                .map(|(labels, h)| Sample::histogram(labels.clone(), h.snap()))
                .collect(),
        }
    }
}

enum AnyFamily {
    Counter(CounterFamily),
    Gauge(GaugeFamily),
    Histogram(HistogramFamily),
}

impl AnyFamily {
    fn snap(&self) -> FamilySnapshot {
        match self {
            AnyFamily::Counter(f) => f.snap(),
            AnyFamily::Gauge(f) => f.snap(),
            AnyFamily::Histogram(f) => f.snap(),
        }
    }
}

/// Owns every registered family; snapshots them all at once.
///
/// Families are registered once (typically at job construction) and the
/// resulting handles cached; re-registering an existing name returns the
/// same family, so independent components can share metrics by name.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, AnyFamily>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.families.lock().expect("registry poisoned").len();
        f.debug_struct("Registry")
            .field("families", &n)
            .finish_non_exhaustive()
    }
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or fetch) a counter family.
    ///
    /// # Panics
    /// If `name` is already registered with a different metric kind.
    pub fn counter_family(&self, name: &str, help: &str) -> CounterFamily {
        let mut families = self.families.lock().unwrap();
        match families.entry(name.to_string()).or_insert_with(|| {
            AnyFamily::Counter(CounterFamily {
                core: Arc::new(FamilyCore::new(name, help)),
            })
        }) {
            AnyFamily::Counter(f) => f.clone(),
            _ => panic!("metric family {name:?} already registered with another kind"),
        }
    }

    /// Register (or fetch) a gauge family.
    ///
    /// # Panics
    /// If `name` is already registered with a different metric kind.
    pub fn gauge_family(&self, name: &str, help: &str) -> GaugeFamily {
        let mut families = self.families.lock().unwrap();
        match families.entry(name.to_string()).or_insert_with(|| {
            AnyFamily::Gauge(GaugeFamily {
                core: Arc::new(FamilyCore::new(name, help)),
            })
        }) {
            AnyFamily::Gauge(f) => f.clone(),
            _ => panic!("metric family {name:?} already registered with another kind"),
        }
    }

    /// Register (or fetch) a histogram family with the given finite
    /// bucket upper bounds (an `+Inf` bucket is appended automatically).
    ///
    /// # Panics
    /// If `name` is already registered with a different metric kind.
    pub fn histogram_family(&self, name: &str, help: &str, bounds: &[f64]) -> HistogramFamily {
        let mut families = self.families.lock().unwrap();
        match families.entry(name.to_string()).or_insert_with(|| {
            AnyFamily::Histogram(HistogramFamily {
                core: Arc::new(FamilyCore::new(name, help)),
                bounds: Arc::new(bounds.to_vec()),
            })
        }) {
            AnyFamily::Histogram(f) => f.clone(),
            _ => panic!("metric family {name:?} already registered with another kind"),
        }
    }

    /// Point-in-time snapshot of every family, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let families = self.families.lock().unwrap();
        MetricsSnapshot {
            families: families.values().map(AnyFamily::snap).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let reg = Registry::new();
        let writes = reg.counter_family("writes", "write ops");
        let c = writes.with(&[("tier", "Dram")]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same labels → same child.
        assert_eq!(writes.with(&[("tier", "Dram")]).get(), 5);
        assert_eq!(writes.with(&[("tier", "Pfs")]).get(), 0);

        let depth = reg.gauge_family("depth", "queue depth");
        let g = depth.with(&[]);
        g.add(3);
        g.dec();
        assert_eq!(g.get(), 2);
    }

    #[test]
    fn histogram_buckets_are_cumulative_free_and_correct() {
        let h = Histogram::detached(&[1.0, 10.0, 100.0]);
        for v in [0.5, 5.0, 5.0, 50.0, 500.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 560.5).abs() < 1e-9);
        let snap = h.snap();
        let counts: Vec<u64> = snap.buckets.iter().map(|&(_, c)| c).collect();
        assert_eq!(counts, vec![1, 2, 1, 1]);
        assert!(snap.buckets[3].0.is_infinite());
    }

    #[test]
    fn boundary_observation_lands_in_its_bucket() {
        let h = Histogram::detached(&[1.0, 2.0]);
        h.observe(1.0); // `<= bound` semantics: bound 1.0 holds it
        let counts: Vec<u64> = h.snap().buckets.iter().map(|&(_, c)| c).collect();
        assert_eq!(counts, vec![1, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "another kind")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter_family("x", "");
        reg.gauge_family("x", "");
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = Registry::new();
        reg.counter_family("b_ops", "").with(&[]).inc();
        reg.histogram_family("a_lat", "", &[1.0])
            .with(&[])
            .observe(0.5);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.families.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a_lat", "b_ops"]);
    }
}
