//! # univistor-obs — lightweight observability for the UniviStor runtime
//!
//! A std-only metrics layer: a [`Registry`] hands out labeled families of
//! monotonic [`Counter`]s, [`Gauge`]s, and fixed-bucket [`Histogram`]s.
//! Handles are `Arc`-backed atomics, so the hot path is a single
//! `fetch_add` — the registry lock is only taken when a labeled child is
//! first created (callers cache the handle) and when snapshotting.
//!
//! [`Registry::snapshot`] produces a point-in-time [`MetricsSnapshot`]
//! that serializes to JSON ([`MetricsSnapshot::to_json`]) and parses back
//! ([`MetricsSnapshot::from_json`]), so bench binaries can drop a
//! `metrics.json` next to each figure's CSV and later runs can diff them.
//!
//! [`ScopedTimer`] is a drop guard that observes an elapsed duration into
//! a histogram; simulated-time observations (the codebase's analytic
//! timing plane) go through [`Histogram::observe`] directly.

mod json;
mod metrics;
mod snapshot;
mod timer;

pub use json::{Json, JsonError};
pub use metrics::{
    Counter, CounterFamily, Gauge, GaugeFamily, Histogram, HistogramFamily, Registry,
};
pub use snapshot::{
    FamilyKind, FamilySnapshot, HistogramSnapshot, MetricsSnapshot, Sample, SampleValue,
};
pub use timer::ScopedTimer;

/// Exponential bucket bounds: `start`, `start*factor`, … (`count` bounds).
/// The implicit final `+Inf` bucket is always present in the histogram.
pub fn exponential_buckets(start: f64, factor: f64, count: usize) -> Vec<f64> {
    assert!(start > 0.0 && factor > 1.0 && count > 0);
    let mut bounds = Vec::with_capacity(count);
    let mut b = start;
    for _ in 0..count {
        bounds.push(b);
        b *= factor;
    }
    bounds
}

/// Linear bucket bounds: `start`, `start+width`, … (`count` bounds).
pub fn linear_buckets(start: f64, width: f64, count: usize) -> Vec<f64> {
    assert!(width > 0.0 && count > 0);
    (0..count).map(|i| start + width * i as f64).collect()
}
