//! Point-in-time snapshots and their JSON wire form.

use std::collections::BTreeMap;
use std::fmt;

use crate::json::{Json, JsonError};
use crate::metrics::Labels;

/// What kind of metric a family holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FamilyKind {
    Counter,
    Gauge,
    Histogram,
}

impl FamilyKind {
    fn as_str(self) -> &'static str {
        match self {
            FamilyKind::Counter => "counter",
            FamilyKind::Gauge => "gauge",
            FamilyKind::Histogram => "histogram",
        }
    }

    fn parse(s: &str) -> Result<Self, JsonError> {
        match s {
            "counter" => Ok(FamilyKind::Counter),
            "gauge" => Ok(FamilyKind::Gauge),
            "histogram" => Ok(FamilyKind::Histogram),
            other => Err(JsonError::new(format!("unknown family kind {other:?}"))),
        }
    }
}

impl fmt::Display for FamilyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Frozen state of one histogram: `(upper_bound, count)` per bucket
/// (last bound is `+Inf`), plus total count and sum.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    pub buckets: Vec<(f64, u64)>,
    pub count: u64,
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Mean observation, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One labeled child's frozen value.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    pub labels: BTreeMap<String, String>,
    pub value: SampleValue,
}

/// The frozen value of a sample, by kind.
#[derive(Clone, Debug, PartialEq)]
pub enum SampleValue {
    Counter(u64),
    Gauge(i64),
    Histogram(HistogramSnapshot),
}

impl Sample {
    pub(crate) fn counter(labels: Labels, v: u64) -> Self {
        Sample {
            labels,
            value: SampleValue::Counter(v),
        }
    }

    pub(crate) fn gauge(labels: Labels, v: i64) -> Self {
        Sample {
            labels,
            value: SampleValue::Gauge(v),
        }
    }

    pub(crate) fn histogram(labels: Labels, v: HistogramSnapshot) -> Self {
        Sample {
            labels,
            value: SampleValue::Histogram(v),
        }
    }
}

/// Frozen state of one family.
#[derive(Clone, Debug, PartialEq)]
pub struct FamilySnapshot {
    pub name: String,
    pub help: String,
    pub kind: FamilyKind,
    pub samples: Vec<Sample>,
}

/// A point-in-time capture of every registered family, sorted by name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub families: Vec<FamilySnapshot>,
}

fn labels_match(labels: &BTreeMap<String, String>, want: &[(&str, &str)]) -> bool {
    labels.len() == want.len()
        && want
            .iter()
            .all(|(k, v)| labels.get(*k).map(String::as_str) == Some(*v))
}

impl MetricsSnapshot {
    /// Look up a family by name.
    pub fn family(&self, name: &str) -> Option<&FamilySnapshot> {
        self.families.iter().find(|f| f.name == name)
    }

    fn sample(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Sample> {
        self.family(name)?
            .samples
            .iter()
            .find(|s| labels_match(&s.labels, labels))
    }

    /// Counter value for the exact label set, or `None` if absent.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match &self.sample(name, labels)?.value {
            SampleValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Sum of all children of a counter family (0 if family is absent).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.family(name)
            .map(|f| {
                f.samples
                    .iter()
                    .filter_map(|s| match &s.value {
                        SampleValue::Counter(v) => Some(*v),
                        _ => None,
                    })
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Gauge value for the exact label set, or `None` if absent.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        match &self.sample(name, labels)?.value {
            SampleValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Histogram state for the exact label set, or `None` if absent.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        match &self.sample(name, labels)?.value {
            SampleValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Fold another snapshot into this one: counters and gauges add,
    /// histograms merge bucket-wise (when bucket layouts match — children
    /// of one family always do; on a layout mismatch the other sample is
    /// kept as-is alongside). Families or samples absent here are
    /// appended. This is how the bench harness aggregates metrics across
    /// the many short-lived jobs one figure runs.
    pub fn absorb(&mut self, other: &MetricsSnapshot) {
        for fam in &other.families {
            let Some(mine) = self
                .families
                .iter_mut()
                .find(|f| f.name == fam.name && f.kind == fam.kind)
            else {
                self.families.push(fam.clone());
                continue;
            };
            for sample in &fam.samples {
                let Some(existing) = mine.samples.iter_mut().find(|s| s.labels == sample.labels)
                else {
                    mine.samples.push(sample.clone());
                    continue;
                };
                match (&mut existing.value, &sample.value) {
                    (SampleValue::Counter(a), SampleValue::Counter(b)) => *a += b,
                    (SampleValue::Gauge(a), SampleValue::Gauge(b)) => *a += b,
                    (SampleValue::Histogram(a), SampleValue::Histogram(b)) => {
                        let same_layout = a.buckets.len() == b.buckets.len()
                            && a.buckets.iter().zip(&b.buckets).all(|(x, y)| {
                                x.0 == y.0 || (x.0.is_infinite() && y.0.is_infinite())
                            });
                        if same_layout {
                            for (x, y) in a.buckets.iter_mut().zip(&b.buckets) {
                                x.1 += y.1;
                            }
                            a.count += b.count;
                            a.sum += b.sum;
                        } else {
                            mine.samples.push(sample.clone());
                        }
                    }
                    // Kind mismatch within a family cannot happen for
                    // registry-produced snapshots; keep ours.
                    _ => {}
                }
            }
        }
    }

    /// Serialize to a stable, human-diffable JSON document.
    pub fn to_json(&self) -> String {
        Json::from(self).render()
    }

    /// Parse a document produced by [`Self::to_json`].
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        let json = Json::parse(text)?;
        Self::from_json_value(&json)
    }

    fn from_json_value(json: &Json) -> Result<Self, JsonError> {
        let families = json
            .get("families")
            .and_then(Json::as_array)
            .ok_or_else(|| JsonError::new("missing \"families\" array"))?;
        let families = families
            .iter()
            .map(family_from_json)
            .collect::<Result<_, _>>()?;
        Ok(MetricsSnapshot { families })
    }
}

fn family_from_json(j: &Json) -> Result<FamilySnapshot, JsonError> {
    let name = j
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| JsonError::new("family missing \"name\""))?
        .to_string();
    let help = j
        .get("help")
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string();
    let kind = FamilyKind::parse(
        j.get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| JsonError::new("family missing \"kind\""))?,
    )?;
    let samples = j
        .get("samples")
        .and_then(Json::as_array)
        .ok_or_else(|| JsonError::new("family missing \"samples\""))?
        .iter()
        .map(|s| sample_from_json(s, kind))
        .collect::<Result<_, _>>()?;
    Ok(FamilySnapshot {
        name,
        help,
        kind,
        samples,
    })
}

fn sample_from_json(j: &Json, kind: FamilyKind) -> Result<Sample, JsonError> {
    let mut labels = BTreeMap::new();
    if let Some(obj) = j.get("labels").and_then(Json::as_object) {
        for (k, v) in obj {
            let v = v
                .as_str()
                .ok_or_else(|| JsonError::new("label values must be strings"))?;
            labels.insert(k.clone(), v.to_string());
        }
    }
    let value = match kind {
        FamilyKind::Counter => SampleValue::Counter(
            j.get("value")
                .and_then(Json::as_u64)
                .ok_or_else(|| JsonError::new("counter sample missing \"value\""))?,
        ),
        FamilyKind::Gauge => SampleValue::Gauge(
            j.get("value")
                .and_then(Json::as_i64)
                .ok_or_else(|| JsonError::new("gauge sample missing \"value\""))?,
        ),
        FamilyKind::Histogram => {
            let count = j
                .get("count")
                .and_then(Json::as_u64)
                .ok_or_else(|| JsonError::new("histogram sample missing \"count\""))?;
            let sum = j
                .get("sum")
                .and_then(Json::as_f64)
                .ok_or_else(|| JsonError::new("histogram sample missing \"sum\""))?;
            let buckets = j
                .get("buckets")
                .and_then(Json::as_array)
                .ok_or_else(|| JsonError::new("histogram sample missing \"buckets\""))?
                .iter()
                .map(|b| {
                    let pair = b
                        .as_array()
                        .filter(|a| a.len() == 2)
                        .ok_or_else(|| JsonError::new("bucket must be [bound, count]"))?;
                    let bound = pair[0]
                        .as_f64()
                        .or_else(|| {
                            // +Inf is not representable in JSON numbers; we
                            // write it as the string "inf".
                            pair[0]
                                .as_str()
                                .filter(|s| *s == "inf")
                                .map(|_| f64::INFINITY)
                        })
                        .ok_or_else(|| JsonError::new("bucket bound must be number or \"inf\""))?;
                    let c = pair[1]
                        .as_u64()
                        .ok_or_else(|| JsonError::new("bucket count must be u64"))?;
                    Ok((bound, c))
                })
                .collect::<Result<_, JsonError>>()?;
            SampleValue::Histogram(HistogramSnapshot {
                buckets,
                count,
                sum,
            })
        }
    };
    Ok(Sample { labels, value })
}

impl From<&MetricsSnapshot> for Json {
    fn from(snap: &MetricsSnapshot) -> Json {
        Json::object([(
            "families",
            Json::array(snap.families.iter().map(|fam| {
                Json::object([
                    ("name", Json::string(&fam.name)),
                    ("help", Json::string(&fam.help)),
                    ("kind", Json::string(fam.kind.as_str())),
                    (
                        "samples",
                        Json::array(fam.samples.iter().map(|s| {
                            let mut fields = vec![(
                                "labels",
                                Json::Object(
                                    s.labels
                                        .iter()
                                        .map(|(k, v)| (k.clone(), Json::string(v)))
                                        .collect(),
                                ),
                            )];
                            match &s.value {
                                SampleValue::Counter(v) => {
                                    fields.push(("value", Json::from(*v)));
                                }
                                SampleValue::Gauge(v) => {
                                    fields.push(("value", Json::from(*v)));
                                }
                                SampleValue::Histogram(h) => {
                                    fields.push(("count", Json::from(h.count)));
                                    fields.push(("sum", Json::from(h.sum)));
                                    fields.push((
                                        "buckets",
                                        Json::array(h.buckets.iter().map(|&(bound, c)| {
                                            let b = if bound.is_infinite() {
                                                Json::string("inf")
                                            } else {
                                                Json::from(bound)
                                            };
                                            Json::Array(vec![b, Json::from(c)])
                                        })),
                                    ));
                                }
                            }
                            Json::object(fields)
                        })),
                    ),
                ])
            })),
        )])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn snap_with(counts: &[(&str, u64)], hist: &[f64]) -> MetricsSnapshot {
        let r = Registry::new();
        let c = r.counter_family("jobs_total", "jobs seen");
        for &(label, n) in counts {
            c.with(&[("kind", label)]).add(n);
        }
        let h = r.histogram_family("latency", "op latency", &[1.0, 10.0]);
        for &v in hist {
            h.with(&[]).observe(v);
        }
        r.snapshot()
    }

    #[test]
    fn absorb_adds_counters_and_merges_histograms() {
        let mut a = snap_with(&[("read", 3), ("write", 1)], &[0.5, 5.0]);
        let b = snap_with(&[("read", 2), ("flush", 7)], &[20.0]);
        a.absorb(&b);
        assert_eq!(a.counter("jobs_total", &[("kind", "read")]), Some(5));
        assert_eq!(a.counter("jobs_total", &[("kind", "write")]), Some(1));
        assert_eq!(a.counter("jobs_total", &[("kind", "flush")]), Some(7));
        let h = a.histogram("latency", &[]).expect("merged histogram");
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 25.5);
        // Bucket-wise (non-cumulative): 0.5 → ≤1, 5.0 → ≤10, 20.0 → +Inf.
        assert_eq!(
            h.buckets.iter().map(|&(_, c)| c).collect::<Vec<_>>(),
            vec![1, 1, 1]
        );
    }

    #[test]
    fn absorb_into_empty_clones_everything() {
        let b = snap_with(&[("read", 4)], &[2.0]);
        let mut a = MetricsSnapshot::default();
        a.absorb(&b);
        assert_eq!(a, b);
    }
}
