//! Minimal JSON value type, writer, and recursive-descent parser.
//!
//! Only what the snapshot wire format needs: objects, arrays, strings,
//! f64/u64/i64 numbers, booleans, null. Object key order is preserved on
//! write via `Vec<(String, Json)>`, so output is deterministic. Kept
//! in-tree because this workspace builds with no external crates.

use std::fmt;

/// A parsed or to-be-rendered JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All numbers parse as f64; integral values round-trip exactly up to
    /// 2^53, far beyond any counter this codebase produces in practice.
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

/// Error from [`Json::parse`] or snapshot decoding.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        JsonError { msg: msg.into() }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor for an object from (key, value) pairs.
    pub fn object<'a>(fields: impl IntoIterator<Item = (&'a str, Json)>) -> Json {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for an array.
    pub fn array(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(items.into_iter().collect())
    }

    /// Convenience constructor for a string value.
    pub fn string(s: &str) -> Json {
        Json::String(s.to_string())
    }

    /// Field lookup on objects (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Number(n) if n.fract() == 0.0 && n.abs() <= (1u64 << 53) as f64 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Render as a compact JSON document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::String(s) => write_escaped(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::new(format!(
                "trailing garbage at byte {}",
                p.pos
            )));
        }
        Ok(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Number(v as f64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Number(v as f64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Number(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(JsonError::new(format!(
                "unexpected input at byte {}",
                self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => {
                    return Err(JsonError::new(format!(
                        "expected , or }} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => {
                    return Err(JsonError::new(format!(
                        "expected , or ] at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| JsonError::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| JsonError::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(JsonError::new("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(JsonError::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| JsonError::new(format!("bad number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_render_roundtrip() {
        let text = r#"{"a":[1,2.5,-3],"b":{"c":"x\"y","d":null},"e":true}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\"y"));
    }

    #[test]
    fn integral_numbers_render_without_fraction() {
        assert_eq!(Json::from(42u64).render(), "42");
        assert_eq!(Json::from(-7i64).render(), "-7");
        assert_eq!(Json::from(2.5f64).render(), "2.5");
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
    }

    #[test]
    fn whitespace_and_escapes() {
        let v = Json::parse(" { \"k\" : \"a\\nb\\u0041\" } ").unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some("a\nbA"));
    }
}
