//! Drop-guard timing into histograms.

use std::time::Instant;

use crate::metrics::Histogram;

/// Observes the wall-clock seconds between construction and drop into a
/// histogram. For simulated-time latencies (the analytic timing plane),
/// call [`Histogram::observe`] with the computed seconds instead.
#[derive(Debug)]
pub struct ScopedTimer {
    hist: Histogram,
    start: Instant,
    armed: bool,
}

impl ScopedTimer {
    /// Start timing into `hist`.
    pub fn new(hist: Histogram) -> Self {
        ScopedTimer {
            hist,
            start: Instant::now(),
            armed: true,
        }
    }

    /// Record now and disarm the guard (idempotent with the drop).
    pub fn observe_and_disarm(mut self) -> f64 {
        let secs = self.start.elapsed().as_secs_f64();
        self.hist.observe(secs);
        self.armed = false;
        secs
    }

    /// Disarm without recording (e.g. on an error path that should not
    /// pollute the latency distribution).
    pub fn cancel(mut self) {
        self.armed = false;
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        if self.armed {
            self.hist.observe(self.start.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_once_on_drop() {
        let h = Histogram::detached(&[0.5, 1.0]);
        {
            let _t = ScopedTimer::new(h.clone());
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn cancel_records_nothing() {
        let h = Histogram::detached(&[0.5]);
        ScopedTimer::new(h.clone()).cancel();
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn observe_and_disarm_records_once() {
        let h = Histogram::detached(&[0.5]);
        let t = ScopedTimer::new(h.clone());
        let secs = t.observe_and_disarm();
        assert!(secs >= 0.0);
        assert_eq!(h.count(), 1);
    }
}
