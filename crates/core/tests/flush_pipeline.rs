//! Flush-plane differentials (DESIGN.md §15): the parallel pipelined
//! engine must be observably identical to the sequential reference —
//! byte-identical Lustre contents, equal semantic receipts (per-server /
//! per-OST / per-tier bytes, revocations, loss ledger) — under both
//! runtimes, while measurably coalescing OST writes and batching chain
//! round-trips. Plus the write-overlapped paths: a foreground writer
//! racing the no-checkout flush, same-seed fault-injected loss-ledger
//! equality, and the drain-ledger catch-up through both engines.

use std::sync::Arc;
use univistor_core::config::{FlushPipeline, Runtime, UniviStorConfig};
use univistor_core::fault::FaultConfig;
use univistor_core::flush::FlushReceipt;
use univistor_core::metadata::ClientId;
use univistor_core::server::UniviStorJob;
use univistor_mpi::driver::OpenMode;
use univistor_sim::{Payload, SparseBuffer};

fn client(rank: u32) -> ClientId {
    ClientId::new(0, rank)
}

/// 2 nodes × 2 procs with an explicit 4-worker pool so the partition
/// dimension is exercised even on a single-CPU host. Records are capped
/// at 256 B — a quarter of the adaptive stripe unit the 16 KiB workload
/// below produces — so the flush plane sees many records per stripe unit
/// and the parallel engine's coalescing is measurable.
fn cfg(runtime: Runtime, pipeline: FlushPipeline) -> UniviStorConfig {
    let mut cfg = UniviStorConfig::test_small(2, 2);
    cfg.runtime = runtime;
    cfg.partitions = 4;
    cfg.flush_pipeline = pipeline;
    cfg.metadata_range_size = 256;
    cfg
}

/// Block-per-rank tiling: each rank writes its contiguous 4 KiB quarter
/// in 256 B calls, yielding 64 distinct 256 B records (the record cap
/// stops the write path from pre-coalescing them). Each server range is
/// one rank's block, so the parallel engine can batch a whole range's
/// gather into one round-trip and coalesce its stripe writes, while the
/// reference engine works record-at-a-time.
fn tile_blocks(j: &UniviStorJob) -> u64 {
    j.open_file("/flush")
        .read_write()
        .representing(4)
        .by(client(0))
        .unwrap();
    for rank in 0..4u32 {
        for i in 0..16u64 {
            let offset = rank as u64 * 4096 + i * 256;
            j.write(
                client(rank),
                "/flush",
                offset,
                Payload::pattern(offset, 256),
            )
            .unwrap();
        }
    }
    16384
}

fn close_flush(j: &UniviStorJob, represents: usize) -> FlushReceipt {
    j.close("/flush", client(0), OpenMode::ReadWrite, represents, true)
        .unwrap()
        .expect("close should flush")
}

/// The semantic receipt fields both engines must agree on (the operation
/// counters — `ost_writes`, `write_calls`, `gather_round_trips` — are
/// engine-specific by design: they measure the optimization).
fn assert_semantically_equal(par: &FlushReceipt, seq: &FlushReceipt, ctx: &str) {
    assert_eq!(par.file_size, seq.file_size, "{ctx}: file_size");
    assert_eq!(
        par.per_server_bytes, seq.per_server_bytes,
        "{ctx}: per_server_bytes"
    );
    assert_eq!(par.per_ost_bytes, seq.per_ost_bytes, "{ctx}: per_ost_bytes");
    assert_eq!(
        par.source_tier_bytes, seq.source_tier_bytes,
        "{ctx}: source_tier_bytes"
    );
    assert_eq!(
        par.lock_revocations, seq.lock_revocations,
        "{ctx}: lock_revocations"
    );
    assert_eq!(par.lost, seq.lost, "{ctx}: loss ledger");
    assert_eq!(
        par.drained_ahead_bytes, seq.drained_ahead_bytes,
        "{ctx}: drained_ahead_bytes"
    );
    assert_eq!(par.spans, seq.spans, "{ctx}: spans");
}

/// The acceptance differential: byte-identical Lustre contents and equal
/// semantic receipts between `FlushPipeline::Parallel` and `Sequential`
/// under both runtimes — with the parallel engine issuing strictly fewer
/// object writes and chain round-trips.
#[test]
fn pipelines_agree_and_parallel_coalesces_under_both_runtimes() {
    let mut parallel_receipts = Vec::new();
    for runtime in [Runtime::Locked, Runtime::Partitioned] {
        let run = |pipeline| {
            let j = Arc::new(UniviStorJob::new(cfg(runtime, pipeline)));
            let size = tile_blocks(&j);
            let r = close_flush(&j, 4);
            let bytes = j.lustre_read("/flush", 0, size).unwrap();
            (r, bytes)
        };
        let (seq, seq_bytes) = run(FlushPipeline::Sequential);
        let (par, par_bytes) = run(FlushPipeline::Parallel);
        let ctx = format!("{runtime:?}");
        assert!(
            par_bytes.content_eq(&seq_bytes),
            "{ctx}: PFS bytes diverged"
        );
        assert_semantically_equal(&par, &seq, &ctx);
        // The reference engine works span-at-a-time…
        assert_eq!(seq.write_calls, seq.spans, "{ctx}");
        assert_eq!(seq.gather_round_trips, seq.spans, "{ctx}");
        // …the pipelined engine coalesces and batches.
        assert!(
            par.write_calls < seq.write_calls,
            "{ctx}: no coalescing ({} vs {})",
            par.write_calls,
            seq.write_calls
        );
        assert!(
            par.ost_writes < seq.ost_writes,
            "{ctx}: no OST-write reduction ({} vs {})",
            par.ost_writes,
            seq.ost_writes
        );
        assert!(
            par.gather_round_trips < seq.gather_round_trips,
            "{ctx}: no gather batching ({} vs {})",
            par.gather_round_trips,
            seq.gather_round_trips
        );
        assert_eq!(par.catchup_passes, 0, "{ctx}: quiescent flush redid work");
        parallel_receipts.push((par, par_bytes));
    }
    // The parallel engine is also runtime-invariant, counters included.
    let (locked, locked_bytes) = &parallel_receipts[0];
    let (part, part_bytes) = &parallel_receipts[1];
    assert!(part_bytes.content_eq(locked_bytes), "cross-runtime bytes");
    assert_semantically_equal(part, locked, "cross-runtime");
    assert_eq!(part.ost_writes, locked.ost_writes, "cross-runtime");
    assert_eq!(part.write_calls, locked.write_calls, "cross-runtime");
    assert_eq!(
        part.gather_round_trips, locked.gather_round_trips,
        "cross-runtime"
    );
}

/// Same-seed fault differential: with a transient drizzle (absorbed by
/// the retry budget) plus a node loss before close, both engines report
/// the identical `FlushReport` loss ledger and identical healthy bytes.
#[test]
fn same_seed_loss_ledger_matches_across_pipelines() {
    for runtime in [Runtime::Locked, Runtime::Partitioned] {
        let run = |pipeline| {
            let mut c = cfg(runtime, pipeline);
            c.retry.backoff_base_us = 0;
            c.retry.backoff_cap_us = 0;
            c.fault = Some(FaultConfig {
                seed: 7,
                transient_prob: 0.02,
                ..FaultConfig::default()
            });
            let j = Arc::new(UniviStorJob::new(c));
            let size = tile_blocks(&j);
            // Node 0 (ranks 0 and 1, no replicas) dies before close: its
            // half of the blocks is lost, the rest must still drain.
            assert!(j.fail_node(0));
            (close_flush(&j, 4), size)
        };
        let (seq, size) = run(FlushPipeline::Sequential);
        let (par, _) = run(FlushPipeline::Parallel);
        let ctx = format!("{runtime:?}");
        assert_eq!(par.lost.lost_bytes, size / 2, "{ctx}: unexpected loss");
        assert_eq!(par.lost, seq.lost, "{ctx}: loss ledger diverged");
        assert_semantically_equal(&par, &seq, &ctx);
    }
}

/// A foreground writer racing the close-time flush: under the parallel
/// engine the flush takes no core checkout (routed scans/fetches under
/// the partitioned runtime, shared-lock reads under the locked one), so
/// the writes proceed concurrently and the generation fence redoes any
/// invalidated pass. A quiesced reflush must land the final bytes.
#[test]
fn concurrent_writer_races_the_flush_under_both_runtimes() {
    for runtime in [Runtime::Locked, Runtime::Partitioned] {
        let j = Arc::new(UniviStorJob::new(cfg(runtime, FlushPipeline::Parallel)));
        let size = tile_blocks(&j);
        let racer = {
            let j = Arc::clone(&j);
            std::thread::spawn(move || {
                for i in 0..16u64 {
                    j.write(client(1), "/flush", 0, Payload::pattern(900 + i, 256))
                        .unwrap();
                }
            })
        };
        let r = close_flush(&j, 4);
        assert_eq!(r.file_size, size, "{runtime:?}");
        racer.join().unwrap();
        // Writers quiesced: a reflush needs no catch-up and lands the
        // deterministic final image (tiling + the racer's last write).
        j.open_file("/flush").read_write().by(client(0)).unwrap();
        let r2 = close_flush(&j, 1);
        assert_eq!(r2.catchup_passes, 0, "{runtime:?}");
        let mut model = SparseBuffer::new();
        for rank in 0..4u64 {
            for i in 0..16u64 {
                let offset = rank * 4096 + i * 256;
                model.write(offset, Payload::pattern(offset, 256));
            }
        }
        model.write(0, Payload::pattern(915, 256));
        let got = j.lustre_read("/flush", 0, size).unwrap();
        assert!(
            got.content_eq(&model.read(0, size)),
            "{runtime:?}: final PFS image diverged"
        );
    }
}

/// The drain-ledger catch-up through both engines: after an explicit
/// background drain, the close-time flush skips the drained spans
/// identically under `Parallel` and `Sequential`, and the destination
/// reads back byte-identical.
#[test]
fn drain_ledger_catchup_agrees_across_pipelines() {
    for runtime in [Runtime::Locked, Runtime::Partitioned] {
        let run = |pipeline| {
            let j = Arc::new(UniviStorJob::new(cfg(runtime, pipeline)));
            let size = tile_blocks(&j);
            let drained = j.tiering().drain_now().unwrap();
            assert!(drained.drained_segments > 0, "drain moved nothing");
            let r = close_flush(&j, 4);
            let bytes = j.lustre_read("/flush", 0, size).unwrap();
            (r, bytes)
        };
        let (seq, seq_bytes) = run(FlushPipeline::Sequential);
        let (par, par_bytes) = run(FlushPipeline::Parallel);
        let ctx = format!("{runtime:?}");
        assert!(par.drained_ahead_bytes > 0, "{ctx}: no catch-up happened");
        assert!(
            par_bytes.content_eq(&seq_bytes),
            "{ctx}: PFS bytes diverged"
        );
        assert_semantically_equal(&par, &seq, &ctx);
    }
}
