//! Randomized-property tests for UniviStor's core invariants, driven by
//! the substrate's deterministic RNG (the workspace builds without
//! external crates, so no proptest).

use std::collections::HashMap;
use std::sync::Arc;
use univistor_core::config::UniviStorConfig;
use univistor_core::metadata::ClientId;
use univistor_core::placement::ProcChain;
use univistor_core::server::UniviStorJob;
use univistor_core::striping::{adaptive_plan, ost_loads, StripeCase};
use univistor_core::va::{Tier, TierMap};
use univistor_mpi::driver::OpenMode;
use univistor_sim::rng::DetRng;
use univistor_sim::{Payload, SparseBuffer};

/// Eq. 1 is a bijection between (layer, address) pairs and VAs for
/// any layer geometry.
#[test]
fn va_encode_decode_roundtrips() {
    let mut rng = DetRng::seed(0xc04e_0001);
    for _trial in 0..200 {
        let tiers = [
            Tier::Dram,
            Tier::NodeLocal,
            Tier::SharedBurstBuffer,
            Tier::Pfs,
        ];
        let n_layers = 1 + rng.below(4);
        let layers: Vec<(Tier, u64)> = (0..n_layers)
            .map(|i| (tiers[i % 4], 1 + rng.below(999_999) as u64))
            .collect();
        let map = TierMap::new(layers.clone());
        for _ in 0..50 {
            let layer = rng.below(layers.len());
            let addr = rng.below(layers[layer].1 as usize) as u64;
            let va = map.encode(layer, addr);
            let (l2, t2, a2) = map.decode(va);
            assert_eq!(l2, layer);
            assert_eq!(a2, addr);
            assert_eq!(t2, layers[layer].0);
        }
    }
}

/// A DHP chain never corrupts data: every appended segment reads back
/// exactly, VAs are unique, and the live-byte accounting balances —
/// under arbitrary interleavings of appends and releases.
#[test]
fn proc_chain_appends_and_releases_balance() {
    let mut rng = DetRng::seed(0xc04e_0002);
    for _trial in 0..100 {
        let n_ops = 1 + rng.below(59);
        let mut chain = ProcChain::new(
            vec![
                (Tier::Dram, 256),
                (Tier::SharedBurstBuffer, 512),
                (Tier::Pfs, u64::MAX),
            ],
            64,
        )
        .unwrap();
        let mut live: Vec<(u64, univistor_core::va::VirtualAddr, u64)> = Vec::new();
        let mut seed = 0u64;
        let mut expected_bytes = 0u64;
        for _ in 0..n_ops {
            let len = 1 + rng.below(63) as u64;
            let release = rng.chance(0.5);
            if release && !live.is_empty() {
                let (_, va, l) = live.swap_remove(0);
                chain.release(va, l);
                expected_bytes -= l;
            } else {
                seed += 1;
                let placed = chain.append(Payload::pattern(seed, len)).unwrap();
                assert!(
                    live.iter().all(|(_, va, _)| *va != placed.va),
                    "duplicate VA"
                );
                live.push((seed, placed.va, len));
                expected_bytes += len;
            }
            assert_eq!(chain.live_bytes(), expected_bytes);
            // Every live segment still reads back correctly.
            for (s, va, l) in &live {
                let got = chain.read(*va, *l).unwrap();
                assert!(got.content_eq(&Payload::pattern(*s, *l)));
            }
        }
    }
}

/// Adaptive striping invariants for arbitrary sizes/server counts:
/// server ranges tile the file, per-OST loads sum to the file size,
/// and in the distinct-sets regime no OST is shared between servers.
#[test]
fn adaptive_plan_invariants() {
    let mut rng = DetRng::seed(0xc04e_0003);
    for _trial in 0..300 {
        let file_size = 1 + ((rng.below(1 << 30) as u64) << rng.below(11));
        let servers = 1 + rng.below(1023);
        let osts = 1 + rng.below(511);
        let alpha = 1 + rng.below(31);
        let plan = adaptive_plan(file_size, servers, osts, alpha, 1 << 30);
        // Ranges tile [0, file_size).
        let mut cursor = 0u64;
        for &(s, e) in &plan.server_ranges {
            assert_eq!(s, cursor);
            cursor = e;
        }
        assert_eq!(cursor, file_size);
        // Loads conserve bytes.
        let loads = ost_loads(&plan, osts);
        assert_eq!(loads.iter().sum::<u64>(), file_size);
        // Distinct sets never share OSTs.
        if plan.case == StripeCase::DistinctSets {
            let mut owner: HashMap<usize, usize> = HashMap::new();
            for (i, &(s, e)) in plan.server_ranges.iter().enumerate() {
                if e > s {
                    for (ost, _) in plan.layout.ost_loads(s, e - s) {
                        let prev = owner.insert(ost % osts, i);
                        assert!(
                            prev.is_none() || prev == Some(i),
                            "OST {} shared by servers {:?} and {}",
                            ost % osts,
                            prev,
                            i
                        );
                    }
                }
            }
        }
    }
}

/// End-to-end model equivalence: arbitrary (client, offset, data)
/// writes through the full UniviStor job behave exactly like a flat
/// sparse buffer — both for cache reads and for the flushed PFS copy.
#[test]
fn job_matches_flat_file_model() {
    let mut rng = DetRng::seed(0xc04e_0004);
    for _trial in 0..60 {
        let mut cfg = UniviStorConfig::test_small(2, 2);
        cfg.cal.dram_cache_capacity_per_node = 2048; // force some spill
        let job = Arc::new(UniviStorJob::new(cfg));
        job.open_file("/p")
            .read_write()
            .representing(4)
            .by(ClientId::new(0, 0))
            .unwrap();

        let mut model = SparseBuffer::new();
        let mut seed = 100u64;
        let n_writes = 1 + rng.below(24);
        for _ in 0..n_writes {
            let rank = rng.below(4) as u32;
            let offset = rng.below(2048) as u64;
            let len = 1 + rng.below(299) as u64;
            seed += 1;
            let data = Payload::pattern(seed, len);
            job.write(ClientId::new(0, rank), "/p", offset, data.clone())
                .unwrap();
            model.write(offset, data);
        }
        let size = model.end_offset();
        assert_eq!(job.file_size("/p").unwrap(), size);

        // Cache reads: fully-written prefixes must match; read the whole
        // span where the model has no holes.
        if model.read_exact(0, size).is_ok() {
            let got = job.read(ClientId::new(0, 0), "/p", 0, size).unwrap();
            assert!(got.content_eq(&model.read(0, size)));

            // Flush on close; the PFS copy matches too.
            job.close("/p", ClientId::new(0, 0), OpenMode::ReadWrite, 4, true)
                .unwrap()
                .expect("flush");
            let pfs = job.lustre_read("/p", 0, size).unwrap();
            assert!(pfs.content_eq(&model.read(0, size)));
        }
    }
}

/// Replication invariant: with `replicate_volatile`, any single node
/// failure preserves every byte.
#[test]
fn any_single_node_failure_is_survivable() {
    let mut rng = DetRng::seed(0xc04e_0005);
    for _trial in 0..100 {
        let mut cfg = UniviStorConfig::test_small(2, 2);
        cfg.replicate_volatile = true;
        cfg.cal.dram_cache_capacity_per_node = 1 << 16;
        let job = Arc::new(UniviStorJob::new(cfg));
        job.open_file("/r")
            .read_write()
            .representing(4)
            .by(ClientId::new(0, 0))
            .unwrap();

        let mut model = SparseBuffer::new();
        let mut seed = 0u64;
        let n_writes = 1 + rng.below(14);
        for _ in 0..n_writes {
            let rank = rng.below(4) as u32;
            let slot = rng.below(8) as u64;
            let len = 1 + rng.below(127) as u64;
            seed += 1;
            // Slot-aligned writes keep the file hole-free enough to check.
            let offset = slot * 128;
            let data = Payload::pattern(seed, len);
            job.write(ClientId::new(0, rank), "/r", offset, data.clone())
                .unwrap();
            model.write(offset, data);
        }
        let failed = rng.below(2);
        job.fail_node(failed);
        let size = model.end_offset();
        if model.read_exact(0, size).is_ok() {
            let survivor = if failed == 0 {
                ClientId::new(0, 2)
            } else {
                ClientId::new(0, 0)
            };
            let got = job.read(survivor, "/r", 0, size).unwrap();
            assert!(got.content_eq(&model.read(0, size)));
        }
    }
}
