//! Pipeline-equivalence properties: the batched write path (piece
//! planning + `append_many` + whole-span punch + partition-grouped
//! commits + segment coalescing) must be observably identical to the
//! per-piece reference implementation — same bytes, same live-byte
//! accounting (displaced spans released, replicas included), and
//! coalesced records never exceed the metadata range.

use std::sync::Arc;
use univistor_core::config::{UniviStorConfig, WritePipeline};
use univistor_core::metadata::ClientId;
use univistor_core::server::UniviStorJob;
use univistor_sim::rng::DetRng;
use univistor_sim::{Payload, SparseBuffer};

fn job(pipeline: WritePipeline, replicate: bool) -> Arc<UniviStorJob> {
    let mut cfg = UniviStorConfig::test_small(2, 2);
    cfg.write_pipeline = pipeline;
    cfg.replicate_volatile = replicate;
    Arc::new(UniviStorJob::new(cfg))
}

/// Invariants any single job must satisfy against the flat model:
/// records respect the coalescing cap and tile without overlap, the
/// index's bytes (primary + replica) balance the live log bytes, and
/// every written extent reads back exactly.
fn check_against_model(
    job: &UniviStorJob,
    path: &str,
    model: &SparseBuffer,
    range: u64,
    replicate: bool,
) {
    let index = job.index_of(path).unwrap();
    let mut record_bytes = 0u64;
    for (k, r) in &index {
        assert!(
            r.len <= range,
            "record at offset {} is {} B — coalescing exceeded the {range} B range",
            k.offset,
            r.len
        );
        record_bytes += r.len;
        if r.replica.is_some() {
            record_bytes += r.len;
        }
    }
    for w in index.windows(2) {
        assert!(
            w[0].0.offset + w[0].1.len <= w[1].0.offset,
            "records overlap at offsets {} and {}",
            w[0].0.offset,
            w[1].0.offset
        );
    }
    // Displaced spans were all released: the index accounts for every
    // live byte still held in the log chains, nothing leaks.
    let live: u64 = job.tier_usage().iter().map(|(_, b)| b).sum();
    assert_eq!(record_bytes, live, "index bytes vs live log bytes");
    if !replicate {
        assert_eq!(live, model.bytes_stored(), "live bytes vs model");
    }
    for (off, p) in model.extents() {
        let got = job.read(ClientId::new(0, 0), path, off, p.len()).unwrap();
        assert!(got.content_eq(p), "extent at {off} diverged from the model");
    }
}

/// Random offsets/lengths/overwrites from four ranks, applied to both
/// pipelines and a flat sparse-buffer model, with and without
/// `replicate_volatile`. The tiny test tiers force spills and
/// tight-capacity displacement on the way.
#[test]
fn batched_pipeline_matches_per_piece_reference() {
    let mut rng = DetRng::seed(0xba7c_0001);
    for trial in 0..40u64 {
        let replicate = trial % 2 == 1;
        let jobs = [
            job(WritePipeline::PerPiece, replicate),
            job(WritePipeline::Batched, replicate),
        ];
        for j in &jobs {
            j.open_file("/b")
                .read_write()
                .representing(4)
                .by(ClientId::new(0, 0))
                .unwrap();
        }
        let mut model = SparseBuffer::new();
        let mut seed = trial * 1000;
        let n_writes = 1 + rng.below(24);
        for _ in 0..n_writes {
            let rank = rng.below(4) as u32;
            let offset = rng.below(2048) as u64;
            let len = 1 + rng.below(700) as u64;
            seed += 1;
            let data = Payload::pattern(seed, len);
            for j in &jobs {
                j.write(ClientId::new(0, rank), "/b", offset, data.clone())
                    .unwrap();
            }
            model.write(offset, data);
        }

        for j in &jobs {
            check_against_model(j, "/b", &model, 1024, replicate);
        }
        // The pipelines may split bytes across tiers differently under
        // tight-capacity overwrites (batched appends the whole run before
        // releasing displaced spans), but primary coverage must agree:
        // both indexes tile exactly the model's written extents.
        let primary_bytes = |j: &UniviStorJob| {
            j.index_of("/b")
                .unwrap()
                .iter()
                .map(|(_, r)| r.len)
                .sum::<u64>()
        };
        assert_eq!(primary_bytes(&jobs[0]), model.bytes_stored());
        assert_eq!(primary_bytes(&jobs[1]), model.bytes_stored());
        if !replicate {
            // Replica placement is best-effort and capacity-dependent, so
            // only the unreplicated runs pin the full live-byte totals.
            let live = |j: &UniviStorJob| j.tier_usage().iter().map(|(_, b)| b).sum::<u64>();
            assert_eq!(live(&jobs[0]), live(&jobs[1]), "live-byte totals diverged");
        }
        assert_eq!(
            jobs[0].file_size("/b").unwrap(),
            jobs[1].file_size("/b").unwrap()
        );
        // Coalescing can only shrink the index.
        assert!(jobs[1].metadata_records() <= jobs[0].metadata_records());
    }
}

/// A fresh sequential write (disjoint blocks, ample DRAM) must leave the
/// two pipelines with identical placement statistics — the batching is
/// pure mechanism there, not policy.
#[test]
fn fresh_sequential_write_stats_are_pipeline_invariant() {
    let mk = |p: WritePipeline| {
        let mut cfg = UniviStorConfig::test_small(2, 2);
        cfg.cal.dram_cache_capacity_per_node = 1 << 20;
        cfg.write_pipeline = p;
        Arc::new(UniviStorJob::new(cfg))
    };
    let jobs = [mk(WritePipeline::PerPiece), mk(WritePipeline::Batched)];
    for j in &jobs {
        j.open_file("/s")
            .read_write()
            .representing(4)
            .by(ClientId::new(0, 0))
            .unwrap();
        for rank in 0..4u32 {
            j.write(
                ClientId::new(0, rank),
                "/s",
                rank as u64 * 4096,
                Payload::pattern(rank as u64, 4096),
            )
            .unwrap();
        }
    }
    let (a, b) = (jobs[0].stats(), jobs[1].stats());
    assert_eq!(a.segments, b.segments);
    assert_eq!(a.bytes_by_tier, b.bytes_by_tier);
    assert_eq!(a.bytes_by_client_tier, b.bytes_by_client_tier);
    assert_eq!(a.write_md_rpcs, b.write_md_rpcs);
    assert_eq!(a.replicated_bytes, b.replicated_bytes);
    // Sequential 4 KiB runs coalesce fully (range 1024 B caps each record
    // at 8 segments): a quarter of the per-piece index. The partitioned
    // runtime has no per-piece pipeline — every write batches — so there
    // both jobs land on the coalesced count.
    if jobs[0].partition_workers() == 0 {
        assert_eq!(jobs[0].metadata_records(), 4 * 32);
    } else {
        assert_eq!(jobs[0].metadata_records(), 4 * 4);
    }
    assert_eq!(jobs[1].metadata_records(), 4 * 4);
}
