//! Telemetry integration: the counters behind `UniviStorJob::metrics()`
//! observed through real workloads — spill writes, classified reads,
//! close-time flushes — plus a JSON round trip of a populated snapshot.

use std::sync::Arc;
use univistor_core::config::UniviStorConfig;
use univistor_core::metadata::ClientId;
use univistor_core::server::UniviStorJob;
use univistor_core::MetricsSnapshot;
use univistor_mpi::driver::OpenMode;
use univistor_sim::Payload;

/// A write that overflows the DRAM layer shows up in the per-tier byte
/// and spill-event counters exactly.
#[test]
fn spill_write_updates_tier_and_spill_counters() {
    // 1 node × 2 procs: 1024 B DRAM/node → 512 B per proc, 128 B segments.
    let cfg = UniviStorConfig::test_small(1, 2);
    let job = UniviStorJob::new(cfg);
    let c = ClientId::new(0, 0);
    job.open_file("/spill").write().by(c).unwrap();

    // 2048 B = 16 segments: 4 fill this proc's DRAM share, 12 spill to BB.
    job.write(c, "/spill", 0, Payload::pattern(7, 2048))
        .unwrap();

    let snap = job.metrics();
    assert_eq!(
        snap.counter("univistor_cached_bytes_total", &[("tier", "dram")]),
        Some(512)
    );
    assert_eq!(
        snap.counter("univistor_cached_bytes_total", &[("tier", "burst_buffer")]),
        Some(1536)
    );
    assert_eq!(
        snap.counter(
            "univistor_tier_spill_events_total",
            &[("tier", "burst_buffer")]
        ),
        Some(12)
    );
    assert_eq!(
        snap.counter("univistor_tier_spill_events_total", &[("tier", "dram")]),
        Some(0),
        "landing on the chain head is not a spill"
    );
    assert_eq!(snap.counter_total("univistor_tier_spill_events_total"), 12);
    assert_eq!(snap.counter_total("univistor_segments_total"), 16);
    assert_eq!(
        snap.counter("univistor_ops_total", &[("op", "open")]),
        Some(1)
    );
    assert_eq!(
        snap.counter("univistor_ops_total", &[("op", "write")]),
        Some(1)
    );
    // One metadata insert per placed segment.
    assert_eq!(
        snap.counter("univistor_md_rpcs_total", &[("op", "write")]),
        Some(16)
    );

    // Reading the spilled range back: the BB is globally visible, so the
    // location-aware client fetches it directly, and the producer's own
    // node resolves all metadata from the shared local buffer.
    job.read(c, "/spill", 512, 1536).unwrap();
    let snap = job.metrics();
    assert_eq!(
        snap.counter("univistor_read_bytes_total", &[("path", "bb_direct")]),
        Some(1536)
    );
    // The 12 spilled pieces coalesced into 2 records (the 1024 B metadata
    // range caps the first merge), so the self-read hits the shared buffer
    // twice, not twelve times.
    assert_eq!(snap.counter_total("univistor_md_local_hits_total"), 2);
    assert_eq!(
        snap.counter("univistor_md_rpcs_total", &[("op", "read")]),
        Some(0),
        "local metadata buffer should cover a self-read"
    );
}

/// Reads are classified per path: a same-node read is a local hit, a
/// cross-node DRAM read is a remote server hop.
#[test]
fn read_paths_split_local_hit_and_remote_hop() {
    // 2 nodes × 2 procs: rank 0 lives on node 0, rank 2 on node 1.
    let cfg = UniviStorConfig::test_small(2, 2);
    let job = UniviStorJob::new(cfg);
    let reader = ClientId::new(0, 0);
    let remote_writer = ClientId::new(0, 2);
    job.open_file("/r")
        .read_write()
        .representing(4)
        .by(reader)
        .unwrap();

    // 256 B each — well inside both procs' DRAM shares, so the remote
    // bytes genuinely sit in another node's volatile tier.
    job.write(remote_writer, "/r", 0, Payload::pattern(1, 256))
        .unwrap();
    job.write(reader, "/r", 256, Payload::pattern(2, 256))
        .unwrap();

    job.read(reader, "/r", 256, 256).unwrap(); // own data: local hit
    job.read(reader, "/r", 0, 256).unwrap(); // node 1's DRAM: remote hop

    let snap = job.metrics();
    assert_eq!(
        snap.counter("univistor_read_bytes_total", &[("path", "local_hit")]),
        Some(256)
    );
    assert_eq!(
        snap.counter("univistor_read_bytes_total", &[("path", "remote_hop")]),
        Some(256)
    );
    assert_eq!(
        snap.counter_total("univistor_md_local_hits_total"),
        1,
        "the local read's coalesced record came from the shared buffer"
    );
    let remote_md = snap
        .counter("univistor_md_rpcs_total", &[("op", "read")])
        .unwrap();
    assert!(remote_md >= 1, "the remote read must visit the KV servers");
    assert_eq!(
        snap.counter("univistor_ops_total", &[("op", "read")]),
        Some(2)
    );
}

/// Close-time flush feeds the flush counters and histograms from the
/// receipt, and the in-progress gauge returns to zero.
#[test]
fn flush_populates_histograms_and_settles_gauge() {
    let cfg = UniviStorConfig::test_small(1, 2);
    let job = UniviStorJob::new(cfg);
    let c = ClientId::new(0, 0);
    job.open_file("/fl").write().by(c).unwrap();
    job.write(c, "/fl", 0, Payload::pattern(3, 1024)).unwrap();
    job.close("/fl", c, OpenMode::Write, 1, true)
        .unwrap()
        .expect("flush receipt");

    let snap = job.metrics();
    assert_eq!(snap.counter_total("univistor_flushes_total"), 1);
    assert_eq!(snap.gauge("univistor_flush_in_progress", &[]), Some(0));
    let drained = snap
        .histogram("univistor_flush_drained_bytes", &[])
        .expect("drained histogram");
    assert_eq!(drained.count, 1);
    assert_eq!(drained.sum, 1024.0);
    // Every flushed byte is attributed to the tier it was drained from.
    let per_tier: u64 = ["dram", "node_local", "burst_buffer", "pfs"]
        .iter()
        .filter_map(|t| snap.counter("univistor_flush_source_bytes_total", &[("tier", t)]))
        .sum();
    assert_eq!(per_tier, 1024);
}

/// A populated snapshot survives the JSON round trip bit-exactly —
/// counters, gauges, and histogram buckets.
#[test]
fn snapshot_json_round_trip_preserves_everything() {
    let cfg = UniviStorConfig::test_small(2, 2);
    let job = Arc::new(UniviStorJob::new(cfg));
    let c = ClientId::new(0, 0);
    job.open_file("/j")
        .read_write()
        .representing(4)
        .by(c)
        .unwrap();
    // Touch every family: spill writes, classified reads, a flush.
    job.write(c, "/j", 0, Payload::pattern(9, 2048)).unwrap();
    job.write(ClientId::new(0, 2), "/j", 2048, Payload::pattern(10, 256))
        .unwrap();
    job.read(c, "/j", 0, 2304).unwrap();
    job.close("/j", c, OpenMode::ReadWrite, 4, true)
        .unwrap()
        .expect("flush");

    let snap = job.metrics();
    assert!(snap.counter_total("univistor_segments_total") > 0);
    assert!(snap.counter_total("univistor_read_bytes_total") > 0);
    assert_eq!(snap.counter_total("univistor_flushes_total"), 1);

    let text = snap.to_json();
    let back = MetricsSnapshot::from_json(&text).expect("parse our own JSON");
    assert_eq!(back, snap);
    // Spot-check through the accessor layer too, not just PartialEq.
    assert_eq!(
        back.counter_total("univistor_cached_bytes_total"),
        snap.counter_total("univistor_cached_bytes_total")
    );
    assert_eq!(
        back.histogram("univistor_flush_drained_bytes", &[]),
        snap.histogram("univistor_flush_drained_bytes", &[])
    );
}
