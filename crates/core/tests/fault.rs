//! Chaos soak and degraded-mode tests: deterministic fault injection,
//! retry absorption, replica-served reads and flushes under node loss,
//! double-failure error reporting, and online repair
//! ([`UniviStorJob::rebuild_degraded`]) followed by byte-identical reads.

use std::sync::Arc;
use univistor_core::config::{ReadPipeline, UniviStorConfig};
use univistor_core::fault::FaultConfig;
use univistor_core::metadata::ClientId;
use univistor_core::server::UniviStorJob;
use univistor_mpi::driver::OpenMode;
use univistor_sim::Payload;

fn client(rank: u32) -> ClientId {
    ClientId::new(0, rank)
}

/// 3 nodes × 2 procs with replication on and roomy DRAM, so repair has
/// healthy nodes to re-mirror onto.
fn chaos_cfg(fault: Option<FaultConfig>) -> UniviStorConfig {
    let mut cfg = UniviStorConfig::test_small(3, 2);
    cfg.replicate_volatile = true;
    cfg.cal.dram_cache_capacity_per_node = 8192;
    // Keep chaos tests fast: retries sleep for real.
    cfg.retry.backoff_base_us = 1;
    cfg.retry.backoff_cap_us = 10;
    cfg.fault = fault;
    cfg
}

/// The soak workload: every rank writes two 256 B blocks in two waves
/// (the node failure, when scheduled, fires between them), then a
/// survivor reads the whole file. Returns the job and the bytes read.
fn run_chaos_workload(cfg: UniviStorConfig) -> (Arc<UniviStorJob>, Payload) {
    let ranks = cfg.geometry.total_procs() as u32;
    let j = Arc::new(UniviStorJob::new(cfg));
    j.open_file("/soak")
        .write()
        .representing(ranks as usize)
        .by(client(0))
        .unwrap();
    let wave = ranks as u64 * 256;
    for w in 0..2u64 {
        for rank in 0..ranks {
            j.write(
                client(rank),
                "/soak",
                w * wave + rank as u64 * 256,
                Payload::pattern(w * 100 + rank as u64, 256),
            )
            .unwrap();
        }
    }
    let got = j.read(client(ranks - 1), "/soak", 0, 2 * wave).unwrap();
    (j, got)
}

/// The tentpole soak: replication on, a node dies mid-workload on a
/// deterministic schedule plus a transient-fault drizzle, reads stay
/// byte-identical to a fault-free run, online repair drives the degraded
/// gauge to zero, the node is restored, and the whole run replays
/// bit-for-bit under the same seed.
#[test]
fn chaos_soak_is_deterministic_and_repairable() {
    let schedule = FaultConfig {
        seed: 42,
        // Node 0 dies once ~half the workload's instrumented ops ran.
        fail_node_at: vec![(30, 0)],
        transient_prob: 0.1,
        ..FaultConfig::default()
    };

    let (reference, expected) = run_chaos_workload(chaos_cfg(None));
    let (j, got) = run_chaos_workload(chaos_cfg(Some(schedule.clone())));
    assert!(
        got.content_eq(&expected),
        "degraded reads must match the fault-free run"
    );

    // The scheduled failure actually fired and left degraded records.
    let snap = j.metrics();
    assert_eq!(
        snap.counter("univistor_faults_injected_total", &[("kind", "node_loss")]),
        Some(1)
    );
    assert!(
        snap.counter_total("univistor_retries_total") > 0,
        "the transient drizzle should have forced retries"
    );
    assert_eq!(
        snap.counter_total("univistor_retry_exhausted_total"),
        0,
        "the default budget must absorb a 10% drizzle"
    );
    let degraded = j.degraded_segments();
    assert!(degraded > 0, "node loss must leave degraded records");

    // Online repair: full redundancy back, gauge to zero, node restored.
    let report = j.rebuild_degraded().unwrap();
    assert!(report.repaired_primary > 0, "{report:?}");
    assert!(report.repaired_bytes > 0, "{report:?}");
    assert_eq!(report.lost_records, 0, "{report:?}");
    assert_eq!(report.remaining_degraded, 0, "{report:?}");
    assert_eq!(j.degraded_segments(), 0);
    assert_eq!(
        j.metrics().gauge("univistor_degraded_segments", &[]),
        Some(0)
    );
    assert!(j.restore_node(0));
    let after = j.read(client(0), "/soak", 0, expected.len()).unwrap();
    assert!(after.content_eq(&expected), "post-repair reads corrupt");

    // Same seed, same schedule: the workload replays bit-for-bit.
    // (Compare against the snapshot taken right after the first run's
    // workload — the repair pass above injected further operations.)
    let (j2, got2) = run_chaos_workload(chaos_cfg(Some(schedule)));
    assert!(got2.content_eq(&got));
    let s2 = j2.metrics();
    for kind in ["transient", "node_loss", "latency"] {
        assert_eq!(
            snap.counter("univistor_faults_injected_total", &[("kind", kind)]),
            s2.counter("univistor_faults_injected_total", &[("kind", kind)]),
            "fault kind {kind} diverged across same-seed runs"
        );
    }
    assert_eq!(
        snap.counter_total("univistor_retries_total"),
        s2.counter_total("univistor_retries_total")
    );
    drop(reference);
}

/// Losing both the primary's and the replica's nodes makes the segment
/// unreadable — and the error says exactly which operation, file, and
/// client hit it.
#[test]
fn double_failure_read_reports_full_context() {
    let mut cfg = UniviStorConfig::test_small(2, 2);
    cfg.replicate_volatile = true;
    cfg.cal.dram_cache_capacity_per_node = 4096;
    let j = UniviStorJob::new(cfg);
    j.open_file("/f")
        .write()
        .representing(4)
        .by(client(0))
        .unwrap();
    j.write(client(0), "/f", 0, Payload::pattern(1, 256))
        .unwrap();
    assert!(j.fail_node(0));
    assert!(!j.fail_node(0), "fail_node must be idempotent");
    assert!(j.fail_node(1));
    let err = j.read(client(1), "/f", 0, 256).unwrap_err();
    assert_eq!(err.op(), "read");
    assert_eq!(err.path(), Some("/f"));
    assert_eq!(err.client(), Some(client(1)));
    let msg = err.to_string();
    assert!(msg.contains("failed"), "unhelpful error: {msg}");
}

/// With every copy of a span lost, the close-time flush degrades
/// gracefully: it drains what survives, reports the rest in the
/// receipt's loss ledger, and feeds the skipped-bytes counter.
#[test]
fn flush_after_double_failure_reports_losses() {
    let mut cfg = UniviStorConfig::test_small(3, 2);
    cfg.replicate_volatile = true;
    cfg.cal.dram_cache_capacity_per_node = 4096;
    let j = UniviStorJob::new(cfg);
    j.open_file("/f")
        .write()
        .representing(6)
        .by(client(0))
        .unwrap();
    // Rank 0: primary node 0, replica node 1 — both about to die.
    // Rank 4: primary node 2 — survives.
    j.write(client(0), "/f", 0, Payload::pattern(1, 256))
        .unwrap();
    j.write(client(4), "/f", 256, Payload::pattern(2, 256))
        .unwrap();
    j.fail_node(0);
    j.fail_node(1);
    let receipt = j
        .close("/f", client(0), OpenMode::Write, 6, true)
        .unwrap()
        .expect("last close flushes");
    assert_eq!(receipt.lost.lost_bytes, 256, "{:?}", receipt.lost);
    assert!(receipt.lost.lost_segments >= 1);
    assert_eq!(
        j.metrics()
            .counter_total("univistor_flush_skipped_lost_bytes_total"),
        256
    );
    // The surviving span still reached Lustre byte-exact.
    let pfs = j.lustre_read("/f", 256, 256).unwrap();
    assert!(pfs.content_eq(&Payload::pattern(2, 256)));
}

/// A close-time flush whose primaries are gone drains from replicas,
/// byte-identically, while other clients keep writing another file.
#[test]
fn flush_from_replicas_is_byte_identical_under_concurrent_writers() {
    let mut cfg = UniviStorConfig::test_small(2, 2);
    cfg.replicate_volatile = true;
    cfg.cal.dram_cache_capacity_per_node = 8192;
    let j = Arc::new(UniviStorJob::new(cfg));
    j.open_file("/a")
        .write()
        .representing(2)
        .by(client(0))
        .unwrap();
    // Ranks 0 and 1 live on node 0; their replicas land on node 1.
    j.write(client(0), "/a", 0, Payload::pattern(10, 512))
        .unwrap();
    j.write(client(1), "/a", 512, Payload::pattern(11, 512))
        .unwrap();
    j.fail_node(0);
    std::thread::scope(|s| {
        let writer = {
            let j = Arc::clone(&j);
            s.spawn(move || {
                j.open_file("/b").write().by(client(2)).unwrap();
                for i in 0..8u64 {
                    j.write(client(2), "/b", i * 128, Payload::pattern(20 + i, 128))
                        .unwrap();
                }
            })
        };
        // Flush /a from replicas while /b is being written.
        j.close("/a", client(0), OpenMode::Write, 2, true)
            .unwrap()
            .expect("last close flushes");
        writer.join().unwrap();
    });
    let pfs = j.lustre_read("/a", 0, 1024).unwrap();
    assert!(pfs.slice(0, 512).content_eq(&Payload::pattern(10, 512)));
    assert!(pfs.slice(512, 512).content_eq(&Payload::pattern(11, 512)));
    // The concurrent file is intact in cache too.
    let b = j.read(client(3), "/b", 0, 1024).unwrap();
    for i in 0..8u64 {
        assert!(b
            .slice(i * 128, 128)
            .content_eq(&Payload::pattern(20 + i, 128)));
    }
}

/// Repair-then-read equivalence, under both read pipelines: after a
/// node loss, `rebuild_degraded` + `restore_node` leaves every byte
/// readable and identical to what was written.
#[test]
fn repair_then_read_is_equivalent_under_both_pipelines() {
    for pipeline in [ReadPipeline::Batched, ReadPipeline::PerRecord] {
        let mut cfg = chaos_cfg(None);
        cfg.read_pipeline = pipeline;
        let ranks = cfg.geometry.total_procs() as u32;
        let (j, expected) = run_chaos_workload(cfg);
        assert!(j.fail_node(0));
        let report = j.rebuild_degraded().unwrap();
        assert!(report.repaired_primary > 0, "{pipeline:?}: {report:?}");
        assert_eq!(report.lost_records, 0, "{pipeline:?}: {report:?}");
        assert_eq!(j.degraded_segments(), 0, "{pipeline:?}");
        assert!(j.restore_node(0));
        assert!(!j.restore_node(0), "restore_node must be idempotent");
        for rank in 0..ranks {
            let got = j.read(client(rank), "/soak", 0, expected.len()).unwrap();
            assert!(
                got.content_eq(&expected),
                "{pipeline:?}: post-repair read diverged for rank {rank}"
            );
        }
    }
}
