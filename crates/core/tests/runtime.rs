//! Partitioned-runtime pinning (DESIGN.md §13): the shared-nothing
//! runtime must be observably identical to the locked reference — same
//! bytes, same `ReadTrace` accounting, same placement statistics — while
//! taking **zero** counted shared-lock acquisitions on the steady-state
//! data path. Plus the routing edge cases: spans crossing every
//! partition, a single-worker pool, `fail_node`/`restore_node` racing
//! in-flight messages, and clean shutdown draining non-empty mailboxes,
//! and the shared-read-view non-starvation regression.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use univistor_core::config::{Runtime, TieringConfig, UniviStorConfig};
use univistor_core::fault::FaultConfig;
use univistor_core::metadata::ClientId;
use univistor_core::server::UniviStorJob;
use univistor_core::tiering::TieringDaemon;
use univistor_sim::rng::DetRng;
use univistor_sim::{Payload, SparseBuffer};

fn client(rank: u32) -> ClientId {
    ClientId::new(0, rank)
}

/// 2 nodes × 2 procs with an explicit 4-worker pool, so the partition
/// dimension is exercised even on a single-CPU host (where the
/// `partitions == 0` default would resolve to one worker).
fn cfg(runtime: Runtime) -> UniviStorConfig {
    let mut cfg = UniviStorConfig::test_small(2, 2);
    cfg.runtime = runtime;
    cfg.partitions = 4;
    cfg
}

/// The deterministic mixed workload both runtimes replay: four ranks
/// tile a 4 KiB file, then random overwrites interleave with random
/// reads. Every read is checked against the flat model *and* returned
/// for cross-runtime comparison.
fn mixed_workload(j: &UniviStorJob) -> (SparseBuffer, Vec<Payload>) {
    let span = 4096u64;
    let mut model = SparseBuffer::new();
    let mut reads = Vec::new();
    j.open_file("/d")
        .read_write()
        .representing(4)
        .by(client(0))
        .unwrap();
    for rank in 0..4u64 {
        let p = Payload::pattern(rank, 1024);
        model.write(rank * 1024, p.clone());
        j.write(client(rank as u32), "/d", rank * 1024, p).unwrap();
    }
    let mut rng = DetRng::seed(0x5eed);
    for i in 0..60u64 {
        let rank = rng.below(4) as u32;
        if rng.chance(0.5) {
            let offset = (rng.below(14) as u64) * 256;
            let len = ((rng.below(4) + 1) as u64 * 256).min(span - offset);
            let p = Payload::pattern(100 + i, len);
            model.write(offset, p.clone());
            j.write(client(rank), "/d", offset, p).unwrap();
        } else {
            let offset = (rng.below(15) as u64) * 256;
            let len = ((rng.below(6) + 1) as u64 * 256).min(span - offset);
            let got = j.read(client(rank), "/d", offset, len).unwrap();
            assert!(
                got.content_eq(&model.read(offset, len)),
                "op {i}: read [{offset}, {}) diverged from the model",
                offset + len
            );
            reads.push(got);
        }
    }
    (model, reads)
}

/// The tentpole claim: a steady-state write + read on the partitioned
/// runtime takes zero counted shared-lock acquisitions end to end, while
/// the same operations on the locked runtime demonstrably feed those
/// counters (so a regression cannot hide behind a dead metric).
#[test]
fn partitioned_steady_state_takes_no_counted_locks() {
    let run = |runtime| {
        let j = Arc::new(UniviStorJob::new(cfg(runtime)));
        j.open_file("/z").read_write().by(client(0)).unwrap();
        j.write(client(0), "/z", 0, Payload::pattern(1, 1024))
            .unwrap();
        let got = j.read(client(0), "/z", 0, 1024).unwrap();
        assert!(got.content_eq(&Payload::pattern(1, 1024)));
        j.metrics()
    };

    let part = run(Runtime::Partitioned);
    assert_eq!(
        part.counter_total("univistor_write_lock_acquisitions_total"),
        0,
        "partitioned write path must take no counted locks"
    );
    assert_eq!(
        part.counter_total("univistor_read_lock_acquisitions_total"),
        0,
        "partitioned read path must take no counted locks"
    );
    // The work really went through the mailboxes…
    assert!(part.counter_total("univistor_partition_messages_total") > 0);
    assert!(part.counter_total("univistor_partition_batched_ops_total") > 0);

    // …and the locked control run proves the counters are live.
    let locked = run(Runtime::Locked);
    assert!(locked.counter_total("univistor_write_lock_acquisitions_total") > 0);
    assert!(
        locked
            .counter(
                "univistor_read_lock_acquisitions_total",
                &[("lock", "chain")]
            )
            .unwrap_or(0)
            > 0
    );
    assert_eq!(
        locked.counter_total("univistor_partition_messages_total"),
        0,
        "locked runtime routes nothing through mailboxes"
    );
}

/// Byte-identity and accounting differential: the same deterministic
/// mixed workload (tiling writes, random overwrites, random reads) on
/// both runtimes produces identical bytes on every read, an identical
/// aggregated `ReadTrace`, and identical placement statistics.
#[test]
fn runtimes_agree_on_bytes_traces_and_stats() {
    let run = |runtime| {
        let j = Arc::new(UniviStorJob::new(cfg(runtime)));
        let (_, reads) = mixed_workload(&j);
        (j, reads)
    };
    let (locked, locked_reads) = run(Runtime::Locked);
    let (part, part_reads) = run(Runtime::Partitioned);

    assert_eq!(locked_reads.len(), part_reads.len());
    for (i, (a, b)) in locked_reads.iter().zip(&part_reads).enumerate() {
        assert!(a.content_eq(b), "read {i} diverged between runtimes");
    }

    let (a, b) = (locked.stats(), part.stats());
    assert_eq!(a.segments, b.segments);
    assert_eq!(a.bytes_by_tier, b.bytes_by_tier);
    assert_eq!(a.bytes_by_client_tier, b.bytes_by_client_tier);
    assert_eq!(a.write_md_rpcs, b.write_md_rpcs);
    assert_eq!(a.replicated_bytes, b.replicated_bytes);
    assert_eq!(
        a.read_trace, b.read_trace,
        "ReadTrace accounting must be runtime-invariant"
    );
    assert_eq!(locked.tier_usage(), part.tier_usage());
    assert_eq!(locked.metadata_records(), part.metadata_records());
    assert_eq!(
        locked.file_size("/d").unwrap(),
        part.file_size("/d").unwrap()
    );
}

/// Fault-injection differential: under a transient-fault drizzle plus a
/// scheduled mid-workload node loss (with replication covering it), both
/// runtimes still return exactly the model's bytes — the routed path's
/// retry draws and degraded rerouting lose nothing.
#[test]
fn runtimes_agree_under_fault_injection() {
    let run = |runtime| {
        let mut cfg = UniviStorConfig::test_small(3, 2);
        cfg.runtime = runtime;
        cfg.partitions = 4;
        cfg.replicate_volatile = true;
        cfg.cal.dram_cache_capacity_per_node = 8192;
        cfg.retry.backoff_base_us = 1;
        cfg.retry.backoff_cap_us = 10;
        cfg.fault = Some(FaultConfig {
            seed: 42,
            fail_node_at: vec![(30, 0)],
            transient_prob: 0.05,
            ..FaultConfig::default()
        });
        let ranks = 6u32;
        let j = Arc::new(UniviStorJob::new(cfg));
        j.open_file("/soak")
            .write()
            .representing(ranks as usize)
            .by(client(0))
            .unwrap();
        let wave = ranks as u64 * 256;
        for w in 0..2u64 {
            for rank in 0..ranks {
                j.write(
                    client(rank),
                    "/soak",
                    w * wave + rank as u64 * 256,
                    Payload::pattern(w * 100 + rank as u64, 256),
                )
                .unwrap();
            }
        }
        j.read(client(ranks - 1), "/soak", 0, 2 * wave).unwrap()
    };
    let expected = {
        let mut model = SparseBuffer::new();
        for w in 0..2u64 {
            for rank in 0..6u64 {
                model.write(w * 1536 + rank * 256, Payload::pattern(w * 100 + rank, 256));
            }
        }
        model.read(0, 3072)
    };
    let locked = run(Runtime::Locked);
    let part = run(Runtime::Partitioned);
    assert!(
        locked.content_eq(&expected),
        "locked degraded read diverged"
    );
    assert!(
        part.content_eq(&expected),
        "partitioned degraded read diverged"
    );
}

/// Active-tiering differential: with the cadence trigger spilling and
/// promoting mid-workload, both runtimes land on identical bytes and
/// identical per-tier residency — the checkout pass sees the same heat.
#[test]
fn runtimes_agree_with_active_tiering() {
    let run = |runtime| {
        let mut c = cfg(runtime);
        c.cal.dram_cache_capacity_per_node = 1024;
        c.tiering = TieringConfig::on();
        c.tiering.drain_cadence_ops = 8;
        let j = Arc::new(UniviStorJob::new(c));
        let (model, _) = mixed_workload(&j);
        let got = j.read(client(0), "/d", 0, 4096).unwrap();
        assert!(got.content_eq(&model.read(0, 4096)));
        (j.tier_usage(), got)
    };
    let (locked_tiers, locked_bytes) = run(Runtime::Locked);
    let (part_tiers, part_bytes) = run(Runtime::Partitioned);
    assert!(locked_bytes.content_eq(&part_bytes));
    assert_eq!(
        locked_tiers, part_tiers,
        "tiering decisions must be runtime-invariant on a serial workload"
    );
}

/// The background daemon ticking over the partitioned runtime (checkout
/// passes racing routed writes and reads from two threads) never
/// corrupts data: the final patterns read back exactly.
#[test]
fn daemon_over_partitioned_runtime_preserves_bytes() {
    let mut c = cfg(Runtime::Partitioned);
    c.cal.dram_cache_capacity_per_node = 1024;
    c.tiering = TieringConfig::on();
    c.tiering.daemon_interval_ms = 1;
    let j = Arc::new(UniviStorJob::new(c));
    j.open_file("/bg")
        .read_write()
        .representing(2)
        .by(client(0))
        .unwrap();
    let daemon = TieringDaemon::spawn(j.clone());
    std::thread::scope(|s| {
        for rank in 0..2u32 {
            let j = j.clone();
            s.spawn(move || {
                for i in 0..30u64 {
                    let base = rank as u64 * 2048;
                    j.write(
                        client(rank),
                        "/bg",
                        base + (i % 4) * 512,
                        Payload::pattern(rank as u64 * 1000 + i, 512),
                    )
                    .unwrap();
                    let _ = j.read(client(rank), "/bg", base, 2048);
                }
            });
        }
    });
    daemon.shutdown();
    for rank in 0..2u64 {
        let base = rank * 2048;
        for slot in 0..4u64 {
            // Last writer to each slot: the largest i < 30 with i % 4 == slot.
            let last = 29 - (29 - slot) % 4;
            let want = Payload::pattern(rank * 1000 + last, 512);
            let got = j
                .read(client(rank as u32), "/bg", base + slot * 512, 512)
                .unwrap();
            if !got.content_eq(&want) {
                for i in 0..30u64 {
                    if got.content_eq(&Payload::pattern(rank * 1000 + i, 512)) {
                        panic!("rank {rank} slot {slot}: expected write {last}, found write {i}");
                    }
                }
                panic!("rank {rank} slot {slot}: expected write {last}, found garbage");
            }
        }
    }
}

/// A single write/read pair spanning every metadata range drives traffic
/// through **all four** partition workers, and the bytes survive the
/// scatter-gather.
#[test]
fn spans_crossing_every_partition_route_correctly() {
    let j = Arc::new(UniviStorJob::new(cfg(Runtime::Partitioned)));
    assert_eq!(j.partition_workers(), 4);
    j.open_file("/wide")
        .read_write()
        .representing(4)
        .by(client(0))
        .unwrap();
    // 8 KiB from one client: eight 1 KiB metadata ranges → all four KV
    // partitions; plus a rank on the second node so both node-buffer
    // owners see traffic.
    let wide = Payload::pattern(5, 8192);
    j.write(client(0), "/wide", 0, wide.clone()).unwrap();
    j.write(client(2), "/wide", 8192, Payload::pattern(6, 1024))
        .unwrap();
    let got = j.read(client(3), "/wide", 0, 9216).unwrap();
    assert!(got.slice(0, 8192).content_eq(&wide));
    assert!(got.slice(8192, 1024).content_eq(&Payload::pattern(6, 1024)));
    let snap = j.metrics();
    for p in 0..4 {
        let label = p.to_string();
        let n = snap
            .counter(
                "univistor_partition_messages_total",
                &[("partition", label.as_str())],
            )
            .unwrap_or(0);
        assert!(n > 0, "partition {p} saw no traffic for an all-span write");
    }
}

/// `partitions = 1` collapses the pool to a single worker that owns
/// everything — the degenerate routing case must still be exact.
#[test]
fn single_partition_pool_is_exact() {
    let mut c = cfg(Runtime::Partitioned);
    c.partitions = 1;
    let j = Arc::new(UniviStorJob::new(c));
    assert_eq!(j.partition_workers(), 1);
    let (model, _) = mixed_workload(&j);
    let got = j.read(client(0), "/d", 0, 4096).unwrap();
    assert!(got.content_eq(&model.read(0, 4096)));
}

/// `fail_node`/`restore_node` flapping while writes and reads are in
/// flight: individual operations may fail while a node is down, but
/// nothing panics, no mailbox wedges, and after the last restore a fresh
/// write reads back exactly.
#[test]
fn node_flapping_races_in_flight_messages() {
    let mut c = cfg(Runtime::Partitioned);
    c.replicate_volatile = true;
    c.cal.dram_cache_capacity_per_node = 1 << 20;
    let j = Arc::new(UniviStorJob::new(c));
    j.open_file("/flap")
        .read_write()
        .representing(4)
        .by(client(0))
        .unwrap();
    j.write(client(0), "/flap", 0, Payload::pattern(1, 4096))
        .unwrap();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let (j2, stop2) = (j.clone(), &stop);
        s.spawn(move || {
            let mut i = 0u64;
            while !stop2.load(Ordering::Acquire) {
                // Rank 1 lives on node 0, rank 2 on node 1: both sides of
                // the flap stay under load. Errors while a node is down
                // are expected; corruption or a hang is not.
                let _ = j2.write(
                    client(1 + (i % 2) as u32),
                    "/flap",
                    (i % 8) * 512,
                    Payload::pattern(i, 512),
                );
                let _ = j2.read(client((i % 4) as u32), "/flap", (i % 8) * 512, 512);
                i += 1;
            }
        });
        for _ in 0..20 {
            j.fail_node(1);
            std::thread::sleep(std::time::Duration::from_millis(1));
            j.restore_node(1);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        stop.store(true, Ordering::Release);
    });
    j.restore_node(1);
    j.write(client(0), "/flap", 0, Payload::pattern(77, 4096))
        .unwrap();
    let got = j.read(client(3), "/flap", 0, 4096).unwrap();
    assert!(got.content_eq(&Payload::pattern(77, 4096)));
}

/// Dropping the job drains every mailbox before the workers exit: the
/// fire-and-forget heat bumps queued by reads are all processed (the
/// depth gauge returns to zero) rather than thrown away mid-queue.
#[test]
fn shutdown_drains_queued_mailbox_messages() {
    let metrics;
    {
        let j = Arc::new(UniviStorJob::new(cfg(Runtime::Partitioned)));
        metrics = j.metrics_handle().clone();
        j.open_file("/q").read_write().by(client(0)).unwrap();
        j.write(client(0), "/q", 0, Payload::pattern(3, 4096))
            .unwrap();
        // Each read fires an asynchronous heat bump; drop immediately
        // after so some are still queued when shutdown begins.
        for i in 0..16u64 {
            j.read(client(0), "/q", (i % 4) * 1024, 1024).unwrap();
        }
    }
    // Workers joined: every post was matched by a dequeue.
    let snap = metrics.snapshot();
    let mut depth = 0i64;
    for p in 0..4 {
        let label = p.to_string();
        depth += snap
            .gauge(
                "univistor_partition_mailbox_depth",
                &[("partition", label.as_str())],
            )
            .unwrap_or(0);
    }
    assert_eq!(depth, 0, "shutdown left messages undrained");
    assert!(snap.counter_total("univistor_partition_messages_total") > 0);
}

/// The fused-protocol message budget: a steady-state batched write on
/// the partitioned runtime costs at most **2 awaited round-trips per
/// involved worker** (one append + one `WriteCommit` to the chain
/// owner, one `WriteCommit` to each other span owner — everything else
/// rides fire-and-forget finish posts), a fresh single-block write from
/// the block's owner costs exactly **1** (the fused fast path), and the
/// lock counters stay at zero throughout.
#[test]
fn batched_write_stays_within_two_round_trips_per_worker() {
    let j = Arc::new(UniviStorJob::new(cfg(Runtime::Partitioned)));
    assert_eq!(j.partition_workers(), 4);
    j.open_file("/rt")
        .read_write()
        .representing(4)
        .by(client(0))
        .unwrap();
    let trips = |j: &UniviStorJob| {
        j.metrics()
            .counter_total("univistor_partition_round_trips_total")
    };

    // Fused fast path: rank 0 (node 0 → worker 0) writes the first
    // metadata block, whose widened span worker 0 owns outright.
    let before = trips(&j);
    j.write(client(0), "/rt", 0, Payload::pattern(1, 1024))
        .unwrap();
    assert_eq!(
        trips(&j) - before,
        1,
        "single-owner write must commit in one fused round-trip"
    );

    // General path: 4 KiB from rank 2 spans all four KV partitions →
    // all four workers involved. One append plus one commit per span
    // owner = 5 awaited round-trips ≤ 2 × 4; the punch sweep, fragment
    // puts, buffer refresh, and releases are fire-and-forget.
    let before = trips(&j);
    j.write(client(2), "/rt", 0, Payload::pattern(2, 4096))
        .unwrap();
    let wide = trips(&j) - before;
    assert!(
        wide <= 2 * 4,
        "all-partition write took {wide} round-trips (> 2 per worker)"
    );
    assert_eq!(wide, 5, "append + one WriteCommit per span owner");

    // Overwriting the same span adds no extra awaited waves — the
    // sweep/release work stays asynchronous.
    let before = trips(&j);
    j.write(client(2), "/rt", 0, Payload::pattern(3, 4096))
        .unwrap();
    assert_eq!(trips(&j) - before, 5, "overwrite must not add waves");

    let snap = j.metrics();
    assert_eq!(
        snap.counter_total("univistor_write_lock_acquisitions_total"),
        0
    );
    assert_eq!(
        snap.counter_total("univistor_read_lock_acquisitions_total"),
        0
    );
}

/// A depth-1 mailbox still drains a write spanning every partition:
/// workers never post to other workers, so any mailbox depth ≥ 1 is
/// deadlock-free — the router just blocks (backpressure) when a worker
/// falls behind.
#[test]
fn depth_one_mailbox_drains_a_multi_partition_write() {
    let mut c = cfg(Runtime::Partitioned);
    c.mailbox_depth = 1;
    let j = Arc::new(UniviStorJob::new(c));
    assert_eq!(j.partition_workers(), 4);
    j.open_file("/narrow")
        .read_write()
        .representing(4)
        .by(client(0))
        .unwrap();
    // 8 KiB across all four workers, twice (the overwrite adds the
    // punch sweep + release fan-out), then a full read-back.
    j.write(client(0), "/narrow", 0, Payload::pattern(1, 8192))
        .unwrap();
    j.write(client(2), "/narrow", 0, Payload::pattern(2, 8192))
        .unwrap();
    let got = j.read(client(3), "/narrow", 0, 8192).unwrap();
    assert!(got.content_eq(&Payload::pattern(2, 8192)));
}

/// Rollback spanning the stages of a fused commit: a transient fault
/// exhausting the append retries inside the fused handler must leave
/// **no** partial stage behind — no chain bytes, no KV records, no byte
/// accounting, as if the write never happened.
#[test]
fn no_partial_stage_of_a_fused_commit_survives_append_failure() {
    let mut c = cfg(Runtime::Partitioned);
    c.retry.backoff_base_us = 1;
    c.retry.backoff_cap_us = 10;
    c.fault = Some(FaultConfig {
        seed: 7,
        transient_prob: 1.0, // every chain_append draw fails → retries exhaust
        ..FaultConfig::default()
    });
    let j = Arc::new(UniviStorJob::new(c));
    j.open_file("/roll").read_write().by(client(0)).unwrap();
    // Rank 0 at offset 0: the single-owner fused path.
    let err = j.write(client(0), "/roll", 0, Payload::pattern(1, 1024));
    assert!(err.is_err(), "exhausted retries must surface the fault");
    assert_eq!(j.metadata_records(), 0, "a KV record survived rollback");
    for (_, used) in j.tier_usage() {
        assert_eq!(used, 0, "chain bytes survived rollback");
    }
    assert!(
        j.stats().bytes_by_client_tier.is_empty(),
        "byte accounting survived rollback"
    );
}

/// Same-seed replay equivalence with transient faults landing *inside*
/// fused commits: both runtimes replay the identical overwrite-heavy
/// single-client workload under the same fault seed, drawing faults at
/// the same logical points (per-piece appends, the kv-insert draw, the
/// kv-lookup draw), so retries consume the same draws and the final
/// state is identical — bytes, record count, per-tier residency.
#[test]
fn runtimes_replay_identically_under_faults_mid_fused_commit() {
    let run = |runtime| {
        let mut c = cfg(runtime);
        c.retry.backoff_base_us = 1;
        c.retry.backoff_cap_us = 10;
        c.fault = Some(FaultConfig {
            seed: 1234,
            transient_prob: 0.2,
            ..FaultConfig::default()
        });
        let j = Arc::new(UniviStorJob::new(c));
        j.open_file("/replay").read_write().by(client(0)).unwrap();
        let mut model = SparseBuffer::new();
        // Rank 0 hammering block 0: every write takes the fused path,
        // and from the second on the punch + sweep run mid-fused-commit
        // under the fault drizzle.
        for i in 0..24u64 {
            let offset = (i % 4) * 256;
            let p = Payload::pattern(i, 256);
            model.write(offset, p.clone());
            j.write(client(0), "/replay", offset, p).unwrap();
        }
        let got = j.read(client(0), "/replay", 0, 1024).unwrap();
        assert!(got.content_eq(&model.read(0, 1024)), "diverged from model");
        (got, j.metadata_records(), j.tier_usage())
    };
    let (locked_bytes, locked_records, locked_tiers) = run(Runtime::Locked);
    let (part_bytes, part_records, part_tiers) = run(Runtime::Partitioned);
    assert!(locked_bytes.content_eq(&part_bytes));
    assert_eq!(locked_records, part_records);
    assert_eq!(locked_tiers, part_tiers);
}

/// Regression for the shared-read-view writer-starvation hazard: the
/// locked runtime's `ChainSet::with` acquires views by `try_read` with
/// backoff instead of parking in the rwlock's reader queue, so a
/// continuous stream of overlapping views from other threads cannot
/// starve a writer on the same chain — every queued write completes
/// while the views keep arriving.
#[test]
fn queued_writer_completes_under_read_view_stream() {
    let mut c = cfg(Runtime::Locked);
    c.partitions = 0;
    let j = Arc::new(UniviStorJob::new(c));
    j.open_file("/v").read_write().by(client(0)).unwrap();
    j.write(client(0), "/v", 0, Payload::pattern(1, 512))
        .unwrap();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        for _ in 0..2 {
            let (j1, stop1) = (j.clone(), &stop);
            s.spawn(move || {
                while !stop1.load(Ordering::Acquire) {
                    j1.with_shared_read_view(client(0), || std::hint::black_box(()))
                        .unwrap();
                }
            });
        }
        // Every write needs the chain's exclusive lock; under a
        // reader-preferring acquisition these could starve behind the
        // view stream indefinitely. They must all complete.
        for i in 0..50u64 {
            j.write(client(0), "/v", 0, Payload::pattern(2 + i, 512))
                .unwrap();
        }
        stop.store(true, Ordering::Release);
    });
    let got = j.read(client(0), "/v", 0, 512).unwrap();
    assert!(got.content_eq(&Payload::pattern(51, 512)));
}
