//! Read-pipeline properties: the batched read path (fragment planning +
//! grouped `read_at_many` fetches + the node-local read record cache +
//! readahead) must be observably identical to the per-record reference —
//! same bytes, same `ReadTrace` accounting, with and without replication
//! and failed nodes — and an overwrite must invalidate cached records
//! immediately. Plus the PR 3 interactions that were untested: promotion
//! racing overwrites, and replica routing over coalesced multi-chunk
//! records.

use std::sync::Arc;
use univistor_core::config::{PromotionPolicy, ReadPipeline, UniviStorConfig};
use univistor_core::metadata::ClientId;
use univistor_core::server::UniviStorJob;
use univistor_sim::rng::DetRng;
use univistor_sim::{Payload, SparseBuffer};

fn job(pipeline: ReadPipeline, replicate: bool) -> Arc<UniviStorJob> {
    let mut cfg = UniviStorConfig::test_small(2, 2);
    cfg.read_pipeline = pipeline;
    cfg.replicate_volatile = replicate;
    if replicate {
        // Ample DRAM so every volatile segment gets its replica placed —
        // the failure trials below depend on full replica coverage.
        cfg.cal.dram_cache_capacity_per_node = 1 << 20;
    }
    Arc::new(UniviStorJob::new(cfg))
}

/// Random writes from four ranks, then random (clipped) reads by random
/// clients, applied identically to a `PerRecord` job, a `Batched` job,
/// and a flat sparse-buffer model. Trials rotate through plain /
/// replicated / replicated-with-a-failed-node configurations. Bytes and
/// the full `ReadTrace` must agree between the pipelines in every trial.
#[test]
fn batched_read_matches_per_record_reference() {
    let mut rng = DetRng::seed(0x4ead_0004);
    for trial in 0..40u64 {
        let (replicate, fail) = match trial % 4 {
            1 => (true, false),
            2 => (true, true),
            _ => (false, false),
        };
        let jobs = [
            job(ReadPipeline::PerRecord, replicate),
            job(ReadPipeline::Batched, replicate),
        ];
        for j in &jobs {
            j.open_file("/r")
                .read_write()
                .representing(4)
                .by(ClientId::new(0, 0))
                .unwrap();
        }
        let mut model = SparseBuffer::new();
        let mut seed = trial * 1000;
        let n_writes = 1 + rng.below(24);
        for _ in 0..n_writes {
            let rank = rng.below(4) as u32;
            let offset = rng.below(2048) as u64;
            let len = 1 + rng.below(700) as u64;
            seed += 1;
            let data = Payload::pattern(seed, len);
            for j in &jobs {
                j.write(ClientId::new(0, rank), "/r", offset, data.clone())
                    .unwrap();
            }
            model.write(offset, data);
        }
        if fail {
            for j in &jobs {
                j.fail_node(1);
            }
        }
        let extents: Vec<(u64, &Payload)> = model.extents().collect();
        for _ in 0..12 {
            let (ext_off, p) = extents[rng.below(extents.len())];
            let lo = rng.below(p.len() as usize) as u64;
            let len = 1 + rng.below((p.len() - lo) as usize) as u64;
            // With node 1 failed, read from node 0's ranks.
            let reader = ClientId::new(0, rng.below(if fail { 2 } else { 4 }) as u32);
            let expect = p.slice(lo, len);
            for j in &jobs {
                let got = j.read(reader, "/r", ext_off + lo, len).unwrap();
                assert!(
                    got.content_eq(&expect),
                    "trial {trial}: read [{}, {}) diverged from the model",
                    ext_off + lo,
                    ext_off + lo + len
                );
            }
        }
        // Every written extent in full, too.
        for &(off, p) in &extents {
            for j in &jobs {
                let got = j.read(ClientId::new(0, 0), "/r", off, p.len()).unwrap();
                assert!(got.content_eq(p), "trial {trial}: extent at {off} diverged");
            }
        }
        let (a, b) = (jobs[0].stats(), jobs[1].stats());
        assert_eq!(
            a.read_trace, b.read_trace,
            "trial {trial}: ReadTrace must be pipeline-invariant"
        );
    }
}

/// An overwrite must invalidate the node's cached read records
/// immediately: the very next read sees the fresh bytes and counts as a
/// cache miss, never a stale VA.
#[test]
fn overwrite_invalidates_cached_read_records() {
    let job = Arc::new(UniviStorJob::new(UniviStorConfig::test_small(2, 2)));
    job.open_file("/c")
        .read_write()
        .representing(4)
        .by(ClientId::new(0, 0))
        .unwrap();
    // Writer on node 1, reader on node 0 — so the reader's lookups go
    // through the distributed KV (and its node's read record cache), not
    // the producer node's shared metadata buffer.
    let writer = ClientId::new(0, 2);
    let reader = ClientId::new(0, 0);
    let hits = |j: &UniviStorJob| {
        j.metrics()
            .counter_total("univistor_read_md_cache_hits_total")
    };
    let misses = |j: &UniviStorJob| {
        j.metrics()
            .counter_total("univistor_read_md_cache_misses_total")
    };
    job.write(writer, "/c", 0, Payload::pattern(1, 256))
        .unwrap();
    let got = job.read(reader, "/c", 0, 256).unwrap();
    assert!(got.content_eq(&Payload::pattern(1, 256)));
    assert_eq!((hits(&job), misses(&job)), (0, 1));
    // Same window again: served from the cache, no RPCs.
    let md_rpcs_before = job.stats().read_trace.md_rpcs;
    let got = job.read(reader, "/c", 0, 256).unwrap();
    assert!(got.content_eq(&Payload::pattern(1, 256)));
    assert_eq!((hits(&job), misses(&job)), (1, 1));
    assert_eq!(job.stats().read_trace.md_rpcs, md_rpcs_before);
    // Overwrite the middle: the cached window dies with the generation
    // bump, and the next read returns the fresh bytes at miss cost.
    job.write(writer, "/c", 64, Payload::pattern(2, 64))
        .unwrap();
    let got = job.read(reader, "/c", 0, 256).unwrap();
    assert!(got
        .slice(0, 64)
        .content_eq(&Payload::pattern(1, 256).slice(0, 64)));
    assert!(got.slice(64, 64).content_eq(&Payload::pattern(2, 64)));
    assert!(got
        .slice(128, 128)
        .content_eq(&Payload::pattern(1, 256).slice(128, 128)));
    assert_eq!((hits(&job), misses(&job)), (1, 2));
}

/// Sequential scans with readahead enabled issue far fewer metadata RPCs
/// than with it disabled, at identical bytes.
#[test]
fn readahead_cuts_metadata_rpcs_on_sequential_scans() {
    let mk = |window: u64| {
        let mut cfg = UniviStorConfig::test_small(2, 2);
        cfg.readahead_window = window;
        Arc::new(UniviStorJob::new(cfg))
    };
    let total = 4096u64;
    let step = 128u64;
    let scan = |j: &UniviStorJob| {
        j.open_file("/s")
            .read_write()
            .representing(4)
            .by(ClientId::new(0, 0))
            .unwrap();
        // Producer on node 1, scanning reader on node 0.
        j.write(ClientId::new(0, 2), "/s", 0, Payload::pattern(3, total))
            .unwrap();
        for off in (0..total).step_by(step as usize) {
            let got = j.read(ClientId::new(0, 0), "/s", off, step).unwrap();
            assert!(got.content_eq(&Payload::pattern(3, total).slice(off, step)));
        }
        j.stats().read_trace
    };
    let off_trace = scan(&mk(0));
    let on_trace = scan(&mk(1024));
    assert_eq!(off_trace.readahead_bytes, 0);
    assert!(on_trace.readahead_bytes > 0);
    assert!(
        on_trace.md_rpcs < off_trace.md_rpcs / 2,
        "readahead should batch lookups: {} vs {} RPCs",
        on_trace.md_rpcs,
        off_trace.md_rpcs
    );
    assert!(on_trace.md_cache_hits > on_trace.md_cache_misses);
    assert_eq!(on_trace.total_bytes(), off_trace.total_bytes());
}

/// Promotion racing concurrent overwrites and reads must never corrupt
/// the index: after the dust settles, the last write wins, the index
/// balances the live log bytes, and promotion still works.
#[test]
fn promotion_races_concurrent_overwrites() {
    let promote = |j: &UniviStorJob| {
        j.tiering()
            .promote_now(PromotionPolicy {
                min_reads: 1,
                min_benefit: 0.0,
            })
            .unwrap()
    };
    let job = Arc::new(UniviStorJob::new(UniviStorConfig::test_small(2, 2)));
    job.open_file("/h")
        .read_write()
        .representing(4)
        .by(ClientId::new(0, 0))
        .unwrap();
    let span = 1024u64;
    job.write(ClientId::new(0, 0), "/h", 0, Payload::pattern(0, span))
        .unwrap();
    std::thread::scope(|s| {
        let writer = job.clone();
        s.spawn(move || {
            for i in 1..40u64 {
                writer
                    .write(
                        ClientId::new(0, 1),
                        "/h",
                        (i % 7) * 128,
                        Payload::pattern(i, 256),
                    )
                    .unwrap();
            }
        });
        let reader = job.clone();
        s.spawn(move || {
            for i in 0..40u64 {
                // Heat the region; racing overwrites may briefly expose a
                // hole (punch and re-insert are not atomic), which is an
                // error, not corruption — tolerate it here.
                let _ = reader.read(ClientId::new(0, 2), "/h", (i % 4) * 256, 256);
            }
        });
        let promoter = job.clone();
        s.spawn(move || {
            for _ in 0..20 {
                promote(&promoter);
            }
        });
    });
    // Quiesce: a final known pattern must read back exactly, before and
    // after one more promotion pass.
    job.write(ClientId::new(0, 3), "/h", 0, Payload::pattern(999, span))
        .unwrap();
    let got = job.read(ClientId::new(0, 2), "/h", 0, span).unwrap();
    assert!(got.content_eq(&Payload::pattern(999, span)));
    promote(&job);
    let got = job.read(ClientId::new(0, 2), "/h", 0, span).unwrap();
    assert!(got.content_eq(&Payload::pattern(999, span)));
    // The index accounts for every live log byte: no span leaked by a
    // lost promotion race, none double-released.
    let index = job.index_of("/h").unwrap();
    let mut record_bytes = 0u64;
    for (_, r) in &index {
        record_bytes += r.len;
        if r.replica.is_some() {
            record_bytes += r.len;
        }
    }
    let live: u64 = job.tier_usage().iter().map(|(_, b)| b).sum();
    assert_eq!(record_bytes, live, "index bytes vs live log bytes");
}

/// Replica routing over a *coalesced* multi-chunk record (the PR 3
/// coalescing × failure interaction): one 1024-byte write coalesces into
/// a single record spanning four 256-byte chunks; after the producer's
/// node fails, full and unaligned sub-range reads must be served from the
/// buddy's replica, byte-exact, on both pipelines.
#[test]
fn replica_reads_span_coalesced_multi_chunk_records() {
    for pipeline in [ReadPipeline::PerRecord, ReadPipeline::Batched] {
        let j = job(pipeline, true);
        j.open_file("/x")
            .read_write()
            .representing(4)
            .by(ClientId::new(0, 0))
            .unwrap();
        // Rank 2 lives on node 1; its buddy (rank 0) on node 0.
        let data = Payload::pattern(7, 1024);
        j.write(ClientId::new(0, 2), "/x", 0, data.clone()).unwrap();
        let index = j.index_of("/x").unwrap();
        assert_eq!(index.len(), 1, "the write should coalesce to one record");
        assert_eq!(index[0].1.len, 1024);
        assert!(index[0].1.replica.is_some(), "replica must have placed");
        j.fail_node(1);
        let reader = ClientId::new(0, 0);
        let got = j.read(reader, "/x", 0, 1024).unwrap();
        assert!(got.content_eq(&data), "{pipeline:?}: full replica read");
        // Unaligned sub-range crossing two chunk boundaries.
        let got = j.read(reader, "/x", 300, 500).unwrap();
        assert!(
            got.content_eq(&data.slice(300, 500)),
            "{pipeline:?}: unaligned replica read"
        );
        let trace = j.stats().read_trace;
        assert_eq!(trace.replica_bytes, 1024 + 500);
    }
}
