//! Background-tiering integration: watermark edge cases (exactly-at,
//! zero-capacity tier), the daemon racing the close-time flush and the
//! online repair path under the fault injector, heat decay observable at
//! the job level, the `TieringHandle` control surface, and the catch-up
//! flush end to end — with byte-identity asserts throughout.

use std::sync::Arc;
use univistor_core::config::{PromotionPolicy, TierWatermarks, TieringConfig, UniviStorConfig};
use univistor_core::fault::FaultConfig;
use univistor_core::metadata::ClientId;
use univistor_core::server::UniviStorJob;
use univistor_core::tiering::TieringDaemon;
use univistor_core::va::Tier;
use univistor_mpi::driver::OpenMode;
use univistor_sim::Payload;

fn client(rank: u32) -> ClientId {
    ClientId::new(0, rank)
}

fn tier_bytes(j: &UniviStorJob, tier: Tier) -> u64 {
    j.tier_usage()
        .iter()
        .find(|(t, _)| *t == tier)
        .map(|(_, b)| *b)
        .unwrap_or(0)
}

/// A tier sitting *exactly* at its high watermark is left alone — the
/// spill trigger is strictly greater-than. One byte over, the tier
/// drains down to the low watermark.
#[test]
fn exactly_at_watermark_does_not_spill() {
    let mut cfg = UniviStorConfig::test_small(1, 2);
    cfg.tiering = TieringConfig::on();
    cfg.tiering.drain_cadence_ops = 0; // passes only when we ask
                                       // Per-client DRAM follows the c/p rule: 2048 B node capacity over
                                       // 2 procs gives client 0 a 1024 B log — high = 512 B exactly,
                                       // low = 256 B.
    cfg.cal.dram_cache_capacity_per_node = 2048;
    cfg.tiering.dram = TierWatermarks {
        high: 0.5,
        low: 0.25,
    };
    let j = Arc::new(UniviStorJob::new(cfg));
    j.open_file("/wm")
        .read_write()
        .representing(2)
        .by(client(0))
        .unwrap();
    j.write(client(0), "/wm", 0, Payload::pattern(1, 256))
        .unwrap();
    j.write(client(0), "/wm", 256, Payload::pattern(2, 256))
        .unwrap();
    assert_eq!(tier_bytes(&j, Tier::Dram), 512, "exactly at the watermark");

    let report = j.tiering().run_pass().unwrap();
    assert_eq!(report.spilled_segments, 0, "at-watermark must not spill");
    assert_eq!(tier_bytes(&j, Tier::Dram), 512);

    // One segment over the line: spill down to the low watermark.
    j.write(client(0), "/wm", 512, Payload::pattern(3, 256))
        .unwrap();
    assert_eq!(tier_bytes(&j, Tier::Dram), 768);
    let report = j.tiering().run_pass().unwrap();
    assert_eq!(report.spilled_segments, 2, "768 → 256 takes two segments");
    assert_eq!(report.spilled_bytes, 512);
    assert_eq!(tier_bytes(&j, Tier::Dram), 256);
    assert_eq!(j.tiering().stats().spilled_segments, 2);

    // Byte-identity after the shuffle.
    let got = j.read(client(1), "/wm", 0, 768).unwrap();
    for (i, seed) in [(0u64, 1u64), (256, 2), (512, 3)] {
        assert!(
            got.slice(i, 256).content_eq(&Payload::pattern(seed, 256)),
            "segment at {i} corrupted by the spill"
        );
    }
}

/// A tier whose capacity cannot hold even one chunk is filtered out of
/// the chain entirely: writes land on the next layer, passes run without
/// incident, and promotion targets the surviving top layer.
#[test]
fn zero_capacity_tier_is_dropped_from_the_chain() {
    let mut cfg = UniviStorConfig::test_small(1, 2);
    cfg.cal.dram_cache_capacity_per_node = 0;
    cfg.tiering = TieringConfig::on();
    cfg.tiering.drain_cadence_ops = 0;
    let j = Arc::new(UniviStorJob::new(cfg));
    j.open_file("/z")
        .read_write()
        .representing(2)
        .by(client(0))
        .unwrap();
    j.write(client(0), "/z", 0, Payload::pattern(4, 512))
        .unwrap();
    assert_eq!(tier_bytes(&j, Tier::Dram), 0, "DRAM layer must be absent");
    assert_eq!(tier_bytes(&j, Tier::SharedBurstBuffer), 512);

    // Heat the segment well past any threshold: it already lives on the
    // chain's top surviving layer, so promotion must leave it alone.
    for _ in 0..5 {
        j.read(client(1), "/z", 0, 512).unwrap();
    }
    let report = j.tiering().run_pass().unwrap();
    assert_eq!(report.promoted_segments, 0);
    assert_eq!(report.spilled_segments, 0);
    let got = j.read(client(0), "/z", 0, 512).unwrap();
    assert!(got.content_eq(&Payload::pattern(4, 512)));
}

/// The daemon's spill/drain passes race concurrent writes, a node
/// failure with online repair, and finally the close-time flush — under
/// transient fault injection with deterministic seeds. Whatever the
/// interleaving, the flushed PFS copy must be byte-identical to the last
/// write of every region.
#[test]
fn daemon_races_flush_and_repair_under_faults() {
    for seed in [0x7e11u64, 0xbeef, 0x5eed] {
        let mut cfg = UniviStorConfig::test_small(2, 2);
        cfg.replicate_volatile = true;
        cfg.tiering = TieringConfig::on();
        cfg.tiering.daemon_interval_ms = 1;
        cfg.tiering.drain_cadence_ops = 4;
        cfg.fault = Some(FaultConfig {
            seed,
            transient_prob: 0.03,
            ..FaultConfig::default()
        });
        let j = Arc::new(UniviStorJob::new(cfg));
        j.open_file("/race")
            .read_write()
            .representing(4)
            .by(client(0))
            .unwrap();
        let daemon = TieringDaemon::spawn(Arc::clone(&j));
        assert_eq!(daemon.actors(), 2, "one actor per node");

        // Phase 1: every rank writes its region, twice (the overwrite
        // exercises ledger invalidation against in-flight drains).
        for round in 0..2u64 {
            for rank in 0..4u32 {
                j.write(
                    client(rank),
                    "/race",
                    rank as u64 * 256,
                    Payload::pattern(10 + round * 10 + rank as u64, 256),
                )
                .unwrap();
            }
        }
        // Phase 2: lose node 1 (ranks 2, 3) mid-run, repair online while
        // the daemon keeps passing, then overwrite from the survivors.
        j.fail_node(1);
        j.rebuild_degraded().unwrap();
        for rank in 0..2u32 {
            j.write(
                client(rank),
                "/race",
                rank as u64 * 256,
                Payload::pattern(90 + rank as u64, 256),
            )
            .unwrap();
        }
        // Close while the daemon is still live: the per-file gate
        // serializes any in-flight drain against the flush.
        let receipt = j
            .close("/race", client(0), OpenMode::ReadWrite, 4, true)
            .unwrap()
            .expect("last close flushes");
        daemon.shutdown();

        assert_eq!(receipt.lost, Default::default(), "replicas covered node 1");
        let expected = [
            Payload::pattern(90, 256), // rank 0, phase 2
            Payload::pattern(91, 256), // rank 1, phase 2
            Payload::pattern(22, 256), // rank 2, phase 1 round 2
            Payload::pattern(23, 256), // rank 3, phase 1 round 2
        ];
        for (rank, want) in expected.iter().enumerate() {
            let got = j.lustre_read("/race", rank as u64 * 256, 256).unwrap();
            assert!(
                got.content_eq(want),
                "seed {seed:#x}: region {rank} diverged on the PFS"
            );
        }
    }
}

/// Heat decays: a segment read hot and then left alone loses its claim
/// to promotion after enough decay ticks, while an identical job without
/// the decay passes still promotes it.
#[test]
fn heat_decay_forgets_stale_hotness() {
    let mk = || {
        let mut cfg = UniviStorConfig::test_small(1, 1);
        cfg.cal.dram_cache_capacity_per_node = 512;
        cfg.chunk_size = 256;
        cfg.segment_size = 256;
        cfg.tiering = TieringConfig::on();
        cfg.tiering.drain_cadence_ops = 0;
        cfg.tiering.heat_decay_passes = 1; // decay on every pass
        cfg.tiering.promotion.min_reads = 1000; // passes never promote
        let j = Arc::new(UniviStorJob::new(cfg));
        j.open_file("/h").read_write().by(client(0)).unwrap();
        // 1 KiB: 512 B fills DRAM, 512 B spills to the BB.
        j.write(client(0), "/h", 0, Payload::pattern(7, 1024))
            .unwrap();
        // Heat the BB-resident half, then free DRAM by overwriting the
        // cold half (the displaced spans punch both DRAM chunks free).
        for _ in 0..3 {
            j.read(client(0), "/h", 512, 512).unwrap();
        }
        j.write(client(0), "/h", 0, Payload::pattern(8, 512))
            .unwrap();
        j
    };

    // Control: with no decay ticks the heat (3 reads) promotes at once.
    let control = mk();
    let promote = |j: &UniviStorJob, min_reads| {
        j.tiering()
            .promote_now(PromotionPolicy {
                min_reads,
                min_benefit: 0.0,
            })
            .unwrap()
            .promoted_segments
    };
    assert_eq!(promote(&control, 3), 1);

    // Three decay ticks: 3 → 1 → 0 → entry evicted.
    let j = mk();
    for _ in 0..3 {
        j.tiering().run_pass().unwrap();
    }
    assert_eq!(j.tiering().stats().heat_decays, 3);
    assert_eq!(
        promote(&j, 1),
        0,
        "decayed-out heat must no longer pin promotion"
    );
    // The shuffled file still reads exactly.
    let got = j.read(client(0), "/h", 0, 1024).unwrap();
    assert!(got.slice(0, 512).content_eq(&Payload::pattern(8, 512)));
    assert!(got
        .slice(512, 512)
        .content_eq(&Payload::pattern(7, 1024).slice(512, 512)));
}

/// `pause` gates the write-cadence trigger; `resume` re-arms it.
#[test]
fn pause_gates_the_write_cadence() {
    let mut cfg = UniviStorConfig::test_small(1, 2);
    cfg.tiering = TieringConfig::on();
    cfg.tiering.drain_cadence_ops = 4;
    let j = Arc::new(UniviStorJob::new(cfg));
    j.open_file("/p")
        .read_write()
        .representing(2)
        .by(client(0))
        .unwrap();
    let h = j.tiering();
    h.pause();
    assert!(h.is_paused());
    assert!(h.stats().paused);
    for i in 0..8u64 {
        j.write(client(0), "/p", i * 64, Payload::pattern(i, 64))
            .unwrap();
    }
    assert_eq!(h.stats().passes, 0, "paused: no automatic passes");
    h.resume();
    assert!(!h.is_paused());
    for i in 0..8u64 {
        j.write(client(1), "/p", i * 64, Payload::pattern(50 + i, 64))
            .unwrap();
    }
    assert!(h.stats().passes > 0, "resumed: the cadence fires again");
}

/// `drain_now` + close: the background copy turns the close-time flush
/// into a catch-up — the receipt accounts the skipped bytes, the metric
/// agrees, and the PFS copy is byte-identical, including a span that was
/// overwritten (and therefore invalidated and re-drained) in between.
#[test]
fn drain_now_turns_close_into_catchup() {
    let mut cfg = UniviStorConfig::test_small(1, 2);
    cfg.tiering = TieringConfig::on();
    cfg.tiering.drain_cadence_ops = 0;
    let j = Arc::new(UniviStorJob::new(cfg));
    j.open_file("/c")
        .read_write()
        .representing(2)
        .by(client(0))
        .unwrap();
    for i in 0..4u64 {
        j.write(client(0), "/c", i * 256, Payload::pattern(i, 256))
            .unwrap();
    }
    let h = j.tiering();
    let r = h.drain_now().unwrap();
    assert!(r.drained_segments > 0, "cold spans should drain ahead");
    assert_eq!(h.stats().ledger_spans, r.drained_segments);

    // Overwrite one span: its ledger entry dies immediately, and the
    // next drain copies the fresh bytes.
    let before = h.stats().ledger_spans;
    j.write(client(1), "/c", 256, Payload::pattern(40, 256))
        .unwrap();
    assert!(h.stats().ledger_spans < before, "overwrite must invalidate");
    h.drain_now().unwrap();

    let receipt = j
        .close("/c", client(0), OpenMode::ReadWrite, 2, true)
        .unwrap()
        .expect("last close flushes");
    assert!(
        receipt.drained_ahead_bytes > 0,
        "the flush should be a catch-up, not a full copy"
    );
    assert_eq!(receipt.file_size, 1024);
    assert_eq!(h.stats().catchup_skipped_bytes, receipt.drained_ahead_bytes);
    assert_eq!(
        j.metrics()
            .counter_total("univistor_tiering_catchup_skipped_bytes_total"),
        receipt.drained_ahead_bytes
    );
    assert_eq!(h.stats().ledger_spans, 0, "the flush consumed the ledger");

    for (i, seed) in [(0u64, 0u64), (256, 40), (512, 2), (768, 3)] {
        let got = j.lustre_read("/c", i, 256).unwrap();
        assert!(
            got.content_eq(&Payload::pattern(seed, 256)),
            "PFS bytes at {i} diverged (stale drained copy?)"
        );
    }
}

/// With tiering disabled (the default), the daemon starts no actors and
/// the handle still answers: `drain_now` is an explicit request and
/// works anyway, while stats start at zero.
#[test]
fn disabled_config_runs_no_actors_but_handle_still_works() {
    let j = Arc::new(UniviStorJob::new(UniviStorConfig::test_small(1, 2)));
    assert!(!j.cfg().tiering.enabled);
    let daemon = TieringDaemon::spawn(Arc::clone(&j));
    assert_eq!(daemon.actors(), 0);
    daemon.shutdown();

    j.open_file("/d")
        .read_write()
        .representing(2)
        .by(client(0))
        .unwrap();
    j.write(client(0), "/d", 0, Payload::pattern(5, 512))
        .unwrap();
    assert_eq!(j.tiering().stats().passes, 0, "no automatic activity");
    let r = j.tiering().drain_now().unwrap();
    assert!(r.drained_segments > 0, "explicit drain works when disabled");
    let receipt = j
        .close("/d", client(0), OpenMode::ReadWrite, 2, true)
        .unwrap()
        .expect("flush");
    assert_eq!(receipt.drained_ahead_bytes, 512);
    let got = j.lustre_read("/d", 0, 512).unwrap();
    assert!(got.content_eq(&Payload::pattern(5, 512)));
}

/// An explicit `promote_now` pass routes through the tiering engine:
/// promotions show up in the handle's stats and still feed the legacy
/// counter.
#[test]
fn promote_now_feeds_tiering_stats() {
    let mut cfg = UniviStorConfig::test_small(1, 1);
    cfg.cal.dram_cache_capacity_per_node = 512;
    cfg.chunk_size = 256;
    cfg.segment_size = 256;
    let j = Arc::new(UniviStorJob::new(cfg));
    j.open_file("/s").read_write().by(client(0)).unwrap();
    j.write(client(0), "/s", 0, Payload::pattern(7, 1024))
        .unwrap();
    for _ in 0..3 {
        j.read(client(0), "/s", 512, 512).unwrap();
    }
    j.write(client(0), "/s", 0, Payload::pattern(8, 512))
        .unwrap();
    let report = j
        .tiering()
        .promote_now(PromotionPolicy {
            min_reads: 3,
            min_benefit: 0.0,
        })
        .unwrap();
    assert_eq!(report.promoted_segments, 1);
    assert_eq!(j.tiering().stats().promoted_segments, 1);
    assert_eq!(j.stats().promotions, 1, "legacy counter still fed");
}
