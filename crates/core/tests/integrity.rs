//! End-to-end data-integrity tests: silent corruption is detected by the
//! write-commit checksum, reads reroute to the healthy replica and report
//! the bad copy, the scrubber repairs it online, and when no clean copy
//! exists the app gets a typed `Integrity` error — never wrong bytes.
//! The detection/reroute/repair cycle runs under both server runtimes.

use std::sync::Arc;
use univistor_core::config::{IntegrityConfig, Runtime, ScrubConfig, UniviStorConfig};
use univistor_core::fault::FaultConfig;
use univistor_core::metadata::ClientId;
use univistor_core::server::UniviStorJob;
use univistor_core::ScrubDaemon;
use univistor_sim::Payload;

fn client(rank: u32) -> ClientId {
    ClientId::new(0, rank)
}

/// 3 nodes × 2 procs, replication on, roomy DRAM, and a fault injector
/// configured (targeted corruption needs one even with zero random
/// probabilities).
fn integrity_cfg(fault: FaultConfig) -> UniviStorConfig {
    let mut cfg = UniviStorConfig::test_small(3, 2);
    cfg.replicate_volatile = true;
    cfg.cal.dram_cache_capacity_per_node = 8192;
    cfg.retry.backoff_base_us = 1;
    cfg.retry.backoff_cap_us = 10;
    cfg.fault = Some(fault);
    cfg
}

/// Every rank writes two 256 B blocks in two waves; returns the job and
/// the expected file contents.
fn write_workload(cfg: UniviStorConfig) -> (Arc<UniviStorJob>, Payload) {
    let ranks = cfg.geometry.total_procs() as u32;
    let j = Arc::new(UniviStorJob::new(cfg));
    j.open_file("/data")
        .write()
        .representing(ranks as usize)
        .by(client(0))
        .unwrap();
    let wave = ranks as u64 * 256;
    let mut blocks = Vec::new();
    for w in 0..2u64 {
        for rank in 0..ranks {
            let block = Payload::pattern(w * 100 + rank as u64, 256);
            let off = w * wave + rank as u64 * 256;
            j.write(client(rank), "/data", off, block.clone()).unwrap();
            blocks.push(block);
        }
    }
    (j, Payload::chain(blocks))
}

/// The tentpole cycle, under both runtimes: corrupt the stored primary of
/// every record, read back byte-identically (verify failures rerouted to
/// replicas), confirm the bad copies were reported, repair them with a
/// synchronous scrub, and read again clean.
#[test]
fn corruption_is_rerouted_then_repaired_under_both_runtimes() {
    for runtime in [Runtime::Locked, Runtime::Partitioned] {
        let mut cfg = integrity_cfg(FaultConfig {
            seed: 7,
            ..FaultConfig::default()
        });
        cfg.runtime = runtime;
        let (j, expected) = write_workload(cfg);

        let corrupted = j
            .corrupt_stored_range("/data", 0, expected.len(), false)
            .unwrap();
        assert!(corrupted > 0, "{runtime:?}: nothing corrupted");

        // Reads never see the flipped bytes: every fragment whose primary
        // fails its verify is refetched from the replica.
        let got = j.read(client(0), "/data", 0, expected.len()).unwrap();
        assert!(
            got.content_eq(&expected),
            "{runtime:?}: corrupted primaries leaked wrong bytes"
        );
        let snap = j.metrics();
        let read_failures = snap
            .counter(
                "univistor_integrity_verify_failures_total",
                &[("site", "read")],
            )
            .unwrap_or(0);
        assert!(
            read_failures as usize >= corrupted,
            "{runtime:?}: {corrupted} corrupt copies but only {read_failures} read verify failures"
        );
        assert!(
            snap.counter_total("univistor_scrub_corruptions_detected_total") > 0,
            "{runtime:?}: detections not counted"
        );
        let pending = j.scrub().pending_repairs();
        assert!(
            pending > 0,
            "{runtime:?}: rerouted reads must enqueue the bad copies"
        );

        // Online repair: the scrub pass drains the queue and rebuilds
        // every bad copy from its verified replica.
        let report = j.scrub().scrub_now().unwrap();
        assert!(!report.skipped, "{runtime:?}: {report:?}");
        assert!(report.queued_reports > 0, "{runtime:?}: {report:?}");
        assert!(
            report.repaired_copies >= corrupted as u64,
            "{runtime:?}: {report:?}"
        );
        assert_eq!(report.unrepaired_copies, 0, "{runtime:?}: {report:?}");
        assert_eq!(j.scrub().pending_repairs(), 0, "{runtime:?}");
        assert!(j.scrub().passes() > 0, "{runtime:?}");
        assert!(
            j.metrics().counter_total("univistor_scrub_repaired_total") >= corrupted as u64,
            "{runtime:?}"
        );

        // Post-repair reads are clean — and add no new verify failures.
        let again = j.read(client(1), "/data", 0, expected.len()).unwrap();
        assert!(
            again.content_eq(&expected),
            "{runtime:?}: repair corrupted data"
        );
        let after = j
            .metrics()
            .counter(
                "univistor_integrity_verify_failures_total",
                &[("site", "read")],
            )
            .unwrap_or(0);
        assert_eq!(
            after, read_failures,
            "{runtime:?}: repaired copies still failing verifies"
        );
    }
}

/// The scrubber's index walk finds corruption no reader has touched yet
/// (phase 2: cursor walk, not just queue draining) and repairs it.
#[test]
fn scrub_walk_repairs_unreported_corruption() {
    let (j, expected) = write_workload(integrity_cfg(FaultConfig {
        seed: 11,
        ..FaultConfig::default()
    }));
    let corrupted = j
        .corrupt_stored_range("/data", 0, expected.len(), false)
        .unwrap();
    assert!(corrupted > 0);
    assert_eq!(
        j.scrub().pending_repairs(),
        0,
        "no reader reported anything"
    );

    let report = j.scrub().scrub_now().unwrap();
    assert!(report.scanned_records > 0, "{report:?}");
    assert!(report.corrupt_copies >= corrupted as u64, "{report:?}");
    assert!(report.repaired_copies >= corrupted as u64, "{report:?}");
    assert_eq!(report.unrepaired_copies, 0, "{report:?}");
    let snap = j.metrics();
    assert!(snap.counter_total("univistor_scrub_segments_total") > 0);
    assert!(
        snap.counter(
            "univistor_integrity_verify_failures_total",
            &[("site", "scrub")]
        )
        .unwrap_or(0)
            > 0
    );

    let got = j.read(client(0), "/data", 0, expected.len()).unwrap();
    assert!(got.content_eq(&expected));
    assert_eq!(
        j.metrics()
            .counter(
                "univistor_integrity_verify_failures_total",
                &[("site", "read")]
            )
            .unwrap_or(0),
        0,
        "scrub-repaired data must read clean on the first try"
    );
}

/// With both copies corrupt, the read fails with the typed `Integrity`
/// error naming the verify site — not wrong bytes, not a panic.
#[test]
fn no_healthy_copy_is_a_typed_integrity_error() {
    let (j, expected) = write_workload(integrity_cfg(FaultConfig {
        seed: 13,
        ..FaultConfig::default()
    }));
    let corrupted = j.corrupt_stored_range("/data", 0, 256, true).unwrap();
    assert!(corrupted >= 2, "primary and replica both corrupted");

    let err = j.read(client(0), "/data", 0, 256).unwrap_err();
    assert_eq!(err.op(), "read");
    assert_eq!(err.path(), Some("/data"));
    let msg = err.to_string();
    assert!(
        msg.contains("integrity failure at read_fetch"),
        "untyped error: {msg}"
    );

    // The rest of the file is untouched and still reads clean.
    let tail = j
        .read(client(0), "/data", 256, expected.len() - 256)
        .unwrap();
    assert!(tail.content_eq(&expected.slice(256, expected.len() - 256)));
}

/// An unreplicated job has no healthy copy to reroute to: corruption of
/// the single copy is a typed error, and the scrubber reports it
/// unrepairable rather than laundering it.
#[test]
fn unreplicated_corruption_cannot_be_repaired() {
    let mut cfg = integrity_cfg(FaultConfig {
        seed: 17,
        ..FaultConfig::default()
    });
    cfg.replicate_volatile = false;
    let (j, expected) = write_workload(cfg);
    let corrupted = j.corrupt_stored_range("/data", 0, 256, false).unwrap();
    assert!(corrupted > 0);

    let err = j.read(client(0), "/data", 0, 256).unwrap_err();
    assert!(err.to_string().contains("integrity failure"), "{err}");

    let report = j.scrub().scrub_now().unwrap();
    assert!(report.corrupt_copies > 0, "{report:?}");
    assert_eq!(report.repaired_copies, 0, "{report:?}");
    assert!(report.unrepaired_copies > 0, "{report:?}");
    // Untouched spans still read.
    let tail = j
        .read(client(0), "/data", 256, expected.len() - 256)
        .unwrap();
    assert!(tail.content_eq(&expected.slice(256, expected.len() - 256)));
}

/// Random (probability-drawn) corruption replays bit-for-bit under the
/// same seed: two identical runs detect the same corruptions at the same
/// sites and return the same read outcomes.
#[test]
fn seeded_corruption_replays_deterministically() {
    let run = || {
        let fault = FaultConfig {
            seed: 99,
            corrupt_prob: 0.2,
            ..FaultConfig::default()
        };
        let (j, expected) = write_workload(integrity_cfg(fault));
        // Reads may fail when both copies drew corruption — capture the
        // outcome rather than asserting success.
        let mut outcomes = Vec::new();
        let ranks = j.cfg().geometry.total_procs() as u32;
        let wave = ranks as u64 * 256;
        for w in 0..2u64 {
            for rank in 0..ranks {
                let off = w * wave + rank as u64 * 256;
                match j.read(client(rank), "/data", off, 256) {
                    Ok(p) => {
                        assert!(
                            p.content_eq(&expected.slice(off, 256)),
                            "a successful read returned wrong bytes"
                        );
                        outcomes.push(true);
                    }
                    Err(e) => {
                        assert!(e.to_string().contains("integrity failure"), "{e}");
                        outcomes.push(false);
                    }
                }
            }
        }
        let snap = j.metrics();
        (
            outcomes,
            snap.counter(
                "univistor_integrity_verify_failures_total",
                &[("site", "read")],
            )
            .unwrap_or(0),
            snap.counter_total("univistor_scrub_corruptions_detected_total"),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same-seed corruption runs diverged");
    assert!(
        a.1 > 0,
        "a 20% draw over 12 appends should corrupt something"
    );
}

/// The background daemon: disabled configs spawn zero actors; enabled
/// configs spawn one per node and repair reader-reported corruption
/// without any synchronous scrub call.
#[test]
fn scrub_daemon_repairs_in_the_background() {
    // Disabled (the default): no threads at all.
    let (j, _) = write_workload(integrity_cfg(FaultConfig::default()));
    let idle = ScrubDaemon::spawn(Arc::clone(&j));
    assert_eq!(idle.actors(), 0, "disabled scrubber must spawn no actors");
    idle.shutdown();

    // Enabled: per-node actors drain the corrupt queue on their own.
    let mut cfg = integrity_cfg(FaultConfig {
        seed: 23,
        ..FaultConfig::default()
    });
    cfg.integrity = IntegrityConfig {
        checksums: true,
        scrub: ScrubConfig {
            interval_ms: 1,
            ..ScrubConfig::on()
        },
    };
    let nodes = cfg.geometry.nodes;
    let (j, expected) = write_workload(cfg);
    let daemon = ScrubDaemon::spawn(Arc::clone(&j));
    assert_eq!(daemon.actors(), nodes);

    let corrupted = j
        .corrupt_stored_range("/data", 0, expected.len(), false)
        .unwrap();
    assert!(corrupted > 0);
    // A read routes around the corruption and files the reports the
    // daemon will pick up.
    let got = j.read(client(0), "/data", 0, expected.len()).unwrap();
    assert!(got.content_eq(&expected));

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while j.metrics().counter_total("univistor_scrub_repaired_total") < corrupted as u64 {
        assert!(
            std::time::Instant::now() < deadline,
            "daemon did not repair {corrupted} copies in time: {:?}",
            j.metrics().counter_total("univistor_scrub_repaired_total")
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    daemon.shutdown();
    assert_eq!(j.scrub().pending_repairs(), 0);
    let again = j.read(client(1), "/data", 0, expected.len()).unwrap();
    assert!(again.content_eq(&expected));
}

/// Flushing to Lustre verifies every gathered span: with the primary
/// corrupt the flush drains from the verified replica, and the bytes on
/// the PFS match what was written.
#[test]
fn flush_gathers_from_verified_replica_when_primary_is_corrupt() {
    use univistor_mpi::driver::OpenMode;
    let (j, expected) = write_workload(integrity_cfg(FaultConfig {
        seed: 29,
        ..FaultConfig::default()
    }));
    let corrupted = j
        .corrupt_stored_range("/data", 0, expected.len(), false)
        .unwrap();
    assert!(corrupted > 0);
    let ranks = j.cfg().geometry.total_procs();
    j.close("/data", client(0), OpenMode::Write, ranks, true)
        .unwrap()
        .expect("last close flushes");
    let pfs = j.lustre_read("/data", 0, expected.len()).unwrap();
    assert!(
        pfs.content_eq(&expected),
        "flush persisted corrupt bytes to the PFS"
    );
    assert!(
        j.metrics()
            .counter(
                "univistor_integrity_verify_failures_total",
                &[("site", "flush")]
            )
            .unwrap_or(0)
            > 0,
        "the flush should have hit (and rerouted around) the corruption"
    );
}
