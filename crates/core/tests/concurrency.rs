//! Concurrency stress tests for the sharded job locks.
//!
//! The seed's `UniviStorJob` held one `Mutex<JobState>` around every
//! operation; these tests drive the sharded replacement from many OS
//! threads at once and check that (a) nothing deadlocks, (b) every byte
//! is where its writer put it, (c) the tier-accounting invariants hold,
//! and (d) the job's aggregate counters equal the sums of what each
//! thread did — i.e. no update was lost to a race.
//!
//! The stress volume scales with the build: debug runs keep CI fast,
//! and the release-mode CI job (see `.github/workflows/ci.yml`) runs the
//! full 8 × 1000-op mix where lock bugs actually get schedule pressure.

use std::sync::atomic::{AtomicU64, Ordering};
use univistor_core::config::UniviStorConfig;
use univistor_core::metadata::ClientId;
use univistor_core::server::UniviStorJob;
use univistor_core::va::Tier;
use univistor_mpi::driver::OpenMode;
use univistor_sim::Payload;

/// Write+read pairs per thread: 1000 in release (the CI stress job),
/// trimmed in debug so `cargo test` stays quick.
const OPS: usize = if cfg!(debug_assertions) { 200 } else { 1000 };
const THREADS: usize = 8;
/// Block size — one segment, so per-thread segment counts are exact.
const BLOCK: u64 = 128;
/// Distinct block slots each thread cycles over; later iterations
/// overwrite earlier ones, hammering the punch/displacement path.
const WINDOW: u64 = 8;

#[test]
fn stress_mixed_ops_eight_threads() {
    let cfg = UniviStorConfig::test_small(2, 4); // 8 procs, 2 nodes
    let dram_per_proc = cfg.cal.dram_cache_capacity_per_node / cfg.geometry.procs_per_node as u64;
    let job = UniviStorJob::new(cfg);

    let writes_done: Vec<AtomicU64> = (0..THREADS).map(|_| AtomicU64::new(0)).collect();
    let reads_done: Vec<AtomicU64> = (0..THREADS).map(|_| AtomicU64::new(0)).collect();

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let job = &job;
            let writes_done = &writes_done;
            let reads_done = &reads_done;
            s.spawn(move || {
                let client = ClientId::new(0, t as u32);
                let path = format!("/stress/{t}");
                job.connect(client);
                job.open_file(&path).read_write().by(client).unwrap();
                for i in 0..OPS {
                    let slot = i as u64 % WINDOW;
                    let seed = (t * OPS + i) as u64;
                    job.write(client, &path, slot * BLOCK, Payload::pattern(seed, BLOCK))
                        .unwrap();
                    writes_done[t].fetch_add(1, Ordering::Relaxed);
                    // Read back a slot this thread owns (its own file),
                    // sometimes the one just written, sometimes an older
                    // one — both go through the shared-lock read path.
                    let back = i as u64 % (slot + 1);
                    let got = job.read(client, &path, back * BLOCK, BLOCK).unwrap();
                    assert_eq!(got.len(), BLOCK, "thread {t} op {i}");
                    reads_done[t].fetch_add(1, Ordering::Relaxed);
                }
                // Final content: slot k holds the *last* write to k.
                for slot in 0..WINDOW {
                    let last = (0..OPS).rev().find(|i| *i as u64 % WINDOW == slot);
                    if let Some(i) = last {
                        let got = job.read(client, &path, slot * BLOCK, BLOCK).unwrap();
                        let want = Payload::pattern((t * OPS + i) as u64, BLOCK);
                        assert!(
                            got.content_eq(&want),
                            "thread {t} slot {slot}: stale or corrupt data"
                        );
                    }
                }
                job.close(&path, client, OpenMode::ReadWrite, 1, true)
                    .unwrap();
                job.disconnect(client);
            });
        }
    });

    // (c) Tier accounting invariants. Every thread's live window is
    // WINDOW × BLOCK bytes (overwrites released their predecessors
    // exactly once), and DRAM can never exceed the per-proc caps.
    let usage = job.tier_usage();
    let live: u64 = usage.iter().map(|(_, b)| *b).sum();
    assert_eq!(
        live,
        THREADS as u64 * WINDOW * BLOCK,
        "lost or leaked segments: {usage:?}"
    );
    let dram = usage
        .iter()
        .find(|(t, _)| *t == Tier::Dram)
        .map(|(_, b)| *b)
        .unwrap_or(0);
    assert!(
        dram <= THREADS as u64 * dram_per_proc,
        "DRAM over capacity: {dram}"
    );

    // (d) Aggregate counters equal the sums of per-thread work — a lost
    // update under the old global lock was impossible; it must stay
    // impossible under sharded locks.
    let total_writes: u64 = writes_done.iter().map(|c| c.load(Ordering::Relaxed)).sum();
    let total_reads: u64 = reads_done.iter().map(|c| c.load(Ordering::Relaxed)).sum();
    assert_eq!(total_writes, (THREADS * OPS) as u64);
    let stats = job.stats();
    assert_eq!(stats.opens, THREADS as u64);
    assert_eq!(stats.closes, THREADS as u64);
    // BLOCK == segment_size and every write is grid-aligned, so segments
    // placed == writes issued.
    assert_eq!(stats.segments, total_writes);
    // + WINDOW verification reads per thread after the loop.
    assert_eq!(
        stats.read_trace.requests,
        total_reads + (THREADS as u64 * WINDOW)
    );
    assert_eq!(
        stats.read_trace.total_bytes(),
        (total_reads + THREADS as u64 * WINDOW) * BLOCK
    );
    // Flush-on-close persisted each thread's file; PFS copies verify.
    assert_eq!(stats.flush_receipts.len(), THREADS);
    for t in 0..THREADS {
        assert_eq!(
            job.lustre_file_size(&format!("/stress/{t}")).unwrap(),
            WINDOW * BLOCK
        );
    }
    assert_eq!(job.connected_count(), 0);
}

#[test]
fn concurrent_readers_of_one_file_do_not_block() {
    // Satellite (b): the read path takes only shared locks, so N readers
    // of the same producer's data proceed concurrently. Run many readers
    // while holding a shared view of the producer's chain — under the old
    // whole-job mutex this deadlocks immediately.
    let job = UniviStorJob::new(UniviStorConfig::test_small(2, 4));
    let producer = ClientId::new(0, 0);
    job.open_file("/shared").write().by(producer).unwrap();
    job.write(producer, "/shared", 0, Payload::pattern(7, 1024))
        .unwrap();

    job.with_shared_read_view(producer, || {
        std::thread::scope(|s| {
            for r in 1..6u32 {
                let job = &job;
                s.spawn(move || {
                    let reader = ClientId::new(0, r);
                    for _ in 0..50 {
                        let got = job.read(reader, "/shared", 0, 1024).unwrap();
                        assert!(got.content_eq(&Payload::pattern(7, 1024)));
                    }
                });
            }
        });
    })
    .unwrap();
}

#[test]
fn concurrent_writers_then_cross_readers() {
    // Threads write disjoint ranges of ONE shared file concurrently (the
    // MPI-legal overlap-free case), then each reads a neighbour's range.
    let job = UniviStorJob::new(UniviStorConfig::test_small(2, 4));
    let ranks = 8u32;
    let per_rank = 512u64;
    job.open_file("/one")
        .write()
        .representing(ranks as usize)
        .by(ClientId::new(0, 0))
        .unwrap();
    std::thread::scope(|s| {
        for r in 0..ranks {
            let job = &job;
            s.spawn(move || {
                let c = ClientId::new(0, r);
                job.write(
                    c,
                    "/one",
                    r as u64 * per_rank,
                    Payload::pattern(r as u64, per_rank),
                )
                .unwrap();
            });
        }
    });
    assert_eq!(job.file_size("/one").unwrap(), ranks as u64 * per_rank);
    std::thread::scope(|s| {
        for r in 0..ranks {
            let job = &job;
            s.spawn(move || {
                let src = (r + 1) % ranks;
                let got = job
                    .read(ClientId::new(0, r), "/one", src as u64 * per_rank, per_rank)
                    .unwrap();
                assert!(
                    got.content_eq(&Payload::pattern(src as u64, per_rank)),
                    "rank {r} read corrupt range of rank {src}"
                );
            });
        }
    });
}
