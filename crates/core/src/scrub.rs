//! Background integrity scrubber: walk the metadata index, verify every
//! stamped copy against its write-commit checksum, and repair corrupt
//! copies online — the proactive half of the end-to-end integrity plane
//! (the reactive half lives in the read path, which reroutes around a bad
//! copy and enqueues it here).
//!
//! The scrubber is structured like the tiering engine: a pass is a
//! budgeted, per-node unit of work ([`scrub_pass`]) that any caller can
//! drive synchronously ([`ScrubHandle::scrub_now`]), and
//! [`ScrubDaemon`] runs one actor thread per node that ticks passes in
//! the background. The daemon is config-gated
//! ([`ScrubConfig::enabled`], default **off**) and spawns no threads at
//! all when disabled, so the default job pays nothing for it.
//!
//! A pass does two things, in order:
//!
//! 1. **Targeted repairs** — drain the job's [`CorruptQueue`] of the bad
//!    copies readers reported (this node's share: entries whose corrupt
//!    copy lives on a chain owned by this node's ranks), re-verify each
//!    against the current index entry (the report may be stale — the
//!    record can have been overwritten, migrated, or already repaired),
//!    and rebuild the ones still bad.
//! 2. **Index walk** — resume the node's cursor over `(fid, offset)`
//!    space, verify up to [`ScrubConfig::max_segments_per_pass`] of this
//!    node's records (both copies when replicated), repair what fails,
//!    and opportunistically stamp unstamped records whose content is
//!    unambiguous.
//!
//! Repair follows the online-repair discipline ([`crate::repair`]): read
//! the clean copy, re-verify it against the stamp, append a fresh span on
//! the bad copy's own chain ([`place_copy`] — one contiguous same-layer
//! span), swap the index entry with `replace_if_current`, and release the
//! bad span only after the swap lands. A record overwritten mid-repair
//! wins the race; the fresh span is rolled back. Appending through the
//! chain clears any injected corruption registered over the new span
//! (`FaultInjector::on_append`), so the repaired copy is genuinely clean.
//!
//! Lock order matches the data path: at most one chain lock at a time,
//! index shard locks strictly between chain acquisitions.
//!
//! [`ScrubConfig::enabled`]: crate::config::ScrubConfig
//! [`ScrubConfig::max_segments_per_pass`]: crate::config::ScrubConfig

use crate::config::UniviStorConfig;
use crate::fault::with_retries;
use crate::metadata::{ClientId, MetadataService, SegKey, SegmentRecord};
use crate::metrics::JobMetrics;
use crate::placement::ChainSet;
use crate::repair::place_copy;
use crate::server::UniviStorJob;
use crate::va::VirtualAddr;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use univistor_sim::{Payload, SimResult};

/// One bad copy a reader (or flush) detected: the record's key and the
/// exact `(client, va)` span that failed its verify. The scrubber treats
/// this as a hint, not a fact — it re-verifies against the live index
/// before touching anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorruptReport {
    /// Metadata key of the record whose copy failed.
    pub key: SegKey,
    /// Owner of the corrupt span.
    pub client: ClientId,
    /// Record-base VA of the corrupt span.
    pub va: VirtualAddr,
    /// Full record length.
    pub len: u64,
}

/// The job-level queue of reader-reported bad copies, drained by scrub
/// passes. The data path touches it only on a verify *failure*, so a
/// plain mutex'd vec is plenty; `len` is mirrored in an atomic so
/// telemetry probes never take the lock.
#[derive(Debug, Default)]
pub struct CorruptQueue {
    reports: Mutex<Vec<CorruptReport>>,
    pending: AtomicUsize,
}

impl CorruptQueue {
    /// Enqueue a report, deduplicating exact repeats (the same bad copy
    /// is typically hit by every read of its record until repaired).
    pub fn push(&self, report: CorruptReport) {
        let mut reports = self.reports.lock().expect("corrupt queue poisoned");
        if !reports.contains(&report) {
            reports.push(report);
            self.pending.store(reports.len(), Ordering::Release);
        }
    }

    /// Remove and return every report whose corrupt copy `pred` claims
    /// (per-node draining: each scrub actor takes only its own share).
    pub fn drain_matching(&self, pred: impl Fn(&CorruptReport) -> bool) -> Vec<CorruptReport> {
        let mut reports = self.reports.lock().expect("corrupt queue poisoned");
        let mut mine = Vec::new();
        reports.retain(|r| {
            if pred(r) {
                mine.push(*r);
                false
            } else {
                true
            }
        });
        self.pending.store(reports.len(), Ordering::Release);
        mine
    }

    /// Reports waiting for repair (lock-free).
    pub fn len(&self) -> usize {
        self.pending.load(Ordering::Acquire)
    }

    /// Whether no reports are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Outcome of one scrub pass (or an aggregation of passes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Index records this pass examined in its walk.
    pub scanned_records: u64,
    /// Copies that failed their checksum verify (walk and queue drain).
    pub corrupt_copies: u64,
    /// Corrupt copies rebuilt from a verified clean copy.
    pub repaired_copies: u64,
    /// Corrupt copies left in place: no healthy verified source, no room
    /// for the fresh span, or the repair lost a race to an overwrite.
    pub unrepaired_copies: u64,
    /// Unstamped records stamped from unambiguous content.
    pub restamped_records: u64,
    /// Reader reports drained from the queue by this pass.
    pub queued_reports: u64,
    /// True when the pass found another pass for the same node running
    /// and did nothing.
    pub skipped: bool,
}

impl ScrubReport {
    /// Fold another pass into this one. `skipped` ANDs: an aggregate
    /// counts as skipped only when every pass was.
    pub fn absorb(&mut self, other: &ScrubReport) {
        self.scanned_records += other.scanned_records;
        self.corrupt_copies += other.corrupt_copies;
        self.repaired_copies += other.repaired_copies;
        self.unrepaired_copies += other.unrepaired_copies;
        self.restamped_records += other.restamped_records;
        self.queued_reports += other.queued_reports;
        self.skipped &= other.skipped;
    }
}

/// Shared scrub engine state on the job: per-node walk cursors, per-node
/// pass gates, and the lifetime pass counter.
#[derive(Debug, Default)]
pub(crate) struct ScrubState {
    /// node → next `(fid, offset)` to examine; absent means start over.
    cursors: Mutex<HashMap<usize, (u64, u64)>>,
    /// One gate per node: a pass `try_lock`s it and reports `skipped`
    /// when another pass for the same node is already running.
    gates: Mutex<HashMap<usize, Arc<Mutex<()>>>>,
    pub(crate) passes: AtomicU64,
}

impl ScrubState {
    fn node_gate(&self, node: usize) -> Arc<Mutex<()>> {
        Arc::clone(
            self.gates
                .lock()
                .expect("scrub gates poisoned")
                .entry(node)
                .or_default(),
        )
    }

    fn cursor(&self, node: usize) -> (u64, u64) {
        *self
            .cursors
            .lock()
            .expect("scrub cursors poisoned")
            .get(&node)
            .unwrap_or(&(0, 0))
    }

    fn set_cursor(&self, node: usize, cursor: (u64, u64)) {
        self.cursors
            .lock()
            .expect("scrub cursors poisoned")
            .insert(node, cursor);
    }
}

/// Everything one pass needs, borrowed from the job (checkout-safe: only
/// assembled-core structures and job-level shared state).
pub(crate) struct ScrubCtx<'a> {
    pub cfg: &'a UniviStorConfig,
    pub metadata: &'a MetadataService,
    pub chains: &'a ChainSet,
    pub metrics: &'a JobMetrics,
    pub state: &'a ScrubState,
    pub queue: &'a CorruptQueue,
    /// `(fid, size)` of every written file — the walk's work list.
    pub files: Vec<(u64, u64)>,
    /// Nodes currently failed: their copies are the repair module's
    /// problem (the spans are *gone*, not corrupt), so the scrubber
    /// neither reads nor repairs them.
    pub failed: HashSet<usize>,
}

impl ScrubCtx<'_> {
    fn node_of(&self, c: ClientId) -> usize {
        self.cfg.geometry.node_of_rank(c.rank as usize)
    }

    fn node_failed(&self, c: ClientId) -> bool {
        self.failed.contains(&self.node_of(c))
    }

    /// Read the full span of one copy through the fault-aware chain path
    /// (transient faults retried; injected corruption applied — that is
    /// the point).
    fn read_copy(&self, client: ClientId, va: VirtualAddr, len: u64) -> SimResult<Payload> {
        let (payload, _) = with_retries(&self.cfg.retry, Some(self.metrics), || {
            self.chains.read_at(client, va, len)
        })?;
        Ok(payload)
    }
}

/// Which of a record's two copies a repair targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CopySel {
    Primary,
    Replica,
}

/// Rebuild one corrupt copy of `rec` from the other, verified copy. The
/// fresh span lands on the bad copy's own chain, so placement and
/// locality are unchanged; the index entry is swapped under
/// `replace_if_current` and the bad span released only after the swap.
fn repair_copy(
    ctx: &ScrubCtx<'_>,
    key: SegKey,
    rec: SegmentRecord,
    bad: CopySel,
    sum: u64,
    report: &mut ScrubReport,
) -> SimResult<()> {
    let source = match bad {
        CopySel::Primary => rec.replica,
        CopySel::Replica => Some((rec.client, rec.va)),
    };
    let Some((src_client, src_va)) = source.filter(|&(c, _)| !ctx.node_failed(c)) else {
        report.unrepaired_copies += 1;
        return Ok(());
    };
    let Ok(payload) = ctx.read_copy(src_client, src_va, rec.len) else {
        report.unrepaired_copies += 1;
        return Ok(());
    };
    if payload.content_checksum() != sum {
        // The would-be source is corrupt too: both copies bad, nothing
        // clean to rebuild from. Count the second copy's failure — the
        // caller only verified the first.
        ctx.metrics.record_verify_failure("scrub");
        report.corrupt_copies += 1;
        report.unrepaired_copies += 1;
        return Ok(());
    }
    let (bad_client, bad_va) = match bad {
        CopySel::Primary => (rec.client, rec.va),
        CopySel::Replica => rec.replica.expect("replica verified corrupt"),
    };
    let Some(new_va) = place_copy(
        ctx.chains,
        bad_client,
        &payload,
        rec.len,
        ctx.cfg.chunk_size,
        &ctx.cfg.retry,
        Some(ctx.metrics),
    )?
    else {
        // No room for one contiguous fresh span: the record stays
        // readable through its clean copy; a later pass retries.
        report.unrepaired_copies += 1;
        return Ok(());
    };
    let new_rec = match bad {
        CopySel::Primary => SegmentRecord { va: new_va, ..rec },
        CopySel::Replica => SegmentRecord {
            replica: Some((bad_client, new_va)),
            ..rec
        },
    };
    let producer_node = ctx.node_of(new_rec.client);
    if ctx
        .metadata
        .replace_if_current(key, &rec, new_rec, producer_node)
        .1
    {
        ctx.chains.release(bad_client, bad_va, rec.len);
        ctx.metrics.record_scrub_repair();
        report.repaired_copies += 1;
    } else {
        // Lost the race to an overwrite: the new data already has a
        // fresh record; drop our copy.
        ctx.chains.release(bad_client, new_va, rec.len);
        report.unrepaired_copies += 1;
    }
    Ok(())
}

/// Verify both copies of one stamped record, repairing whichever fails.
fn verify_record(
    ctx: &ScrubCtx<'_>,
    key: SegKey,
    rec: SegmentRecord,
    report: &mut ScrubReport,
) -> SimResult<()> {
    let Some(sum) = rec.checksum else {
        return restamp_record(ctx, key, rec, report);
    };
    if !ctx.node_failed(rec.client) {
        if let Ok(payload) = ctx.read_copy(rec.client, rec.va, rec.len) {
            if payload.content_checksum() != sum {
                ctx.metrics.record_verify_failure("scrub");
                report.corrupt_copies += 1;
                repair_copy(ctx, key, rec, CopySel::Primary, sum, report)?;
                // The record may have been swapped by the repair; the
                // replica (unchanged by a primary repair) is still worth
                // checking below against the original coordinates.
            }
        }
    }
    if let Some((rc, rva)) = rec.replica {
        if !ctx.node_failed(rc) {
            if let Ok(payload) = ctx.read_copy(rc, rva, rec.len) {
                if payload.content_checksum() != sum {
                    ctx.metrics.record_verify_failure("scrub");
                    report.corrupt_copies += 1;
                    // Re-read the live record: a primary repair above
                    // replaced the index entry, and the replica swap must
                    // CAS against the *current* one.
                    let (_, Some(current)) = ctx.metadata.get(&key) else {
                        report.unrepaired_copies += 1;
                        return Ok(());
                    };
                    if current.replica == rec.replica && current.checksum == Some(sum) {
                        repair_copy(ctx, key, current, CopySel::Replica, sum, report)?;
                    } else {
                        report.unrepaired_copies += 1;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Stamp an unstamped record (pre-integrity data, or an overwrite
/// fragment committed without a sub-span hash) so future reads and
/// passes can verify it. Only unambiguous content is stamped: a single
/// copy's bytes are by definition the record's content, and a
/// replicated record is stamped only when both copies hash identically —
/// disagreeing copies mean one is already rotten and stamping either
/// would launder the corruption.
fn restamp_record(
    ctx: &ScrubCtx<'_>,
    key: SegKey,
    rec: SegmentRecord,
    report: &mut ScrubReport,
) -> SimResult<()> {
    if !ctx.cfg.integrity.checksums || ctx.node_failed(rec.client) {
        return Ok(());
    }
    let Ok(payload) = ctx.read_copy(rec.client, rec.va, rec.len) else {
        return Ok(());
    };
    let sum = payload.content_checksum();
    if let Some((rc, rva)) = rec.replica {
        if ctx.node_failed(rc) {
            // Cannot compare against the lost copy; leave it for repair.
            return Ok(());
        }
        let Ok(mirror) = ctx.read_copy(rc, rva, rec.len) else {
            return Ok(());
        };
        if mirror.content_checksum() != sum {
            ctx.metrics.record_verify_failure("scrub");
            report.corrupt_copies += 1;
            report.unrepaired_copies += 1;
            return Ok(());
        }
    }
    let new_rec = SegmentRecord {
        checksum: Some(sum),
        ..rec
    };
    let producer_node = ctx.node_of(rec.client);
    if ctx
        .metadata
        .replace_if_current(key, &rec, new_rec, producer_node)
        .1
    {
        report.restamped_records += 1;
    }
    Ok(())
}

/// Run one scrub pass for `node`: drain this node's share of the corrupt
/// queue, then walk up to `max_segments_per_pass` of this node's records
/// from the resumable cursor. Returns a skipped report when a pass for
/// the same node is already running.
pub(crate) fn run_scrub_pass(ctx: &ScrubCtx<'_>, node: usize) -> SimResult<ScrubReport> {
    let mut report = ScrubReport::default();
    let gate = ctx.state.node_gate(node);
    let Ok(_node_gate) = gate.try_lock() else {
        report.skipped = true;
        return Ok(report);
    };
    ctx.state.passes.fetch_add(1, Ordering::Relaxed);

    // Phase 1: targeted repairs of reader-reported bad copies owned by
    // this node's ranks.
    let mine = ctx.queue.drain_matching(|r| ctx.node_of(r.client) == node);
    for hint in mine {
        report.queued_reports += 1;
        // Re-verify against the live index: the record may have been
        // overwritten, migrated, or repaired since the report.
        let (_, Some(rec)) = ctx.metadata.get(&hint.key) else {
            continue;
        };
        let Some(sum) = rec.checksum else { continue };
        let bad = if (rec.client, rec.va) == (hint.client, hint.va) {
            CopySel::Primary
        } else if rec.replica == Some((hint.client, hint.va)) {
            CopySel::Replica
        } else {
            continue; // stale: the span the reader saw is gone
        };
        if ctx.node_failed(hint.client) {
            continue; // node loss superseded the corruption
        }
        // Still corrupt? (A concurrent repair may have fixed it, or the
        // read may fail transiently — retry on a later pass.)
        let Ok(payload) = ctx.read_copy(hint.client, hint.va, rec.len) else {
            ctx.queue.push(hint);
            continue;
        };
        if payload.content_checksum() == sum {
            continue;
        }
        report.corrupt_copies += 1;
        repair_copy(ctx, hint.key, rec, bad, sum, &mut report)?;
    }

    // Phase 2: resumable index walk over this node's records.
    let mut budget = ctx.cfg.integrity.scrub.max_segments_per_pass;
    let mut files = ctx.files.clone();
    files.sort_unstable();
    let (cur_fid, cur_off) = ctx.state.cursor(node);
    let mut next_cursor: Option<(u64, u64)> = None;
    'walk: for &(fid, size) in files.iter().filter(|&&(fid, _)| fid >= cur_fid) {
        if size == 0 {
            continue;
        }
        let start = if fid == cur_fid { cur_off } else { 0 };
        if start >= size {
            continue;
        }
        let (_, records) = ctx.metadata.lookup_range(fid, start, size);
        for (key, rec) in records {
            if ctx.node_of(rec.client) != node {
                continue;
            }
            if budget == 0 {
                next_cursor = Some((fid, key.offset));
                break 'walk;
            }
            budget -= 1;
            report.scanned_records += 1;
            verify_record(ctx, key, rec, &mut report)?;
        }
    }
    // Budget exhausted mid-walk resumes there next pass; a completed
    // sweep wraps around to the start.
    ctx.state.set_cursor(node, next_cursor.unwrap_or((0, 0)));
    ctx.metrics.record_scrub_segments(report.scanned_records);
    Ok(report)
}

/// The scrub control surface, from [`UniviStorJob::scrub`]: run passes
/// synchronously and inspect the repair backlog.
pub struct ScrubHandle<'a> {
    job: &'a UniviStorJob,
}

impl<'a> ScrubHandle<'a> {
    pub(crate) fn new(job: &'a UniviStorJob) -> Self {
        ScrubHandle { job }
    }

    /// Run one scrub pass on every node right now, aggregating the
    /// reports. Works whether or not the background daemon is enabled.
    pub fn scrub_now(&self) -> crate::error::Result<ScrubReport> {
        let mut total = ScrubReport {
            skipped: true,
            ..ScrubReport::default()
        };
        for node in 0..self.job.cfg().geometry.nodes {
            total.absorb(&self.job.scrub_pass(node)?);
        }
        Ok(total)
    }

    /// Reader-reported bad copies waiting for repair.
    pub fn pending_repairs(&self) -> usize {
        self.job.corrupt_queue().len()
    }

    /// Lifetime scrub passes run (synchronous and daemon).
    pub fn passes(&self) -> u64 {
        self.job.scrub_state().passes.load(Ordering::Relaxed)
    }
}

/// The background scrubber: one OS thread per node, each running a scrub
/// pass every [`ScrubConfig::interval_ms`] until stopped or dropped.
/// With scrubbing disabled in the job's config, `spawn` starts no
/// threads at all.
///
/// [`ScrubConfig::interval_ms`]: crate::config::ScrubConfig
#[derive(Debug)]
pub struct ScrubDaemon {
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ScrubDaemon {
    /// Start the per-node actors for `job`.
    pub fn spawn(job: Arc<UniviStorJob>) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();
        if job.cfg().integrity.scrub.enabled {
            for node in 0..job.cfg().geometry.nodes {
                let job = Arc::clone(&job);
                let stop = Arc::clone(&stop);
                threads.push(std::thread::spawn(move || {
                    let interval = Duration::from_millis(job.cfg().integrity.scrub.interval_ms);
                    while !stop.load(Ordering::Acquire) {
                        // Pass errors are not fatal to the daemon: the
                        // next tick retries from fresh state.
                        let _ = job.scrub_pass(node);
                        std::thread::park_timeout(interval);
                    }
                }));
            }
        }
        ScrubDaemon { stop, threads }
    }

    /// Number of actor threads running (0 when scrubbing is disabled).
    pub fn actors(&self) -> usize {
        self.threads.len()
    }

    /// Signal all actors and wait for them to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            t.thread().unpark();
            let _ = t.join();
        }
    }
}

impl Drop for ScrubDaemon {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corrupt_queue_dedups_and_drains_by_owner() {
        let q = CorruptQueue::default();
        let report = |rank: u32| CorruptReport {
            key: SegKey { fid: 1, offset: 0 },
            client: ClientId::new(0, rank),
            va: VirtualAddr(0),
            len: 64,
        };
        q.push(report(0));
        q.push(report(0)); // exact repeat: deduplicated
        q.push(report(1));
        assert_eq!(q.len(), 2);
        let mine = q.drain_matching(|r| r.client.rank == 0);
        assert_eq!(mine.len(), 1);
        assert_eq!(q.len(), 1, "other owner's report stays queued");
        assert!(!q.is_empty());
        let rest = q.drain_matching(|_| true);
        assert_eq!(rest.len(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn scrub_report_absorb_sums_and_ands_skipped() {
        let mut total = ScrubReport {
            skipped: true,
            ..ScrubReport::default()
        };
        total.absorb(&ScrubReport {
            scanned_records: 3,
            corrupt_copies: 1,
            repaired_copies: 1,
            skipped: true,
            ..ScrubReport::default()
        });
        assert!(total.skipped, "all skipped so far");
        total.absorb(&ScrubReport {
            scanned_records: 2,
            skipped: false,
            ..ScrubReport::default()
        });
        assert_eq!(total.scanned_records, 5);
        assert_eq!(total.repaired_copies, 1);
        assert!(!total.skipped, "one real pass makes the aggregate real");
    }

    #[test]
    fn cursor_state_round_trips_and_defaults_to_origin() {
        let state = ScrubState::default();
        assert_eq!(state.cursor(0), (0, 0));
        state.set_cursor(0, (7, 4096));
        assert_eq!(state.cursor(0), (7, 4096));
        assert_eq!(state.cursor(1), (0, 0), "cursors are per node");
    }
}
