//! Background tiering: the always-on, watermark-driven migration engine
//! that turns the paper's one-shot close-time flush (§7) into continuous
//! placement management. One logical actor per node runs three phases:
//!
//! 1. **Spill** — when a tier's live bytes cross its high watermark the
//!    coldest segments move down the chain (DRAM → node-local → burst
//!    buffer) until the low watermark is reached, so incoming writes keep
//!    landing on the fastest layer.
//! 2. **Drain** — cold coalesced spans of open files are copied ahead to
//!    their Lustre destination while writes proceed. Each copied span is
//!    remembered in a [`DrainLedger`]; the close-time flush then skips
//!    every span whose ledger entry still matches the live index, making
//!    close a fast catch-up instead of a stop-the-world event.
//! 3. **Promote** — hot segments (per the sharded heat counters) move up
//!    to the chain's top layer when the Unimem-style benefit/cost score
//!    `heat × (c_src − c_dst) / (c_src + c_dst)` clears the policy's
//!    threshold.
//!
//! All migrations reuse the repair path's discipline
//! ([`crate::repair::place_copy`]): chunk-split sub-appends, a single
//! contiguous same-layer span or full rollback, a metadata
//! compare-and-swap, and release of exactly one copy. Drain additionally
//! guards against A-B-A overwrites with a file-generation check, and a
//! per-file gate serializes drain/flush so a close never reads spans the
//! daemon is concurrently retiring.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

use crate::config::{PromotionPolicy, UniviStorConfig};
use crate::error::Result;
use crate::fault::with_retries;
use crate::metadata::{ClientId, MetadataService, SegKey, SegmentRecord};
use crate::metrics::JobMetrics;
use crate::placement::ChainSet;
use crate::server::UniviStorJob;
use crate::striping::{adaptive_plan, naive_plan, StripePlan};
use crate::va::Tier;
use univistor_pfs::Lustre;
use univistor_sim::SimResult;

/// Relative access cost of a tier, after Unimem's NVM/DRAM cost model:
/// larger is slower. The absolute scale cancels out of the promotion
/// score; only the ratios matter.
pub fn tier_cost(tier: Tier) -> f64 {
    match tier {
        Tier::Dram => 1.0,
        Tier::NodeLocal => 4.0,
        Tier::SharedBurstBuffer => 8.0,
        Tier::Pfs => 32.0,
    }
}

/// Unimem-style benefit/cost score of moving a segment with `heat`
/// recorded reads from `from` to `to`: expected read savings
/// (`heat × (c_src − c_dst)`) normalized by the migration cost
/// (`c_src + c_dst` — one read from the source plus one write to the
/// destination). Positive only for upward moves.
pub fn promotion_score(heat: u32, from: Tier, to: Tier) -> f64 {
    let c_src = tier_cost(from);
    let c_dst = tier_cost(to);
    heat as f64 * (c_src - c_dst) / (c_src + c_dst)
}

/// Spans of one open file already copied ahead to the PFS destination.
///
/// `spans` maps segment offset → the exact [`SegmentRecord`] whose bytes
/// were copied; the close-time flush skips a span only when the live
/// index still holds that identical record (overwrites bump the file
/// generation and invalidate entries eagerly, so a stale copy is never
/// trusted). `plan` is the striping decision the destination was created
/// with — the catch-up flush reuses it so drained and flushed bytes agree
/// on layout and server attribution.
#[derive(Debug, Clone)]
pub struct DrainLedger {
    /// Striping plan the destination file was created with.
    pub(crate) plan: StripePlan,
    /// Offset → record copied to the destination.
    pub(crate) spans: BTreeMap<u64, SegmentRecord>,
}

/// Counters of one tiering pass on one node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TieringPassReport {
    /// Segments spilled down a layer.
    pub spilled_segments: u64,
    /// Bytes spilled down a layer.
    pub spilled_bytes: u64,
    /// Cold segments copied ahead to the PFS.
    pub drained_segments: u64,
    /// Bytes copied ahead to the PFS.
    pub drained_bytes: u64,
    /// Segments promoted to the chain's top layer.
    pub promoted_segments: u64,
    /// Heat-counter entries halved by this pass's decay tick.
    pub heat_entries_decayed: u64,
    /// True when the pass was skipped because another pass for the same
    /// node was already running.
    pub skipped: bool,
}

impl TieringPassReport {
    /// Fold `other` into `self` (multi-node aggregation).
    pub fn absorb(&mut self, other: &TieringPassReport) {
        self.spilled_segments += other.spilled_segments;
        self.spilled_bytes += other.spilled_bytes;
        self.drained_segments += other.drained_segments;
        self.drained_bytes += other.drained_bytes;
        self.promoted_segments += other.promoted_segments;
        self.heat_entries_decayed += other.heat_entries_decayed;
        self.skipped &= other.skipped;
    }
}

/// Lifetime totals of the tiering engine, via [`TieringHandle::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TieringStats {
    /// Passes run (manual and automatic, all nodes).
    pub passes: u64,
    /// Segments spilled down a layer.
    pub spilled_segments: u64,
    /// Bytes spilled down a layer.
    pub spilled_bytes: u64,
    /// Cold segments copied ahead to the PFS.
    pub drained_segments: u64,
    /// Bytes copied ahead to the PFS.
    pub drained_bytes: u64,
    /// Segments promoted to the chain's top layer.
    pub promoted_segments: u64,
    /// Heat-decay ticks applied.
    pub heat_decays: u64,
    /// Bytes the close-time flush skipped because the daemon had already
    /// drained them.
    pub catchup_skipped_bytes: u64,
    /// Drained spans currently remembered (not yet consumed by a flush
    /// or invalidated by an overwrite).
    pub ledger_spans: u64,
    /// True while the engine is paused.
    pub paused: bool,
}

/// Which phases one invocation of the pass runs, and under which
/// promotion policy.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PassOptions {
    pub spill: bool,
    pub drain: bool,
    pub promote: bool,
    pub decay: bool,
    pub policy: PromotionPolicy,
}

impl PassOptions {
    /// Everything the daemon runs on its cadence, policy from `cfg`.
    pub(crate) fn full(cfg: &UniviStorConfig) -> Self {
        PassOptions {
            spill: true,
            drain: true,
            promote: true,
            decay: true,
            policy: cfg.tiering.promotion,
        }
    }

    /// Drain only — [`TieringHandle::drain_now`].
    pub(crate) fn drain_only() -> Self {
        PassOptions {
            spill: false,
            drain: true,
            promote: false,
            decay: false,
            policy: PromotionPolicy::default(),
        }
    }

    /// Promotion only, under an explicit policy — the deprecated
    /// `promote_hot` shim.
    pub(crate) fn promote_only(policy: PromotionPolicy) -> Self {
        PassOptions {
            spill: false,
            drain: false,
            promote: true,
            decay: false,
            policy,
        }
    }
}

/// Shared mutable state of the tiering engine, owned by the job.
#[derive(Debug, Default)]
pub(crate) struct TieringState {
    /// Pause flag ([`TieringHandle::pause`]); automatic passes check it,
    /// explicit `drain_now`/`promote_hot` calls do not.
    pub(crate) paused: AtomicBool,
    /// Writes observed since open, for the drain cadence.
    pub(crate) write_ops: AtomicU64,
    /// Monotonic pass tick driving periodic heat decay.
    pass_clock: AtomicU64,
    /// Total spans across all drain ledgers — the write path's zero-cost
    /// fast check before taking the ledger lock.
    ledger_spans: AtomicU64,
    /// fid → drained-ahead spans.
    drain: Mutex<HashMap<u64, DrainLedger>>,
    /// (fid, node) → file generation at the last drain sweep that saw
    /// that node's whole cold set. While the generation is unchanged
    /// (every write, punch, and CAS bumps it) the node's pass skips the
    /// file's index scan outright, so steady-state passes over a quiet
    /// file cost O(1). Keyed per node because each pass only sweeps the
    /// records its own node holds. Heat decay clears the memo, since
    /// cooling can make spans drainable without touching the generation.
    drain_gen: Mutex<HashMap<(u64, usize), u64>>,
    /// fid → gate serializing drain passes against the close-time flush.
    gates: Mutex<HashMap<u64, Arc<Mutex<()>>>>,
    /// node → gate ensuring at most one pass per node at a time.
    node_gates: Mutex<HashMap<usize, Arc<Mutex<()>>>>,
    // Lifetime counters (see TieringStats).
    passes: AtomicU64,
    spilled_segments: AtomicU64,
    spilled_bytes: AtomicU64,
    drained_segments: AtomicU64,
    drained_bytes: AtomicU64,
    promoted_segments: AtomicU64,
    heat_decays: AtomicU64,
    pub(crate) catchup_skipped_bytes: AtomicU64,
}

impl TieringState {
    /// The per-file gate. A pass `try_lock`s it (skipping the file when
    /// contended); the close-time flush blocks on it so no drain write
    /// or migration release races the flush's chain reads.
    pub(crate) fn fid_gate(&self, fid: u64) -> Arc<Mutex<()>> {
        self.gates
            .lock()
            .expect("tiering gates poisoned")
            .entry(fid)
            .or_default()
            .clone()
    }

    fn node_gate(&self, node: usize) -> Arc<Mutex<()>> {
        self.node_gates
            .lock()
            .expect("tiering node gates poisoned")
            .entry(node)
            .or_default()
            .clone()
    }

    /// Drop ledger entries overlapping `[lo, hi)` of `fid`. Called by the
    /// write path after every committed write; the leading atomic check
    /// keeps the disabled-daemon cost at one relaxed load.
    pub(crate) fn invalidate(&self, fid: u64, lo: u64, hi: u64) {
        if self.ledger_spans.load(Ordering::Acquire) == 0 {
            return;
        }
        let mut drain = self.drain.lock().expect("drain ledger poisoned");
        let Some(ledger) = drain.get_mut(&fid) else {
            return;
        };
        // A span starting left of `lo` can still reach into the window.
        let scan_from = ledger
            .spans
            .range(..lo)
            .next_back()
            .map(|(o, _)| *o)
            .unwrap_or(lo);
        let doomed: Vec<u64> = ledger
            .spans
            .range(scan_from..hi)
            .filter(|(o, r)| **o + r.len > lo)
            .map(|(o, _)| *o)
            .collect();
        for offset in doomed {
            ledger.spans.remove(&offset);
            self.ledger_spans.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Consume `fid`'s ledger for a catch-up flush. Call with the file's
    /// gate held.
    pub(crate) fn take_ledger(&self, fid: u64) -> Option<DrainLedger> {
        if self.ledger_spans.load(Ordering::Acquire) == 0 {
            return None;
        }
        self.drain_gen
            .lock()
            .expect("drain memo poisoned")
            .retain(|(f, _), _| *f != fid);
        let taken = self
            .drain
            .lock()
            .expect("drain ledger poisoned")
            .remove(&fid)?;
        self.ledger_spans
            .fetch_sub(taken.spans.len() as u64, Ordering::AcqRel);
        Some(taken)
    }

    /// Current totals.
    pub(crate) fn stats(&self) -> TieringStats {
        TieringStats {
            passes: self.passes.load(Ordering::Relaxed),
            spilled_segments: self.spilled_segments.load(Ordering::Relaxed),
            spilled_bytes: self.spilled_bytes.load(Ordering::Relaxed),
            drained_segments: self.drained_segments.load(Ordering::Relaxed),
            drained_bytes: self.drained_bytes.load(Ordering::Relaxed),
            promoted_segments: self.promoted_segments.load(Ordering::Relaxed),
            heat_decays: self.heat_decays.load(Ordering::Relaxed),
            catchup_skipped_bytes: self.catchup_skipped_bytes.load(Ordering::Relaxed),
            ledger_spans: self.ledger_spans.load(Ordering::Relaxed),
            paused: self.paused.load(Ordering::Relaxed),
        }
    }
}

/// A heat shard: offset-partitioned read counters (mirrors the job's
/// layout).
pub(crate) type HeatShard = RwLock<HashMap<SegKey, AtomicU32>>;

/// One open or written file a pass may touch: fid, destination path,
/// logical size, and whether a writer still has it open.
pub(crate) type PassFile = (u64, String, u64, bool);

/// One file's share of a pass's index scan: index into [`PassCtx::files`],
/// the file generation captured just before the scan, and this node's
/// records (offset-sorted).
type ScannedFile = (usize, u64, Vec<(SegKey, SegmentRecord)>);

/// Everything one pass needs, borrowed from the job.
pub(crate) struct PassCtx<'a> {
    pub cfg: &'a UniviStorConfig,
    pub metadata: &'a MetadataService,
    pub chains: &'a ChainSet,
    pub lustre: &'a RwLock<Lustre>,
    pub heat: &'a [HeatShard],
    pub metrics: &'a JobMetrics,
    pub state: &'a TieringState,
    /// Written files visible to this pass.
    pub files: Vec<PassFile>,
    /// Nodes currently failed (drain sources must be healthy).
    pub failed: HashSet<usize>,
    /// Live open-state query against the job's file table. The `files`
    /// snapshot goes stale the moment a close completes; the drain
    /// re-checks through this while holding the file's gate (the close
    /// decrements the open count *before* taking the gate, so a
    /// gate-held true cannot be overtaken by a flush).
    pub is_open: &'a (dyn Fn(u64) -> bool + Sync),
}

/// Run one tiering pass for `node`. Returns a skipped report when a pass
/// for the same node is already running.
pub(crate) fn run_pass(
    ctx: &PassCtx<'_>,
    node: usize,
    opts: &PassOptions,
) -> SimResult<TieringPassReport> {
    let mut report = TieringPassReport::default();
    let gate = ctx.state.node_gate(node);
    let Ok(_node_gate) = gate.try_lock() else {
        report.skipped = true;
        return Ok(report);
    };
    ctx.state.passes.fetch_add(1, Ordering::Relaxed);
    ctx.metrics.record_tiering_pass();

    if opts.decay {
        let every = ctx.cfg.tiering.heat_decay_passes;
        if every > 0 {
            let tick = ctx.state.pass_clock.fetch_add(1, Ordering::Relaxed) + 1;
            if tick.is_multiple_of(every) {
                report.heat_entries_decayed = decay_heat(ctx.heat);
                ctx.state.heat_decays.fetch_add(1, Ordering::Relaxed);
                ctx.metrics.record_tiering_decay();
                // Cooling can turn hot spans drainable without bumping
                // any file generation, so the skip memo is void.
                ctx.state
                    .drain_gen
                    .lock()
                    .expect("drain memo poisoned")
                    .clear();
            }
        }
    }

    // One index scan shared by the spill and drain phases: this node's
    // records per file, offset-sorted (lookup_range returns them
    // sorted), with the file generation captured just before the scan.
    // The scan is the expensive part of a pass — it clones records and
    // briefly locks every metadata partition — so two gates keep the
    // steady state cheap: spill scans only when some layer on this node
    // is actually over its high watermark, and drain scans a file only
    // when its generation moved since the last complete sweep.
    let mut mine: Vec<ScannedFile> = Vec::new();
    let spill_needed = opts.spill && spill_pressure(ctx, node);
    if spill_needed || opts.drain {
        for (i, (fid, _path, size, open)) in ctx.files.iter().enumerate() {
            if *size == 0 {
                continue;
            }
            let gen = ctx.metadata.generation(*fid);
            let drain_wants = opts.drain
                && *open
                && ctx
                    .state
                    .drain_gen
                    .lock()
                    .expect("drain memo poisoned")
                    .get(&(*fid, node))
                    != Some(&gen);
            if !spill_needed && !drain_wants {
                continue;
            }
            let (_, records) = ctx.metadata.lookup_range(*fid, 0, *size);
            let owned: Vec<_> = records
                .into_iter()
                .filter(|(_, r)| ctx.cfg.geometry.node_of_rank(r.client.rank as usize) == node)
                .collect();
            if !owned.is_empty() {
                mine.push((i, gen, owned));
            }
        }
    }

    if spill_needed {
        spill_phase(ctx, node, &mine, &mut report)?;
    }
    if opts.drain {
        drain_phase(ctx, node, &mine, &mut report)?;
    }
    if opts.promote {
        promote_phase(ctx, node, &opts.policy, &mut report)?;
    }
    Ok(report)
}

/// Halve every heat counter, dropping entries that reach zero. Returns
/// the number of entries halved.
fn decay_heat(heat: &[HeatShard]) -> u64 {
    let mut decayed = 0u64;
    for shard in heat {
        let mut shard = shard.write().expect("heat poisoned");
        shard.retain(|_, n| {
            decayed += 1;
            let halved = n.load(Ordering::Relaxed) / 2;
            n.store(halved, Ordering::Relaxed);
            halved > 0
        });
    }
    decayed
}

/// Read `key`'s current heat (0 when never read or already decayed out).
fn heat_of(ctx: &PassCtx<'_>, key: &SegKey) -> u32 {
    let shard = &ctx.heat[ctx.metadata.partition_of(key.offset) % ctx.heat.len()];
    shard
        .read()
        .expect("heat poisoned")
        .get(key)
        .map(|n| n.load(Ordering::Relaxed))
        .unwrap_or(0)
}

/// True when any capped layer of any of `node`'s chains sits above its
/// high watermark — the cheap pre-check that decides whether the spill
/// phase needs the index scan at all.
fn spill_pressure(ctx: &PassCtx<'_>, node: usize) -> bool {
    ctx.chains
        .clients()
        .into_iter()
        .filter(|c| ctx.cfg.geometry.node_of_rank(c.rank as usize) == node)
        .any(|client| {
            let Ok(usage) = ctx.chains.with(client, |c| c.layer_usage()) else {
                return false;
            };
            usage
                .iter()
                .take(usage.len().saturating_sub(1))
                .any(|&(tier, live, cap)| {
                    cap != u64::MAX
                        && ctx
                            .cfg
                            .tiering
                            .watermarks(tier)
                            .is_some_and(|wm| live > (cap as f64 * wm.high) as u64)
                })
        })
}

/// Spill phase: walk each of the node's chains top-down; any layer above
/// its high watermark sheds its coldest segments to the next layer down
/// until it reaches the low watermark (or the pass batch runs out). The
/// trigger is strictly greater-than, so a tier sitting exactly at the
/// watermark is left alone.
fn spill_phase(
    ctx: &PassCtx<'_>,
    node: usize,
    mine: &[ScannedFile],
    report: &mut TieringPassReport,
) -> SimResult<()> {
    let mut budget = ctx.cfg.tiering.spill_batch;
    let clients: Vec<ClientId> = ctx
        .chains
        .clients()
        .into_iter()
        .filter(|c| ctx.cfg.geometry.node_of_rank(c.rank as usize) == node)
        .collect();
    for client in clients {
        if budget == 0 {
            break;
        }
        let Ok((usage, tiers)) = ctx
            .chains
            .with(client, |c| (c.layer_usage(), c.tiers().clone()))
        else {
            continue;
        };
        // This client's segments with their current layer, for cold-first
        // candidate selection.
        let pool: Vec<(SegKey, SegmentRecord, usize, u32)> = mine
            .iter()
            .flat_map(|(_, _, records)| records.iter())
            .filter(|(_, r)| r.client == client)
            .map(|(k, r)| (*k, *r, tiers.decode(r.va).0, heat_of(ctx, k)))
            .collect();
        // The last layer (PFS) has nowhere to spill to.
        let spillable = usage.len().saturating_sub(1);
        for (layer, &(tier, live, cap)) in usage.iter().enumerate().take(spillable) {
            if cap == u64::MAX {
                continue;
            }
            let Some(wm) = ctx.cfg.tiering.watermarks(tier) else {
                continue;
            };
            let high = (cap as f64 * wm.high) as u64;
            if live <= high {
                continue;
            }
            let floor = (cap as f64 * wm.low) as u64;
            let mut need = live.saturating_sub(floor);
            let mut cands: Vec<&(SegKey, SegmentRecord, usize, u32)> =
                pool.iter().filter(|(_, _, l, _)| *l == layer).collect();
            cands.sort_by_key(|(k, _, _, h)| (*h, k.offset));
            for (key, scanned, _, _) in cands {
                if need == 0 || budget == 0 {
                    break;
                }
                let gate = ctx.state.fid_gate(key.fid);
                let Ok(_gate) = gate.try_lock() else {
                    continue; // a flush owns this file right now
                };
                // Refresh: the snapshot may be stale by now.
                let (_, Some(current)) = ctx.metadata.get(key) else {
                    continue;
                };
                if current != *scanned || tiers.decode(current.va).0 != layer {
                    continue; // overwritten or already migrated
                }
                if migrate_record(ctx, *key, current, layer + 1, None)? {
                    need = need.saturating_sub(current.len);
                    budget -= 1;
                    report.spilled_segments += 1;
                    report.spilled_bytes += current.len;
                    ctx.state.spilled_segments.fetch_add(1, Ordering::Relaxed);
                    ctx.state
                        .spilled_bytes
                        .fetch_add(current.len, Ordering::Relaxed);
                    ctx.metrics.record_tiering_spill(tier, current.len);
                }
            }
        }
    }
    Ok(())
}

/// Drain phase: copy cold spans of *open* files ahead to their Lustre
/// destination and remember them in the file's ledger. Only files still
/// open for write are drained — after the close-time flush the
/// destination holds the finished file, and recreating it here would
/// clobber it.
fn drain_phase(
    ctx: &PassCtx<'_>,
    node: usize,
    mine: &[ScannedFile],
    report: &mut TieringPassReport,
) -> SimResult<()> {
    for (file_idx, scan_gen, records) in mine {
        let (fid, path, size, open) = &ctx.files[*file_idx];
        if !*open || *size == 0 {
            continue;
        }
        // The scan may have run for the spill phase's sake; skip files
        // the memo says are already fully swept at this generation.
        if ctx
            .state
            .drain_gen
            .lock()
            .expect("drain memo poisoned")
            .get(&(*fid, node))
            == Some(scan_gen)
        {
            continue;
        }
        let gate = ctx.state.fid_gate(*fid);
        let Ok(_gate) = gate.try_lock() else {
            continue; // close-time flush in progress
        };
        // The snapshot's open flag may have gone stale while this pass
        // was running: a close-time flush could have already finished
        // and draining now would recreate (and so wipe) the flushed
        // destination. Re-check under the gate, which the close cannot
        // overtake.
        if !(ctx.is_open)(*fid) {
            continue;
        }
        // Cold, healthy, not already drained; offset order up to the
        // batch size. The heat and failed-node filters run outside the
        // ledger mutex, and the already-drained check holds it only in
        // short bursts — the write path's invalidation waits on the same
        // mutex, and a long scan here would stall every concurrent
        // write. A span invalidated between bursts is simply picked up
        // again by a later pass.
        let cold: Vec<&(SegKey, SegmentRecord)> = records
            .iter()
            .filter(|(k, r)| {
                heat_of(ctx, k) <= ctx.cfg.tiering.cold_max_reads
                    && !ctx
                        .failed
                        .contains(&ctx.cfg.geometry.node_of_rank(r.client.rank as usize))
            })
            .collect();
        let mut candidates: Vec<&(SegKey, SegmentRecord)> = Vec::new();
        for burst in cold.chunks(64) {
            if candidates.len() >= ctx.cfg.tiering.drain_batch {
                break;
            }
            let drain = ctx.state.drain.lock().expect("drain ledger poisoned");
            let ledger = drain.get(fid);
            for entry @ (k, r) in burst {
                if candidates.len() >= ctx.cfg.tiering.drain_batch {
                    break;
                }
                if ledger.is_none_or(|l| l.spans.get(&k.offset) != Some(r)) {
                    candidates.push(entry);
                }
            }
        }
        // A sweep that saw the whole cold set (not cut off by the batch
        // budget) and leaves nothing behind is recorded in the memo, so
        // later passes skip this file until its generation moves.
        let mut clean = candidates.len() < ctx.cfg.tiering.drain_batch;
        if candidates.is_empty() {
            if clean {
                ctx.state
                    .drain_gen
                    .lock()
                    .expect("drain memo poisoned")
                    .insert((*fid, node), *scan_gen);
            }
            continue;
        }
        // First drain of this file: fix the striping plan and create the
        // destination, exactly as the flush would.
        let plan = {
            let existing = ctx
                .state
                .drain
                .lock()
                .expect("drain ledger poisoned")
                .get(fid)
                .map(|l| l.plan.clone());
            match existing {
                Some(p) => p,
                None => {
                    let servers = ctx.cfg.geometry.total_servers();
                    let osts = ctx.lustre.read().expect("lustre poisoned").ost_count();
                    let plan = if ctx.cfg.features.adaptive_striping {
                        adaptive_plan(
                            *size,
                            servers,
                            osts,
                            ctx.cfg.alpha,
                            ctx.cfg.cal.max_stripe_size,
                        )
                    } else {
                        naive_plan(*size, servers, osts, ctx.cfg.cal.default_stripe_size)
                    };
                    {
                        let mut pfs = ctx.lustre.write().expect("lustre poisoned");
                        if pfs.exists(path) {
                            pfs.delete(path)?;
                        }
                        pfs.create(path, plan.layout.clone())?;
                    }
                    ctx.state
                        .drain
                        .lock()
                        .expect("drain ledger poisoned")
                        .insert(
                            *fid,
                            DrainLedger {
                                plan: plan.clone(),
                                spans: BTreeMap::new(),
                            },
                        );
                    plan
                }
            }
        };
        for (key, _) in candidates {
            // Generation fence: any write/punch/CAS on this file between
            // here and the ledger commit bumps the generation, and the
            // copy is discarded instead of remembered.
            let gen0 = ctx.metadata.generation(*fid);
            let (_, Some(rec)) = ctx.metadata.get(key) else {
                continue;
            };
            let Ok((payload, _)) = with_retries(&ctx.cfg.retry, Some(ctx.metrics), || {
                ctx.chains.read_at(rec.client, rec.va, rec.len)
            }) else {
                clean = false; // transient failure: retry on a later pass
                continue;
            };
            if write_span_to_dest(ctx, path, &plan, key.offset, &payload).is_err() {
                clean = false;
                continue;
            }
            let mut drain = ctx.state.drain.lock().expect("drain ledger poisoned");
            let Some(ledger) = drain.get_mut(fid) else {
                continue;
            };
            if ctx.metadata.generation(*fid) == gen0 {
                if ledger.spans.insert(key.offset, rec).is_none() {
                    ctx.state.ledger_spans.fetch_add(1, Ordering::AcqRel);
                }
                report.drained_segments += 1;
                report.drained_bytes += rec.len;
                ctx.state.drained_segments.fetch_add(1, Ordering::Relaxed);
                ctx.state
                    .drained_bytes
                    .fetch_add(rec.len, Ordering::Relaxed);
                ctx.metrics.record_tiering_drain(rec.len);
            } else if ledger.spans.remove(&key.offset).is_some() {
                // A racing write landed mid-copy; the bytes on the PFS
                // may be stale, so forget them.
                ctx.state.ledger_spans.fetch_sub(1, Ordering::AcqRel);
            }
        }
        if clean {
            ctx.state
                .drain_gen
                .lock()
                .expect("drain memo poisoned")
                .insert((*fid, node), *scan_gen);
        }
    }
    Ok(())
}

/// Write one span's bytes to the destination file through the flush
/// plane's shared stripe writer ([`crate::flush::write_stripes`]), which
/// splits it along the plan's per-server ranges so server attribution
/// matches the flush (the last range is extended to cover growth past
/// the plan's size). The drain ignores the write's stats — its receipts
/// are the ledger entries, and the close-time catch-up accounts them.
fn write_span_to_dest(
    ctx: &PassCtx<'_>,
    dest: &str,
    plan: &StripePlan,
    lo: u64,
    payload: &univistor_sim::Payload,
) -> SimResult<()> {
    crate::flush::write_stripes(ctx.lustre, dest, plan, lo, payload.clone())?;
    Ok(())
}

/// Promotion phase: move segments whose heat and benefit/cost score
/// clear the policy up to the chain's top layer. Segments already on
/// layer 0 are skipped (which also covers DRAM-less chains, where layer
/// 0 is the node-local log).
fn promote_phase(
    ctx: &PassCtx<'_>,
    node: usize,
    policy: &PromotionPolicy,
    report: &mut TieringPassReport,
) -> SimResult<()> {
    let mut hot: Vec<(SegKey, u32)> = ctx
        .heat
        .iter()
        .flat_map(|shard| {
            let shard = shard.read().expect("heat poisoned");
            shard
                .iter()
                .map(|(k, n)| (*k, n.load(Ordering::Relaxed)))
                .filter(|(_, n)| *n >= policy.min_reads)
                .collect::<Vec<_>>()
        })
        .collect();
    // Hottest first (key as tie-break): the scarce top layer goes to the
    // most-read segments, and the order — hence the whole pass — is
    // deterministic rather than at the mercy of shard iteration order,
    // which the cross-runtime differential tests rely on.
    hot.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    for (key, heat) in hot {
        let gate = ctx.state.fid_gate(key.fid);
        let Ok(_gate) = gate.try_lock() else {
            continue;
        };
        let (_, Some(rec)) = ctx.metadata.get(&key) else {
            continue; // overwritten since it was read
        };
        if ctx.cfg.geometry.node_of_rank(rec.client.rank as usize) != node {
            continue;
        }
        let Ok(tiers) = ctx.chains.with(rec.client, |c| c.tiers().clone()) else {
            continue; // producer never connected here
        };
        let layer = tiers.decode(rec.va).0;
        if layer == 0 {
            continue; // already on the fastest layer
        }
        if promotion_score(heat, tiers.tier(layer), tiers.tier(0)) < policy.min_benefit {
            continue; // not worth the migration bytes
        }
        if migrate_record(ctx, key, rec, 0, Some(0))? {
            report.promoted_segments += 1;
            ctx.state.promoted_segments.fetch_add(1, Ordering::Relaxed);
            ctx.metrics.record_promotions(1);
            ctx.metrics.record_tiering_promotion(rec.len);
        }
    }
    Ok(())
}

/// Copy `rec`'s bytes into its producer chain at or below `min_layer`
/// and swap the index entry — the repair path's discipline: chunk-split
/// sub-appends, one contiguous same-layer span (landing exactly on
/// `require_layer` when given) or full rollback, metadata CAS, then
/// release of exactly one copy. Returns whether the migration committed;
/// failures (no space, faults, lost races) leave the segment where it
/// was.
fn migrate_record(
    ctx: &PassCtx<'_>,
    key: SegKey,
    rec: SegmentRecord,
    min_layer: usize,
    require_layer: Option<usize>,
) -> SimResult<bool> {
    let Ok((payload, _)) = with_retries(&ctx.cfg.retry, Some(ctx.metrics), || {
        ctx.chains.read_at(rec.client, rec.va, rec.len)
    }) else {
        return Ok(false);
    };
    // Never migrate a copy that fails its write-commit stamp: moving it
    // would destroy the healthy source VA this record points at. Leave
    // the segment in place for the read path / scrubber to repair.
    if let Some(sum) = rec.checksum {
        if payload.content_checksum() != sum {
            ctx.metrics.record_verify_failure("tiering");
            return Ok(false);
        }
    }
    let chunk = ctx.cfg.chunk_size;
    let mut sub = Vec::with_capacity((rec.len / chunk) as usize + 1);
    let mut pos = 0u64;
    while pos < rec.len {
        let n = chunk.min(rec.len - pos);
        sub.push(payload.slice(pos, n));
        pos += n;
    }
    let placements = match with_retries(&ctx.cfg.retry, Some(ctx.metrics), || {
        ctx.chains
            .append_many_from(rec.client, min_layer, sub.clone())
    }) {
        Ok(p) => p,
        Err(_) => return Ok(false), // out of space or fault budget
    };
    let first_layer = placements.first().map(|p| p.layer);
    let one_span = require_layer.is_none_or(|r| first_layer == Some(r))
        && placements.iter().all(|p| Some(p.layer) == first_layer)
        && placements
            .windows(2)
            .all(|w| w[0].va.0 + w[0].len == w[1].va.0);
    if !one_span {
        for p in &placements {
            ctx.chains.release(rec.client, p.va, p.len);
        }
        return Ok(false);
    }
    let placed = placements[0];
    let new_record = SegmentRecord {
        va: placed.va,
        ..rec
    };
    let node = ctx.cfg.geometry.node_of_rank(rec.client.rank as usize);
    // Swap only if nobody overwrote the entry meanwhile; the replica (if
    // any) stays referenced by the new record and is never touched.
    if ctx
        .metadata
        .replace_if_current(key, &rec, new_record, node)
        .1
    {
        ctx.chains.release(rec.client, rec.va, rec.len);
        Ok(true)
    } else {
        ctx.chains.release(rec.client, placed.va, rec.len);
        Ok(false)
    }
}

/// Control surface of the tiering engine, from [`UniviStorJob::tiering`].
///
/// `pause`/`resume` gate the *automatic* passes (daemon ticks and the
/// write-cadence trigger); the explicit [`TieringHandle::drain_now`] and
/// [`TieringHandle::run_pass`] calls always run.
#[derive(Clone, Copy)]
pub struct TieringHandle<'a> {
    job: &'a UniviStorJob,
}

impl<'a> TieringHandle<'a> {
    pub(crate) fn new(job: &'a UniviStorJob) -> Self {
        TieringHandle { job }
    }

    /// Stop automatic passes until [`TieringHandle::resume`].
    pub fn pause(&self) {
        self.job
            .tiering_state()
            .paused
            .store(true, Ordering::Release);
        self.job.metrics_handle().set_tiering_paused(true);
    }

    /// Re-enable automatic passes.
    pub fn resume(&self) {
        self.job
            .tiering_state()
            .paused
            .store(false, Ordering::Release);
        self.job.metrics_handle().set_tiering_paused(false);
    }

    /// True while paused.
    pub fn is_paused(&self) -> bool {
        self.job.tiering_state().paused.load(Ordering::Acquire)
    }

    /// Run a drain-only pass on every node right now (even while paused
    /// or with the daemon disabled), aggregating the per-node reports.
    pub fn drain_now(&self) -> Result<TieringPassReport> {
        self.job.tiering_pass_all(&PassOptions::drain_only())
    }

    /// Run one full pass (spill + drain + promote + decay tick) on every
    /// node right now.
    pub fn run_pass(&self) -> Result<TieringPassReport> {
        self.job
            .tiering_pass_all(&PassOptions::full(self.job.cfg()))
    }

    /// Run a promotion-only pass on every node right now under `policy`,
    /// without spilling, draining, or ticking heat decay. This is the
    /// replacement for the deprecated `UniviStorJob::promote_hot`.
    pub fn promote_now(&self, policy: PromotionPolicy) -> Result<TieringPassReport> {
        self.job
            .tiering_pass_all(&PassOptions::promote_only(policy))
    }

    /// Lifetime totals.
    pub fn stats(&self) -> TieringStats {
        self.job.tiering_state().stats()
    }
}

/// The background actors: one OS thread per node, each running the full
/// pass every `daemon_interval_ms` until the daemon is stopped or
/// dropped. With tiering disabled in the job's config, `spawn` starts no
/// threads at all.
#[derive(Debug)]
pub struct TieringDaemon {
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl TieringDaemon {
    /// Start the per-node actors for `job`.
    pub fn spawn(job: Arc<UniviStorJob>) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();
        if job.cfg().tiering.enabled {
            for node in 0..job.cfg().geometry.nodes {
                let job = Arc::clone(&job);
                let stop = Arc::clone(&stop);
                threads.push(std::thread::spawn(move || {
                    let interval = Duration::from_millis(job.cfg().tiering.daemon_interval_ms);
                    let opts = PassOptions::full(job.cfg());
                    while !stop.load(Ordering::Acquire) {
                        if !job.tiering_state().paused.load(Ordering::Acquire) {
                            // Pass errors are not fatal to the daemon:
                            // the next tick retries from fresh state.
                            let _ = job.tiering_pass(node, &opts);
                        }
                        std::thread::park_timeout(interval);
                    }
                }));
            }
        }
        TieringDaemon { stop, threads }
    }

    /// Number of actor threads running (0 when tiering is disabled).
    pub fn actors(&self) -> usize {
        self.threads.len()
    }

    /// Signal all actors and wait for them to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            t.thread().unpark();
            let _ = t.join();
        }
    }
}

impl Drop for TieringDaemon {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_costs_are_monotonic_down_the_hierarchy() {
        assert!(tier_cost(Tier::Dram) < tier_cost(Tier::NodeLocal));
        assert!(tier_cost(Tier::NodeLocal) < tier_cost(Tier::SharedBurstBuffer));
        assert!(tier_cost(Tier::SharedBurstBuffer) < tier_cost(Tier::Pfs));
    }

    #[test]
    fn promotion_score_rewards_heat_and_distance() {
        // Hotter segments score higher.
        assert!(
            promotion_score(8, Tier::Pfs, Tier::Dram) > promotion_score(2, Tier::Pfs, Tier::Dram)
        );
        // Farther sources score higher at equal heat.
        assert!(
            promotion_score(4, Tier::Pfs, Tier::Dram)
                > promotion_score(4, Tier::NodeLocal, Tier::Dram)
        );
        // Downward "promotion" is negative.
        assert!(promotion_score(4, Tier::Dram, Tier::Pfs) < 0.0);
        // Zero heat is never worth moving.
        assert_eq!(promotion_score(0, Tier::Pfs, Tier::Dram), 0.0);
    }

    #[test]
    fn ledger_invalidation_drops_overlaps_only() {
        let state = TieringState::default();
        let rec = |len| SegmentRecord {
            client: ClientId::new(0, 0),
            va: crate::va::VirtualAddr(0),
            len,
            replica: None,
            checksum: None,
        };
        {
            let mut drain = state.drain.lock().unwrap();
            let mut spans = BTreeMap::new();
            spans.insert(0u64, rec(64));
            spans.insert(64u64, rec(64));
            spans.insert(128u64, rec(64));
            drain.insert(
                7,
                DrainLedger {
                    plan: naive_plan(192, 2, 4, 64),
                    spans,
                },
            );
        }
        state.ledger_spans.store(3, Ordering::Release);

        // A write over [60, 70) straddles the first two spans.
        state.invalidate(7, 60, 70);
        let drain = state.drain.lock().unwrap();
        let spans = &drain.get(&7).unwrap().spans;
        assert!(!spans.contains_key(&0));
        assert!(!spans.contains_key(&64));
        assert!(spans.contains_key(&128));
        assert_eq!(state.ledger_spans.load(Ordering::Acquire), 1);
    }

    #[test]
    fn take_ledger_consumes_and_accounts() {
        let state = TieringState::default();
        assert!(state.take_ledger(9).is_none());
        {
            let mut drain = state.drain.lock().unwrap();
            let mut spans = BTreeMap::new();
            spans.insert(
                0u64,
                SegmentRecord {
                    client: ClientId::new(0, 0),
                    va: crate::va::VirtualAddr(0),
                    len: 32,
                    replica: None,
                    checksum: None,
                },
            );
            drain.insert(
                9,
                DrainLedger {
                    plan: naive_plan(32, 1, 1, 32),
                    spans,
                },
            );
        }
        state.ledger_spans.store(1, Ordering::Release);
        let taken = state.take_ledger(9).expect("ledger present");
        assert_eq!(taken.spans.len(), 1);
        assert_eq!(state.ledger_spans.load(Ordering::Acquire), 0);
        assert!(state.take_ledger(9).is_none());
    }

    #[test]
    fn heat_decay_halves_and_evicts() {
        let shards: Vec<HeatShard> = (0..2).map(|_| RwLock::new(HashMap::new())).collect();
        let key = |o| SegKey { fid: 1, offset: o };
        shards[0].write().unwrap().insert(key(0), AtomicU32::new(5));
        shards[1]
            .write()
            .unwrap()
            .insert(key(64), AtomicU32::new(1));
        assert_eq!(decay_heat(&shards), 2);
        assert_eq!(
            shards[0].read().unwrap()[&key(0)].load(Ordering::Relaxed),
            2
        );
        // 1 / 2 == 0: the entry is evicted entirely.
        assert!(shards[1].read().unwrap().get(&key(64)).is_none());
    }
}
