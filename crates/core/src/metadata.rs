//! Distributed metadata service (§II-B3, Fig. 3).
//!
//! For every file segment UniviStor keeps a record associating its logical
//! position `(FID, offset)` with the producing process (`ProcID`) and its
//! virtual address (`VA`). Records are stored in the range-partitioned
//! distributed KV of `univistor-kv`, partitioned **by logical offset** with
//! ranges assigned to servers round-robin — exactly Fig. 3.
//!
//! Additionally, each server keeps a **shared metadata buffer** of the
//! records produced on its own node (§II-B4): the location-aware read
//! service consults it first so that locally-resident data is served
//! without any server round trip.
//!
//! The service is internally synchronized: the KV shards carry their own
//! locks and each node buffer has an `RwLock`, so every method takes
//! `&self` and lookups by different clients proceed in parallel. Writers
//! targeting the same byte range concurrently are the caller's problem
//! (MPI leaves overlapping unsynchronized writes undefined); displacement
//! is claimed per record with a compare-and-delete so each displaced span
//! is released exactly once.

use crate::fault::FaultInjector;
use crate::va::VirtualAddr;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, RwLock};
use univistor_kv::{DistKv, PartitionKey, ServerId};
use univistor_sim::SimResult;

/// A client process: which coupled application and which global rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClientId {
    /// Application index within the job (App 1, App 2, … of Fig. 1).
    pub app: u32,
    /// Global MPI rank within that application.
    pub rank: u32,
}

impl ClientId {
    /// Convenience constructor.
    pub fn new(app: u32, rank: u32) -> Self {
        ClientId { app, rank }
    }
}

/// Metadata key: file id + logical offset (Fig. 3's FID / offset columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SegKey {
    /// File id.
    pub fid: u64,
    /// Logical offset of the segment's first byte.
    pub offset: u64,
}

impl PartitionKey for SegKey {
    fn partition_point(&self) -> u64 {
        self.offset
    }
}

/// Metadata value: producing process + VA + length (Fig. 3's ProcID / VA),
/// optionally with a resilience replica (the paper's future work: "adding
/// resilience to data in volatile storage layers").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentRecord {
    /// The producer.
    pub client: ClientId,
    /// Virtual address within the producer's log chain.
    pub va: VirtualAddr,
    /// Segment length in bytes.
    pub len: u64,
    /// Replica location: (buddy client, VA within the buddy's chain).
    pub replica: Option<(ClientId, VirtualAddr)>,
    /// Content checksum over the record's full payload span (the
    /// streaming digest of [`univistor_sim::Checksum`]), stamped at
    /// write commit and carried unchanged across legitimate data moves
    /// (migration, repair — the bytes are identical, so the checksum is
    /// too). `None` marks an unprotected record: overwrite fragments lose
    /// their stamp (the digest covers the whole span, a sub-span's digest
    /// cannot be derived from it) until the scrubber re-stamps them, and
    /// jobs with the integrity plane disabled never stamp at all.
    pub checksum: Option<u64>,
}

impl SegmentRecord {
    /// A record without a replica or a checksum stamp.
    pub fn new(client: ClientId, va: VirtualAddr, len: u64) -> Self {
        SegmentRecord {
            client,
            va,
            len,
            replica: None,
            checksum: None,
        }
    }
}

/// A record trimmed out of the index by an overlapping write; the caller
/// releases the corresponding log bytes (and the replica's, if any).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Displaced {
    /// Producer of the displaced bytes.
    pub client: ClientId,
    /// VA of the first displaced byte.
    pub va: VirtualAddr,
    /// Displaced byte count.
    pub len: u64,
    /// The replica span displaced along with it.
    pub replica: Option<(ClientId, VirtualAddr)>,
}

/// Lock-acquisition accounting for one batched metadata commit, reported so
/// the write pipeline can expose per-call lock costs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitStats {
    /// KV shard lock acquisitions: shared scan visits plus exclusive
    /// claim/fragment/record groups.
    pub kv_shard_acquisitions: u64,
    /// Node shared-metadata-buffer write-lock acquisitions.
    pub node_buffer_acquisitions: u64,
}

/// Result of [`MetadataService::insert_batch`]: the spans trimmed out of the
/// index (for the caller to release) plus the lock accounting for the commit.
#[derive(Debug, Clone, Default)]
pub struct BatchOutcome {
    /// Spans displaced by the punch over the batch's full range.
    pub displaced: Vec<Displaced>,
    /// Lock acquisitions spent on the whole commit.
    pub locks: CommitStats,
}

/// One cached lookup window in a node's read record cache: the records
/// that intersected `[lo, hi)` of a fid at generation `gen` (the BTreeMap
/// key is `lo`).
#[derive(Debug, Clone)]
pub(crate) struct CacheEntry {
    /// Exclusive end of the cached window.
    pub(crate) hi: u64,
    /// The fid's generation when the window was fetched; a mismatch at
    /// hit time means an intervening mutation and the entry is dead.
    pub(crate) gen: u64,
    /// Records intersecting the window, offset-sorted.
    pub(crate) records: Vec<(SegKey, SegmentRecord)>,
}

/// Cached windows kept per `(node, fid)` before the whole fid map is
/// dropped — a safety valve for pathological random-read patterns, not a
/// tuned working-set size.
pub(crate) const READ_CACHE_WINDOWS_PER_FID: usize = 128;

/// The geometry of one record `(k, v)` overlapped by a punch of `[lo, hi)`:
/// surviving left/right fragments plus the displaced middle. Shared between
/// [`MetadataService::punch`]'s batched implementation and the partitioned
/// runtime's `WriteCommit`/`WriteFused` handlers so both compute
/// byte-identical fragment VAs. Note the fragment keys can never collide
/// with the batch's new record keys: a left fragment keeps its original
/// offset `< lo`, the right fragment sits exactly at `hi`, and new
/// records lie in `[lo, hi)` — which is what lets the fused commit order
/// fragment puts and record puts freely within one handler pass.
pub(crate) fn split_overlapped(
    k: SegKey,
    v: SegmentRecord,
    lo: u64,
    hi: u64,
    fragments: &mut Vec<(SegKey, SegmentRecord)>,
) -> Displaced {
    let seg_end = k.offset + v.len;
    // Left fragment survives.
    if k.offset < lo {
        let keep = lo - k.offset;
        // Fragments lose the checksum stamp: the digest covers the whole
        // span, so a sub-span's digest cannot be derived from it. The
        // scrubber re-stamps unprotected fragments on its next pass.
        let frag = SegmentRecord {
            client: v.client,
            va: v.va,
            len: keep,
            replica: v.replica,
            checksum: None,
        };
        fragments.push((k, frag));
    }
    // Right fragment survives. (At most one record extends past `hi`, so
    // the fragment key `{fid, hi}` is unique.)
    if seg_end > hi {
        let skip = hi - k.offset;
        let frag = SegmentRecord {
            client: v.client,
            va: VirtualAddr(v.va.0 + skip),
            len: seg_end - hi,
            replica: v.replica.map(|(c, rva)| (c, VirtualAddr(rva.0 + skip))),
            checksum: None,
        };
        fragments.push((
            SegKey {
                fid: k.fid,
                offset: hi,
            },
            frag,
        ));
    }
    // Displaced middle.
    let cut_lo = lo.max(k.offset);
    let cut_hi = hi.min(seg_end);
    let off = cut_lo - k.offset;
    Displaced {
        client: v.client,
        va: VirtualAddr(v.va.0 + off),
        len: cut_hi - cut_lo,
        replica: v.replica.map(|(c, rva)| (c, VirtualAddr(rva.0 + off))),
    }
}

/// The distributed metadata service plus per-node shared metadata buffers.
#[derive(Debug)]
pub struct MetadataService {
    kv: DistKv<SegKey, SegmentRecord>,
    /// Per node: fid → offset → record, for records produced on that node.
    local: Vec<RwLock<HashMap<u64, BTreeMap<u64, SegmentRecord>>>>,
    /// Per node: fid → window lo → cached lookup result (the read record
    /// cache). Entries are validated against `generations` at hit time,
    /// so mutators only bump a counter instead of chasing cached copies.
    read_cache: Vec<RwLock<HashMap<u64, BTreeMap<u64, CacheEntry>>>>,
    /// Per fid: mutation generation. Bumped after every index mutation
    /// (`insert`, `insert_batch`, `punch`, `replace_if_current`), which
    /// atomically invalidates every cached window of the fid. Behind an
    /// `Arc` so the partitioned runtime's router shares the same counters
    /// with the service it periodically checks out.
    generations: Arc<RwLock<HashMap<u64, u64>>>,
    /// Fault injector shared with the job; `None` (the default) costs the
    /// KV entry points only this `Option` check.
    injector: Option<Arc<FaultInjector>>,
}

impl MetadataService {
    /// A service over `servers` metadata servers and `nodes` compute nodes.
    pub fn new(range_size: u64, servers: usize, nodes: usize) -> Self {
        MetadataService {
            kv: DistKv::new(range_size, servers),
            local: (0..nodes).map(|_| RwLock::new(HashMap::new())).collect(),
            read_cache: (0..nodes).map(|_| RwLock::new(HashMap::new())).collect(),
            generations: Arc::new(RwLock::new(HashMap::new())),
            injector: None,
        }
    }

    /// Reassemble a service from partition-owned state (the partitioned
    /// runtime's checkout path). `generations` is the shared handle cloned
    /// at construction, so cached-window validation survives round trips.
    #[allow(clippy::type_complexity, clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        range_size: u64,
        shards: Vec<BTreeMap<SegKey, SegmentRecord>>,
        puts: Vec<u64>,
        gets: Vec<u64>,
        local: Vec<HashMap<u64, BTreeMap<u64, SegmentRecord>>>,
        read_cache: Vec<HashMap<u64, BTreeMap<u64, CacheEntry>>>,
        generations: Arc<RwLock<HashMap<u64, u64>>>,
        injector: Option<Arc<FaultInjector>>,
    ) -> Self {
        MetadataService {
            kv: DistKv::from_parts(range_size, shards, puts, gets),
            local: local.into_iter().map(RwLock::new).collect(),
            read_cache: read_cache.into_iter().map(RwLock::new).collect(),
            generations,
            injector,
        }
    }

    /// Disassemble the service back into partition-owned state (end of a
    /// checkout): KV shards + counters, node buffers, and read caches.
    #[allow(clippy::type_complexity)]
    pub(crate) fn into_parts(
        self,
    ) -> (
        Vec<BTreeMap<SegKey, SegmentRecord>>,
        Vec<u64>,
        Vec<u64>,
        Vec<HashMap<u64, BTreeMap<u64, SegmentRecord>>>,
        Vec<HashMap<u64, BTreeMap<u64, CacheEntry>>>,
    ) {
        let (shards, puts, gets) = self.kv.into_parts();
        let local = self
            .local
            .into_iter()
            .map(|l| l.into_inner().expect("node buffer poisoned"))
            .collect();
        let read_cache = self
            .read_cache
            .into_iter()
            .map(|c| c.into_inner().expect("read cache poisoned"))
            .collect();
        (shards, puts, gets, local, read_cache)
    }

    /// Install the fault injector (at job construction, before the service
    /// is shared). Batched KV commits and cached lookups then draw from its
    /// schedule, failing *before* any state is mutated so retries are safe.
    pub fn set_injector(&mut self, injector: Arc<FaultInjector>) {
        self.injector = Some(injector);
    }

    fn inject(&self, site: &'static str) -> SimResult<()> {
        match &self.injector {
            Some(inj) => inj.inject(site, None),
            None => Ok(()),
        }
    }

    /// The fid's current mutation generation (0 if never mutated).
    pub fn generation(&self, fid: u64) -> u64 {
        self.generations
            .read()
            .expect("generations poisoned")
            .get(&fid)
            .copied()
            .unwrap_or(0)
    }

    /// Invalidate every cached read window of `fid`. Called after a
    /// mutation has fully landed in the KV and node buffers, so a reader
    /// that captured the old generation before the mutation can never
    /// install (or keep trusting) a pre-mutation window.
    pub(crate) fn bump_generation(&self, fid: u64) {
        *self
            .generations
            .write()
            .expect("generations poisoned")
            .entry(fid)
            .or_insert(0) += 1;
    }

    /// Insert a record for a fresh segment, also caching it in the
    /// producer node's shared metadata buffer. Any overlapped older
    /// records are trimmed/removed; the displaced spans are returned so
    /// the caller can release log space.
    pub fn insert(
        &self,
        key: SegKey,
        record: SegmentRecord,
        producer_node: usize,
    ) -> (ServerId, Vec<Displaced>) {
        // The left-widened overlap scans in `punch`/`lookup_range` assume
        // no record is longer than one metadata range.
        assert!(
            record.len <= self.kv.partitioner().range_size,
            "segment length {} exceeds metadata range size {}",
            record.len,
            self.kv.partitioner().range_size
        );
        let mut locks = CommitStats::default();
        let displaced = self.punch_inner(key.fid, key.offset, key.offset + record.len, &mut locks);
        let (server, _) = self.kv.put(key, record);
        self.local[producer_node]
            .write()
            .expect("node buffer poisoned")
            .entry(key.fid)
            .or_default()
            .insert(key.offset, record);
        self.bump_generation(key.fid);
        (server, displaced)
    }

    /// Remove every byte of `[lo, hi)` of `fid` from the index, trimming
    /// partially-overlapped records. Returns the displaced spans. Each
    /// overlapped record is claimed with a compare-and-delete, so when two
    /// punches race over the same record only one of them reports (and
    /// later releases) its span.
    pub fn punch(&self, fid: u64, lo: u64, hi: u64) -> Vec<Displaced> {
        let mut locks = CommitStats::default();
        let displaced = self.punch_inner(fid, lo, hi, &mut locks);
        if !displaced.is_empty() {
            self.bump_generation(fid);
        }
        displaced
    }

    /// The punch implementation, shared with [`insert_batch`](Self::insert_batch).
    /// Batched end to end: one borrowing scan collects the overlapping
    /// records, one grouped compare-and-delete claims them, one grouped put
    /// reinserts the surviving fragments, and a single pass over the node
    /// buffers (one write-lock acquisition each) drops the claimed keys and
    /// re-caches the fragments — versus one full node-buffer sweep per
    /// record on the old per-record path. Lock acquisitions are added to
    /// `locks`.
    fn punch_inner(&self, fid: u64, lo: u64, hi: u64, locks: &mut CommitStats) -> Vec<Displaced> {
        if lo >= hi {
            return Vec::new();
        }
        // A record starting before `lo` can still overlap; widen the scan
        // to the left by the maximum record length we may have stored. We
        // do not know that bound, so scan from 0 … in practice records are
        // bounded by the segment size; but correctness first: scan keys in
        // [0, hi) and filter by actual overlap. To avoid full scans we
        // exploit that records never exceed one metadata range: scan
        // [lo.saturating_sub(range), hi).
        let range = self.kv.partitioner().range_size;
        let scan_lo = lo.saturating_sub(range);
        let mut overlapping: Vec<(SegKey, SegmentRecord)> = Vec::new();
        let servers = self.kv.for_each_in_range(
            &SegKey {
                fid,
                offset: scan_lo,
            },
            &SegKey { fid, offset: hi },
            scan_lo,
            hi,
            |k, v| {
                if k.fid == fid && k.offset < hi && k.offset + v.len > lo {
                    overlapping.push((*k, *v));
                }
            },
        );
        locks.kv_shard_acquisitions += servers.len() as u64;
        if overlapping.is_empty() {
            return Vec::new();
        }
        overlapping.sort_by_key(|(k, _)| *k);

        // Claim every overlapped record in one grouped compare-and-delete;
        // records a racing punch already claimed (or replaced) stay put.
        let (claims, claim_acq) = self.kv.remove_if_eq_batch(&overlapping);
        locks.kv_shard_acquisitions += claim_acq;

        let mut displaced = Vec::new();
        let mut removed: Vec<SegKey> = Vec::new();
        let mut fragments: Vec<(SegKey, SegmentRecord)> = Vec::new();
        for ((k, v), claimed) in overlapping.into_iter().zip(claims) {
            if !claimed {
                continue;
            }
            removed.push(k);
            displaced.push(split_overlapped(k, v, lo, hi, &mut fragments));
        }
        if removed.is_empty() {
            return displaced;
        }
        locks.kv_shard_acquisitions += self.kv.put_batch(fragments.iter().cloned());

        // One pass over the node buffers: drop every claimed key, then
        // re-cache the surviving fragments on nodes tracking the fid (the
        // producer's node is among them) — same final state as the old
        // per-record remove_local/relocal sequence, at one lock acquisition
        // per node instead of one per node per record.
        for node in &self.local {
            let mut node = node.write().expect("node buffer poisoned");
            locks.node_buffer_acquisitions += 1;
            if let Some(per_fid) = node.get_mut(&fid) {
                for k in &removed {
                    per_fid.remove(&k.offset);
                }
            }
            if node.contains_key(&fid) {
                for (k, frag) in &fragments {
                    node.entry(k.fid).or_default().insert(k.offset, *frag);
                }
            }
        }
        displaced
    }

    /// Commit the records of one batched write call: a single punch over
    /// `[lo, hi)` (the full span the records cover) replaces per-record
    /// punches, the records land via a partition-grouped `put_batch` (one
    /// shard write-lock acquisition per partition touched), and the producer
    /// node's shared metadata buffer is refreshed under one lock
    /// acquisition. `records` are `(offset, record)` pairs that must be
    /// offset-sorted, mutually disjoint, and lie within `[lo, hi)`; each
    /// record obeys the coalescing cap `len <= range_size` (the
    /// left-widened-scan invariant, as for [`insert`](Self::insert)).
    ///
    /// Fails only by fault injection, *before* touching any state, so a
    /// failed commit leaves the index unchanged and is safe to retry.
    pub fn insert_batch(
        &self,
        fid: u64,
        lo: u64,
        hi: u64,
        records: &[(u64, SegmentRecord)],
        producer_node: usize,
    ) -> SimResult<BatchOutcome> {
        self.inject("kv_insert")?;
        let range = self.kv.partitioner().range_size;
        for (offset, record) in records {
            assert!(
                record.len <= range,
                "segment length {} exceeds metadata range size {range}",
                record.len
            );
            assert!(
                *offset >= lo && offset + record.len <= hi,
                "record [{offset}, {}) outside batch span [{lo}, {hi})",
                offset + record.len
            );
        }
        let mut locks = CommitStats::default();
        let displaced = self.punch_inner(fid, lo, hi, &mut locks);
        locks.kv_shard_acquisitions += self.kv.put_batch(records.iter().map(|(offset, record)| {
            (
                SegKey {
                    fid,
                    offset: *offset,
                },
                *record,
            )
        }));
        {
            let mut node = self.local[producer_node]
                .write()
                .expect("node buffer poisoned");
            locks.node_buffer_acquisitions += 1;
            let per_fid = node.entry(fid).or_default();
            for (offset, record) in records {
                per_fid.insert(*offset, *record);
            }
        }
        self.bump_generation(fid);
        Ok(BatchOutcome { displaced, locks })
    }

    fn remove_local(&self, key: SegKey) {
        for node in &self.local {
            let mut node = node.write().expect("node buffer poisoned");
            if let Some(per_fid) = node.get_mut(&key.fid) {
                per_fid.remove(&key.offset);
            }
        }
    }

    /// Point lookup of one record (one metadata-server RPC).
    pub fn get(&self, key: &SegKey) -> (ServerId, Option<SegmentRecord>) {
        self.kv.get(key)
    }

    /// Compare-and-swap a record: replace `key`'s value with `new` only if
    /// it still equals `expected`, refreshing the producer node's buffer on
    /// success. The promotion path uses this so a record overwritten
    /// between its read and its rewrite is left alone.
    pub fn replace_if_current(
        &self,
        key: SegKey,
        expected: &SegmentRecord,
        new: SegmentRecord,
        producer_node: usize,
    ) -> (ServerId, bool) {
        let (server, swapped) = self.kv.replace_if_eq(&key, expected, new);
        if swapped {
            self.remove_local(key);
            self.local[producer_node]
                .write()
                .expect("node buffer poisoned")
                .entry(key.fid)
                .or_default()
                .insert(key.offset, new);
            self.bump_generation(key.fid);
        }
        (server, swapped)
    }

    /// Distributed lookup of all records intersecting `[lo, hi)` of `fid`,
    /// sorted by offset. Returns the metadata servers visited (each visit
    /// is an RPC in the timing plane). Takes only shared shard locks; the
    /// borrowing scan copies only the records that actually overlap instead
    /// of cloning every key/value in the scanned span.
    pub fn lookup_range(
        &self,
        fid: u64,
        lo: u64,
        hi: u64,
    ) -> (Vec<ServerId>, Vec<(SegKey, SegmentRecord)>) {
        let range = self.kv.partitioner().range_size;
        let scan_lo = lo.saturating_sub(range);
        let mut records: Vec<(SegKey, SegmentRecord)> = Vec::new();
        let servers = self.kv.for_each_in_range(
            &SegKey {
                fid,
                offset: scan_lo,
            },
            &SegKey { fid, offset: hi },
            scan_lo,
            hi,
            |k, v| {
                if k.fid == fid && k.offset < hi && k.offset + v.len > lo {
                    records.push((*k, *v));
                }
            },
        );
        records.sort_by_key(|(k, _)| *k);
        (servers, records)
    }

    /// [`lookup_range`](Self::lookup_range) through `node`'s read record
    /// cache. A cached window containing `[lo, hi)` whose generation still
    /// matches the fid's answers with **zero** metadata RPCs (a *hit*, the
    /// third return value `true`); otherwise the distributed lookup runs
    /// over the possibly wider `[lo, fetch_hi)` — readahead passes
    /// `fetch_hi > hi` to pre-populate the cache for a sequential scan —
    /// and the result is installed unless the generation moved while the
    /// lookup was in flight (a racing mutation; the records are still
    /// returned, matching `lookup_range`'s racing semantics, they just
    /// aren't cached). Hits take only the cache's shared lock; the one
    /// exclusive acquisition on this path is the miss-time install.
    ///
    /// Fails only by fault injection, before touching the cache, so a
    /// failed lookup has no side effects and is safe to retry.
    #[allow(clippy::type_complexity)]
    pub fn lookup_range_cached(
        &self,
        node: usize,
        fid: u64,
        lo: u64,
        hi: u64,
        fetch_hi: u64,
    ) -> SimResult<(Vec<ServerId>, Vec<(SegKey, SegmentRecord)>, bool)> {
        self.inject("kv_lookup")?;
        debug_assert!(fetch_hi >= hi);
        let gen = self.generation(fid);
        {
            let cache = self.read_cache[node].read().expect("read cache poisoned");
            if let Some(per_fid) = cache.get(&fid) {
                if let Some((_, entry)) = per_fid.range(..=lo).next_back() {
                    if entry.gen == gen && entry.hi >= hi {
                        // Records overlapping [lo, hi) are a subset of the
                        // window's: [lo, hi) ⊆ [window lo, window hi).
                        let records = entry
                            .records
                            .iter()
                            .filter(|(k, r)| k.offset < hi && k.offset + r.len > lo)
                            .copied()
                            .collect();
                        return Ok((Vec::new(), records, true));
                    }
                }
            }
        }
        let (servers, records) = self.lookup_range(fid, lo, fetch_hi);
        // Re-check before installing: if a mutation landed (and bumped)
        // while we scanned, the window may mix old and new state — serve
        // it once but never cache it.
        if self.generation(fid) == gen {
            let mut cache = self.read_cache[node].write().expect("read cache poisoned");
            let per_fid = cache.entry(fid).or_default();
            if per_fid.len() >= READ_CACHE_WINDOWS_PER_FID {
                per_fid.clear();
            }
            per_fid.insert(
                lo,
                CacheEntry {
                    hi: fetch_hi,
                    gen,
                    records: records.clone(),
                },
            );
        }
        Ok((servers, records, false))
    }

    /// The metadata partition (KV server index) owning logical `offset` —
    /// the shard map the job's heat counters reuse for routing.
    pub fn partition_of(&self, offset: u64) -> usize {
        self.kv.partitioner().server_for(offset).0
    }

    /// Node-local lookup in the shared metadata buffer: records produced on
    /// `node` intersecting `[lo, hi)`. No server RPC, shared lock only.
    pub fn lookup_local(
        &self,
        node: usize,
        fid: u64,
        lo: u64,
        hi: u64,
    ) -> Vec<(SegKey, SegmentRecord)> {
        let node = self.local[node].read().expect("node buffer poisoned");
        let Some(per_fid) = node.get(&fid) else {
            return Vec::new();
        };
        // Start one record earlier in case it overlaps from the left.
        let start = per_fid
            .range(..lo)
            .next_back()
            .map(|(o, _)| *o)
            .unwrap_or(lo);
        per_fid
            .range(start..hi)
            .filter(|(o, r)| **o < hi && **o + r.len > lo)
            .map(|(o, r)| (SegKey { fid, offset: *o }, *r))
            .collect()
    }

    /// Per-server record counts (distribution inspection).
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.kv.shard_sizes()
    }

    /// Total records.
    pub fn len(&self) -> usize {
        self.kv.len()
    }

    /// True when no records exist.
    pub fn is_empty(&self) -> bool {
        self.kv.is_empty()
    }

    /// Metadata servers.
    pub fn servers(&self) -> usize {
        self.kv.servers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn svc() -> MetadataService {
        MetadataService::new(256, 4, 2)
    }

    fn rec(app: u32, rank: u32, va: u64, len: u64) -> SegmentRecord {
        SegmentRecord::new(ClientId::new(app, rank), VirtualAddr(va), len)
    }

    #[test]
    fn insert_then_lookup() {
        let m = svc();
        m.insert(SegKey { fid: 1, offset: 0 }, rec(0, 0, 0, 100), 0);
        m.insert(
            SegKey {
                fid: 1,
                offset: 100,
            },
            rec(0, 1, 0, 100),
            1,
        );
        let (_, records) = m.lookup_range(1, 0, 200);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].0.offset, 0);
        assert_eq!(records[1].1.client.rank, 1);
    }

    #[test]
    fn lookup_is_fid_scoped() {
        let m = svc();
        m.insert(SegKey { fid: 1, offset: 0 }, rec(0, 0, 0, 10), 0);
        m.insert(SegKey { fid: 2, offset: 0 }, rec(0, 1, 0, 10), 0);
        let (_, records) = m.lookup_range(1, 0, 100);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].1.client.rank, 0);
    }

    #[test]
    fn lookup_catches_left_overlapping_record() {
        let m = svc();
        // Record starts at 50, spans into the queried range [100, 150).
        m.insert(SegKey { fid: 1, offset: 50 }, rec(0, 0, 0, 60), 0);
        let (_, records) = m.lookup_range(1, 100, 150);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].0.offset, 50);
    }

    #[test]
    fn exact_overwrite_displaces_whole_record() {
        let m = svc();
        m.insert(SegKey { fid: 1, offset: 0 }, rec(0, 0, 7, 100), 0);
        let (_, displaced) = m.insert(SegKey { fid: 1, offset: 0 }, rec(0, 1, 200, 100), 1);
        assert_eq!(
            displaced,
            vec![Displaced {
                client: ClientId::new(0, 0),
                va: VirtualAddr(7),
                len: 100,
                replica: None,
            }]
        );
        let (_, records) = m.lookup_range(1, 0, 100);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].1.client.rank, 1);
    }

    #[test]
    fn partial_overwrite_trims_record() {
        let m = svc();
        // Old record covers [0, 100) at VA 1000.
        m.insert(SegKey { fid: 1, offset: 0 }, rec(0, 0, 1000, 100), 0);
        // New write covers [30, 60).
        let (_, displaced) = m.insert(SegKey { fid: 1, offset: 30 }, rec(0, 1, 0, 30), 0);
        assert_eq!(displaced.len(), 1);
        assert_eq!(displaced[0].va, VirtualAddr(1030));
        assert_eq!(displaced[0].len, 30);
        let (_, records) = m.lookup_range(1, 0, 100);
        assert_eq!(records.len(), 3);
        // Left fragment [0, 30) at VA 1000.
        assert_eq!(records[0].0.offset, 0);
        assert_eq!(records[0].1.len, 30);
        assert_eq!(records[0].1.va, VirtualAddr(1000));
        // New record [30, 60).
        assert_eq!(records[1].1.client.rank, 1);
        // Right fragment [60, 100) at VA 1060.
        assert_eq!(records[2].0.offset, 60);
        assert_eq!(records[2].1.va, VirtualAddr(1060));
        assert_eq!(records[2].1.len, 40);
    }

    #[test]
    fn overwrite_spanning_multiple_records() {
        let m = svc();
        for i in 0..4u64 {
            m.insert(
                SegKey {
                    fid: 1,
                    offset: i * 50,
                },
                rec(0, i as u32, i * 1000, 50),
                0,
            );
        }
        // Overwrite [25, 175) — trims first and last, removes middles.
        let (_, displaced) = m.insert(SegKey { fid: 1, offset: 25 }, rec(1, 0, 0, 150), 0);
        let total_displaced: u64 = displaced.iter().map(|d| d.len).sum();
        assert_eq!(total_displaced, 150);
        let (_, records) = m.lookup_range(1, 0, 200);
        let covered: u64 = records.iter().map(|(_, r)| r.len).sum();
        assert_eq!(covered, 200);
    }

    #[test]
    fn local_buffer_serves_producer_node_records() {
        let m = svc();
        m.insert(SegKey { fid: 1, offset: 0 }, rec(0, 0, 0, 64), 0);
        m.insert(SegKey { fid: 1, offset: 64 }, rec(0, 32, 0, 64), 1);
        // Node 0 sees only its own production.
        let hits = m.lookup_local(0, 1, 0, 128);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0.offset, 0);
        let hits = m.lookup_local(1, 1, 0, 128);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0.offset, 64);
    }

    #[test]
    fn records_distribute_across_servers_round_robin() {
        let m = MetadataService::new(64, 4, 1);
        // 64 segments of 64 bytes → 16 ranges round-robin over 4 servers.
        for i in 0..64u64 {
            m.insert(
                SegKey {
                    fid: 1,
                    offset: i * 64,
                },
                rec(0, 0, i * 64, 64),
                0,
            );
        }
        assert_eq!(m.shard_sizes(), vec![16, 16, 16, 16]);
    }

    #[test]
    fn punch_empty_range_is_noop() {
        let m = svc();
        m.insert(SegKey { fid: 1, offset: 0 }, rec(0, 0, 0, 10), 0);
        assert!(m.punch(1, 5, 5).is_empty());
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn cached_lookup_hits_without_rpcs_until_invalidated() {
        let m = svc();
        m.insert(SegKey { fid: 1, offset: 0 }, rec(0, 0, 0, 100), 0);
        let (servers, records, hit) = m.lookup_range_cached(0, 1, 0, 100, 100).unwrap();
        assert!(!hit);
        assert!(!servers.is_empty());
        assert_eq!(records.len(), 1);
        // Second identical lookup: served by the cache, zero RPCs.
        let (servers, records, hit) = m.lookup_range_cached(0, 1, 0, 100, 100).unwrap();
        assert!(hit);
        assert!(servers.is_empty());
        assert_eq!(records.len(), 1);
        // A narrower window inside the cached one also hits.
        let (_, records, hit) = m.lookup_range_cached(0, 1, 20, 80, 80).unwrap();
        assert!(hit);
        assert_eq!(records.len(), 1);
        // An overwrite bumps the generation: next lookup misses and sees
        // the new record, never the stale VA.
        m.insert(SegKey { fid: 1, offset: 0 }, rec(0, 1, 500, 100), 0);
        let (_, records, hit) = m.lookup_range_cached(0, 1, 0, 100, 100).unwrap();
        assert!(!hit, "overwrite must invalidate the cached window");
        assert_eq!(records[0].1.va, VirtualAddr(500));
        // …and the fresh result is cached again.
        let (_, _, hit) = m.lookup_range_cached(0, 1, 0, 100, 100).unwrap();
        assert!(hit);
    }

    #[test]
    fn punch_and_cas_invalidate_cached_windows() {
        let m = svc();
        let old = rec(0, 0, 0, 64);
        m.insert(SegKey { fid: 1, offset: 0 }, old, 0);
        m.lookup_range_cached(0, 1, 0, 64, 64).unwrap();
        m.punch(1, 0, 32);
        let (_, records, hit) = m.lookup_range_cached(0, 1, 0, 64, 64).unwrap();
        assert!(!hit);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].0.offset, 32);
        let trimmed = records[0].1;
        m.lookup_range_cached(0, 1, 0, 64, 64).unwrap();
        let promoted = rec(0, 0, 900, 32);
        assert!(
            m.replace_if_current(SegKey { fid: 1, offset: 32 }, &trimmed, promoted, 0)
                .1
        );
        let (_, records, hit) = m.lookup_range_cached(0, 1, 0, 64, 64).unwrap();
        assert!(!hit, "CAS must invalidate the cached window");
        assert_eq!(records[0].1.va, VirtualAddr(900));
    }

    #[test]
    fn cache_windows_are_per_node_and_capped() {
        let m = svc();
        m.insert(SegKey { fid: 1, offset: 0 }, rec(0, 0, 0, 10), 0);
        m.lookup_range_cached(0, 1, 0, 10, 10).unwrap();
        // Node 1 has its own cache: same window misses there.
        let (_, _, hit) = m.lookup_range_cached(1, 1, 0, 10, 10).unwrap();
        assert!(!hit);
        // Overflowing the per-fid cap clears the node's windows instead of
        // growing without bound; disjoint windows past the first entry's
        // end each miss and install, eventually tripping the clear.
        for i in 0..(READ_CACHE_WINDOWS_PER_FID as u64 + 4) {
            let lo = 1000 + i;
            m.lookup_range_cached(0, 1, lo, lo + 1, lo + 1).unwrap();
        }
        let (_, _, hit) = m.lookup_range_cached(0, 1, 0, 10, 10).unwrap();
        assert!(!hit, "the original window should have been evicted");
    }

    #[test]
    fn readahead_fetch_widens_the_cached_window() {
        let m = svc();
        for i in 0..4u64 {
            m.insert(
                SegKey {
                    fid: 1,
                    offset: i * 50,
                },
                rec(0, i as u32, i * 1000, 50),
                0,
            );
        }
        // Ask for [0, 50) but fetch through 200: the wide window is cached.
        let (_, records, hit) = m.lookup_range_cached(0, 1, 0, 50, 200).unwrap();
        assert!(!hit);
        assert_eq!(records.len(), 4, "fetch covers the widened window");
        // The rest of the scan hits without RPCs.
        for i in 1..4u64 {
            let (servers, records, hit) = m
                .lookup_range_cached(0, 1, i * 50, i * 50 + 50, i * 50 + 50)
                .unwrap();
            assert!(hit, "window {i} should be prefetched");
            assert!(servers.is_empty());
            assert_eq!(records.len(), 1);
            assert_eq!(records[0].0.offset, i * 50);
        }
    }

    #[test]
    fn partition_of_matches_round_robin_ranges() {
        let m = MetadataService::new(64, 4, 1);
        assert_eq!(m.partition_of(0), 0);
        assert_eq!(m.partition_of(63), 0);
        assert_eq!(m.partition_of(64), 1);
        assert_eq!(m.partition_of(64 * 4), 0);
    }

    #[test]
    fn replace_if_current_is_a_cas() {
        let m = svc();
        let old = rec(0, 0, 0, 64);
        m.insert(SegKey { fid: 1, offset: 0 }, old, 0);
        let new = rec(0, 0, 4096, 64);
        assert!(
            m.replace_if_current(SegKey { fid: 1, offset: 0 }, &old, new, 0)
                .1
        );
        // Stale expectation no longer matches.
        assert!(
            !m.replace_if_current(SegKey { fid: 1, offset: 0 }, &old, new, 0)
                .1
        );
        let (_, got) = m.get(&SegKey { fid: 1, offset: 0 });
        assert_eq!(got, Some(new));
    }
}
