//! Shared-nothing partitioned runtime ([`Runtime::Partitioned`]).
//!
//! The locked runtime keeps one set of library structures (`ChainSet`,
//! `MetadataService`, heat shards) guarded by sharded locks and mutates
//! them from whichever thread issued the call. This module implements the
//! alternative: a fixed pool of **partition workers**, each an event loop
//! that exclusively owns its slice of state —
//!
//! * KV partition `p` (and heat shard `p`) belong to worker `p % W`;
//! * node `n`'s shared metadata buffer and read record cache belong to
//!   worker `n % W`;
//! * client `c`'s log chain belongs to the worker owning `c`'s node.
//!
//! Workers hold **plain** maps — no interior locks at all — and are fed
//! typed request messages over bounded mailboxes. `UniviStorJob`'s data
//! plane becomes a routing layer: it partitions a planned batch by owner,
//! enqueues one message per touched worker, and awaits the batched
//! replies. The steady-state write/read path therefore takes zero counted
//! lock acquisitions end to end (the job-level tables that remain shared —
//! file table, generation counters, failure set — are uncounted in the
//! locked runtime too; see DESIGN.md §13).
//!
//! Every handler replicates its locked counterpart's semantics byte for
//! byte, including the per-server `puts`/`gets` RPC accounting and the
//! fault-injection draw order, so the differential tests in
//! `tests/runtime.rs` can pin `Runtime::Locked` ≡ `Runtime::Partitioned`.
//!
//! Cold paths (tiering passes, flush, repair, stats probes) run through a
//! **checkout**: the router parks every worker, collects their slices,
//! reassembles the real locked-core structures ([`LockedCore`]), runs the
//! legacy code against them, then disassembles and redistributes by
//! ownership. Mailbox FIFO order makes a checkout interleaving with an
//! in-flight routed operation equivalent to the locked runtime's
//! stepwise (non-atomic) lock acquisitions.

use crate::config::UniviStorConfig;
use crate::fault::FaultInjector;
use crate::metadata::{
    split_overlapped, CacheEntry, ClientId, Displaced, MetadataService, SegKey, SegmentRecord,
    READ_CACHE_WINDOWS_PER_FID,
};
use crate::metrics::{JobMetrics, PartitionMetrics};
use crate::placement::{ChainSet, PlacedSegment, ProcChain};
use crate::va::{Tier, VirtualAddr};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::AtomicU32;
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;
use univistor_kv::RangePartitioner;
use univistor_sim::{Payload, SimError, SimResult};

/// Bound on queued requests per worker mailbox. Routers block (applying
/// natural backpressure) once a worker falls this far behind.
const MAILBOX_DEPTH: usize = 1024;

/// The locked-runtime core: the three library structures the legacy data
/// plane mutates in place. Under [`Runtime::Locked`] the job owns one of
/// these for its whole lifetime; under [`Runtime::Partitioned`] one is
/// assembled transiently for each checkout.
///
/// [`Runtime::Locked`]: crate::config::Runtime::Locked
/// [`Runtime::Partitioned`]: crate::config::Runtime::Partitioned
#[derive(Debug)]
pub(crate) struct LockedCore {
    /// Per-client log chains.
    pub(crate) chains: ChainSet,
    /// Distributed metadata service (KV + node buffers + read caches).
    pub(crate) metadata: MetadataService,
    /// Per-KV-partition heat shards (segment read counters).
    pub(crate) heat: Vec<RwLock<HashMap<SegKey, AtomicU32>>>,
}

/// What one [`Punch`](Req::Punch) (or a router-level merge of several)
/// produced: the claimed keys, the displaced middles keyed by their
/// original record so the router can restore the locked runtime's global
/// key order, and the surviving edge fragments (not yet re-inserted — the
/// router redistributes them so the removed-empty early-return matches
/// `punch_inner`).
#[derive(Debug, Default)]
pub(crate) struct PunchOutcome {
    /// Keys claimed out of the index.
    pub(crate) removed: Vec<SegKey>,
    /// Displaced middle spans, keyed by the record they were cut from.
    pub(crate) displaced: Vec<(SegKey, Displaced)>,
    /// Surviving left/right fragments to re-insert.
    pub(crate) fragments: Vec<(SegKey, SegmentRecord)>,
}

/// A worker's entire owned state, detached for a checkout and re-installed
/// afterwards. Byte accounting (`Worker::bytes`) deliberately stays
/// resident in the worker: the locked core has no equivalent structure and
/// workers are parked for the whole checkout, so it cannot drift.
#[derive(Debug, Default)]
struct Slice {
    /// Owned KV partitions: partition → records.
    kv: HashMap<usize, BTreeMap<SegKey, SegmentRecord>>,
    /// Owned per-partition KV put counters.
    puts: HashMap<usize, u64>,
    /// Owned per-partition KV get (visit) counters.
    gets: HashMap<usize, u64>,
    /// Owned nodes' shared metadata buffers: node → fid → offset → record.
    local: HashMap<usize, HashMap<u64, BTreeMap<u64, SegmentRecord>>>,
    /// Owned nodes' read record caches: node → fid → window lo → entry.
    read_cache: HashMap<usize, HashMap<u64, BTreeMap<u64, CacheEntry>>>,
    /// Owned clients' log chains.
    chains: Vec<(ClientId, ProcChain)>,
    /// Owned heat shards: partition → key → read count.
    heat: HashMap<usize, HashMap<SegKey, u32>>,
}

/// A typed request to one partition worker. Every variant that produces a
/// result carries its own reply channel; [`Heat`](Req::Heat) is
/// fire-and-forget and [`Shutdown`](Req::Shutdown) ends the event loop.
enum Req {
    /// Create `client`'s chain if absent (the worker builds it from its
    /// precomputed layer caps).
    EnsureChain {
        client: ClientId,
        reply: Sender<SimResult<()>>,
    },
    /// Fail exactly like a chain lookup would if `client` has no chain.
    ChainExists {
        client: ClientId,
        reply: Sender<SimResult<()>>,
    },
    /// Append a payload run to `client`'s chain — `ChainSet::append_many`
    /// semantics (per-piece fault draw, full-batch rollback). With
    /// `account` set, successful placements are added to the worker's
    /// per-(client, tier) byte ledger (the routed write path's replacement
    /// for the router-side accounting mutex).
    Append {
        client: ClientId,
        payloads: Vec<Payload>,
        account: bool,
        reply: Sender<SimResult<Vec<PlacedSegment>>>,
    },
    /// Claim every owned record overlapping `[lo, hi)` of `fid` —
    /// `punch_inner`'s scan+claim restricted to this worker's partitions.
    Punch {
        fid: u64,
        lo: u64,
        hi: u64,
        reply: Sender<PunchOutcome>,
    },
    /// Insert records into owned partitions (one `puts` bump per record,
    /// matching `DistKv::put_batch`).
    PutRecords {
        items: Vec<(SegKey, SegmentRecord)>,
        reply: Sender<()>,
    },
    /// Apply a punch's node-buffer sweep to every owned node: drop the
    /// removed keys, re-cache the fragments on nodes tracking the fid.
    BufferApply {
        fid: u64,
        removed: Vec<SegKey>,
        fragments: Vec<(SegKey, SegmentRecord)>,
        reply: Sender<()>,
    },
    /// Refresh the producer node's shared metadata buffer with a batch's
    /// records (`insert_batch`'s final buffer pass).
    BufferInsert {
        node: usize,
        fid: u64,
        records: Vec<(u64, SegmentRecord)>,
        reply: Sender<()>,
    },
    /// Release displaced spans on owned chains, in the given order.
    /// Missing chains are skipped (`ChainSet::release` semantics).
    Release {
        spans: Vec<(ClientId, VirtualAddr, u64)>,
        reply: Sender<()>,
    },
    /// Bump heat counters on owned shards. Fire-and-forget: the read path
    /// never waits on it, and mailbox FIFO order still sequences it before
    /// any later checkout.
    Heat { keys: Vec<SegKey> },
    /// `MetadataService::lookup_local` over an owned node's buffer.
    LookupLocal {
        node: usize,
        fid: u64,
        lo: u64,
        hi: u64,
        reply: Sender<Vec<(SegKey, SegmentRecord)>>,
    },
    /// Probe an owned node's read record cache for a window covering
    /// `[lo, hi)` at generation `gen`. `None` is a miss.
    CacheLookup {
        node: usize,
        fid: u64,
        lo: u64,
        hi: u64,
        gen: u64,
        reply: Sender<Option<Vec<(SegKey, SegmentRecord)>>>,
    },
    /// `lookup_range`'s scan restricted to this worker's partitions
    /// (per-visited-server `gets` bump included).
    Scan {
        fid: u64,
        lo: u64,
        hi: u64,
        reply: Sender<Vec<(SegKey, SegmentRecord)>>,
    },
    /// Install a fetched window into an owned node's read cache, unless
    /// the fid's generation moved while the lookup was in flight.
    CacheInstall {
        node: usize,
        fid: u64,
        lo: u64,
        fetch_hi: u64,
        gen: u64,
        records: Vec<(SegKey, SegmentRecord)>,
        reply: Sender<()>,
    },
    /// Batched fragment fetch from `client`'s chain —
    /// `ChainSet::read_at_many` semantics (in-order per-fragment fault
    /// draws, fail-fast).
    Fetch {
        client: ClientId,
        requests: Vec<(VirtualAddr, u64)>,
        reply: Sender<SimResult<Vec<(Payload, Tier)>>>,
    },
    /// Report (and with `take`, reset) the worker's byte ledger.
    CollectBytes {
        take: bool,
        reply: Sender<Vec<((ClientId, Tier), u64)>>,
    },
    /// Detach the worker's slice, park until the router checks it back in.
    Checkout {
        reply: Sender<Slice>,
        checkin: Receiver<Slice>,
    },
    /// End the event loop. Messages enqueued earlier are drained first
    /// (FIFO), so shutdown never drops queued work.
    Shutdown,
}

/// A request stamped with its enqueue time, so the worker can observe
/// mailbox wait latency on dequeue.
struct Envelope {
    at: Instant,
    req: Req,
}

fn inject(
    injector: &Option<Arc<FaultInjector>>,
    site: &'static str,
    tier: Option<Tier>,
) -> SimResult<()> {
    match injector {
        Some(inj) => inj.inject(site, tier),
        None => Ok(()),
    }
}

/// One partition worker: the event loop plus everything it owns.
struct Worker {
    /// This worker's index.
    id: usize,
    /// Total workers (the modulus of the ownership map).
    workers: usize,
    partitioner: RangePartitioner,
    /// Per-process layer capacities for chains built on demand.
    layer_caps: Vec<(Tier, u64)>,
    chunk_size: u64,
    /// Shared per-fid generation table (cache validation), cloned from the
    /// router so checkouts keep one coherent counter set.
    generations: Arc<RwLock<HashMap<u64, u64>>>,
    injector: Option<Arc<FaultInjector>>,
    metrics: PartitionMetrics,
    // ---- exclusively owned state (plain maps, no locks) ----
    kv: HashMap<usize, BTreeMap<SegKey, SegmentRecord>>,
    puts: HashMap<usize, u64>,
    gets: HashMap<usize, u64>,
    local: HashMap<usize, HashMap<u64, BTreeMap<u64, SegmentRecord>>>,
    read_cache: HashMap<usize, HashMap<u64, BTreeMap<u64, CacheEntry>>>,
    chains: HashMap<ClientId, ProcChain>,
    heat: HashMap<usize, HashMap<SegKey, u32>>,
    bytes: HashMap<(ClientId, Tier), u64>,
}

impl Worker {
    fn run(mut self, rx: Receiver<Envelope>) {
        while let Ok(env) = rx.recv() {
            self.metrics.mailbox_depth.dec();
            self.metrics
                .wait_seconds
                .observe(env.at.elapsed().as_secs_f64());
            self.metrics.messages.inc();
            match env.req {
                Req::EnsureChain { client, reply } => {
                    self.metrics.batched_ops.inc();
                    let _ = reply.send(self.ensure_chain(client));
                }
                Req::ChainExists { client, reply } => {
                    self.metrics.batched_ops.inc();
                    let _ = reply.send(if self.chains.contains_key(&client) {
                        Ok(())
                    } else {
                        Err(no_chain(client))
                    });
                }
                Req::Append {
                    client,
                    payloads,
                    account,
                    reply,
                } => {
                    self.metrics.batched_ops.add(payloads.len() as u64);
                    let _ = reply.send(self.append(client, payloads, account));
                }
                Req::Punch { fid, lo, hi, reply } => {
                    self.metrics.batched_ops.inc();
                    let _ = reply.send(self.punch(fid, lo, hi));
                }
                Req::PutRecords { items, reply } => {
                    self.metrics.batched_ops.add(items.len() as u64);
                    self.put_records(items);
                    let _ = reply.send(());
                }
                Req::BufferApply {
                    fid,
                    removed,
                    fragments,
                    reply,
                } => {
                    self.metrics.batched_ops.inc();
                    self.buffer_apply(fid, &removed, &fragments);
                    let _ = reply.send(());
                }
                Req::BufferInsert {
                    node,
                    fid,
                    records,
                    reply,
                } => {
                    self.metrics.batched_ops.add(records.len() as u64);
                    let per_fid = self.local.entry(node).or_default().entry(fid).or_default();
                    for (offset, record) in records {
                        per_fid.insert(offset, record);
                    }
                    let _ = reply.send(());
                }
                Req::Release { spans, reply } => {
                    self.metrics.batched_ops.add(spans.len() as u64);
                    for (client, va, len) in spans {
                        if let Some(chain) = self.chains.get_mut(&client) {
                            chain.release(va, len);
                        }
                    }
                    let _ = reply.send(());
                }
                Req::Heat { keys } => {
                    self.metrics.batched_ops.add(keys.len() as u64);
                    for key in keys {
                        let shard = self.partitioner.server_for(key.offset).0;
                        *self.heat.entry(shard).or_default().entry(key).or_insert(0) += 1;
                    }
                }
                Req::LookupLocal {
                    node,
                    fid,
                    lo,
                    hi,
                    reply,
                } => {
                    self.metrics.batched_ops.inc();
                    let _ = reply.send(self.lookup_local(node, fid, lo, hi));
                }
                Req::CacheLookup {
                    node,
                    fid,
                    lo,
                    hi,
                    gen,
                    reply,
                } => {
                    self.metrics.batched_ops.inc();
                    let _ = reply.send(self.cache_lookup(node, fid, lo, hi, gen));
                }
                Req::Scan { fid, lo, hi, reply } => {
                    self.metrics.batched_ops.inc();
                    let _ = reply.send(self.scan(fid, lo, hi));
                }
                Req::CacheInstall {
                    node,
                    fid,
                    lo,
                    fetch_hi,
                    gen,
                    records,
                    reply,
                } => {
                    self.metrics.batched_ops.inc();
                    self.cache_install(node, fid, lo, fetch_hi, gen, records);
                    let _ = reply.send(());
                }
                Req::Fetch {
                    client,
                    requests,
                    reply,
                } => {
                    self.metrics.batched_ops.add(requests.len() as u64);
                    let _ = reply.send(self.fetch(client, &requests));
                }
                Req::CollectBytes { take, reply } => {
                    self.metrics.batched_ops.inc();
                    let ledger: Vec<((ClientId, Tier), u64)> =
                        self.bytes.iter().map(|(k, v)| (*k, *v)).collect();
                    if take {
                        self.bytes.clear();
                    }
                    let _ = reply.send(ledger);
                }
                Req::Checkout { reply, checkin } => {
                    self.metrics.batched_ops.inc();
                    let _ = reply.send(self.take_slice());
                    match checkin.recv() {
                        Ok(slice) => self.install_slice(slice),
                        // Router dropped mid-checkout (it panicked): the
                        // job is gone, so the worker exits too.
                        Err(_) => break,
                    }
                }
                Req::Shutdown => break,
            }
        }
    }

    fn ensure_chain(&mut self, client: ClientId) -> SimResult<()> {
        if self.chains.contains_key(&client) {
            return Ok(());
        }
        let chain = ProcChain::new(self.layer_caps.clone(), self.chunk_size)?;
        self.chains.insert(client, chain);
        Ok(())
    }

    fn append(
        &mut self,
        client: ClientId,
        payloads: Vec<Payload>,
        account: bool,
    ) -> SimResult<Vec<PlacedSegment>> {
        let injector = self.injector.clone();
        let Some(chain) = self.chains.get_mut(&client) else {
            return Err(no_chain(client));
        };
        let mut placed: Vec<PlacedSegment> = Vec::with_capacity(payloads.len());
        for payload in payloads {
            // Same fault-draw order and rollback as `ChainSet::append_many`:
            // one draw per placed piece, a transient fault mid-run aborts
            // (and releases) the whole batch.
            let appended = match chain.append(payload) {
                Ok(p) => match inject(&injector, "chain_append", Some(p.tier)) {
                    Ok(()) => Ok(p),
                    Err(e) => {
                        chain.release(p.va, p.len);
                        Err(e)
                    }
                },
                Err(e) => Err(e),
            };
            match appended {
                Ok(p) => placed.push(p),
                Err(e) => {
                    for p in &placed {
                        chain.release(p.va, p.len);
                    }
                    return Err(e);
                }
            }
        }
        if account {
            for p in &placed {
                *self.bytes.entry((client, p.tier)).or_insert(0) += p.len;
            }
        }
        Ok(placed)
    }

    /// Scan owned partitions of the punch span, bumping `gets` per owned
    /// visited server exactly like `DistKv::for_each_in_range`, then claim
    /// each overlapped record with a compare-and-delete (one `puts` bump
    /// per attempt, like `remove_if_eq_batch`).
    fn punch(&mut self, fid: u64, lo: u64, hi: u64) -> PunchOutcome {
        let mut out = PunchOutcome::default();
        if lo >= hi {
            return out;
        }
        let scan_lo = lo.saturating_sub(self.partitioner.range_size);
        let mut overlapping: Vec<(SegKey, SegmentRecord)> = Vec::new();
        self.visit_span(fid, scan_lo, hi, lo, &mut overlapping);
        if overlapping.is_empty() {
            return out;
        }
        overlapping.sort_by_key(|(k, _)| *k);
        for (k, v) in overlapping {
            let server = self.partitioner.server_for(k.offset).0;
            *self.puts.entry(server).or_insert(0) += 1;
            let claimed = match self.kv.get_mut(&server) {
                Some(shard) => match shard.get(&k) {
                    Some(current) if *current == v => {
                        shard.remove(&k);
                        true
                    }
                    _ => false,
                },
                None => false,
            };
            if !claimed {
                continue;
            }
            out.removed.push(k);
            let displaced = split_overlapped(k, v, lo, hi, &mut out.fragments);
            out.displaced.push((k, displaced));
        }
        out
    }

    /// The shared scan of `punch`/`scan`: visit each owned server of the
    /// span `[scan_lo, hi)` in partitioner order, bump its `gets` counter
    /// (even when nothing matches — a visit is a visit), and collect the
    /// records actually overlapping `[lo, hi)`.
    fn visit_span(
        &mut self,
        fid: u64,
        scan_lo: u64,
        hi: u64,
        lo: u64,
        into: &mut Vec<(SegKey, SegmentRecord)>,
    ) {
        let lo_key = SegKey {
            fid,
            offset: scan_lo,
        };
        let hi_key = SegKey { fid, offset: hi };
        for server in self.partitioner.servers_for_span(scan_lo, hi) {
            let server = server.0;
            if server % self.workers != self.id {
                continue;
            }
            *self.gets.entry(server).or_insert(0) += 1;
            if let Some(shard) = self.kv.get(&server) {
                for (k, v) in shard.range(lo_key..hi_key) {
                    if k.fid == fid && k.offset < hi && k.offset + v.len > lo {
                        into.push((*k, *v));
                    }
                }
            }
        }
    }

    fn put_records(&mut self, items: Vec<(SegKey, SegmentRecord)>) {
        for (k, v) in items {
            let server = self.partitioner.server_for(k.offset).0;
            *self.puts.entry(server).or_insert(0) += 1;
            self.kv.entry(server).or_default().insert(k, v);
        }
    }

    fn buffer_apply(
        &mut self,
        fid: u64,
        removed: &[SegKey],
        fragments: &[(SegKey, SegmentRecord)],
    ) {
        for node in self.local.values_mut() {
            if let Some(per_fid) = node.get_mut(&fid) {
                for k in removed {
                    per_fid.remove(&k.offset);
                }
            }
            if node.contains_key(&fid) {
                for (k, frag) in fragments {
                    node.entry(k.fid).or_default().insert(k.offset, *frag);
                }
            }
        }
    }

    fn lookup_local(
        &self,
        node: usize,
        fid: u64,
        lo: u64,
        hi: u64,
    ) -> Vec<(SegKey, SegmentRecord)> {
        let Some(per_fid) = self.local.get(&node).and_then(|n| n.get(&fid)) else {
            return Vec::new();
        };
        // Start one record earlier in case it overlaps from the left.
        let start = per_fid
            .range(..lo)
            .next_back()
            .map(|(o, _)| *o)
            .unwrap_or(lo);
        per_fid
            .range(start..hi)
            .filter(|(o, r)| **o < hi && **o + r.len > lo)
            .map(|(o, r)| (SegKey { fid, offset: *o }, *r))
            .collect()
    }

    fn cache_lookup(
        &self,
        node: usize,
        fid: u64,
        lo: u64,
        hi: u64,
        gen: u64,
    ) -> Option<Vec<(SegKey, SegmentRecord)>> {
        let per_fid = self.read_cache.get(&node)?.get(&fid)?;
        let (_, entry) = per_fid.range(..=lo).next_back()?;
        if entry.gen == gen && entry.hi >= hi {
            // Records overlapping [lo, hi) are a subset of the window's.
            Some(
                entry
                    .records
                    .iter()
                    .filter(|(k, r)| k.offset < hi && k.offset + r.len > lo)
                    .copied()
                    .collect(),
            )
        } else {
            None
        }
    }

    fn scan(&mut self, fid: u64, lo: u64, hi: u64) -> Vec<(SegKey, SegmentRecord)> {
        let scan_lo = lo.saturating_sub(self.partitioner.range_size);
        let mut records = Vec::new();
        self.visit_span(fid, scan_lo, hi, lo, &mut records);
        records
    }

    fn cache_install(
        &mut self,
        node: usize,
        fid: u64,
        lo: u64,
        fetch_hi: u64,
        gen: u64,
        records: Vec<(SegKey, SegmentRecord)>,
    ) {
        // Same re-check as `lookup_range_cached`: a mutation that landed
        // (and bumped) while the lookup was in flight may have produced a
        // window mixing old and new state — never cache it.
        let current = self
            .generations
            .read()
            .expect("generations poisoned")
            .get(&fid)
            .copied()
            .unwrap_or(0);
        if current != gen {
            return;
        }
        let per_fid = self
            .read_cache
            .entry(node)
            .or_default()
            .entry(fid)
            .or_default();
        if per_fid.len() >= READ_CACHE_WINDOWS_PER_FID {
            per_fid.clear();
        }
        per_fid.insert(
            lo,
            CacheEntry {
                hi: fetch_hi,
                gen,
                records,
            },
        );
    }

    fn fetch(
        &self,
        client: ClientId,
        requests: &[(VirtualAddr, u64)],
    ) -> SimResult<Vec<(Payload, Tier)>> {
        let Some(chain) = self.chains.get(&client) else {
            return Err(no_chain(client));
        };
        requests
            .iter()
            .map(|&(va, len)| {
                let payload = chain.read(va, len)?;
                let tier = chain.tier_of(va);
                inject(&self.injector, "chain_read", Some(tier))?;
                Ok((payload, tier))
            })
            .collect()
    }

    fn take_slice(&mut self) -> Slice {
        Slice {
            kv: std::mem::take(&mut self.kv),
            puts: std::mem::take(&mut self.puts),
            gets: std::mem::take(&mut self.gets),
            local: std::mem::take(&mut self.local),
            read_cache: std::mem::take(&mut self.read_cache),
            chains: std::mem::take(&mut self.chains).into_iter().collect(),
            heat: std::mem::take(&mut self.heat),
        }
    }

    fn install_slice(&mut self, slice: Slice) {
        self.kv = slice.kv;
        self.puts = slice.puts;
        self.gets = slice.gets;
        self.local = slice.local;
        self.read_cache = slice.read_cache;
        self.chains = slice.chains.into_iter().collect();
        self.heat = slice.heat;
    }
}

fn no_chain(client: ClientId) -> SimError {
    SimError::InvalidConfig(format!("no chain for producer {client:?}"))
}

/// The router's handle to one worker.
struct WorkerHandle {
    tx: SyncSender<Envelope>,
    metrics: PartitionMetrics,
    join: Option<JoinHandle<()>>,
}

impl WorkerHandle {
    fn post(&self, req: Req) {
        self.metrics.mailbox_depth.inc();
        let _ = self.tx.send(Envelope {
            at: Instant::now(),
            req,
        });
    }
}

fn recv<T>(rx: Receiver<T>) -> T {
    rx.recv().expect("partition worker died")
}

/// The partitioned runtime: worker pool, ownership map, and the shared
/// job-level tables that stay with the router (generation counters; the
/// checkout serializer).
#[derive(Debug)]
pub(crate) struct PartitionedCore {
    workers: Vec<WorkerHandle>,
    servers: usize,
    nodes: usize,
    procs_per_node: usize,
    partitioner: RangePartitioner,
    generations: Arc<RwLock<HashMap<u64, u64>>>,
    injector: Option<Arc<FaultInjector>>,
    /// Serializes checkouts: only one caller may hold the assembled
    /// locked core at a time.
    checkout: Mutex<()>,
    /// Excludes checkouts for the span of one routed multi-step protocol
    /// (a write's append → punch → put → buffer → generation sequence, a
    /// read's scan → fetch). The locked runtime commits those steps under
    /// one metadata lock; here they are separate messages, and a checkout
    /// pass interleaving between them would see — and migrate against —
    /// a half-committed index, then have its work clobbered by the
    /// remaining steps (a stale node-buffer record pointing at released
    /// chain space). Routed ops hold the read side; `with_checked_out`
    /// takes the write side before parking the workers.
    ops: RwLock<()>,
}

impl std::fmt::Debug for WorkerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerHandle").finish_non_exhaustive()
    }
}

impl PartitionedCore {
    /// Spawn `cfg.partition_workers()` event loops, each pre-populated
    /// with its owned (initially empty) KV partitions, heat shards, node
    /// buffers, and read caches.
    pub(crate) fn new(
        cfg: &UniviStorConfig,
        metrics: &JobMetrics,
        injector: Option<Arc<FaultInjector>>,
        layer_caps: Vec<(Tier, u64)>,
    ) -> Self {
        let servers = cfg.geometry.total_servers().max(1);
        let nodes = cfg.geometry.nodes;
        let pool = cfg.partition_workers();
        let partitioner = RangePartitioner::new(cfg.metadata_range_size, servers);
        let generations = Arc::new(RwLock::new(HashMap::new()));
        let mut workers = Vec::with_capacity(pool);
        for id in 0..pool {
            let (tx, rx) = mpsc::sync_channel(MAILBOX_DEPTH);
            let handles = metrics.partition_handles(id);
            let worker = Worker {
                id,
                workers: pool,
                partitioner,
                layer_caps: layer_caps.clone(),
                chunk_size: cfg.chunk_size,
                generations: Arc::clone(&generations),
                injector: injector.clone(),
                metrics: handles.clone(),
                kv: (id..servers)
                    .step_by(pool)
                    .map(|p| (p, BTreeMap::new()))
                    .collect(),
                puts: (id..servers).step_by(pool).map(|p| (p, 0)).collect(),
                gets: (id..servers).step_by(pool).map(|p| (p, 0)).collect(),
                local: (id..nodes)
                    .step_by(pool)
                    .map(|n| (n, HashMap::new()))
                    .collect(),
                read_cache: (id..nodes)
                    .step_by(pool)
                    .map(|n| (n, HashMap::new()))
                    .collect(),
                chains: HashMap::new(),
                heat: (id..servers)
                    .step_by(pool)
                    .map(|p| (p, HashMap::new()))
                    .collect(),
                bytes: HashMap::new(),
            };
            let join = std::thread::Builder::new()
                .name(format!("univistor-part-{id}"))
                .spawn(move || worker.run(rx))
                .expect("spawn partition worker");
            workers.push(WorkerHandle {
                tx,
                metrics: handles,
                join: Some(join),
            });
        }
        PartitionedCore {
            workers,
            servers,
            nodes,
            procs_per_node: cfg.geometry.procs_per_node.max(1),
            partitioner,
            generations,
            injector,
            checkout: Mutex::new(()),
            ops: RwLock::new(()),
        }
    }

    /// Workers in the pool.
    pub(crate) fn workers(&self) -> usize {
        self.workers.len()
    }

    fn owner_of_partition(&self, partition: usize) -> usize {
        partition % self.workers.len()
    }

    /// The worker owning compute node `node`'s buffers and caches.
    pub(crate) fn owner_of_node(&self, node: usize) -> usize {
        node % self.workers.len()
    }

    /// The worker owning `client`'s chain: the owner of its node.
    fn owner_of_client(&self, client: ClientId) -> usize {
        self.owner_of_node(client.rank as usize / self.procs_per_node)
    }

    /// The KV partition (server index) owning logical `offset` — the
    /// router-side mirror of `MetadataService::partition_of`.
    pub(crate) fn partition_of(&self, offset: u64) -> usize {
        self.partitioner.server_for(offset).0
    }

    /// Metadata servers a `lookup_range(fid, lo, hi)` would visit — the
    /// locked runtime charges one RPC per visited server, so the routed
    /// read path computes the same count here.
    pub(crate) fn rpc_servers(&self, lo: u64, hi: u64) -> usize {
        let scan_lo = lo.saturating_sub(self.partitioner.range_size);
        self.partitioner.servers_for_span(scan_lo, hi).len()
    }

    /// The fid's current mutation generation (0 if never mutated).
    pub(crate) fn generation(&self, fid: u64) -> u64 {
        self.generations
            .read()
            .expect("generations poisoned")
            .get(&fid)
            .copied()
            .unwrap_or(0)
    }

    /// Invalidate every cached read window of `fid` (mirrors
    /// `MetadataService::bump_generation`).
    pub(crate) fn bump_generation(&self, fid: u64) {
        *self
            .generations
            .write()
            .expect("generations poisoned")
            .entry(fid)
            .or_insert(0) += 1;
    }

    /// Create `client`'s chain if absent.
    pub(crate) fn ensure_chain(&self, client: ClientId) -> SimResult<()> {
        let (tx, rx) = mpsc::channel();
        self.workers[self.owner_of_client(client)].post(Req::EnsureChain { client, reply: tx });
        recv(rx)
    }

    /// Error exactly like a chain lookup if `client` has no chain.
    pub(crate) fn chain_exists(&self, client: ClientId) -> SimResult<()> {
        let (tx, rx) = mpsc::channel();
        self.workers[self.owner_of_client(client)].post(Req::ChainExists { client, reply: tx });
        recv(rx)
    }

    /// Append a payload run to `client`'s chain (see [`Req::Append`]).
    pub(crate) fn append(
        &self,
        client: ClientId,
        payloads: Vec<Payload>,
        account: bool,
    ) -> SimResult<Vec<PlacedSegment>> {
        let (tx, rx) = mpsc::channel();
        self.workers[self.owner_of_client(client)].post(Req::Append {
            client,
            payloads,
            account,
            reply: tx,
        });
        recv(rx)
    }

    /// Punch `[lo, hi)` of `fid` across every owning worker and merge the
    /// outcomes back into the locked runtime's global key order.
    pub(crate) fn punch(&self, fid: u64, lo: u64, hi: u64) -> PunchOutcome {
        let mut out = PunchOutcome::default();
        if lo >= hi {
            return out;
        }
        let scan_lo = lo.saturating_sub(self.partitioner.range_size);
        let mut receivers = Vec::new();
        for owner in self.span_owners(scan_lo, hi) {
            let (tx, rx) = mpsc::channel();
            self.workers[owner].post(Req::Punch {
                fid,
                lo,
                hi,
                reply: tx,
            });
            receivers.push(rx);
        }
        for rx in receivers {
            let part = recv(rx);
            out.removed.extend(part.removed);
            out.displaced.extend(part.displaced);
            out.fragments.extend(part.fragments);
        }
        // Per-owner replies concatenate in owner order; the locked punch
        // claims (and therefore releases) in global key order. Restore it.
        out.removed.sort();
        out.displaced.sort_by_key(|(k, _)| *k);
        out.fragments.sort_by_key(|(k, _)| *k);
        out
    }

    /// Workers owning at least one server of the span, in first-touch
    /// span order.
    fn span_owners(&self, lo: u64, hi: u64) -> Vec<usize> {
        let mut owners: Vec<usize> = Vec::new();
        for server in self.partitioner.servers_for_span(lo, hi) {
            let owner = self.owner_of_partition(server.0);
            if !owners.contains(&owner) {
                owners.push(owner);
            }
        }
        owners
    }

    /// Insert records into their owning partitions (grouped per worker).
    pub(crate) fn put_records(&self, items: Vec<(SegKey, SegmentRecord)>) {
        let pool = self.workers.len();
        let mut groups: Vec<Vec<(SegKey, SegmentRecord)>> = vec![Vec::new(); pool];
        for (k, v) in items {
            groups[self.owner_of_partition(self.partition_of(k.offset))].push((k, v));
        }
        let mut receivers = Vec::new();
        for (owner, items) in groups.into_iter().enumerate() {
            if items.is_empty() {
                continue;
            }
            let (tx, rx) = mpsc::channel();
            self.workers[owner].post(Req::PutRecords { items, reply: tx });
            receivers.push(rx);
        }
        for rx in receivers {
            recv(rx);
        }
    }

    /// Run the punch's node-buffer sweep on every worker owning a node.
    pub(crate) fn buffer_apply(
        &self,
        fid: u64,
        removed: Vec<SegKey>,
        fragments: Vec<(SegKey, SegmentRecord)>,
    ) {
        let mut receivers = Vec::new();
        for owner in 0..self.workers.len().min(self.nodes) {
            let (tx, rx) = mpsc::channel();
            self.workers[owner].post(Req::BufferApply {
                fid,
                removed: removed.clone(),
                fragments: fragments.clone(),
                reply: tx,
            });
            receivers.push(rx);
        }
        for rx in receivers {
            recv(rx);
        }
    }

    /// Refresh the producer node's shared metadata buffer.
    pub(crate) fn buffer_insert(&self, node: usize, fid: u64, records: Vec<(u64, SegmentRecord)>) {
        let (tx, rx) = mpsc::channel();
        self.workers[self.owner_of_node(node)].post(Req::BufferInsert {
            node,
            fid,
            records,
            reply: tx,
        });
        recv(rx)
    }

    /// Release displaced spans. `spans` must already be sorted by owner
    /// client (the locked pipeline's order); grouping preserves each
    /// chain's relative release order.
    pub(crate) fn release_spans(&self, spans: Vec<(ClientId, VirtualAddr, u64)>) {
        let pool = self.workers.len();
        let mut groups: Vec<Vec<(ClientId, VirtualAddr, u64)>> = vec![Vec::new(); pool];
        for span in spans {
            groups[self.owner_of_client(span.0)].push(span);
        }
        let mut receivers = Vec::new();
        for (owner, spans) in groups.into_iter().enumerate() {
            if spans.is_empty() {
                continue;
            }
            let (tx, rx) = mpsc::channel();
            self.workers[owner].post(Req::Release { spans, reply: tx });
            receivers.push(rx);
        }
        for rx in receivers {
            recv(rx);
        }
    }

    /// Bump heat for the touched keys (fire-and-forget).
    pub(crate) fn bump_heat(&self, keys: Vec<SegKey>) {
        let pool = self.workers.len();
        let mut groups: Vec<Vec<SegKey>> = vec![Vec::new(); pool];
        for key in keys {
            groups[self.owner_of_partition(self.partition_of(key.offset))].push(key);
        }
        for (owner, keys) in groups.into_iter().enumerate() {
            if !keys.is_empty() {
                self.workers[owner].post(Req::Heat { keys });
            }
        }
    }

    /// Node-local lookup in `node`'s shared metadata buffer.
    pub(crate) fn lookup_local(
        &self,
        node: usize,
        fid: u64,
        lo: u64,
        hi: u64,
    ) -> Vec<(SegKey, SegmentRecord)> {
        let (tx, rx) = mpsc::channel();
        self.workers[self.owner_of_node(node)].post(Req::LookupLocal {
            node,
            fid,
            lo,
            hi,
            reply: tx,
        });
        recv(rx)
    }

    /// Probe `node`'s read record cache (`None` = miss).
    pub(crate) fn cache_lookup(
        &self,
        node: usize,
        fid: u64,
        lo: u64,
        hi: u64,
        gen: u64,
    ) -> Option<Vec<(SegKey, SegmentRecord)>> {
        let (tx, rx) = mpsc::channel();
        self.workers[self.owner_of_node(node)].post(Req::CacheLookup {
            node,
            fid,
            lo,
            hi,
            gen,
            reply: tx,
        });
        recv(rx)
    }

    /// Distributed lookup of records intersecting `[lo, hi)` of `fid`,
    /// merged and offset-sorted like `MetadataService::lookup_range`.
    pub(crate) fn scan(&self, fid: u64, lo: u64, hi: u64) -> Vec<(SegKey, SegmentRecord)> {
        let scan_lo = lo.saturating_sub(self.partitioner.range_size);
        let mut receivers = Vec::new();
        for owner in self.span_owners(scan_lo, hi) {
            let (tx, rx) = mpsc::channel();
            self.workers[owner].post(Req::Scan {
                fid,
                lo,
                hi,
                reply: tx,
            });
            receivers.push(rx);
        }
        let mut records = Vec::new();
        for rx in receivers {
            records.extend(recv(rx));
        }
        records.sort_by_key(|(k, _)| *k);
        records
    }

    /// Install a fetched window into `node`'s read cache.
    pub(crate) fn cache_install(
        &self,
        node: usize,
        fid: u64,
        lo: u64,
        fetch_hi: u64,
        gen: u64,
        records: Vec<(SegKey, SegmentRecord)>,
    ) {
        let (tx, rx) = mpsc::channel();
        self.workers[self.owner_of_node(node)].post(Req::CacheInstall {
            node,
            fid,
            lo,
            fetch_hi,
            gen,
            records,
            reply: tx,
        });
        recv(rx)
    }

    /// Batched fragment fetch from `client`'s chain.
    pub(crate) fn fetch(
        &self,
        client: ClientId,
        requests: Vec<(VirtualAddr, u64)>,
    ) -> SimResult<Vec<(Payload, Tier)>> {
        let (tx, rx) = mpsc::channel();
        self.workers[self.owner_of_client(client)].post(Req::Fetch {
            client,
            requests,
            reply: tx,
        });
        recv(rx)
    }

    /// Merge (and with `take`, reset) every worker's byte ledger — the
    /// partitioned replacement for the locked accounting mutex.
    pub(crate) fn collect_bytes(&self, take: bool) -> HashMap<(ClientId, Tier), u64> {
        let mut receivers = Vec::new();
        for worker in &self.workers {
            let (tx, rx) = mpsc::channel();
            worker.post(Req::CollectBytes { take, reply: tx });
            receivers.push(rx);
        }
        let mut merged: HashMap<(ClientId, Tier), u64> = HashMap::new();
        for rx in receivers {
            for (key, bytes) in recv(rx) {
                *merged.entry(key).or_insert(0) += bytes;
            }
        }
        merged
    }

    /// Park every worker, assemble the full locked core from their slices,
    /// run `f` against it, then disassemble and redistribute by ownership.
    /// Chains or records `f` creates (e.g. repair's re-replication) land on
    /// their correct owners. Serialized: one checkout at a time.
    /// Hold off checkouts while a routed multi-step protocol is in
    /// flight; see the `ops` field. Cheap and uncontended in steady
    /// state — no checkout, no writer, shared acquisition only.
    pub(crate) fn exclude_passes(&self) -> std::sync::RwLockReadGuard<'_, ()> {
        self.ops.read().expect("pass-exclusion gate poisoned")
    }

    pub(crate) fn with_checked_out<R>(&self, f: impl FnOnce(&LockedCore) -> R) -> R {
        let _serial = self.checkout.lock().expect("checkout serializer poisoned");
        // Wait for in-flight routed protocols to finish their commit
        // sequences; new ones queue on the gate until the checkin.
        let _excl = self.ops.write().expect("pass-exclusion gate poisoned");
        let mut checkins = Vec::with_capacity(self.workers.len());
        let mut receivers = Vec::with_capacity(self.workers.len());
        for worker in &self.workers {
            let (reply_tx, reply_rx) = mpsc::channel();
            let (checkin_tx, checkin_rx) = mpsc::channel();
            worker.post(Req::Checkout {
                reply: reply_tx,
                checkin: checkin_rx,
            });
            checkins.push(checkin_tx);
            receivers.push(reply_rx);
        }
        let slices: Vec<Slice> = receivers.into_iter().map(recv).collect();
        let core = self.assemble(slices);
        let result = f(&core);
        for (checkin, slice) in checkins.into_iter().zip(self.disassemble(core)) {
            let _ = checkin.send(slice);
        }
        result
    }

    fn assemble(&self, slices: Vec<Slice>) -> LockedCore {
        let mut shards: Vec<BTreeMap<SegKey, SegmentRecord>> =
            (0..self.servers).map(|_| BTreeMap::new()).collect();
        let mut puts = vec![0u64; self.servers];
        let mut gets = vec![0u64; self.servers];
        let mut local: Vec<HashMap<u64, BTreeMap<u64, SegmentRecord>>> =
            (0..self.nodes).map(|_| HashMap::new()).collect();
        let mut read_cache: Vec<HashMap<u64, BTreeMap<u64, CacheEntry>>> =
            (0..self.nodes).map(|_| HashMap::new()).collect();
        let mut heat_maps: Vec<HashMap<SegKey, u32>> =
            (0..self.servers).map(|_| HashMap::new()).collect();
        let mut chain_list: Vec<(ClientId, ProcChain)> = Vec::new();
        for slice in slices {
            for (p, shard) in slice.kv {
                shards[p] = shard;
            }
            for (p, n) in slice.puts {
                puts[p] = n;
            }
            for (p, n) in slice.gets {
                gets[p] = n;
            }
            for (n, buffer) in slice.local {
                local[n] = buffer;
            }
            for (n, cache) in slice.read_cache {
                read_cache[n] = cache;
            }
            for (p, shard) in slice.heat {
                heat_maps[p] = shard;
            }
            chain_list.extend(slice.chains);
        }
        let mut chains: ChainSet = chain_list.into_iter().collect();
        if let Some(inj) = &self.injector {
            chains.set_injector(Arc::clone(inj));
        }
        let metadata = MetadataService::from_parts(
            self.partitioner.range_size,
            shards,
            puts,
            gets,
            local,
            read_cache,
            Arc::clone(&self.generations),
            self.injector.clone(),
        );
        let heat = heat_maps
            .into_iter()
            .map(|shard| {
                RwLock::new(
                    shard
                        .into_iter()
                        .map(|(k, n)| (k, AtomicU32::new(n)))
                        .collect(),
                )
            })
            .collect();
        LockedCore {
            chains,
            metadata,
            heat,
        }
    }

    fn disassemble(&self, core: LockedCore) -> Vec<Slice> {
        let LockedCore {
            chains,
            metadata,
            heat,
        } = core;
        let pool = self.workers.len();
        let mut slices: Vec<Slice> = (0..pool).map(|_| Slice::default()).collect();
        let (shards, puts, gets, local, read_cache) = metadata.into_parts();
        for (p, shard) in shards.into_iter().enumerate() {
            slices[p % pool].kv.insert(p, shard);
        }
        for (p, n) in puts.into_iter().enumerate() {
            slices[p % pool].puts.insert(p, n);
        }
        for (p, n) in gets.into_iter().enumerate() {
            slices[p % pool].gets.insert(p, n);
        }
        for (n, buffer) in local.into_iter().enumerate() {
            slices[n % pool].local.insert(n, buffer);
        }
        for (n, cache) in read_cache.into_iter().enumerate() {
            slices[n % pool].read_cache.insert(n, cache);
        }
        for (p, shard) in heat.into_iter().enumerate() {
            slices[p % pool].heat.insert(
                p,
                shard
                    .into_inner()
                    .expect("heat shard poisoned")
                    .into_iter()
                    .map(|(k, n)| (k, n.into_inner()))
                    .collect(),
            );
        }
        for (client, chain) in chains.into_chain_list() {
            slices[self.owner_of_client(client)]
                .chains
                .push((client, chain));
        }
        slices
    }
}

impl Drop for PartitionedCore {
    fn drop(&mut self) {
        for worker in &self.workers {
            worker.post(Req::Shutdown);
        }
        for worker in &mut self.workers {
            if let Some(join) = worker.join.take() {
                let _ = join.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UniviStorConfig;
    use crate::placement::layer_caps_with_node_local;

    fn core(nodes: usize, procs_per_node: usize, partitions: usize) -> PartitionedCore {
        let mut cfg = UniviStorConfig::test_small(nodes, procs_per_node);
        cfg.partitions = partitions;
        let caps = layer_caps_with_node_local(
            cfg.cal.dram_cache_capacity_per_node,
            None,
            cfg.geometry.procs_per_node,
            4096,
            cfg.geometry.total_procs(),
        );
        let metrics = JobMetrics::new();
        PartitionedCore::new(&cfg, &metrics, None, caps)
    }

    #[test]
    fn ownership_map_is_total_and_stable() {
        let core = core(2, 2, 2);
        assert_eq!(core.workers(), 2);
        for p in 0..4 {
            assert_eq!(core.owner_of_partition(p), p % 2);
        }
        // Clients of node 0 (ranks 0..2) and node 1 (ranks 2..4).
        assert_eq!(core.owner_of_client(ClientId::new(0, 0)), 0);
        assert_eq!(core.owner_of_client(ClientId::new(0, 1)), 0);
        assert_eq!(core.owner_of_client(ClientId::new(0, 2)), 1);
    }

    #[test]
    fn routed_append_and_fetch_roundtrip() {
        let core = core(2, 2, 2);
        let client = ClientId::new(0, 0);
        assert!(core.fetch(client, vec![]).is_err(), "no chain yet");
        core.ensure_chain(client).unwrap();
        core.chain_exists(client).unwrap();
        let placed = core
            .append(client, vec![Payload::pattern(7, 64)], true)
            .unwrap();
        assert_eq!(placed.len(), 1);
        let got = core
            .fetch(client, vec![(placed[0].va, placed[0].len)])
            .unwrap();
        assert!(got[0].0.content_eq(&Payload::pattern(7, 64)));
        let bytes = core.collect_bytes(false);
        assert_eq!(bytes[&(client, placed[0].tier)], 64);
    }

    #[test]
    fn punch_claims_and_fragments_like_the_locked_path() {
        let core = core(2, 2, 2);
        let client = ClientId::new(0, 0);
        let rec = SegmentRecord::new(client, VirtualAddr(100), 100);
        core.put_records(vec![(SegKey { fid: 1, offset: 0 }, rec)]);
        // Punch the middle third: one claim, two surviving fragments.
        let out = core.punch(1, 30, 60);
        assert_eq!(out.removed, vec![SegKey { fid: 1, offset: 0 }]);
        assert_eq!(out.displaced.len(), 1);
        assert_eq!(out.displaced[0].1.va, VirtualAddr(130));
        assert_eq!(out.displaced[0].1.len, 30);
        assert_eq!(out.fragments.len(), 2);
        assert_eq!(out.fragments[0].0.offset, 0);
        assert_eq!(out.fragments[1].0.offset, 60);
        // The claimed record is gone; a second punch finds nothing.
        assert!(core.punch(1, 30, 60).removed.is_empty());
    }

    #[test]
    fn checkout_roundtrip_preserves_worker_state() {
        let core = core(2, 2, 2);
        let client = ClientId::new(0, 2); // node 1 → worker 1
        core.ensure_chain(client).unwrap();
        let placed = core
            .append(client, vec![Payload::pattern(3, 64)], false)
            .unwrap();
        let rec = SegmentRecord::new(client, placed[0].va, 64);
        core.put_records(vec![(SegKey { fid: 9, offset: 0 }, rec)]);
        core.buffer_insert(1, 9, vec![(0, rec)]);
        // The assembled locked core sees everything the workers own …
        let (len, local_hits, live) = core.with_checked_out(|locked| {
            (
                locked.metadata.len(),
                locked.metadata.lookup_local(1, 9, 0, 64).len(),
                locked.chains.live_bytes(),
            )
        });
        assert_eq!((len, local_hits, live), (1, 1, 64));
        // … and after check-in the workers still serve it.
        let got = core.fetch(client, vec![(placed[0].va, 64)]).unwrap();
        assert!(got[0].0.content_eq(&Payload::pattern(3, 64)));
        assert_eq!(core.scan(9, 0, 64).len(), 1);
        assert_eq!(core.lookup_local(1, 9, 0, 64).len(), 1);
    }
}
