//! Shared-nothing partitioned runtime ([`Runtime::Partitioned`]).
//!
//! The locked runtime keeps one set of library structures (`ChainSet`,
//! `MetadataService`, heat shards) guarded by sharded locks and mutates
//! them from whichever thread issued the call. This module implements the
//! alternative: a fixed pool of **partition workers**, each an event loop
//! that exclusively owns its slice of state —
//!
//! * KV partition `p` (and heat shard `p`) belong to worker `p % W`;
//! * node `n`'s shared metadata buffer and read record cache belong to
//!   worker `n % W`;
//! * client `c`'s log chain belongs to the worker owning `c`'s node.
//!
//! Workers hold **plain** maps — no interior locks at all — and are fed
//! typed request messages over bounded mailboxes. `UniviStorJob`'s data
//! plane becomes a routing layer; the steady-state write/read path takes
//! zero counted lock acquisitions end to end.
//!
//! ## Fused commit protocol
//!
//! A write commits in at most two waves instead of the original 4–6
//! (EnsureChain → Append → Punch → PutRecords → BufferApply →
//! BufferInsert):
//!
//! 1. **Awaited**: [`Req::Append`] to the chain owner (chain creation is
//!    fused in via its `ensure` flag), then one [`Req::WriteCommit`] per
//!    span owner carrying that worker's record slice — each worker
//!    punches its partitions and installs its records in one handler
//!    pass, replying with its share of the punch outcome.
//! 2. **Fire-and-forget**: one [`Req::WriteFinish`] per involved worker
//!    with its fragment puts, node-buffer sweep, producer buffer refresh,
//!    and chain releases. Finish stages are infallible (no fault sites)
//!    and per-mailbox FIFO order sequences them before any later request
//!    to the same worker, so observers never see them missing.
//!
//! When the whole widened span *and* the producer chain live on a single
//! worker (and replication is off), the write collapses further into one
//! [`Req::WriteFused`] message — one round-trip total — whose handler
//! runs the entire locked commit order (ensure → append → kv draw →
//! punch → fragment puts → sweep → record puts → buffer insert →
//! generation bump → releases) with the retry loops *inside* the
//! handler, preserving the locked pipeline's retry scoping (append and
//! the kv-insert draw retry independently; a replayed message would
//! double-append). Reads mirror this with [`Req::ReadPlan`]: node-buffer
//! lookup, the `kv_lookup` fault draw, and the generation-validated
//! cache probe fused into one message to the node owner.
//!
//! Ordering inside the protocol preserves the locked runtime's commit
//! order where it is observable: the punch precedes record puts in the
//! same worker (the CAS claim must not see the new records), the
//! node-buffer sweep's fid-tracking check runs against *pre-insert*
//! buffer state (the producer refresh rides the finish wave, after the
//! sweep), and fragment keys never collide with record keys (left
//! fragment offset < lo, right fragment offset = hi, records ∈ [lo,
//! hi)), so their put order is free.
//!
//! ## Zero-allocation message plane
//!
//! Awaited requests carry a pooled, reusable [`ReplySlot`] instead of a
//! fresh `mpsc::channel()` pair; the router recycles slots after each
//! round-trip (`univistor_msgplane_reply_pool_{hits,misses}_total`).
//! Broadcast payloads (the sweep's removed keys and fragments, the
//! producer buffer refresh) are shared as `Arc<[T]>` across the fan-out
//! instead of cloned per worker, scatter grouping reuses thread-local
//! scratch buffers, and workers run an adaptive spin-then-park receive
//! loop (busy-poll briefly while the router streams requests, park
//! otherwise; disabled on single-core hosts). Awaited round-trips are
//! counted in `univistor_partition_round_trips_total`.
//!
//! Every handler replicates its locked counterpart's semantics byte for
//! byte, including the per-server `puts`/`gets` RPC accounting and the
//! fault-injection draw order, so the differential tests in
//! `tests/runtime.rs` can pin `Runtime::Locked` ≡ `Runtime::Partitioned`.
//!
//! Cold paths (tiering passes, flush, repair, stats probes) run through a
//! **checkout**: the router parks every worker, collects their slices,
//! reassembles the real locked-core structures ([`LockedCore`]), runs the
//! legacy code against them, then disassembles and redistributes by
//! ownership. Mailbox FIFO order makes a checkout interleaving with an
//! in-flight routed operation equivalent to the locked runtime's
//! stepwise (non-atomic) lock acquisitions.

use crate::config::UniviStorConfig;
use crate::fault::{with_retries, FaultInjector, RetryPolicy};
use crate::metadata::{
    split_overlapped, CacheEntry, ClientId, Displaced, MetadataService, SegKey, SegmentRecord,
    READ_CACHE_WINDOWS_PER_FID,
};
use crate::metrics::{JobMetrics, MsgPlaneMetrics, PartitionMetrics};
use crate::placement::{ChainSet, PlacedSegment, ProcChain};
use crate::va::{Tier, VirtualAddr};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TryRecvError};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;
use univistor_kv::RangePartitioner;
use univistor_sim::{Payload, SimError, SimResult};

/// Iterations a worker busy-polls its mailbox before parking, and the
/// router busy-polls a reply slot before blocking — on multi-core hosts
/// only (a single core has nobody to spin against).
const SPIN_CAP: u32 = 64;

/// The locked-runtime core: the three library structures the legacy data
/// plane mutates in place. Under [`Runtime::Locked`] the job owns one of
/// these for its whole lifetime; under [`Runtime::Partitioned`] one is
/// assembled transiently for each checkout.
///
/// [`Runtime::Locked`]: crate::config::Runtime::Locked
/// [`Runtime::Partitioned`]: crate::config::Runtime::Partitioned
#[derive(Debug)]
pub(crate) struct LockedCore {
    /// Per-client log chains.
    pub(crate) chains: ChainSet,
    /// Distributed metadata service (KV + node buffers + read caches).
    pub(crate) metadata: MetadataService,
    /// Per-KV-partition heat shards (segment read counters).
    pub(crate) heat: Vec<RwLock<HashMap<SegKey, AtomicU32>>>,
}

/// What one [`WriteCommit`](Req::WriteCommit) punch (or a router-level
/// merge of several) produced: the claimed keys, the displaced middles
/// keyed by their original record so the router can restore the locked
/// runtime's global key order, and the surviving edge fragments (not yet
/// re-inserted — they ride the finish wave so the removed-empty
/// early-return matches `punch_inner`).
#[derive(Debug, Default)]
pub(crate) struct PunchOutcome {
    /// Keys claimed out of the index.
    pub(crate) removed: Vec<SegKey>,
    /// Displaced middle spans, keyed by the record they were cut from.
    pub(crate) displaced: Vec<(SegKey, Displaced)>,
    /// Surviving left/right fragments to re-insert.
    pub(crate) fragments: Vec<(SegKey, SegmentRecord)>,
}

/// What a [`WriteFused`](Req::WriteFused) handler committed, plus the
/// leftovers it could not apply locally and hands back to the router.
#[derive(Debug)]
pub(crate) struct FusedReply {
    /// Coalesced records installed (for the write-batch metric).
    pub(crate) records: u64,
    /// Keys the punch claimed (sweep input for other workers' nodes).
    pub(crate) removed: Vec<SegKey>,
    /// Surviving fragments (sweep re-cache input; own-partition copies
    /// are already re-inserted).
    pub(crate) fragments: Vec<(SegKey, SegmentRecord)>,
    /// Fragments whose partition another worker owns (a block-aligned
    /// right edge escapes even a single-owner span).
    pub(crate) foreign_fragments: Vec<(SegKey, SegmentRecord)>,
    /// Displaced spans owned by other workers' chains, in punch order.
    pub(crate) foreign_spans: Vec<(ClientId, VirtualAddr, u64)>,
}

/// A read-cache probe result: `Some` hits, or `None` for a miss (the
/// router falls back to a distributed scan).
type CacheProbe = Option<Vec<(SegKey, SegmentRecord)>>;

/// A producer node-buffer refresh: the node plus the committed records
/// keyed by logical offset, shared across the finish fan-out.
type BufferRefresh = (usize, Arc<[(u64, SegmentRecord)]>);

/// What a [`ReadPlan`](Req::ReadPlan) handler gathered in one pass.
#[derive(Debug)]
pub(crate) struct PlanReply {
    /// Node-buffer hits overlapping the request.
    pub(crate) local: Vec<(SegKey, SegmentRecord)>,
    /// `None` when the node buffer fully covered the request; otherwise
    /// the generation observed and the read-cache probe result.
    pub(crate) remote: Option<(u64, CacheProbe)>,
}

/// A worker's entire owned state, detached for a checkout and re-installed
/// afterwards. Byte accounting (`Worker::bytes`) deliberately stays
/// resident in the worker: the locked core has no equivalent structure and
/// workers are parked for the whole checkout, so it cannot drift.
#[derive(Debug, Default)]
struct Slice {
    /// Owned KV partitions: partition → records.
    kv: HashMap<usize, BTreeMap<SegKey, SegmentRecord>>,
    /// Owned per-partition KV put counters.
    puts: HashMap<usize, u64>,
    /// Owned per-partition KV get (visit) counters.
    gets: HashMap<usize, u64>,
    /// Owned nodes' shared metadata buffers: node → fid → offset → record.
    local: HashMap<usize, HashMap<u64, BTreeMap<u64, SegmentRecord>>>,
    /// Owned nodes' read record caches: node → fid → window lo → entry.
    read_cache: HashMap<usize, HashMap<u64, BTreeMap<u64, CacheEntry>>>,
    /// Owned clients' log chains.
    chains: Vec<(ClientId, ProcChain)>,
    /// Owned heat shards: partition → key → read count.
    heat: HashMap<usize, HashMap<SegKey, u32>>,
}

/// A typed reply, deposited into the request's [`ReplySlot`].
enum Reply {
    Chain(SimResult<()>),
    Placed(SimResult<Vec<PlacedSegment>>),
    Punch(PunchOutcome),
    Records(Vec<(SegKey, SegmentRecord)>),
    Fetched(SimResult<Vec<(Payload, Tier)>>),
    Bytes(Vec<((ClientId, Tier), u64)>),
    Fused(SimResult<FusedReply>),
    Plan(SimResult<PlanReply>),
}

/// A reusable one-shot reply cell: the routing layer's replacement for a
/// per-request `mpsc::channel()` pair. The router pops one from the pool
/// (or allocates on a dry pool), clones the `Arc` into the request, and
/// blocks in [`take`](ReplySlot::take); the worker deposits exactly one
/// reply with [`fill`](ReplySlot::fill). After `take` the slot is empty
/// again and returns to the pool.
///
/// The `filled` flag lets the router spin briefly without touching the
/// mutex; the mutex + condvar make the blocking path race-free. A worker
/// never touches the slot after `fill`, so recycling cannot observe a
/// stale writer.
struct ReplySlot {
    filled: AtomicBool,
    cell: Mutex<Option<Reply>>,
    cv: Condvar,
}

impl std::fmt::Debug for ReplySlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplySlot").finish_non_exhaustive()
    }
}

impl ReplySlot {
    fn new() -> Self {
        ReplySlot {
            filled: AtomicBool::new(false),
            cell: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn fill(&self, reply: Reply) {
        let mut cell = self.cell.lock().expect("reply slot poisoned");
        *cell = Some(reply);
        self.filled.store(true, Ordering::Release);
        self.cv.notify_one();
    }

    fn take(&self, spin: u32) -> Reply {
        for _ in 0..spin {
            if self.filled.load(Ordering::Acquire) {
                break;
            }
            std::hint::spin_loop();
        }
        let mut cell = self.cell.lock().expect("reply slot poisoned");
        while cell.is_none() {
            cell = self.cv.wait(cell).expect("reply slot poisoned");
        }
        self.filled.store(false, Ordering::Relaxed);
        cell.take().expect("just observed Some")
    }
}

/// A typed request to one partition worker. Every variant that produces a
/// result carries a pooled [`ReplySlot`]; [`Heat`](Req::Heat),
/// [`WriteFinish`](Req::WriteFinish), and
/// [`CacheInstall`](Req::CacheInstall) are fire-and-forget (infallible,
/// and mailbox FIFO order sequences them before any later observer) and
/// [`Shutdown`](Req::Shutdown) ends the event loop.
enum Req {
    /// Fail exactly like a chain lookup would if `client` has no chain.
    ChainExists {
        client: ClientId,
        reply: Arc<ReplySlot>,
    },
    /// Append a payload run to `client`'s chain — `ChainSet::append_many`
    /// semantics (per-piece fault draw, full-batch rollback). With
    /// `ensure` set, the chain is created first if absent (the fused
    /// replacement for a separate EnsureChain round-trip); with `account`
    /// set, successful placements are added to the worker's per-(client,
    /// tier) byte ledger (the routed write path's replacement for the
    /// router-side accounting mutex).
    Append {
        client: ClientId,
        payloads: Vec<Payload>,
        account: bool,
        ensure: bool,
        reply: Arc<ReplySlot>,
    },
    /// First commit wave: claim every owned record overlapping `[lo, hi)`
    /// of `fid` (`punch_inner`'s scan+claim restricted to this worker's
    /// partitions), then install this worker's slice of the batch's new
    /// records (one `puts` bump per record, matching `DistKv::put_batch`).
    /// The punch precedes the puts so the CAS claim never sees a new
    /// record at an overwritten offset.
    WriteCommit {
        fid: u64,
        lo: u64,
        hi: u64,
        records: Vec<(SegKey, SegmentRecord)>,
        reply: Arc<ReplySlot>,
    },
    /// Second commit wave (fire-and-forget): this worker's fragment puts,
    /// node-buffer sweep (removed keys shared as `Arc<[_]>` across the
    /// fan-out, posted only to workers whose nodes may track the fid),
    /// producer buffer refresh (`reinsert`, ordered *after* the sweep so
    /// the buffer ends up in the locked sweep-then-insert state), and
    /// chain releases in punch order.
    WriteFinish {
        fid: u64,
        put_fragments: Vec<(SegKey, SegmentRecord)>,
        removed: Arc<[SegKey]>,
        fragments: Arc<[(SegKey, SegmentRecord)]>,
        sweep: bool,
        reinsert: Option<BufferRefresh>,
        release: Vec<(ClientId, VirtualAddr, u64)>,
    },
    /// Single-round-trip write: the entire commit (ensure → append →
    /// kv-insert draw → punch → fragment puts → sweep → record puts →
    /// buffer insert → generation bump → releases) applied atomically in
    /// one handler pass, with the locked pipeline's retry scoping *inside*
    /// the handler. Only valid when this worker owns the whole widened
    /// span and the producer chain (the router gates on
    /// [`PartitionedCore::fused_owner`]).
    WriteFused {
        client: ClientId,
        fid: u64,
        node: usize,
        offset: u64,
        end: u64,
        payloads: Vec<Payload>,
        pieces: Vec<(u64, u64)>,
        reply: Arc<ReplySlot>,
    },
    /// Fused read plan: node-buffer lookup, and — only when the buffer
    /// does not fully cover the request — the `kv_lookup` fault draw plus
    /// the generation-validated read-cache probe, in one message.
    ReadPlan {
        node: usize,
        fid: u64,
        lo: u64,
        hi: u64,
        reply: Arc<ReplySlot>,
    },
    /// Bump heat counters on owned shards. Fire-and-forget: the read path
    /// never waits on it, and mailbox FIFO order still sequences it before
    /// any later checkout.
    Heat { keys: Vec<SegKey> },
    /// `lookup_range`'s scan restricted to this worker's partitions
    /// (per-visited-server `gets` bump included).
    Scan {
        fid: u64,
        lo: u64,
        hi: u64,
        reply: Arc<ReplySlot>,
    },
    /// Install a fetched window into an owned node's read cache, unless
    /// the fid's generation moved while the lookup was in flight.
    /// Fire-and-forget: the read's answer never depends on it.
    CacheInstall {
        node: usize,
        fid: u64,
        lo: u64,
        fetch_hi: u64,
        gen: u64,
        records: Vec<(SegKey, SegmentRecord)>,
    },
    /// Batched fragment fetch from `client`'s chain —
    /// `ChainSet::read_at_many` semantics (in-order per-fragment fault
    /// draws, fail-fast).
    Fetch {
        client: ClientId,
        requests: Vec<(VirtualAddr, u64)>,
        reply: Arc<ReplySlot>,
    },
    /// Report (and with `take`, reset) the worker's byte ledger.
    CollectBytes { take: bool, reply: Arc<ReplySlot> },
    /// Detach the worker's slice, park until the router checks it back in.
    /// The cold checkout path keeps plain `mpsc` channels — slices are
    /// large and the exchange is rare, so pooling buys nothing.
    Checkout {
        reply: Sender<Slice>,
        checkin: Receiver<Slice>,
    },
    /// End the event loop. Messages enqueued earlier are drained first
    /// (FIFO), so shutdown never drops queued work.
    Shutdown,
}

/// A request stamped with its enqueue time, so the worker can observe
/// mailbox wait latency on dequeue.
struct Envelope {
    at: Instant,
    req: Req,
}

fn inject(
    injector: &Option<Arc<FaultInjector>>,
    site: &'static str,
    tier: Option<Tier>,
) -> SimResult<()> {
    match injector {
        Some(inj) => inj.inject(site, tier),
        None => Ok(()),
    }
}

/// Pull the next request: busy-poll up to `spin` iterations (growing the
/// budget toward `spin_cap` on a hit, halving it before parking on a
/// miss), then block. `None` means the router dropped the channel.
fn next_request(rx: &Receiver<Envelope>, spin_cap: u32, spin: &mut u32) -> Option<Envelope> {
    if spin_cap > 0 {
        for _ in 0..*spin {
            match rx.try_recv() {
                Ok(env) => {
                    *spin = (*spin * 2).clamp(1, spin_cap);
                    return Some(env);
                }
                Err(TryRecvError::Empty) => std::hint::spin_loop(),
                Err(TryRecvError::Disconnected) => return None,
            }
        }
        *spin = (*spin / 2).max(1);
    }
    rx.recv().ok()
}

/// One partition worker: the event loop plus everything it owns.
struct Worker {
    /// This worker's index.
    id: usize,
    /// Total workers (the modulus of the ownership map).
    workers: usize,
    partitioner: RangePartitioner,
    /// Per-process layer capacities for chains built on demand.
    layer_caps: Vec<(Tier, u64)>,
    chunk_size: u64,
    procs_per_node: usize,
    /// Shared per-fid generation table (cache validation), cloned from the
    /// router so checkouts keep one coherent counter set.
    generations: Arc<RwLock<HashMap<u64, u64>>>,
    injector: Option<Arc<FaultInjector>>,
    /// Whether the integrity plane stamps checksums on fused commits.
    integrity: bool,
    /// Retry budget for the fused write's in-handler retry loops.
    retry: RetryPolicy,
    /// The job panel, for retry accounting and per-segment metrics on the
    /// fused path (the router records them on the multi-wave path).
    job_metrics: Arc<JobMetrics>,
    metrics: PartitionMetrics,
    spin_cap: u32,
    // ---- exclusively owned state (plain maps, no locks) ----
    kv: HashMap<usize, BTreeMap<SegKey, SegmentRecord>>,
    puts: HashMap<usize, u64>,
    gets: HashMap<usize, u64>,
    local: HashMap<usize, HashMap<u64, BTreeMap<u64, SegmentRecord>>>,
    read_cache: HashMap<usize, HashMap<u64, BTreeMap<u64, CacheEntry>>>,
    chains: HashMap<ClientId, ProcChain>,
    heat: HashMap<usize, HashMap<SegKey, u32>>,
    bytes: HashMap<(ClientId, Tier), u64>,
}

impl Worker {
    fn run(mut self, rx: Receiver<Envelope>) {
        let mut spin: u32 = if self.spin_cap > 0 { 1 } else { 0 };
        loop {
            let Some(env) = next_request(&rx, self.spin_cap, &mut spin) else {
                return; // router dropped the mailbox
            };
            self.metrics.mailbox_depth.dec();
            self.metrics
                .wait_seconds
                .observe(env.at.elapsed().as_secs_f64());
            self.metrics.messages.inc();
            match env.req {
                Req::ChainExists { client, reply } => {
                    self.metrics.batched_ops.inc();
                    reply.fill(Reply::Chain(if self.chains.contains_key(&client) {
                        Ok(())
                    } else {
                        Err(no_chain(client))
                    }));
                }
                Req::Append {
                    client,
                    payloads,
                    account,
                    ensure,
                    reply,
                } => {
                    self.metrics.batched_ops.add(payloads.len() as u64);
                    let result = if ensure {
                        self.ensure_chain(client)
                            .and_then(|()| self.append(client, payloads, account))
                    } else {
                        self.append(client, payloads, account)
                    };
                    reply.fill(Reply::Placed(result));
                }
                Req::WriteCommit {
                    fid,
                    lo,
                    hi,
                    records,
                    reply,
                } => {
                    self.metrics.batched_ops.add(1 + records.len() as u64);
                    let out = self.punch(fid, lo, hi);
                    self.put_records(records);
                    reply.fill(Reply::Punch(out));
                }
                Req::WriteFinish {
                    fid,
                    put_fragments,
                    removed,
                    fragments,
                    sweep,
                    reinsert,
                    release,
                } => {
                    self.metrics.batched_ops.inc();
                    self.put_records(put_fragments);
                    if sweep && !removed.is_empty() {
                        self.buffer_apply(fid, &removed, &fragments);
                    }
                    if let Some((node, records)) = reinsert {
                        let per_fid = self.local.entry(node).or_default().entry(fid).or_default();
                        for &(offset, record) in records.iter() {
                            per_fid.insert(offset, record);
                        }
                    }
                    for (client, va, len) in release {
                        if let Some(chain) = self.chains.get_mut(&client) {
                            chain.release(va, len);
                        }
                    }
                }
                Req::WriteFused {
                    client,
                    fid,
                    node,
                    offset,
                    end,
                    payloads,
                    pieces,
                    reply,
                } => {
                    self.metrics.batched_ops.add(payloads.len() as u64);
                    reply.fill(Reply::Fused(
                        self.fused_write(client, fid, node, offset, end, payloads, pieces),
                    ));
                }
                Req::ReadPlan {
                    node,
                    fid,
                    lo,
                    hi,
                    reply,
                } => {
                    self.metrics.batched_ops.inc();
                    reply.fill(Reply::Plan(self.read_plan(node, fid, lo, hi)));
                }
                Req::Heat { keys } => {
                    self.metrics.batched_ops.add(keys.len() as u64);
                    for key in keys {
                        let shard = self.partitioner.server_for(key.offset).0;
                        *self.heat.entry(shard).or_default().entry(key).or_insert(0) += 1;
                    }
                }
                Req::Scan { fid, lo, hi, reply } => {
                    self.metrics.batched_ops.inc();
                    reply.fill(Reply::Records(self.scan(fid, lo, hi)));
                }
                Req::CacheInstall {
                    node,
                    fid,
                    lo,
                    fetch_hi,
                    gen,
                    records,
                } => {
                    self.metrics.batched_ops.inc();
                    self.cache_install(node, fid, lo, fetch_hi, gen, records);
                }
                Req::Fetch {
                    client,
                    requests,
                    reply,
                } => {
                    self.metrics.batched_ops.add(requests.len() as u64);
                    reply.fill(Reply::Fetched(self.fetch(client, &requests)));
                }
                Req::CollectBytes { take, reply } => {
                    self.metrics.batched_ops.inc();
                    let ledger: Vec<((ClientId, Tier), u64)> =
                        self.bytes.iter().map(|(k, v)| (*k, *v)).collect();
                    if take {
                        self.bytes.clear();
                    }
                    reply.fill(Reply::Bytes(ledger));
                }
                Req::Checkout { reply, checkin } => {
                    self.metrics.batched_ops.inc();
                    let _ = reply.send(self.take_slice());
                    match checkin.recv() {
                        Ok(slice) => self.install_slice(slice),
                        // Router dropped mid-checkout (it panicked): the
                        // job is gone, so the worker exits too.
                        Err(_) => return,
                    }
                }
                Req::Shutdown => return,
            }
        }
    }

    fn ensure_chain(&mut self, client: ClientId) -> SimResult<()> {
        if self.chains.contains_key(&client) {
            return Ok(());
        }
        let chain = ProcChain::new(self.layer_caps.clone(), self.chunk_size)?;
        self.chains.insert(client, chain);
        Ok(())
    }

    fn append(
        &mut self,
        client: ClientId,
        payloads: Vec<Payload>,
        account: bool,
    ) -> SimResult<Vec<PlacedSegment>> {
        let injector = self.injector.clone();
        let Some(chain) = self.chains.get_mut(&client) else {
            return Err(no_chain(client));
        };
        let mut placed: Vec<PlacedSegment> = Vec::with_capacity(payloads.len());
        for payload in payloads {
            // Same fault-draw order and rollback as `ChainSet::append_many`:
            // one draw per placed piece, a transient fault mid-run aborts
            // (and releases) the whole batch.
            let appended = match chain.append(payload) {
                Ok(p) => match inject(&injector, "chain_append", Some(p.tier)) {
                    Ok(()) => Ok(p),
                    Err(e) => {
                        chain.release(p.va, p.len);
                        Err(e)
                    }
                },
                Err(e) => Err(e),
            };
            match appended {
                Ok(p) => placed.push(p),
                Err(e) => {
                    for p in &placed {
                        chain.release(p.va, p.len);
                    }
                    return Err(e);
                }
            }
        }
        // Corruption registration once the batch has stuck, mirroring
        // `ChainSet::append_many` — rolled-back pieces never existed.
        if let Some(inj) = &injector {
            for p in &placed {
                inj.on_append(client, p.va, p.len, p.tier);
            }
        }
        if account {
            for p in &placed {
                *self.bytes.entry((client, p.tier)).or_insert(0) += p.len;
            }
        }
        Ok(placed)
    }

    /// The single-round-trip write: the whole locked commit order in one
    /// handler pass. The retry loops live *here* — the locked pipeline
    /// retries the append and the kv-insert draw independently, so the
    /// router must not replay the message (a replay would append twice).
    #[allow(clippy::too_many_arguments)]
    fn fused_write(
        &mut self,
        client: ClientId,
        fid: u64,
        node: usize,
        offset: u64,
        end: u64,
        payloads: Vec<Payload>,
        pieces: Vec<(u64, u64)>,
    ) -> SimResult<FusedReply> {
        debug_assert_eq!(node % self.workers, self.id, "fused write misrouted");
        self.ensure_chain(client)?;
        let retry = self.retry;
        let jm = Arc::clone(&self.job_metrics);
        let placed = with_retries(&retry, Some(&jm), || {
            self.append(client, payloads.clone(), true)
        })?;

        // Coalesce exactly like the locked pipeline (`write_batched`):
        // same-layer VA-adjacent pieces merge, capped at the metadata
        // range size. The fused path never replicates (the router gates
        // it off), so the replica alignment check is trivially true.
        let range = self.partitioner.range_size;
        let mut records: Vec<(u64, SegmentRecord)> = Vec::with_capacity(pieces.len());
        let mut tail_layer = 0usize;
        // Checksum stamping rides the coalescing loop: a running
        // checksum state per tail record absorbs each merged piece, so
        // the stamp covers the record's full (post-merge) payload span
        // without re-walking it.
        let mut tail_sum = univistor_sim::Checksum::new();
        for (i, p) in placed.iter().enumerate() {
            let (off, plen) = pieces[i];
            jm.record_segment(p.tier, p.layer, plen);
            if let Some((_, last)) = records.last_mut() {
                if p.layer == tail_layer
                    && last.va.0 + last.len == p.va.0
                    && last.len + plen <= range
                {
                    last.len += plen;
                    if self.integrity {
                        payloads[i].absorb_to(&mut tail_sum);
                        last.checksum = Some(tail_sum.finalize());
                    }
                    continue;
                }
            }
            let mut record = SegmentRecord::new(client, p.va, plen);
            if self.integrity {
                tail_sum = univistor_sim::Checksum::new();
                payloads[i].absorb_to(&mut tail_sum);
                record.checksum = Some(tail_sum.finalize());
            }
            records.push((off, record));
            tail_layer = p.layer;
        }
        for &(off, record) in &records {
            assert!(
                record.len <= range,
                "segment length {} exceeds metadata range size {range}",
                record.len
            );
            assert!(
                off >= offset && off + record.len <= end,
                "record [{off}, {}) outside batch span [{offset}, {end})",
                off + record.len
            );
        }

        // `insert_batch` fails only by injection *before* touching state;
        // draw it alone under the retry loop (locked parity: placed
        // survives and stays accounted on exhaustion).
        let injector = self.injector.clone();
        with_retries(&retry, Some(&jm), || inject(&injector, "kv_insert", None))?;

        let outcome = self.punch(fid, offset, end);
        // Locked commit order from here: fragment puts, node-buffer sweep
        // (against pre-insert buffer state), record puts, producer buffer
        // insert, generation bump, releases. A block-aligned right-edge
        // fragment can land on a foreign partition even when the whole
        // span is ours — hand those back to the router.
        let mut own_fragments: Vec<(SegKey, SegmentRecord)> = Vec::new();
        let mut foreign_fragments: Vec<(SegKey, SegmentRecord)> = Vec::new();
        for &(k, v) in &outcome.fragments {
            if self.partitioner.server_for(k.offset).0 % self.workers == self.id {
                own_fragments.push((k, v));
            } else {
                foreign_fragments.push((k, v));
            }
        }
        self.put_records(own_fragments);
        if !outcome.removed.is_empty() {
            self.buffer_apply(fid, &outcome.removed, &outcome.fragments);
        }
        let record_count = records.len() as u64;
        self.put_records(
            records
                .iter()
                .map(|&(off, record)| (SegKey { fid, offset: off }, record))
                .collect(),
        );
        let per_fid = self.local.entry(node).or_default().entry(fid).or_default();
        for &(off, record) in &records {
            per_fid.insert(off, record);
        }
        *self
            .generations
            .write()
            .expect("generations poisoned")
            .entry(fid)
            .or_insert(0) += 1;

        // Releases in the locked order (stable sort by owning client,
        // punch order within); foreign chains go back to the router.
        let mut spans: Vec<(ClientId, VirtualAddr, u64)> = Vec::new();
        for (_, d) in &outcome.displaced {
            spans.push((d.client, d.va, d.len));
            if let Some((rc, rva)) = d.replica {
                spans.push((rc, rva, d.len));
            }
        }
        spans.sort_by_key(|&(c, _, _)| c);
        let mut foreign_spans: Vec<(ClientId, VirtualAddr, u64)> = Vec::new();
        for (c, va, len) in spans {
            if (c.rank as usize / self.procs_per_node) % self.workers == self.id {
                if let Some(chain) = self.chains.get_mut(&c) {
                    chain.release(va, len);
                }
            } else {
                foreign_spans.push((c, va, len));
            }
        }
        Ok(FusedReply {
            records: record_count,
            removed: outcome.removed,
            fragments: outcome.fragments,
            foreign_fragments,
            foreign_spans,
        })
    }

    /// The fused read plan: node-buffer lookup; only when it does not
    /// cover the request, the `kv_lookup` fault draw (the locked
    /// `lookup_range_cached` draws it before touching state) and the
    /// generation-validated cache probe.
    fn read_plan(&self, node: usize, fid: u64, lo: u64, hi: u64) -> SimResult<PlanReply> {
        let local = self.lookup_local(node, fid, lo, hi);
        let covered: u64 = local
            .iter()
            .map(|(k, r)| {
                let a = k.offset.max(lo);
                let b = (k.offset + r.len).min(hi);
                b.saturating_sub(a)
            })
            .sum();
        let remote = if covered < hi - lo {
            inject(&self.injector, "kv_lookup", None)?;
            let gen = self
                .generations
                .read()
                .expect("generations poisoned")
                .get(&fid)
                .copied()
                .unwrap_or(0);
            Some((gen, self.cache_lookup(node, fid, lo, hi, gen)))
        } else {
            None
        };
        Ok(PlanReply { local, remote })
    }

    /// Scan owned partitions of the punch span, bumping `gets` per owned
    /// visited server exactly like `DistKv::for_each_in_range`, then claim
    /// each overlapped record with a compare-and-delete (one `puts` bump
    /// per attempt, like `remove_if_eq_batch`).
    fn punch(&mut self, fid: u64, lo: u64, hi: u64) -> PunchOutcome {
        let mut out = PunchOutcome::default();
        if lo >= hi {
            return out;
        }
        let scan_lo = lo.saturating_sub(self.partitioner.range_size);
        let mut overlapping: Vec<(SegKey, SegmentRecord)> = Vec::new();
        self.visit_span(fid, scan_lo, hi, lo, &mut overlapping);
        if overlapping.is_empty() {
            return out;
        }
        overlapping.sort_by_key(|(k, _)| *k);
        for (k, v) in overlapping {
            let server = self.partitioner.server_for(k.offset).0;
            *self.puts.entry(server).or_insert(0) += 1;
            let claimed = match self.kv.get_mut(&server) {
                Some(shard) => match shard.get(&k) {
                    Some(current) if *current == v => {
                        shard.remove(&k);
                        true
                    }
                    _ => false,
                },
                None => false,
            };
            if !claimed {
                continue;
            }
            out.removed.push(k);
            let displaced = split_overlapped(k, v, lo, hi, &mut out.fragments);
            out.displaced.push((k, displaced));
        }
        out
    }

    /// The shared scan of `punch`/`scan`: visit each owned server of the
    /// span `[scan_lo, hi)` in partitioner order, bump its `gets` counter
    /// (even when nothing matches — a visit is a visit), and collect the
    /// records actually overlapping `[lo, hi)`.
    fn visit_span(
        &mut self,
        fid: u64,
        scan_lo: u64,
        hi: u64,
        lo: u64,
        into: &mut Vec<(SegKey, SegmentRecord)>,
    ) {
        let lo_key = SegKey {
            fid,
            offset: scan_lo,
        };
        let hi_key = SegKey { fid, offset: hi };
        for server in self.partitioner.servers_for_span(scan_lo, hi) {
            let server = server.0;
            if server % self.workers != self.id {
                continue;
            }
            *self.gets.entry(server).or_insert(0) += 1;
            if let Some(shard) = self.kv.get(&server) {
                for (k, v) in shard.range(lo_key..hi_key) {
                    if k.fid == fid && k.offset < hi && k.offset + v.len > lo {
                        into.push((*k, *v));
                    }
                }
            }
        }
    }

    fn put_records(&mut self, items: Vec<(SegKey, SegmentRecord)>) {
        for (k, v) in items {
            let server = self.partitioner.server_for(k.offset).0;
            *self.puts.entry(server).or_insert(0) += 1;
            self.kv.entry(server).or_default().insert(k, v);
        }
    }

    fn buffer_apply(
        &mut self,
        fid: u64,
        removed: &[SegKey],
        fragments: &[(SegKey, SegmentRecord)],
    ) {
        for node in self.local.values_mut() {
            if let Some(per_fid) = node.get_mut(&fid) {
                for k in removed {
                    per_fid.remove(&k.offset);
                }
            }
            if node.contains_key(&fid) {
                for (k, frag) in fragments {
                    node.entry(k.fid).or_default().insert(k.offset, *frag);
                }
            }
        }
    }

    fn lookup_local(
        &self,
        node: usize,
        fid: u64,
        lo: u64,
        hi: u64,
    ) -> Vec<(SegKey, SegmentRecord)> {
        let Some(per_fid) = self.local.get(&node).and_then(|n| n.get(&fid)) else {
            return Vec::new();
        };
        // Start one record earlier in case it overlaps from the left.
        let start = per_fid
            .range(..lo)
            .next_back()
            .map(|(o, _)| *o)
            .unwrap_or(lo);
        per_fid
            .range(start..hi)
            .filter(|(o, r)| **o < hi && **o + r.len > lo)
            .map(|(o, r)| (SegKey { fid, offset: *o }, *r))
            .collect()
    }

    fn cache_lookup(
        &self,
        node: usize,
        fid: u64,
        lo: u64,
        hi: u64,
        gen: u64,
    ) -> Option<Vec<(SegKey, SegmentRecord)>> {
        let per_fid = self.read_cache.get(&node)?.get(&fid)?;
        let (_, entry) = per_fid.range(..=lo).next_back()?;
        if entry.gen == gen && entry.hi >= hi {
            // Records overlapping [lo, hi) are a subset of the window's.
            Some(
                entry
                    .records
                    .iter()
                    .filter(|(k, r)| k.offset < hi && k.offset + r.len > lo)
                    .copied()
                    .collect(),
            )
        } else {
            None
        }
    }

    fn scan(&mut self, fid: u64, lo: u64, hi: u64) -> Vec<(SegKey, SegmentRecord)> {
        let scan_lo = lo.saturating_sub(self.partitioner.range_size);
        let mut records = Vec::new();
        self.visit_span(fid, scan_lo, hi, lo, &mut records);
        records
    }

    fn cache_install(
        &mut self,
        node: usize,
        fid: u64,
        lo: u64,
        fetch_hi: u64,
        gen: u64,
        records: Vec<(SegKey, SegmentRecord)>,
    ) {
        // Same re-check as `lookup_range_cached`: a mutation that landed
        // (and bumped) while the lookup was in flight may have produced a
        // window mixing old and new state — never cache it.
        let current = self
            .generations
            .read()
            .expect("generations poisoned")
            .get(&fid)
            .copied()
            .unwrap_or(0);
        if current != gen {
            return;
        }
        let per_fid = self
            .read_cache
            .entry(node)
            .or_default()
            .entry(fid)
            .or_default();
        if per_fid.len() >= READ_CACHE_WINDOWS_PER_FID {
            per_fid.clear();
        }
        per_fid.insert(
            lo,
            CacheEntry {
                hi: fetch_hi,
                gen,
                records,
            },
        );
    }

    fn fetch(
        &self,
        client: ClientId,
        requests: &[(VirtualAddr, u64)],
    ) -> SimResult<Vec<(Payload, Tier)>> {
        let Some(chain) = self.chains.get(&client) else {
            return Err(no_chain(client));
        };
        requests
            .iter()
            .map(|&(va, len)| {
                let payload = chain.read(va, len)?;
                let tier = chain.tier_of(va);
                inject(&self.injector, "chain_read", Some(tier))?;
                let payload = match &self.injector {
                    Some(inj) => inj.corrupt_read(client, va, payload),
                    None => payload,
                };
                Ok((payload, tier))
            })
            .collect()
    }

    fn take_slice(&mut self) -> Slice {
        Slice {
            kv: std::mem::take(&mut self.kv),
            puts: std::mem::take(&mut self.puts),
            gets: std::mem::take(&mut self.gets),
            local: std::mem::take(&mut self.local),
            read_cache: std::mem::take(&mut self.read_cache),
            chains: std::mem::take(&mut self.chains).into_iter().collect(),
            heat: std::mem::take(&mut self.heat),
        }
    }

    fn install_slice(&mut self, slice: Slice) {
        self.kv = slice.kv;
        self.puts = slice.puts;
        self.gets = slice.gets;
        self.local = slice.local;
        self.read_cache = slice.read_cache;
        self.chains = slice.chains.into_iter().collect();
        self.heat = slice.heat;
    }
}

fn no_chain(client: ClientId) -> SimError {
    SimError::InvalidConfig(format!("no chain for producer {client:?}"))
}

/// The router's handle to one worker.
struct WorkerHandle {
    tx: SyncSender<Envelope>,
    metrics: PartitionMetrics,
    join: Option<JoinHandle<()>>,
}

impl WorkerHandle {
    fn post(&self, req: Req) {
        self.metrics.mailbox_depth.inc();
        self.tx
            .send(Envelope {
                at: Instant::now(),
                req,
            })
            .expect("partition worker died");
    }

    /// Shutdown-path post: a worker that already exited must not panic
    /// the `Drop` impl.
    fn post_quiet(&self, req: Req) {
        self.metrics.mailbox_depth.inc();
        let _ = self.tx.send(Envelope {
            at: Instant::now(),
            req,
        });
    }
}

fn recv<T>(rx: Receiver<T>) -> T {
    rx.recv().expect("partition worker died")
}

thread_local! {
    /// Span-owner scratch, reused across calls (the former `span_owners`
    /// allocated a fresh `Vec` per punch/scan).
    static OWNERS: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
    /// Awaited reply slots of one request wave.
    static WAVE: RefCell<Vec<Arc<ReplySlot>>> = const { RefCell::new(Vec::new()) };
    /// Per-owner record scatter groups (outer vec reused; the inner vecs
    /// travel with the messages).
    static REC_GROUPS: RefCell<Vec<Vec<(SegKey, SegmentRecord)>>> =
        const { RefCell::new(Vec::new()) };
    /// Per-owner span scatter groups for chain releases.
    static SPAN_GROUPS: RefCell<Vec<Vec<(ClientId, VirtualAddr, u64)>>> =
        const { RefCell::new(Vec::new()) };
    /// Per-owner key scatter groups for heat bumps.
    static KEY_GROUPS: RefCell<Vec<Vec<SegKey>>> = const { RefCell::new(Vec::new()) };
}

/// The partitioned runtime: worker pool, ownership map, the reply-slot
/// pool, and the shared job-level tables that stay with the router
/// (generation counters, the fid-tracking mask, the checkout serializer).
#[derive(Debug)]
pub(crate) struct PartitionedCore {
    workers: Vec<WorkerHandle>,
    servers: usize,
    nodes: usize,
    procs_per_node: usize,
    partitioner: RangePartitioner,
    generations: Arc<RwLock<HashMap<u64, u64>>>,
    /// fid → bitmask (bit `w & 63`) of workers whose nodes may track the
    /// fid in their shared metadata buffers. Conservative-complete: every
    /// buffer insert marks its owner, so a zero bit proves no tracking
    /// (the sweep can skip the worker); a set bit may be stale or — past
    /// 64 workers — aliased, costing only a no-op sweep. Rebuilt
    /// wholesale at each checkout disassembly.
    tracked: RwLock<HashMap<u64, u64>>,
    injector: Option<Arc<FaultInjector>>,
    /// Message-plane instruments: round-trips and reply-pool recycling.
    plane: MsgPlaneMetrics,
    /// Recycled reply slots (see [`ReplySlot`]).
    slots: Mutex<Vec<Arc<ReplySlot>>>,
    spin_cap: u32,
    /// Serializes checkouts: only one caller may hold the assembled
    /// locked core at a time.
    checkout: Mutex<()>,
    /// Excludes checkouts for the span of one routed multi-step protocol
    /// (a write's append → commit → finish sequence, a read's plan →
    /// scan → fetch). The locked runtime commits those steps under one
    /// metadata lock; here they are separate messages, and a checkout
    /// pass interleaving between them would see — and migrate against —
    /// a half-committed index, then have its work clobbered by the
    /// remaining steps (a stale node-buffer record pointing at released
    /// chain space). Routed ops hold the read side; `with_checked_out`
    /// takes the write side before parking the workers.
    ops: RwLock<()>,
}

impl std::fmt::Debug for WorkerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerHandle").finish_non_exhaustive()
    }
}

impl PartitionedCore {
    /// Spawn `cfg.partition_workers()` event loops, each pre-populated
    /// with its owned (initially empty) KV partitions, heat shards, node
    /// buffers, and read caches. Mailboxes are bounded by
    /// `cfg.mailbox_depth` (any depth ≥ 1 is deadlock-free: workers never
    /// post to each other, so a full mailbox only blocks the router).
    pub(crate) fn new(
        cfg: &UniviStorConfig,
        metrics: &Arc<JobMetrics>,
        injector: Option<Arc<FaultInjector>>,
        layer_caps: Vec<(Tier, u64)>,
    ) -> Self {
        let servers = cfg.geometry.total_servers().max(1);
        let nodes = cfg.geometry.nodes;
        let pool = cfg.partition_workers();
        let mailbox_depth = cfg.mailbox_depth.max(1);
        let partitioner = RangePartitioner::new(cfg.metadata_range_size, servers);
        let generations = Arc::new(RwLock::new(HashMap::new()));
        let spin_cap = match std::thread::available_parallelism() {
            Ok(n) if n.get() > 1 => SPIN_CAP,
            _ => 0,
        };
        let mut workers = Vec::with_capacity(pool);
        for id in 0..pool {
            let (tx, rx) = mpsc::sync_channel(mailbox_depth);
            let handles = metrics.partition_handles(id);
            let worker = Worker {
                id,
                workers: pool,
                partitioner,
                layer_caps: layer_caps.clone(),
                chunk_size: cfg.chunk_size,
                procs_per_node: cfg.geometry.procs_per_node.max(1),
                generations: Arc::clone(&generations),
                injector: injector.clone(),
                integrity: cfg.integrity.checksums,
                retry: cfg.retry,
                job_metrics: Arc::clone(metrics),
                metrics: handles.clone(),
                spin_cap,
                kv: (id..servers)
                    .step_by(pool)
                    .map(|p| (p, BTreeMap::new()))
                    .collect(),
                puts: (id..servers).step_by(pool).map(|p| (p, 0)).collect(),
                gets: (id..servers).step_by(pool).map(|p| (p, 0)).collect(),
                local: (id..nodes)
                    .step_by(pool)
                    .map(|n| (n, HashMap::new()))
                    .collect(),
                read_cache: (id..nodes)
                    .step_by(pool)
                    .map(|n| (n, HashMap::new()))
                    .collect(),
                chains: HashMap::new(),
                heat: (id..servers)
                    .step_by(pool)
                    .map(|p| (p, HashMap::new()))
                    .collect(),
                bytes: HashMap::new(),
            };
            let join = std::thread::Builder::new()
                .name(format!("univistor-part-{id}"))
                .spawn(move || worker.run(rx))
                .expect("spawn partition worker");
            workers.push(WorkerHandle {
                tx,
                metrics: handles,
                join: Some(join),
            });
        }
        PartitionedCore {
            workers,
            servers,
            nodes,
            procs_per_node: cfg.geometry.procs_per_node.max(1),
            partitioner,
            generations,
            tracked: RwLock::new(HashMap::new()),
            injector,
            plane: metrics.msgplane_handles(),
            slots: Mutex::new(Vec::new()),
            spin_cap,
            checkout: Mutex::new(()),
            ops: RwLock::new(()),
        }
    }

    /// Workers in the pool.
    pub(crate) fn workers(&self) -> usize {
        self.workers.len()
    }

    fn owner_of_partition(&self, partition: usize) -> usize {
        partition % self.workers.len()
    }

    /// The worker owning compute node `node`'s buffers and caches.
    pub(crate) fn owner_of_node(&self, node: usize) -> usize {
        node % self.workers.len()
    }

    /// The worker owning `client`'s chain: the owner of its node.
    fn owner_of_client(&self, client: ClientId) -> usize {
        self.owner_of_node(client.rank as usize / self.procs_per_node)
    }

    /// The KV partition (server index) owning logical `offset` — the
    /// router-side mirror of `MetadataService::partition_of`.
    pub(crate) fn partition_of(&self, offset: u64) -> usize {
        self.partitioner.server_for(offset).0
    }

    /// Metadata servers a `lookup_range(fid, lo, hi)` would visit — the
    /// locked runtime charges one RPC per visited server, so the routed
    /// read path computes the same count here.
    pub(crate) fn rpc_servers(&self, lo: u64, hi: u64) -> usize {
        let scan_lo = lo.saturating_sub(self.partitioner.range_size);
        self.partitioner.servers_for_span(scan_lo, hi).len()
    }

    /// Invalidate every cached read window of `fid` (mirrors
    /// `MetadataService::bump_generation`).
    pub(crate) fn bump_generation(&self, fid: u64) {
        *self
            .generations
            .write()
            .expect("generations poisoned")
            .entry(fid)
            .or_insert(0) += 1;
    }

    /// The fid's current mutation generation (0 if never mutated) —
    /// mirrors `MetadataService::generation`, the flush engine's
    /// catch-up fence.
    pub(crate) fn fid_generation(&self, fid: u64) -> u64 {
        self.generations
            .read()
            .expect("generations poisoned")
            .get(&fid)
            .copied()
            .unwrap_or(0)
    }

    // ---- reply-slot pool ----

    fn slot(&self) -> Arc<ReplySlot> {
        match self.slots.lock().expect("reply pool poisoned").pop() {
            Some(slot) => {
                self.plane.pool_hits.inc();
                slot
            }
            None => {
                self.plane.pool_misses.inc();
                Arc::new(ReplySlot::new())
            }
        }
    }

    fn release_slot(&self, slot: Arc<ReplySlot>) {
        self.slots.lock().expect("reply pool poisoned").push(slot);
    }

    /// One awaited round-trip to `owner`: pooled slot out, request in,
    /// reply back, slot recycled.
    fn call(&self, owner: usize, make: impl FnOnce(Arc<ReplySlot>) -> Req) -> Reply {
        let slot = self.slot();
        self.workers[owner].post(make(Arc::clone(&slot)));
        self.plane.round_trips.inc();
        let reply = slot.take(self.spin_cap);
        self.release_slot(slot);
        reply
    }

    // ---- fid-tracking mask (node-buffer sweep targeting) ----

    fn tracked_mask(&self, fid: u64) -> u64 {
        self.tracked
            .read()
            .expect("tracked poisoned")
            .get(&fid)
            .copied()
            .unwrap_or(0)
    }

    fn mark_tracked(&self, fid: u64, worker: usize) {
        let bit = 1u64 << (worker & 63);
        if self.tracked_mask(fid) & bit != 0 {
            return;
        }
        *self
            .tracked
            .write()
            .expect("tracked poisoned")
            .entry(fid)
            .or_insert(0) |= bit;
    }

    /// Workers owning at least one server of the span, in first-touch
    /// span order, written into the caller's reused scratch. A seen
    /// bitmask replaces the former O(owners²) `Vec::contains` dedup; past
    /// 64 workers an aliased bit falls back to the exact (rare) check.
    fn span_owners_into(&self, lo: u64, hi: u64, owners: &mut Vec<usize>) {
        owners.clear();
        let pool = self.workers.len();
        let mut seen: u64 = 0;
        for server in self.partitioner.servers_for_span(lo, hi) {
            let owner = server.0 % pool;
            let bit = 1u64 << (owner & 63);
            if seen & bit == 0 {
                seen |= bit;
                owners.push(owner);
            } else if pool > 64 && !owners.contains(&owner) {
                owners.push(owner);
            }
        }
    }

    // ---- routed protocol ----

    /// Create `client`'s chain if absent (an ensure-only append).
    pub(crate) fn ensure_chain(&self, client: ClientId) -> SimResult<()> {
        self.append(client, Vec::new(), false, true).map(|_| ())
    }

    /// Error exactly like a chain lookup if `client` has no chain.
    pub(crate) fn chain_exists(&self, client: ClientId) -> SimResult<()> {
        match self.call(self.owner_of_client(client), |reply| Req::ChainExists {
            client,
            reply,
        }) {
            Reply::Chain(r) => r,
            _ => unreachable!("chain-exists reply"),
        }
    }

    /// Append a payload run to `client`'s chain (see [`Req::Append`]).
    pub(crate) fn append(
        &self,
        client: ClientId,
        payloads: Vec<Payload>,
        account: bool,
        ensure: bool,
    ) -> SimResult<Vec<PlacedSegment>> {
        match self.call(self.owner_of_client(client), |reply| Req::Append {
            client,
            payloads,
            account,
            ensure,
            reply,
        }) {
            Reply::Placed(r) => r,
            _ => unreachable!("append reply"),
        }
    }

    /// First commit wave: punch `[lo, hi)` of `fid` across every owning
    /// worker, each installing its slice of the batch's new `records` in
    /// the same message, and merge the outcomes back into the locked
    /// runtime's global key order. Record offsets must lie in `[lo, hi)`,
    /// so every record owner is a span owner.
    pub(crate) fn write_commit(
        &self,
        fid: u64,
        lo: u64,
        hi: u64,
        records: &[(u64, SegmentRecord)],
    ) -> PunchOutcome {
        let mut out = PunchOutcome::default();
        if lo >= hi {
            return out;
        }
        let scan_lo = lo.saturating_sub(self.partitioner.range_size);
        OWNERS.with_borrow_mut(|owners| {
            self.span_owners_into(scan_lo, hi, owners);
            REC_GROUPS.with_borrow_mut(|groups| {
                groups.resize_with(self.workers.len(), Vec::new);
                for &(off, record) in records {
                    groups[self.owner_of_partition(self.partition_of(off))]
                        .push((SegKey { fid, offset: off }, record));
                }
                WAVE.with_borrow_mut(|wave| {
                    for &owner in owners.iter() {
                        let slot = self.slot();
                        self.workers[owner].post(Req::WriteCommit {
                            fid,
                            lo,
                            hi,
                            records: std::mem::take(&mut groups[owner]),
                            reply: Arc::clone(&slot),
                        });
                        wave.push(slot);
                    }
                    debug_assert!(
                        groups.iter().all(Vec::is_empty),
                        "record outside the punch span"
                    );
                    for slot in wave.drain(..) {
                        self.plane.round_trips.inc();
                        match slot.take(self.spin_cap) {
                            Reply::Punch(part) => {
                                out.removed.extend(part.removed);
                                out.displaced.extend(part.displaced);
                                out.fragments.extend(part.fragments);
                            }
                            _ => unreachable!("write-commit reply"),
                        }
                        self.release_slot(slot);
                    }
                });
            });
        });
        // Per-owner replies concatenate in owner order; the locked punch
        // claims (and therefore releases) in global key order. Restore it.
        out.removed.sort();
        out.displaced.sort_by_key(|(k, _)| *k);
        out.fragments.sort_by_key(|(k, _)| *k);
        out
    }

    /// Second commit wave, fire-and-forget: fragment puts grouped by
    /// owner, the node-buffer sweep on workers whose nodes may track the
    /// fid (one shared `Arc<[_]>` across the fan-out instead of
    /// per-worker clones), the producer buffer refresh (after the sweep —
    /// the locked sweep-then-insert order), and chain releases. `spans`
    /// must already be sorted by owning client (the locked pipeline's
    /// release order); grouping preserves each chain's relative order.
    pub(crate) fn write_finish(
        &self,
        fid: u64,
        node: usize,
        outcome: PunchOutcome,
        records: &[(u64, SegmentRecord)],
        spans: Vec<(ClientId, VirtualAddr, u64)>,
    ) {
        let pool = self.workers.len();
        let producer = self.owner_of_node(node);
        // The sweep mask reflects pre-insert tracking state — exactly the
        // buffer state the locked sweep's fid check runs against.
        let sweep_mask = if outcome.removed.is_empty() {
            0
        } else {
            self.tracked_mask(fid)
        };
        let removed: Arc<[SegKey]> = outcome.removed.into();
        let fragments: Arc<[(SegKey, SegmentRecord)]> = outcome.fragments.into();
        let reinsert: Arc<[(u64, SegmentRecord)]> = Arc::from(records);
        REC_GROUPS.with_borrow_mut(|frag_groups| {
            frag_groups.resize_with(pool, Vec::new);
            for &(k, v) in fragments.iter() {
                frag_groups[self.owner_of_partition(self.partition_of(k.offset))].push((k, v));
            }
            SPAN_GROUPS.with_borrow_mut(|span_groups| {
                span_groups.resize_with(pool, Vec::new);
                for span in spans {
                    span_groups[self.owner_of_client(span.0)].push(span);
                }
                for w in 0..pool {
                    let put_fragments = std::mem::take(&mut frag_groups[w]);
                    let release = std::mem::take(&mut span_groups[w]);
                    let sweep = sweep_mask & (1u64 << (w & 63)) != 0;
                    let reinsert = (w == producer).then(|| (node, Arc::clone(&reinsert)));
                    if put_fragments.is_empty()
                        && release.is_empty()
                        && !sweep
                        && reinsert.is_none()
                    {
                        continue;
                    }
                    self.workers[w].post(Req::WriteFinish {
                        fid,
                        put_fragments,
                        removed: Arc::clone(&removed),
                        fragments: Arc::clone(&fragments),
                        sweep,
                        reinsert,
                        release,
                    });
                }
            });
        });
        self.mark_tracked(fid, producer);
    }

    /// The single worker that can absorb a fused write of `[lo, hi)` by
    /// `client` on `node`: every server of the widened punch span and the
    /// producer chain must be owned by one worker. `None` routes the
    /// write through the general two-wave protocol.
    pub(crate) fn fused_owner(
        &self,
        client: ClientId,
        node: usize,
        lo: u64,
        hi: u64,
    ) -> Option<usize> {
        let w = self.owner_of_node(node);
        if self.owner_of_client(client) != w {
            return None;
        }
        let scan_lo = lo.saturating_sub(self.partitioner.range_size);
        OWNERS.with_borrow_mut(|owners| {
            self.span_owners_into(scan_lo, hi, owners);
            (owners.len() == 1 && owners[0] == w).then_some(w)
        })
    }

    /// Single-round-trip write (gate with
    /// [`fused_owner`](Self::fused_owner) first): one awaited message to
    /// the owning worker, then fire-and-forget finish posts for the rare
    /// leftovers (a foreign right-edge fragment, displaced spans on other
    /// workers' chains, sweeps of other workers' tracked nodes). Returns
    /// the coalesced record count. Do **not** wrap in a retry loop — the
    /// handler retries internally (a replay would double-append).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn write_fused(
        &self,
        client: ClientId,
        fid: u64,
        node: usize,
        offset: u64,
        end: u64,
        payloads: Vec<Payload>,
        pieces: Vec<(u64, u64)>,
    ) -> SimResult<u64> {
        let w = self.owner_of_node(node);
        let fused = match self.call(w, |reply| Req::WriteFused {
            client,
            fid,
            node,
            offset,
            end,
            payloads,
            pieces,
            reply,
        }) {
            Reply::Fused(r) => r,
            _ => unreachable!("fused-write reply"),
        }?;
        let FusedReply {
            records,
            removed,
            fragments,
            foreign_fragments,
            foreign_spans,
        } = fused;
        // Pre-insert mask, minus the fused worker (it already swept its
        // own nodes in-handler).
        let sweep_mask = if removed.is_empty() {
            0
        } else {
            self.tracked_mask(fid) & !(1u64 << (w & 63))
        };
        if sweep_mask != 0 || !foreign_fragments.is_empty() || !foreign_spans.is_empty() {
            let pool = self.workers.len();
            let removed: Arc<[SegKey]> = removed.into();
            let fragments: Arc<[(SegKey, SegmentRecord)]> = fragments.into();
            REC_GROUPS.with_borrow_mut(|frag_groups| {
                frag_groups.resize_with(pool, Vec::new);
                for (k, v) in foreign_fragments {
                    frag_groups[self.owner_of_partition(self.partition_of(k.offset))].push((k, v));
                }
                SPAN_GROUPS.with_borrow_mut(|span_groups| {
                    span_groups.resize_with(pool, Vec::new);
                    for span in foreign_spans {
                        span_groups[self.owner_of_client(span.0)].push(span);
                    }
                    for v in 0..pool {
                        let put_fragments = std::mem::take(&mut frag_groups[v]);
                        let release = std::mem::take(&mut span_groups[v]);
                        let sweep = v != w && sweep_mask & (1u64 << (v & 63)) != 0;
                        if put_fragments.is_empty() && release.is_empty() && !sweep {
                            continue;
                        }
                        self.workers[v].post(Req::WriteFinish {
                            fid,
                            put_fragments,
                            removed: Arc::clone(&removed),
                            fragments: Arc::clone(&fragments),
                            sweep,
                            reinsert: None,
                            release,
                        });
                    }
                });
            });
        }
        self.mark_tracked(fid, w);
        Ok(records)
    }

    /// Fused read plan against `node`'s owner (see [`Req::ReadPlan`]).
    pub(crate) fn read_plan(
        &self,
        node: usize,
        fid: u64,
        lo: u64,
        hi: u64,
    ) -> SimResult<PlanReply> {
        match self.call(self.owner_of_node(node), |reply| Req::ReadPlan {
            node,
            fid,
            lo,
            hi,
            reply,
        }) {
            Reply::Plan(r) => r,
            _ => unreachable!("read-plan reply"),
        }
    }

    /// Bump heat for the touched keys (fire-and-forget).
    pub(crate) fn bump_heat(&self, keys: Vec<SegKey>) {
        let pool = self.workers.len();
        KEY_GROUPS.with_borrow_mut(|groups| {
            groups.resize_with(pool, Vec::new);
            for key in keys {
                groups[self.owner_of_partition(self.partition_of(key.offset))].push(key);
            }
            for (owner, group) in groups.iter_mut().enumerate() {
                if !group.is_empty() {
                    self.workers[owner].post(Req::Heat {
                        keys: std::mem::take(group),
                    });
                }
            }
        });
    }

    /// Distributed lookup of records intersecting `[lo, hi)` of `fid`,
    /// merged and offset-sorted like `MetadataService::lookup_range`.
    pub(crate) fn scan(&self, fid: u64, lo: u64, hi: u64) -> Vec<(SegKey, SegmentRecord)> {
        let scan_lo = lo.saturating_sub(self.partitioner.range_size);
        let mut records = Vec::new();
        OWNERS.with_borrow_mut(|owners| {
            self.span_owners_into(scan_lo, hi, owners);
            WAVE.with_borrow_mut(|wave| {
                for &owner in owners.iter() {
                    let slot = self.slot();
                    self.workers[owner].post(Req::Scan {
                        fid,
                        lo,
                        hi,
                        reply: Arc::clone(&slot),
                    });
                    wave.push(slot);
                }
                for slot in wave.drain(..) {
                    self.plane.round_trips.inc();
                    match slot.take(self.spin_cap) {
                        Reply::Records(part) => records.extend(part),
                        _ => unreachable!("scan reply"),
                    }
                    self.release_slot(slot);
                }
            });
        });
        records.sort_by_key(|(k, _)| *k);
        records
    }

    /// Install a fetched window into `node`'s read cache. Fire-and-forget:
    /// the read's answer never depends on the install landing, and FIFO
    /// order sequences it before any later probe of the same node.
    pub(crate) fn cache_install(
        &self,
        node: usize,
        fid: u64,
        lo: u64,
        fetch_hi: u64,
        gen: u64,
        records: Vec<(SegKey, SegmentRecord)>,
    ) {
        self.workers[self.owner_of_node(node)].post(Req::CacheInstall {
            node,
            fid,
            lo,
            fetch_hi,
            gen,
            records,
        });
    }

    /// Batched fragment fetch from `client`'s chain.
    pub(crate) fn fetch(
        &self,
        client: ClientId,
        requests: Vec<(VirtualAddr, u64)>,
    ) -> SimResult<Vec<(Payload, Tier)>> {
        match self.call(self.owner_of_client(client), |reply| Req::Fetch {
            client,
            requests,
            reply,
        }) {
            Reply::Fetched(r) => r,
            _ => unreachable!("fetch reply"),
        }
    }

    /// Merge (and with `take`, reset) every worker's byte ledger — the
    /// partitioned replacement for the locked accounting mutex.
    pub(crate) fn collect_bytes(&self, take: bool) -> HashMap<(ClientId, Tier), u64> {
        let mut merged: HashMap<(ClientId, Tier), u64> = HashMap::new();
        WAVE.with_borrow_mut(|wave| {
            for worker in &self.workers {
                let slot = self.slot();
                worker.post(Req::CollectBytes {
                    take,
                    reply: Arc::clone(&slot),
                });
                wave.push(slot);
            }
            for slot in wave.drain(..) {
                self.plane.round_trips.inc();
                match slot.take(self.spin_cap) {
                    Reply::Bytes(ledger) => {
                        for (key, bytes) in ledger {
                            *merged.entry(key).or_insert(0) += bytes;
                        }
                    }
                    _ => unreachable!("collect-bytes reply"),
                }
                self.release_slot(slot);
            }
        });
        merged
    }

    /// Park every worker, assemble the full locked core from their slices,
    /// run `f` against it, then disassemble and redistribute by ownership.
    /// Chains or records `f` creates (e.g. repair's re-replication) land on
    /// their correct owners. Serialized: one checkout at a time.
    /// Hold off checkouts while a routed multi-step protocol is in
    /// flight; see the `ops` field. Cheap and uncontended in steady
    /// state — no checkout, no writer, shared acquisition only.
    pub(crate) fn exclude_passes(&self) -> std::sync::RwLockReadGuard<'_, ()> {
        self.ops.read().expect("pass-exclusion gate poisoned")
    }

    pub(crate) fn with_checked_out<R>(&self, f: impl FnOnce(&LockedCore) -> R) -> R {
        let _serial = self.checkout.lock().expect("checkout serializer poisoned");
        // Wait for in-flight routed protocols to finish their commit
        // sequences; new ones queue on the gate until the checkin.
        let _excl = self.ops.write().expect("pass-exclusion gate poisoned");
        let mut checkins = Vec::with_capacity(self.workers.len());
        let mut receivers = Vec::with_capacity(self.workers.len());
        for worker in &self.workers {
            let (reply_tx, reply_rx) = mpsc::channel();
            let (checkin_tx, checkin_rx) = mpsc::channel();
            worker.post(Req::Checkout {
                reply: reply_tx,
                checkin: checkin_rx,
            });
            checkins.push(checkin_tx);
            receivers.push(reply_rx);
        }
        let slices: Vec<Slice> = receivers.into_iter().map(recv).collect();
        let core = self.assemble(slices);
        let result = f(&core);
        for (checkin, slice) in checkins.into_iter().zip(self.disassemble(core)) {
            let _ = checkin.send(slice);
        }
        result
    }

    fn assemble(&self, slices: Vec<Slice>) -> LockedCore {
        let mut shards: Vec<BTreeMap<SegKey, SegmentRecord>> =
            (0..self.servers).map(|_| BTreeMap::new()).collect();
        let mut puts = vec![0u64; self.servers];
        let mut gets = vec![0u64; self.servers];
        let mut local: Vec<HashMap<u64, BTreeMap<u64, SegmentRecord>>> =
            (0..self.nodes).map(|_| HashMap::new()).collect();
        let mut read_cache: Vec<HashMap<u64, BTreeMap<u64, CacheEntry>>> =
            (0..self.nodes).map(|_| HashMap::new()).collect();
        let mut heat_maps: Vec<HashMap<SegKey, u32>> =
            (0..self.servers).map(|_| HashMap::new()).collect();
        let mut chain_list: Vec<(ClientId, ProcChain)> = Vec::new();
        for slice in slices {
            for (p, shard) in slice.kv {
                shards[p] = shard;
            }
            for (p, n) in slice.puts {
                puts[p] = n;
            }
            for (p, n) in slice.gets {
                gets[p] = n;
            }
            for (n, buffer) in slice.local {
                local[n] = buffer;
            }
            for (n, cache) in slice.read_cache {
                read_cache[n] = cache;
            }
            for (p, shard) in slice.heat {
                heat_maps[p] = shard;
            }
            chain_list.extend(slice.chains);
        }
        let mut chains: ChainSet = chain_list.into_iter().collect();
        if let Some(inj) = &self.injector {
            chains.set_injector(Arc::clone(inj));
        }
        let metadata = MetadataService::from_parts(
            self.partitioner.range_size,
            shards,
            puts,
            gets,
            local,
            read_cache,
            Arc::clone(&self.generations),
            self.injector.clone(),
        );
        let heat = heat_maps
            .into_iter()
            .map(|shard| {
                RwLock::new(
                    shard
                        .into_iter()
                        .map(|(k, n)| (k, AtomicU32::new(n)))
                        .collect(),
                )
            })
            .collect();
        LockedCore {
            chains,
            metadata,
            heat,
        }
    }

    fn disassemble(&self, core: LockedCore) -> Vec<Slice> {
        let LockedCore {
            chains,
            metadata,
            heat,
        } = core;
        let pool = self.workers.len();
        let mut slices: Vec<Slice> = (0..pool).map(|_| Slice::default()).collect();
        let (shards, puts, gets, local, read_cache) = metadata.into_parts();
        for (p, shard) in shards.into_iter().enumerate() {
            slices[p % pool].kv.insert(p, shard);
        }
        for (p, n) in puts.into_iter().enumerate() {
            slices[p % pool].puts.insert(p, n);
        }
        for (p, n) in gets.into_iter().enumerate() {
            slices[p % pool].gets.insert(p, n);
        }
        // Rebuild the fid-tracking mask wholesale — the checkout's `f`
        // (tiering, repair) may have created or dropped buffer entries.
        let mut tracked: HashMap<u64, u64> = HashMap::new();
        for (n, buffer) in local.into_iter().enumerate() {
            for fid in buffer.keys() {
                *tracked.entry(*fid).or_insert(0) |= 1u64 << ((n % pool) & 63);
            }
            slices[n % pool].local.insert(n, buffer);
        }
        *self.tracked.write().expect("tracked poisoned") = tracked;
        for (n, cache) in read_cache.into_iter().enumerate() {
            slices[n % pool].read_cache.insert(n, cache);
        }
        for (p, shard) in heat.into_iter().enumerate() {
            slices[p % pool].heat.insert(
                p,
                shard
                    .into_inner()
                    .expect("heat shard poisoned")
                    .into_iter()
                    .map(|(k, n)| (k, n.into_inner()))
                    .collect(),
            );
        }
        for (client, chain) in chains.into_chain_list() {
            slices[self.owner_of_client(client)]
                .chains
                .push((client, chain));
        }
        slices
    }
}

/// The flush engine's view of the partitioned runtime: record scans and
/// chain fetches route to the owning partition workers as ordinary
/// messages, so a close-time flush drains without a whole-core checkout —
/// foreground writers keep committing, fenced by the generation counter.
impl crate::flush::FlushSource for PartitionedCore {
    fn records(&self, fid: u64, lo: u64, hi: u64) -> Vec<(SegKey, SegmentRecord)> {
        self.scan(fid, lo, hi)
    }

    fn read_spans(
        &self,
        client: ClientId,
        requests: &[(VirtualAddr, u64)],
    ) -> SimResult<Vec<(Payload, Tier)>> {
        self.fetch(client, requests.to_vec())
    }

    fn generation(&self, fid: u64) -> u64 {
        self.fid_generation(fid)
    }
}

impl Drop for PartitionedCore {
    fn drop(&mut self) {
        for worker in &self.workers {
            worker.post_quiet(Req::Shutdown);
        }
        for worker in &mut self.workers {
            if let Some(join) = worker.join.take() {
                let _ = join.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UniviStorConfig;
    use crate::placement::layer_caps_with_node_local;

    fn core(nodes: usize, procs_per_node: usize, partitions: usize) -> PartitionedCore {
        let mut cfg = UniviStorConfig::test_small(nodes, procs_per_node);
        cfg.partitions = partitions;
        let caps = layer_caps_with_node_local(
            cfg.cal.dram_cache_capacity_per_node,
            None,
            cfg.geometry.procs_per_node,
            4096,
            cfg.geometry.total_procs(),
        );
        let metrics = Arc::new(JobMetrics::new());
        PartitionedCore::new(&cfg, &metrics, None, caps)
    }

    #[test]
    fn ownership_map_is_total_and_stable() {
        let core = core(2, 2, 2);
        assert_eq!(core.workers(), 2);
        for p in 0..4 {
            assert_eq!(core.owner_of_partition(p), p % 2);
        }
        // Clients of node 0 (ranks 0..2) and node 1 (ranks 2..4).
        assert_eq!(core.owner_of_client(ClientId::new(0, 0)), 0);
        assert_eq!(core.owner_of_client(ClientId::new(0, 1)), 0);
        assert_eq!(core.owner_of_client(ClientId::new(0, 2)), 1);
    }

    #[test]
    fn routed_append_and_fetch_roundtrip() {
        let core = core(2, 2, 2);
        let client = ClientId::new(0, 0);
        assert!(core.fetch(client, vec![]).is_err(), "no chain yet");
        core.ensure_chain(client).unwrap();
        core.chain_exists(client).unwrap();
        let placed = core
            .append(client, vec![Payload::pattern(7, 64)], true, false)
            .unwrap();
        assert_eq!(placed.len(), 1);
        let got = core
            .fetch(client, vec![(placed[0].va, placed[0].len)])
            .unwrap();
        assert!(got[0].0.content_eq(&Payload::pattern(7, 64)));
        let bytes = core.collect_bytes(false);
        assert_eq!(bytes[&(client, placed[0].tier)], 64);
    }

    #[test]
    fn write_commit_claims_and_fragments_like_the_locked_path() {
        let core = core(2, 2, 2);
        let client = ClientId::new(0, 0);
        let rec = SegmentRecord::new(client, VirtualAddr(100), 100);
        // An insert-only commit (punch of empty index, then the put).
        let out = core.write_commit(1, 0, 100, &[(0, rec)]);
        assert!(out.removed.is_empty());
        // Punch the middle third: one claim, two surviving fragments.
        let out = core.write_commit(1, 30, 60, &[]);
        assert_eq!(out.removed, vec![SegKey { fid: 1, offset: 0 }]);
        assert_eq!(out.displaced.len(), 1);
        assert_eq!(out.displaced[0].1.va, VirtualAddr(130));
        assert_eq!(out.displaced[0].1.len, 30);
        assert_eq!(out.fragments.len(), 2);
        assert_eq!(out.fragments[0].0.offset, 0);
        assert_eq!(out.fragments[1].0.offset, 60);
        // The claimed record is gone; a second punch finds nothing.
        assert!(core.write_commit(1, 30, 60, &[]).removed.is_empty());
    }

    #[test]
    fn fused_write_commits_in_one_handler_pass() {
        // One worker owns everything, so any span gates onto the fused
        // path.
        let core = core(1, 2, 1);
        let client = ClientId::new(0, 0);
        assert_eq!(core.fused_owner(client, 0, 0, 128), Some(0));
        let records = core
            .write_fused(
                client,
                5,
                0,
                0,
                128,
                vec![Payload::pattern(9, 128)],
                vec![(0, 128)],
            )
            .unwrap();
        assert_eq!(records, 1);
        // The commit is fully visible: KV record, node buffer, readable
        // bytes, generation bump.
        assert_eq!(core.scan(5, 0, 128).len(), 1);
        let plan = core.read_plan(0, 5, 0, 128).unwrap();
        assert_eq!(plan.local.len(), 1);
        assert!(plan.remote.is_none(), "node buffer covers the read");
        let (_, rec) = core.scan(5, 0, 128)[0];
        let got = core.fetch(client, vec![(rec.va, rec.len)]).unwrap();
        assert!(got[0].0.content_eq(&Payload::pattern(9, 128)));
        assert_eq!(
            core.generations.read().unwrap().get(&5).copied(),
            Some(1),
            "fused write bumps the generation in-handler"
        );
        // Overwrite the middle through the same path: the punch claims
        // the old record and the fragments survive.
        core.write_fused(
            client,
            5,
            0,
            32,
            96,
            vec![Payload::pattern(4, 64)],
            vec![(32, 64)],
        )
        .unwrap();
        let after = core.scan(5, 0, 128);
        assert_eq!(after.len(), 3, "left fragment, new record, right fragment");
        assert_eq!(after[0].0.offset, 0);
        assert_eq!(after[1].0.offset, 32);
        assert_eq!(after[2].0.offset, 96);
    }

    #[test]
    fn reply_slot_pool_recycles_across_round_trips() {
        let metrics = Arc::new(JobMetrics::new());
        let mut cfg = UniviStorConfig::test_small(2, 2);
        cfg.partitions = 2;
        let caps = layer_caps_with_node_local(
            cfg.cal.dram_cache_capacity_per_node,
            None,
            cfg.geometry.procs_per_node,
            4096,
            cfg.geometry.total_procs(),
        );
        let core = PartitionedCore::new(&cfg, &metrics, None, caps);
        let client = ClientId::new(0, 0);
        core.ensure_chain(client).unwrap();
        for _ in 0..8 {
            core.chain_exists(client).unwrap();
        }
        let snap = metrics.snapshot();
        let hits = snap
            .counter("univistor_msgplane_reply_pool_hits_total", &[])
            .unwrap_or(0);
        let misses = snap
            .counter("univistor_msgplane_reply_pool_misses_total", &[])
            .unwrap_or(0);
        let trips = snap
            .counter("univistor_partition_round_trips_total", &[])
            .unwrap_or(0);
        assert_eq!(trips, 9, "one awaited round-trip per request");
        assert_eq!(hits + misses, 9);
        assert!(
            hits >= 8,
            "sequential round-trips recycle one slot (hits {hits}, misses {misses})"
        );
    }

    #[test]
    fn checkout_roundtrip_preserves_worker_state() {
        let core = core(2, 2, 2);
        let client = ClientId::new(0, 2); // node 1 → worker 1
        core.ensure_chain(client).unwrap();
        let placed = core
            .append(client, vec![Payload::pattern(3, 64)], false, false)
            .unwrap();
        let rec = SegmentRecord::new(client, placed[0].va, 64);
        let out = core.write_commit(9, 0, 64, &[(0, rec)]);
        core.write_finish(9, 1, out, &[(0, rec)], Vec::new());
        // The assembled locked core sees everything the workers own …
        let (len, local_hits, live) = core.with_checked_out(|locked| {
            (
                locked.metadata.len(),
                locked.metadata.lookup_local(1, 9, 0, 64).len(),
                locked.chains.live_bytes(),
            )
        });
        assert_eq!((len, local_hits, live), (1, 1, 64));
        // … and after check-in the workers still serve it, and the
        // rebuilt tracking mask still targets worker 1's sweep.
        let got = core.fetch(client, vec![(placed[0].va, 64)]).unwrap();
        assert!(got[0].0.content_eq(&Payload::pattern(3, 64)));
        assert_eq!(core.scan(9, 0, 64).len(), 1);
        assert_eq!(core.read_plan(1, 9, 0, 64).unwrap().local.len(), 1);
        assert_eq!(core.tracked_mask(9), 1 << 1);
    }
}
